"""Legacy setup shim.

The execution environment is offline and lacks the ``wheel`` package, so
PEP 660 editable installs (which require ``bdist_wheel``) fail.  Keeping a
``setup.py`` lets ``pip install -e . --no-build-isolation`` fall back to
``setup.py develop``.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
