"""Execution traces.

Fig. 9 of the paper inspects a *single* run: (a) the projected makespan
after each handled failure and (b) the standard deviation of the per-task
processor counts at the same instants.  :class:`TraceRecorder` captures
exactly those series plus a full event log usable for debugging and the
examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional

import numpy as np

__all__ = ["EventKind", "TraceEvent", "Trace", "TraceRecorder", "NullRecorder"]


class EventKind(str, Enum):
    """Kinds of simulator events recorded in traces."""

    COMPLETION = "completion"
    FAILURE = "failure"
    FAILURE_IDLE = "failure-idle"
    FAILURE_MASKED = "failure-masked"
    REDISTRIBUTION = "redistribution"
    EARLY_RELEASE = "early-release"


@dataclass(frozen=True)
class TraceEvent:
    """One simulator event.

    ``task`` is -1 for platform-level events (idle failures); ``detail``
    carries kind-specific payload (processor id, sigma transition, ...).
    """

    time: float
    kind: EventKind
    task: int = -1
    detail: str = ""


@dataclass
class Trace:
    """Recorded series of one simulation run."""

    events: List[TraceEvent] = field(default_factory=list)
    #: times of handled (effective) failures
    failure_times: List[float] = field(default_factory=list)
    #: projected makespan right after each handled failure (Fig. 9a)
    makespan_after_failure: List[float] = field(default_factory=list)
    #: std-dev of active tasks' processor counts after each failure (Fig. 9b)
    sigma_std_after_failure: List[float] = field(default_factory=list)

    def failures(self) -> List[TraceEvent]:
        """All effective failure events."""
        return [e for e in self.events if e.kind is EventKind.FAILURE]

    def redistributions(self) -> List[TraceEvent]:
        """All redistribution events."""
        return [e for e in self.events if e.kind is EventKind.REDISTRIBUTION]

    def as_arrays(self) -> dict[str, np.ndarray]:
        """The Fig. 9 series as NumPy arrays."""
        return {
            "failure_times": np.asarray(self.failure_times),
            "makespan": np.asarray(self.makespan_after_failure),
            "sigma_std": np.asarray(self.sigma_std_after_failure),
        }


class TraceRecorder:
    """Accumulates a :class:`Trace` during a run."""

    def __init__(self) -> None:
        self.trace = Trace()

    enabled = True

    def event(
        self, time: float, kind: EventKind, task: int = -1, detail: str = ""
    ) -> None:
        self.trace.events.append(TraceEvent(time, kind, task, detail))

    def failure_snapshot(
        self, time: float, makespan: float, sigma_std: float
    ) -> None:
        self.trace.failure_times.append(time)
        self.trace.makespan_after_failure.append(makespan)
        self.trace.sigma_std_after_failure.append(sigma_std)


class NullRecorder:
    """No-op recorder used when tracing is disabled (the common case)."""

    trace: Optional[Trace] = None
    enabled = False

    def event(
        self, time: float, kind: EventKind, task: int = -1, detail: str = ""
    ) -> None:  # pragma: no cover - trivial
        pass

    def failure_snapshot(
        self, time: float, makespan: float, sigma_std: float
    ) -> None:  # pragma: no cover - trivial
        pass
