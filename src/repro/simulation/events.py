"""Lazy-deletion event queue for the simulator's completion times.

The simulator's main loop repeatedly needs the earliest projected task
completion.  The seed implementation rescanned every live task per event
— O(n) per event, O(n^2) per run.  :class:`CompletionQueue` keeps the
projections in a min-heap with *lazy deletion*: it subclasses ``dict``
(task index -> projected finish), so the redistribution handlers keep
writing ``finish[i] = t`` exactly as before, and every write also pushes
``(t, i)`` onto the heap.  A heap entry is stale once the task completed
or its projection was re-written; :meth:`peek` prunes stale entries from
the top before answering, making event selection O(log n) amortised.

Entries are ordered ``(time, task index)``, which reproduces the linear
scan's tie-break (earliest time, then smallest index) bit for bit.
"""

from __future__ import annotations

import heapq
import math
from typing import List, Sequence, Tuple

__all__ = ["CompletionQueue"]


class CompletionQueue(dict):
    """``finish``-time mapping backed by a lazy-deletion min-heap.

    Only item assignment keeps the heap in sync; the other inherited
    dict mutators (which would bypass the overridden ``__setitem__`` at
    the C level) are blocked so a desynchronised heap cannot be created
    silently.
    """

    def __init__(self, runtimes: Sequence, mirror=None):
        super().__init__()
        self._runtimes = runtimes
        self._heap: List[Tuple[float, int]] = []
        #: Optional flat ndarray mirror of the projections (the
        #: simulator's vectorised failure path scans it instead of the
        #: dict).  __setitem__ is the only write channel, so the mirror
        #: can never desync from the mapping.
        self._mirror = mirror

    def __setitem__(self, i: int, t: float) -> None:
        dict.__setitem__(self, i, t)
        if self._mirror is not None:
            self._mirror[i] = t
        heapq.heappush(self._heap, (t, i))

    def _unsupported(self, *_args, **_kwargs):
        raise TypeError(
            "CompletionQueue only supports item assignment "
            "(finish[i] = t); other dict mutators would desync the heap"
        )

    update = _unsupported
    setdefault = _unsupported
    pop = _unsupported
    popitem = _unsupported
    clear = _unsupported
    __delitem__ = _unsupported
    __ior__ = _unsupported

    def peek(self) -> Tuple[float, int]:
        """(time, task) of the next valid completion, ``(inf, -1)`` if none.

        Prunes stale heap entries (completed task, or a projection that
        has since been re-written) on the way.
        """
        heap = self._heap
        while heap:
            t, i = heap[0]
            if self._runtimes[i].completed or dict.__getitem__(self, i) != t:
                heapq.heappop(heap)
                continue
            return t, i
        return math.inf, -1

    def scan(self) -> Tuple[float, int]:
        """Reference linear scan over live tasks (seed semantics).

        Kept for the equivalence tests: byte-identical selection to the
        seed's ``for`` loop, O(n) per call.
        """
        t_best, i_best = math.inf, -1
        for i, rt in enumerate(self._runtimes):
            if not rt.completed and dict.__getitem__(self, i) < t_best:
                t_best, i_best = dict.__getitem__(self, i), i
        return t_best, i_best
