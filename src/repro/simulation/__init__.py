"""Discrete-event fault simulator (Algorithm 2)."""

from .events import CompletionQueue
from .result import SimulationResult
from .simulator import Simulator, simulate
from .trace import EventKind, Trace, TraceEvent, TraceRecorder

__all__ = [
    "CompletionQueue",
    "SimulationResult",
    "Simulator",
    "simulate",
    "EventKind",
    "Trace",
    "TraceEvent",
    "TraceRecorder",
]
