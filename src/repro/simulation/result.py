"""Simulation results."""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, Optional

import numpy as np

from .trace import Trace

__all__ = ["SimulationResult"]


@dataclass
class SimulationResult:
    """Outcome of one simulated pack execution.

    ``makespan`` is the completion time of the last task — the quantity
    every figure of the paper reports (averaged over replicates and
    normalised by the no-redistribution fault-context makespan).
    """

    policy: str
    makespan: float
    completion_times: np.ndarray
    initial_sigma: Dict[int, int]
    failures_effective: int = 0
    failures_idle: int = 0
    failures_masked: int = 0
    redistributions: int = 0
    events: int = 0
    seed: int = 0
    trace: Optional[Trace] = None

    @cached_property
    def n(self) -> int:
        """Number of tasks (computed once, then cached)."""
        return int(self.completion_times.size)

    @cached_property
    def failures_total(self) -> int:
        """All failure arrivals observed before the makespan (cached)."""
        return self.failures_effective + self.failures_idle + self.failures_masked

    def summary(self) -> str:
        """One-line human-readable digest."""
        return (
            f"{self.policy}: makespan={self.makespan:.6g}s "
            f"(n={self.n}, failures={self.failures_effective}"
            f"+{self.failures_masked}m+{self.failures_idle}i, "
            f"redistributions={self.redistributions})"
        )
