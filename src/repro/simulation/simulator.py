"""Fault-injection discrete-event simulator (Algorithm 2, Section 5.1).

The simulator advances through two kinds of events:

* **task completions** — deterministic fault-free projections
  ``tlastR + alpha t_ff + N^ff C`` of each running task, pre-empted by
  failures (DESIGN.md interpretation 3);
* **processor failures** — drawn by the per-processor fault injector.

On a completion the released processors are redistributed by the policy's
*completion heuristic* (Alg. 2 line 20).  On a failure the struck task is
rolled back to its last checkpoint and pays ``D + R`` (lines 23-26); tasks
projected to finish before the struck task resumes are released early
(line 28); and if the struck task became the longest one the policy's
*failure heuristic* rebalances the pack (lines 30-31).  Tasks still busy
recovering or redistributing are excluded from rebalancing (line 15).

Failures hitting an idle processor, or a task inside its blackout window
(downtime/recovery/redistribution — Section 6.1), are recorded but have no
effect.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..cluster import Cluster, ProcessorMap
from ..core.kernels import DECISION_STATES, KERNELS, DecisionCache
from ..core.optimal import optimal_schedule
from ..core.policy import Policy, get_policy
from ..core.progress import (
    projected_finish,
    remaining_after_failure,
    remaining_after_failure_from_values,
)
from ..core.state import TaskRuntime
from ..exceptions import SimulationError
from ..resilience.checkpoint import ResilienceModel
from ..resilience.distributions import ExponentialFaults, FaultDistribution
from ..resilience.expected_time import ExpectedTimeModel
from ..resilience.faults import FaultInjector, NullFaultInjector
from ..rng import derive_rng
from ..tasks import Pack
from .events import CompletionQueue
from .result import SimulationResult
from .trace import EventKind, NullRecorder, TraceRecorder

__all__ = ["Simulator", "simulate"]


class Simulator:
    """One pack execution on a failure-prone platform.

    Parameters
    ----------
    pack:
        The tasks to co-schedule.
    cluster:
        The platform.
    policy:
        A :class:`~repro.core.policy.Policy` or its short name
        (``"ig-el"``, ``"no-redistribution"``, ...).
    seed:
        Replicate seed; fault times derive from ``(seed, "faults")`` so
        different policies see identical failures (common random numbers).
    inject_faults:
        ``False`` gives the paper's *fault-free context* (checkpointing
        overhead is kept — DESIGN.md interpretation 6).
    fault_distribution:
        Defaults to the paper's exponential law at the cluster MTBF.
    model:
        Optional pre-built :class:`ExpectedTimeModel` (shared across
        replicates of the same pack to amortise the grids).
    record_trace:
        Capture the Fig. 9 series and a full event log.
    event_queue:
        ``"heap"`` (default) selects the next completion from a
        lazy-deletion heap in O(log n); ``"scan"`` keeps the seed's O(n)
        linear rescan.  Both produce bit-identical executions — the scan
        path exists for the equivalence tests and as a debugging aid.
    decision_kernel:
        ``"array"`` (default) routes every scheduling decision —
        Algorithm 1 at pack start and the Algorithm 3-5 loops at every
        event — through the batched decision kernels
        (:mod:`repro.core.kernels`); ``"scalar"`` keeps the per-probe
        model calls.  Both produce bit-identical executions, mirroring
        ``event_queue``.
    decision_state:
        ``"incremental"`` (default) keeps one persistent
        :class:`~repro.core.kernels.DecisionCache` alive across the
        run's events: each decision point delta-patches only the
        candidate-matrix rows invalidated since the previous decision
        (dirty tasks, stall changes, time advance) instead of re-running
        the full batched build, and the Algorithm-5 grant loop runs on
        the incremental heap.  ``"rebuild"`` keeps the PR-3 fresh build
        per decision point as the reference.  Both produce bit-identical
        executions, mirroring ``decision_kernel``/``event_queue``; the
        scalar kernel has no matrix to cache, so it always rebuilds.
    profile_backend:
        How the model evaluates Eq. (4) on profile-cache misses —
        ``"fused"`` / ``"numba"`` / ``"reference"`` (see
        :mod:`repro.resilience.profile_backends`).  ``None`` (default)
        leaves the model's backend untouched; a name is applied to the
        model via :meth:`~repro.resilience.expected_time.
        ExpectedTimeModel.set_profile_backend` — value-safe even on a
        shared pre-warmed model, since every backend is bit-identical
        and the profile ring is history-independent.  When the
        *resolved* backend is ``"reference"`` the simulator's
        per-failure path also drops to the seed's per-``TaskRuntime``
        Python scans (early release, is-longest test, Fig. 9 snapshot,
        rollback through the model accessors) — the honest reference
        leg of the hot-core benchmark and the bit-identity anchor for
        the ndarray fast path.  A ``"numba"`` request that degraded to
        ``"fused"`` still runs the vectorised path.

    The per-failure path of Algorithm 2 — the early-release scan of
    line 28, the is-longest test of line 30 and the Fig. 9 snapshot —
    runs on flat ndarray mirrors of ``finish`` / ``t_expected`` /
    ``sigma`` / ``completed`` maintained alongside the ``TaskRuntime``
    bookkeeping.  The mirrors are *written* in every mode (they are the
    release/completion bookkeeping of record) but only *read* by the
    vectorised path.  The mirror invariants: ``finish`` is mirrored at its
    single write channel (:class:`~repro.simulation.events.
    CompletionQueue.__setitem__`); ``t_expected``/``sigma`` and the
    grid values at the current allocation are mirrored exactly where
    the decision cache's dirty bits are raised (the failure rollback
    and the post-heuristic commit — the only writers, by the
    ``DecisionCache`` invariant 1); ``live = ~completed & ~released``
    flips false at completion and early release, and never flips back.
    """

    def __init__(
        self,
        pack: Pack,
        cluster: Cluster,
        policy: Policy | str = "no-redistribution",
        *,
        seed: int = 0,
        inject_faults: bool = True,
        fault_distribution: Optional[FaultDistribution] = None,
        resilience: Optional[ResilienceModel] = None,
        model: Optional[ExpectedTimeModel] = None,
        record_trace: bool = False,
        strict: bool = False,
        event_queue: str = "heap",
        decision_kernel: str = "array",
        decision_state: str = "incremental",
        profile_backend: Optional[str] = None,
    ):
        self.pack = pack
        self.cluster = cluster
        self.policy = get_policy(policy) if isinstance(policy, str) else policy
        self.seed = int(seed)
        self.inject_faults = bool(inject_faults)
        if model is not None:
            self.model = model
            if profile_backend is not None:
                model.set_profile_backend(profile_backend)
        else:
            self.model = ExpectedTimeModel(
                pack, cluster, resilience=resilience,
                profile_backend=(
                    "fused" if profile_backend is None else profile_backend
                ),
            )
        # Resolved, not requested: a "numba" request that degraded to
        # "fused" still takes the vectorised failure path.
        self._ref_failure_path = self.model.profile_backend == "reference"
        self._distribution = (
            fault_distribution
            if fault_distribution is not None
            else ExponentialFaults(cluster.mtbf)
        )
        self._recorder = TraceRecorder() if record_trace else NullRecorder()
        # Cached: the per-failure handlers guard their event calls on it
        # (a NullRecorder call still builds its f-string detail).
        self._rec_enabled = self._recorder.enabled
        self._strict = bool(strict)
        if event_queue not in ("heap", "scan"):
            raise SimulationError(
                f"event_queue must be 'heap' or 'scan', got {event_queue!r}"
            )
        self._use_heap = event_queue == "heap"
        if decision_kernel not in KERNELS:
            raise SimulationError(
                f"decision_kernel must be one of {KERNELS}, "
                f"got {decision_kernel!r}"
            )
        self._decision_kernel = decision_kernel
        if decision_state not in DECISION_STATES:
            raise SimulationError(
                f"decision_state must be one of {DECISION_STATES}, "
                f"got {decision_state!r}"
            )
        self._decision_state = decision_state
        self._cache: Optional[DecisionCache] = None
        self._runtimes: Optional[List[TaskRuntime]] = None

    # ------------------------------------------------------------------
    def _make_decision_cache(self) -> DecisionCache:
        """The run's persistent decision state (overridable for tests)."""
        return DecisionCache(self.model)

    def start(
        self,
        *,
        t0: float = 0.0,
        sigma0: Optional[Dict[int, int]] = None,
        alphas: Optional[Sequence[float]] = None,
        t_last: Optional[Sequence[float]] = None,
        injector: Optional[FaultInjector | NullFaultInjector] = None,
    ) -> None:
        """Initialise the event loop without running it.

        The default call (``start()``) reproduces the ``run()`` prologue
        bit for bit.  The keyword overrides exist for the rolling-horizon
        service (:mod:`repro.service`), which resumes residual workloads
        mid-timeline:

        * ``t0`` — the segment origin (arrivals/epochs happen at nonzero
          times);
        * ``sigma0`` — a pre-computed initial allocation (the online
          re-pack decides it from residual fractions; must cover every
          task);
        * ``alphas`` / ``t_last`` — per-task remaining fractions and
          pattern-restart times carried over from the previous segment
          (defaults: full work, released at ``t0``);
        * ``injector`` — a fault injector shared across segments so the
          failure trace is continuous regardless of epoch boundaries.
        """
        pack, cluster, model = self.pack, self.cluster, self.model
        n, p = len(pack), cluster.processors

        # One decision cache per run: every event's decision point
        # delta-patches it instead of rebuilding the candidate matrix.
        # The scalar kernel has no matrix, so it never caches.
        self._cache = (
            self._make_decision_cache()
            if self._decision_kernel == "array"
            and self._decision_state == "incremental"
            else None
        )

        runtimes = [TaskRuntime(spec) for spec in pack]
        if sigma0 is None:
            sigma0 = optimal_schedule(model, p, kernel=self._decision_kernel)
        elif set(sigma0) != set(range(n)):
            raise SimulationError(
                "sigma0 must assign every task exactly once"
            )
        procs = ProcessorMap(p)

        # Flat ndarray mirrors of the per-task bookkeeping the
        # per-failure path scans (class docstring: mirror invariants).
        self._m_finish = np.full(n, math.inf)
        self._m_texp = np.empty(n)
        self._m_tlast = np.zeros(n)
        self._m_sigma = np.zeros(n)
        self._m_tff = np.empty(n)    # grid t_ff at the current sigma
        self._m_tau = np.empty(n)    # grid tau at the current sigma
        self._m_cost = np.empty(n)   # grid C at the current sigma
        self._m_done = np.zeros(n, dtype=bool)
        self._m_released = np.zeros(n, dtype=bool)
        self._m_live = np.ones(n, dtype=bool)   # ~done & ~released
        self._m_scratch = np.empty(n, dtype=bool)

        for i, count in sigma0.items():
            rt = runtimes[i]
            rt.assign(count)
            if alphas is not None:
                rt.alpha = float(alphas[i])
            if t_last is not None:
                rt.t_last = float(t_last[i])
            elif t0 != 0.0:
                rt.t_last = t0
            rt.t_expected = rt.t_last + model.expected_time(
                i, count, rt.alpha
            )
            procs.acquire(i, count)
            self._m_texp[i] = rt.t_expected
            self._m_tlast[i] = rt.t_last
            self._sync_task_mirrors(i, count)

        if injector is not None:
            self._injector: FaultInjector | NullFaultInjector = injector
        elif self.inject_faults:
            self._injector = FaultInjector(
                p, self._distribution, derive_rng(self.seed, "faults")
            )
        else:
            self._injector = NullFaultInjector()

        finish = CompletionQueue(runtimes, mirror=self._m_finish)
        for i in range(n):
            finish[i] = self._projected(runtimes[i])
        # Completion bookkeeping is accumulated event by event instead of
        # being re-derived from the runtimes after the loop.
        self._runtimes = runtimes
        self._procs = procs
        self._sigma0 = sigma0
        self._finish = finish
        self._counters = {"effective": 0, "idle": 0, "masked": 0, "events": 0}
        self._completion_times = np.full(n, math.nan)
        self._makespan = 0.0
        self._remaining = n
        self._t_now = t0

    def _require_started(self) -> None:
        if self._runtimes is None:
            raise SimulationError("start() must be called before stepping")

    @property
    def runtimes(self) -> List[TaskRuntime]:
        """The live per-task states (valid after :meth:`start`)."""
        self._require_started()
        return self._runtimes

    @property
    def now(self) -> float:
        """Time of the last processed event (``t0`` before any event)."""
        self._require_started()
        return self._t_now

    @property
    def tasks_remaining(self) -> int:
        """Uncompleted tasks left in the pack."""
        self._require_started()
        return self._remaining

    def next_event_time(self) -> float:
        """Time of the next pending event (``inf`` when none remain)."""
        self._require_started()
        if self._remaining <= 0:
            return math.inf
        if self._use_heap:
            t_comp, _ = self._finish.peek()
        else:
            t_comp, _ = self._finish.scan()
        t_fail, _ = self._injector.peek()
        return t_comp if t_comp <= t_fail else t_fail

    def step(self) -> Optional[Tuple[float, str, int]]:
        """Process the single next event.

        Returns ``(t, "completion", task)`` or ``(t, "failure", proc)``,
        or ``None`` once the pack is complete.  The event selection and
        bookkeeping are the exact loop body of :meth:`advance` so a
        stepped execution is bit-identical to an advanced one.
        """
        self._require_started()
        if self._remaining <= 0:
            return None
        finish, injector = self._finish, self._injector
        if self._use_heap:
            t_comp, i_comp = finish.peek()
        else:
            t_comp, i_comp = finish.scan()
        t_fail, _ = injector.peek()
        if t_comp == math.inf and t_fail == math.inf:
            raise SimulationError("no events left but tasks remain")
        self._counters["events"] += 1
        if t_comp <= t_fail:
            self._handle_completion(
                t_comp, i_comp, self._runtimes, self._procs, finish
            )
            self._completion_times[i_comp] = t_comp
            if t_comp > self._makespan:
                self._makespan = t_comp
            self._remaining -= 1
            self._t_now = t_comp
            event = (t_comp, "completion", i_comp)
        else:
            t_fail, proc = injector.pop()
            self._handle_failure(
                t_fail, proc, self._runtimes, self._procs,
                finish, self._counters,
            )
            self._t_now = t_fail
            event = (t_fail, "failure", proc)
        if self._strict:
            self._procs.validate()
        return event

    def advance(self, until: float = math.inf) -> int:
        """Process events up to and including time ``until``.

        Returns the number of events processed.  ``advance()`` with the
        default horizon drains the pack to completion — together with
        :meth:`start` and :meth:`result` it *is* ``run()``.
        """
        self._require_started()
        runtimes = self._runtimes
        procs = self._procs
        finish = self._finish
        injector = self._injector
        counters = self._counters
        completion_times = self._completion_times
        use_heap = self._use_heap
        strict = self._strict
        processed = 0
        while self._remaining > 0:
            if use_heap:
                t_comp, i_comp = finish.peek()
            else:
                t_comp, i_comp = finish.scan()
            t_fail, _ = injector.peek()
            if t_comp == math.inf and t_fail == math.inf:
                raise SimulationError("no events left but tasks remain")
            if (t_comp if t_comp <= t_fail else t_fail) > until:
                break
            counters["events"] += 1

            if t_comp <= t_fail:
                self._handle_completion(t_comp, i_comp, runtimes, procs, finish)
                completion_times[i_comp] = t_comp
                if t_comp > self._makespan:
                    self._makespan = t_comp
                self._remaining -= 1
                self._t_now = t_comp
            else:
                t_fail, proc = injector.pop()
                self._handle_failure(
                    t_fail, proc, runtimes, procs, finish, counters
                )
                self._t_now = t_fail
            if strict:
                procs.validate()
            processed += 1
        return processed

    def result(self) -> SimulationResult:
        """Snapshot the accumulated result (complete after a full drain)."""
        self._require_started()
        redistributions = sum(rt.redistributions for rt in self._runtimes)
        return SimulationResult(
            policy=self.policy.name,
            makespan=self._makespan,
            completion_times=self._completion_times,
            initial_sigma=self._sigma0,
            failures_effective=self._counters["effective"],
            failures_idle=self._counters["idle"],
            failures_masked=self._counters["masked"],
            redistributions=redistributions,
            events=self._counters["events"],
            seed=self.seed,
            trace=self._recorder.trace if self._recorder.enabled else None,
        )

    def run(self) -> SimulationResult:
        """Execute the pack to completion and return the result."""
        self.start()
        self.advance()
        return self.result()

    # ------------------------------------------------------------------
    def _sync_task_mirrors(self, i: int, sigma: int) -> None:
        """Refresh task ``i``'s sigma + grid-value mirrors (sigma moved)."""
        grid = self.model.grid(i)
        slot = grid.slot(sigma)
        self._m_tff[i] = grid.t_ff[slot]
        self._m_tau[i] = grid.tau[slot]
        self._m_cost[i] = grid.cost[slot]
        self._m_sigma[i] = sigma

    def _projected(self, rt: TaskRuntime) -> float:
        """Deterministic fault-free completion of ``rt``'s remaining work.

        Reads the mirrored grid values at the current allocation — the
        same floats :meth:`_sync_task_mirrors` gathered from the grid,
        so the result is bit-identical to resolving the grid per call
        (which is exactly what the reference mode does).
        """
        i = rt.index
        if self._ref_failure_path:
            grid = self.model.grid(i)
            slot = grid.slot(rt.sigma)
            return projected_finish(
                rt.t_last,
                rt.alpha,
                float(grid.t_ff[slot]),
                float(grid.tau[slot]),
                float(grid.cost[slot]),
            )
        return projected_finish(
            rt.t_last,
            rt.alpha,
            float(self._m_tff[i]),
            float(self._m_tau[i]),
            float(self._m_cost[i]),
        )

    def _active_for_redistribution(
        self,
        t: float,
        runtimes: List[TaskRuntime],
        include: Optional[int] = None,
    ) -> List[TaskRuntime]:
        """Alg. 2 line 15: active tasks not busy at ``t`` (plus ``include``).

        One vectorised compare over the live/t_last mirrors: for a live
        task ``busy_at(t)`` is exactly ``t <= t_last``, so the selection
        is ``live & (t_last < t)`` with ``include`` forced in (ascending
        task index = the reference scan's pack order).
        """
        if self._ref_failure_path:
            selected = []
            for rt in runtimes:
                if rt.completed or self._m_released[rt.index]:
                    continue
                if rt.index == include or not rt.busy_at(t):
                    selected.append(rt)
            return selected
        buf = self._m_scratch
        np.less(self._m_tlast, t, out=buf)
        buf &= self._m_live
        if include is not None:
            buf[include] = self._m_live[include]
        return [runtimes[i] for i in np.nonzero(buf)[0]]

    def _sync_and_reproject(
        self,
        t: float,
        changed: List[int],
        runtimes: List[TaskRuntime],
        procs: ProcessorMap,
        finish: Dict[int, float],
    ) -> None:
        """Apply heuristic decisions to the processor map and projections."""
        if not changed:
            return
        procs.apply_counts({i: runtimes[i].sigma for i in changed})
        cache = self._cache
        for i in changed:
            rt = runtimes[i]
            # Post-heuristic commit: the same channel as the decision
            # cache's dirty bit — resync the ndarray mirrors here, and
            # before the reprojection (which reads the grid mirrors).
            if rt.sigma != self._m_sigma[i]:
                self._sync_task_mirrors(i, rt.sigma)
            self._m_texp[i] = rt.t_expected
            self._m_tlast[i] = rt.t_last
            finish[i] = self._projected(rt)
            if cache is not None:
                # sigma_init changed + checkpoint taken: dirty bit.
                cache.invalidate(i)
            if self._rec_enabled:
                self._recorder.event(
                    t, EventKind.REDISTRIBUTION, i, f"sigma={rt.sigma}"
                )

    def _handle_completion(
        self,
        t: float,
        e: int,
        runtimes: List[TaskRuntime],
        procs: ProcessorMap,
        finish: Dict[int, float],
    ) -> None:
        rt_e = runtimes[e]
        was_released = bool(self._m_released[e])
        rt_e.mark_completed(t)
        self._m_done[e] = True
        self._m_live[e] = False
        if not was_released:
            procs.release(e)
        else:
            self._m_released[e] = False
        if self._rec_enabled:
            self._recorder.event(t, EventKind.COMPLETION, e)
        # Early-released tasks were already removed from consideration when
        # the failure that released them was handled (Alg. 2 line 28);
        # their physical completion triggers no further redistribution.
        if was_released or self.policy.completion is None:
            return
        tasks = self._active_for_redistribution(t, runtimes)
        if not tasks:
            return
        if self._cache is not None:
            self._cache.note_budget(procs.free_count)
        changed = self.policy.completion.apply(
            self.model, t, tasks, procs.free_count,
            kernel=self._decision_kernel, cache=self._cache,
        )
        self._sync_and_reproject(t, changed, runtimes, procs, finish)

    def _handle_failure(
        self,
        t: float,
        proc: int,
        runtimes: List[TaskRuntime],
        procs: ProcessorMap,
        finish: Dict[int, float],
        counters: Dict[str, int],
    ) -> None:
        owner = procs.owner_of(proc)
        if owner is None or runtimes[owner].completed:
            counters["idle"] += 1
            if self._rec_enabled:
                self._recorder.event(
                    t, EventKind.FAILURE_IDLE, detail=f"proc={proc}"
                )
            return
        rt_f = runtimes[owner]
        if rt_f.busy_at(t) or self._m_released[owner]:
            # Section 6.1: no failures during downtime/recovery/redistribution.
            counters["masked"] += 1
            if self._rec_enabled:
                self._recorder.event(
                    t, EventKind.FAILURE_MASKED, owner, f"proc={proc}"
                )
            return

        counters["effective"] += 1
        f = owner
        j = rt_f.sigma
        # Alg. 2 lines 23-26: roll back to the last checkpoint, pay D + R.
        # The grid values at sigma come from the mirrors — the same floats
        # the model accessors would gather (restart_overhead is D + C and
        # expected_time indexes the envelope at slot (j >> 1) - 1), so the
        # rollback is bit-identical to the accessor-resolving form the
        # reference mode keeps.
        lost_before = rt_f.alpha
        if self._ref_failure_path:
            rt_f.alpha = remaining_after_failure(
                self.model, f, j, rt_f.alpha, t, rt_f.t_last
            )
            rt_f.rework += rt_f.alpha - lost_before  # <= 0 contribution
            rt_f.failures += 1
            rt_f.t_last = t + self.model.restart_overhead(f, j)
            rt_f.t_expected = rt_f.t_last + self.model.expected_time(
                f, j, rt_f.alpha
            )
        else:
            tff = float(self._m_tff[f])
            tau = float(self._m_tau[f])
            cost = float(self._m_cost[f])
            rt_f.alpha = remaining_after_failure_from_values(
                rt_f.alpha, t, rt_f.t_last, tff, tau, cost
            )
            rt_f.rework += rt_f.alpha - lost_before  # <= 0 contribution
            rt_f.failures += 1
            rt_f.t_last = t + (self.model.downtime + cost)
            rt_f.t_expected = rt_f.t_last + float(
                self.model.profile(f, rt_f.alpha)[(j >> 1) - 1]
            )
        self._m_texp[f] = rt_f.t_expected
        self._m_tlast[f] = rt_f.t_last
        finish[f] = self._projected(rt_f)
        if self._cache is not None:
            # Remaining work re-measured + stall applied: dirty bit.
            self._cache.invalidate(f)
        if self._rec_enabled:
            self._recorder.event(t, EventKind.FAILURE, f, f"proc={proc}")

        # Alg. 2 line 28: tasks projected to end before the struck task
        # resumes release their processors for the rebalancing below.
        # One vectorised compare over the finish mirror instead of a
        # Python scan of every runtime per failure.
        t_resume = rt_f.t_last
        if self._ref_failure_path:
            for i, rt in enumerate(runtimes):
                if (
                    not rt.completed
                    and i != f
                    and not self._m_released[i]
                    and finish[i] < t_resume
                ):
                    self._m_released[i] = True
                    self._m_live[i] = False
                    procs.release(i)
                    if self._rec_enabled:
                        self._recorder.event(t, EventKind.EARLY_RELEASE, i)
        else:
            buf = self._m_scratch
            np.less(self._m_finish, t_resume, out=buf)
            buf &= self._m_live
            buf[f] = False
            for i in np.nonzero(buf)[0]:
                i = int(i)
                self._m_released[i] = True
                self._m_live[i] = False
                procs.release(i)
                if self._rec_enabled:
                    self._recorder.event(t, EventKind.EARLY_RELEASE, i)

        # Alg. 2 line 30: rebalance only if the struck task is the longest.
        if self.policy.failure is not None and self._is_longest(rt_f, runtimes):
            tasks = self._active_for_redistribution(t, runtimes, include=f)
            if len(tasks) > 1 or (tasks and procs.free_count >= 2):
                if self._cache is not None:
                    self._cache.note_budget(procs.free_count)
                changed = self.policy.failure.apply(
                    self.model, t, tasks, procs.free_count, f,
                    kernel=self._decision_kernel, cache=self._cache,
                )
                self._sync_and_reproject(t, changed, runtimes, procs, finish)

        if self._rec_enabled:
            self._failure_snapshot(t, runtimes, finish)

    def _is_longest(
        self, rt_f: TaskRuntime, runtimes: List[TaskRuntime]
    ) -> bool:
        """Alg. 2 line 30 test, vectorised over the t_expected mirror."""
        if self._ref_failure_path:
            threshold = rt_f.t_expected
            for i, rt in enumerate(runtimes):
                if rt.completed or self._m_released[i]:
                    continue
                if rt.t_expected > threshold:
                    return False
            return True
        buf = self._m_scratch
        np.greater(self._m_texp, rt_f.t_expected, out=buf)
        buf &= self._m_live
        return not bool(buf.any())

    def _failure_snapshot(
        self,
        t: float,
        runtimes: List[TaskRuntime],
        finish: Dict[int, float],
    ) -> None:
        """Record the Fig. 9 series after a handled failure.

        Both series come straight from the mirrors: a completed task's
        queue entry still holds its completion event time (projections
        are only rewritten for live tasks), so the projected-makespan
        series is the max of the finish mirror; and the sigma mirror
        holds exact small integers, so its float64 std matches the
        seed's int-list std bit for bit.
        """
        if self._ref_failure_path:
            projected = [
                rt.completion_time if rt.completed else finish[rt.index]
                for rt in runtimes
            ]
            sigmas = [rt.sigma for rt in runtimes if not rt.completed]
            sigma_std = float(np.std(sigmas)) if sigmas else 0.0
            self._recorder.failure_snapshot(t, float(max(projected)), sigma_std)
            return
        makespan = float(self._m_finish.max())
        active = ~self._m_done
        if bool(active.any()):
            sigma_std = float(np.std(self._m_sigma[active]))
        else:
            sigma_std = 0.0
        self._recorder.failure_snapshot(t, makespan, sigma_std)


def simulate(
    pack: Pack,
    cluster: Cluster,
    policy: Policy | str,
    *,
    seed: int = 0,
    inject_faults: bool = True,
    **kwargs,
) -> SimulationResult:
    """Convenience wrapper: build a :class:`Simulator` and run it."""
    simulator = Simulator(
        pack,
        cluster,
        policy,
        seed=seed,
        inject_faults=inject_faults,
        **kwargs,
    )
    return simulator.run()
