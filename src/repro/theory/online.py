"""Competitive analysis of the online redistribution heuristics.

The paper's future work (Section 7) asks for "the complexity of the
online redistribution algorithms in terms of competitiveness".  This
module provides the measurement side of that programme: certified
*lower bounds* on the achievable makespan, and the *competitive ratio*
of a simulated policy against them.

Two classical bounds apply to any schedule of a pack (malleable tasks,
non-increasing times, non-decreasing work — Section 3.2's assumptions):

* **area bound** — total work divided by the platform width.  The work of
  task ``i`` on ``j`` processors is ``j * t_{i,j}``, non-decreasing in
  ``j``, so its *minimum* over the allowed counts lower-bounds the
  processor-seconds the task must consume; summing and dividing by ``p``
  bounds the makespan:
  ``LB_area = (1/p) Σ_i min_j (j t_{i,j})``;
* **critical-path bound** — no task can finish before its own best time:
  ``LB_path = max_i min_j t_{i,j}``.

Both are *fault-free* bounds, hence also valid under failures (failures
only add work), and valid whether or not redistribution is allowed — so
ratios computed against them upper-bound the true competitive ratio.
:func:`failure_aware_lower_bound` optionally strengthens the area bound
with the work provably destroyed by each effective failure (downtime and
recovery on the struck task's processors).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence

import numpy as np

from ..cluster import Cluster
from ..exceptions import ConfigurationError
from ..simulation.result import SimulationResult
from ..tasks import Pack

__all__ = [
    "LowerBound",
    "fault_free_lower_bound",
    "failure_aware_lower_bound",
    "competitive_ratio",
    "CompetitiveReport",
    "competitive_report",
    "arrival_aware_lower_bound",
    "replay_competitive_ratio",
]


@dataclass(frozen=True)
class LowerBound:
    """A certified makespan lower bound and its constituents."""

    value: float
    area_bound: float
    critical_path_bound: float
    failure_surcharge: float = 0.0

    def __post_init__(self) -> None:
        if self.value < max(self.area_bound, self.critical_path_bound) - 1e-9:
            raise ConfigurationError(
                "lower bound value below one of its constituents"
            )

    def describe(self) -> str:
        """Human-readable decomposition."""
        parts = [
            f"LB={self.value:.6g}s",
            f"area={self.area_bound:.6g}s",
            f"path={self.critical_path_bound:.6g}s",
        ]
        if self.failure_surcharge > 0:
            parts.append(f"failure-surcharge={self.failure_surcharge:.6g}s")
        return " ".join(parts)


def _per_task_bounds(
    pack: Pack, p: int, even_only: bool = True
) -> tuple[np.ndarray, np.ndarray]:
    """(min work, min time) per task over the admissible processor counts."""
    if p < 2:
        raise ConfigurationError(f"platform must have >= 2 processors, got {p}")
    counts = np.arange(2, p + 1, 2) if even_only else np.arange(1, p + 1)
    min_work = np.empty(len(pack))
    min_time = np.empty(len(pack))
    for i, task in enumerate(pack):
        times = np.asarray(task.fault_free_time(counts), dtype=float)
        min_work[i] = float(np.min(counts * times))
        min_time[i] = float(np.min(times))
    return min_work, min_time


def fault_free_lower_bound(
    pack: Pack, p: int, *, even_only: bool = True
) -> LowerBound:
    """Max of the area and critical-path bounds (fault-free, RC-free).

    ``even_only`` restricts allocations to buddy pairs, matching the
    paper's setting; pass ``False`` for the unrestricted malleable bound.
    """
    min_work, min_time = _per_task_bounds(pack, p, even_only)
    area = float(min_work.sum() / p)
    path = float(min_time.max())
    return LowerBound(
        value=max(area, path), area_bound=area, critical_path_bound=path
    )


def failure_aware_lower_bound(
    pack: Pack,
    cluster: Cluster,
    result: SimulationResult,
    *,
    even_only: bool = True,
) -> LowerBound:
    """Area bound strengthened with the observed failures' dead time.

    Every effective failure provably costs at least ``D + R_{i,2}``
    wall-clock on the struck task — using the *cheapest possible*
    recovery (largest admissible allocation would make ``R`` smaller but
    recovery is ``C_i/j`` with ``j`` the count *at the failure*, unknown
    here, so the bound conservatively uses the maximum count ``p``).
    The surcharge is the total dead processor-time divided by ``p``:
    at least the pair of the struck task idles through ``D + R``.

    The bound stays valid for *this* failure realisation only — it is a
    per-run clairvoyant bound, the correct denominator for an
    (instance-wise) competitive ratio.
    """
    base = fault_free_lower_bound(pack, cluster.processors, even_only=even_only)
    cheapest_recovery = min(
        task.checkpoint_cost / cluster.processors for task in pack
    )
    dead_time_per_failure = cluster.downtime + cheapest_recovery
    # 2 processors (one buddy pair) provably stall per failure
    surcharge = (
        result.failures_effective
        * dead_time_per_failure
        * 2.0
        / cluster.processors
    )
    return LowerBound(
        value=max(base.area_bound + surcharge, base.critical_path_bound),
        area_bound=base.area_bound,
        critical_path_bound=base.critical_path_bound,
        failure_surcharge=surcharge,
    )


def competitive_ratio(
    result: SimulationResult, bound: LowerBound
) -> float:
    """Makespan over lower bound — an upper bound on the true ratio."""
    if bound.value <= 0:
        raise ConfigurationError("lower bound must be positive")
    if result.makespan < bound.value - 1e-6 * bound.value:
        raise ConfigurationError(
            f"makespan {result.makespan:.6g} is below the certified lower "
            f"bound {bound.value:.6g}; the bound computation does not match "
            "this simulation's pack/platform"
        )
    return result.makespan / bound.value


@dataclass
class CompetitiveReport:
    """Per-policy competitive ratios for one (pack, platform, seed) run."""

    bound: LowerBound
    ratios: Dict[str, float]
    makespans: Dict[str, float]

    def best_policy(self) -> str:
        """Policy with the smallest ratio."""
        return min(self.ratios, key=self.ratios.get)  # type: ignore[arg-type]

    def render(self) -> str:
        """Small table sorted by ratio."""
        lines = [self.bound.describe()]
        width = max(len(name) for name in self.ratios)
        for name in sorted(self.ratios, key=self.ratios.get):  # type: ignore[arg-type]
            lines.append(
                f"  {name.ljust(width)}  ratio={self.ratios[name]:.4f}  "
                f"makespan={self.makespans[name]:.6g}s"
            )
        return "\n".join(lines)


def competitive_report(
    pack: Pack,
    cluster: Cluster,
    results: Iterable[SimulationResult],
    *,
    failure_aware: bool = True,
) -> CompetitiveReport:
    """Compare several policies' runs against one certified bound.

    All results must come from the same pack/platform/seed (paired runs);
    the failure-aware surcharge uses the *minimum* observed failure count
    so the bound stays valid for every run in the set.
    """
    results = list(results)
    if not results:
        raise ConfigurationError("at least one result is required")
    if failure_aware:
        reference = min(results, key=lambda r: r.failures_effective)
        bound = failure_aware_lower_bound(pack, cluster, reference)
    else:
        bound = fault_free_lower_bound(pack, cluster.processors)
    ratios: Dict[str, float] = {}
    makespans: Dict[str, float] = {}
    for result in results:
        if result.policy in ratios:
            raise ConfigurationError(
                f"duplicate policy {result.policy!r} in the result set"
            )
        ratios[result.policy] = competitive_ratio(result, bound)
        makespans[result.policy] = result.makespan
    return CompetitiveReport(bound=bound, ratios=ratios, makespans=makespans)


def arrival_aware_lower_bound(
    pack: Pack,
    arrivals: Sequence[float],
    p: int,
    *,
    even_only: bool = True,
) -> LowerBound:
    """Lower bound on the *online* makespan under release dates.

    Two classical strengthenings of the offline bounds for jobs with
    release dates ``r_i`` (valid for any online or clairvoyant
    scheduler, with or without redistribution — failures only add work):

    * **release-path** — a job cannot finish before its own arrival plus
      its best fault-free time: ``max_i (r_i + min_j t_{i,j})``;
    * **suffix-area** — work released at or after time ``t`` cannot run
      before ``t``, so for every arrival time ``t``:
      ``t + (1/p) Σ_{r_i >= t} min_j (j t_{i,j})``.

    Both collapse to the batch bounds of :func:`fault_free_lower_bound`
    when every ``r_i == 0``.
    """
    arrivals = [float(r) for r in arrivals]
    if len(arrivals) != len(pack):
        raise ConfigurationError(
            f"need one arrival per task: {len(arrivals)} arrivals for "
            f"{len(pack)} tasks"
        )
    if any(r < 0 for r in arrivals):
        raise ConfigurationError("arrival times must be >= 0")
    min_work, min_time = _per_task_bounds(pack, p, even_only)
    path = float(max(r + t for r, t in zip(arrivals, min_time)))
    area = 0.0
    for t in sorted(set(arrivals)):
        suffix = float(
            sum(w for r, w in zip(arrivals, min_work) if r >= t)
        )
        area = max(area, t + suffix / p)
    return LowerBound(
        value=max(area, path), area_bound=area, critical_path_bound=path
    )


def replay_competitive_ratio(
    trace: Sequence,
    result,
    config,
    *,
    even_only: bool = True,
) -> Dict[str, float]:
    """Competitive-ratio report for one arrival-replay run.

    ``trace`` is a list of :class:`repro.service.replay.TraceEvent`,
    ``result`` the :class:`~repro.service.replay.ReplayResult` produced
    by replaying it, ``config`` the matching
    :class:`~repro.service.replay.ReplayConfig`.  Only jobs the service
    actually *completed* enter the bound (a cancelled job constrains
    nothing), so the bound stays valid for the measured makespan.
    """
    from ..tasks import TaskSpec

    completed = {
        job_id
        for job_id, job in result.jobs.items()
        if job.get("status") == "completed"
    }
    if not completed:
        raise ConfigurationError(
            "replay completed no jobs; the competitive ratio is undefined"
        )
    tasks = []
    arrivals = []
    for event in trace:
        if event.kind != "submit" or event.job_id not in completed:
            continue
        tasks.append(
            TaskSpec(
                index=len(tasks),
                size=event.size,
                checkpoint_cost=(
                    event.checkpoint_cost
                    if event.checkpoint_cost is not None
                    else event.size
                ),
                name=event.job_id,
            )
        )
        arrivals.append(event.time)
    pack = Pack(tasks)
    bound = arrival_aware_lower_bound(
        pack, arrivals, config.processors, even_only=even_only
    )
    if result.makespan < bound.value - 1e-6 * bound.value:
        raise ConfigurationError(
            f"replay makespan {result.makespan:.6g} is below the certified "
            f"lower bound {bound.value:.6g}; trace and result do not match"
        )
    return {
        "lower_bound": float(bound.value),
        "area_bound": float(bound.area_bound),
        "critical_path_bound": float(bound.critical_path_bound),
        "makespan": float(result.makespan),
        "ratio": float(result.makespan / bound.value),
        "jobs": float(len(tasks)),
    }
