"""The Theorem 2 reduction: 3-Partition -> redistribution scheduling.

Section 4.2 proves that minimising the makespan *with* redistribution is
strongly NP-complete even with free redistributions and no failures.  From
a 3-Partition instance ``I1`` (``B``, ``a_1..a_3m``) it builds a pack
``I2`` of ``n = 4m`` tasks on ``n`` processors with the execution-time
tables

* small tasks ``i = 1..3m``:  ``t_{i,1} = a_i`` and ``t_{i,j} = 3 a_i / 4``
  for ``j > 1`` (parallelising them *loses* work);
* large tasks ``i = 3m+1..4m``:  ``t_{i,j} = (4D - B)/j`` for ``j <= 4``
  and ``t_{i,j} = 2(4D - B)/9`` for ``j > 4``,

with deadline ``D = max_i a_i + 1``.  ``I2`` admits a schedule of makespan
``<= D`` iff ``I1`` is a YES instance.

This module materialises the reduction, builds the witness schedule from a
3-Partition certificate (Fig. 4 of the paper), verifies schedules against
the semantics of the reduction (redistribution only at task completions,
zero cost), and decides reduced instances exactly via the equivalence.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from ..exceptions import ConfigurationError
from .three_partition import ThreePartitionInstance, solve_three_partition

__all__ = [
    "MalleableTaskTable",
    "ReducedInstance",
    "ScheduleStep",
    "build_reduction",
    "schedule_from_certificate",
    "verify_schedule",
    "decide_reduced_instance",
]


@dataclass(frozen=True)
class MalleableTaskTable:
    """Explicit execution-time table ``t_{i,j}`` of one malleable task."""

    times: Tuple[Fraction, ...]  #: times[j-1] = t(j) for j = 1..p

    def time(self, j: int) -> Fraction:
        if not 1 <= j <= len(self.times):
            raise ConfigurationError(f"j={j} outside 1..{len(self.times)}")
        return self.times[j - 1]

    def work(self, j: int) -> Fraction:
        """Total work ``j * t(j)``."""
        return j * self.time(j)


@dataclass(frozen=True)
class ReducedInstance:
    """The scheduling instance ``I2`` produced by the reduction."""

    source: ThreePartitionInstance
    tasks: Tuple[MalleableTaskTable, ...]
    processors: int
    deadline: Fraction

    @property
    def n(self) -> int:
        return len(self.tasks)

    @property
    def m(self) -> int:
        return self.source.m

    def small_indices(self) -> range:
        """Indices of the 3m small tasks."""
        return range(3 * self.m)

    def large_indices(self) -> range:
        """Indices of the m large tasks."""
        return range(3 * self.m, 4 * self.m)


@dataclass(frozen=True)
class ScheduleStep:
    """A constant-allocation interval of a malleable schedule.

    ``allocation[i]`` is the processor count of task ``i`` during
    ``[start, end)``; redistribution is free and instantaneous at step
    boundaries (the Theorem 2 setting).
    """

    start: Fraction
    end: Fraction
    allocation: Dict[int, int]


def build_reduction(instance: ThreePartitionInstance) -> ReducedInstance:
    """Materialise ``I2`` from a 3-Partition instance ``I1``."""
    m = instance.m
    n = 4 * m
    deadline = Fraction(max(instance.values) + 1)
    big_work = 4 * deadline - instance.B  # total work of a large task
    if big_work <= deadline:
        raise ConfigurationError(
            "degenerate reduction: 4D - B <= D; the instance violates "
            "the 3-Partition bounds"
        )
    tables: List[MalleableTaskTable] = []
    for a in instance.values:  # 3m small tasks
        times = [Fraction(a)] + [Fraction(3 * a, 4)] * (n - 1)
        tables.append(MalleableTaskTable(tuple(times)))
    for _ in range(m):  # m large tasks
        times = [big_work / j for j in range(1, 5)]
        times += [Fraction(2, 9) * big_work] * (n - 4)
        tables.append(MalleableTaskTable(tuple(times)))
    return ReducedInstance(
        source=instance,
        tasks=tuple(tables),
        processors=n,
        deadline=deadline,
    )


def schedule_from_certificate(
    reduced: ReducedInstance, triples: Sequence[Sequence[int]]
) -> List[ScheduleStep]:
    """Witness schedule of makespan ``D`` from a 3-Partition certificate.

    Every task starts on one processor; when small task ``i`` (a member of
    triple ``k``) completes at ``a_i``, its processor moves to large task
    ``3m + k`` (Fig. 4).  The schedule is returned as maximal
    constant-allocation steps.
    """
    if not reduced.source.verify_partition(triples):
        raise ConfigurationError("invalid 3-Partition certificate")
    m = reduced.m
    values = reduced.source.values

    # Completion time of each small task is its sequential time a_i; build
    # the event list of processor hand-offs.
    owner_large: Dict[int, int] = {}
    for k, triple in enumerate(triples):
        for i in triple:
            owner_large[i] = 3 * m + k

    events = sorted({Fraction(values[i]) for i in range(3 * m)})
    boundaries = [Fraction(0)] + events + [reduced.deadline]
    steps: List[ScheduleStep] = []
    for start, end in zip(boundaries[:-1], boundaries[1:]):
        if start == end:
            continue
        allocation: Dict[int, int] = {}
        for i in range(3 * m):
            if Fraction(values[i]) > start:
                allocation[i] = 1
        for k in range(m):
            large = 3 * m + k
            donated = sum(
                1
                for i in triples[k]
                if Fraction(values[i]) <= start
            )
            allocation[large] = 1 + donated
        steps.append(ScheduleStep(start, end, allocation))
    return steps


def verify_schedule(
    reduced: ReducedInstance,
    steps: Sequence[ScheduleStep],
    deadline: Optional[Fraction] = None,
) -> bool:
    """Check a malleable schedule against the reduction semantics.

    Requirements: steps tile ``[0, makespan)`` contiguously; at most
    ``n`` processors in use at any time; a task's allocation only changes
    at step boundaries; every task accumulates work fraction exactly 1
    (work is normalised per allocation: running ``dt`` on ``j``
    processors completes ``dt / t_{i,j}`` of the task); everything ends by
    ``deadline`` (default: the reduction's).
    """
    if deadline is None:
        deadline = reduced.deadline
    if not steps:
        return False
    previous_end = Fraction(0)
    fractions = [Fraction(0)] * reduced.n
    for step in steps:
        if step.start != previous_end or step.end <= step.start:
            return False
        previous_end = step.end
        if step.end > deadline:
            return False
        total = sum(step.allocation.values())
        if total > reduced.processors:
            return False
        for i, j in step.allocation.items():
            if j < 1:
                return False
            duration = step.end - step.start
            fractions[i] += duration / reduced.tasks[i].time(j)
    return all(fraction >= 1 for fraction in fractions)


def decide_reduced_instance(reduced: ReducedInstance) -> bool:
    """Exact decision for ``I2`` via the Theorem 2 equivalence.

    The paper proves ``I2`` admits a schedule of makespan ``<= D`` iff the
    source 3-Partition instance is a YES instance, so deciding ``I2``
    reduces back to the (exponential, small-m) exact 3-Partition solver.
    """
    return solve_three_partition(reduced.source) is not None
