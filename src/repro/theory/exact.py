"""Exact solvers for small instances.

Two tools back the complexity results of Section 4:

* :func:`exact_no_redistribution` — the *polynomial* exact optimum for
  the no-redistribution problem (Theorem 1), implemented independently of
  Algorithm 1 via feasibility bisection: a makespan ``T`` is feasible iff
  ``sum_i minprocs_i(T) <= p`` where ``minprocs_i(T)`` is the smallest
  even count whose expected time is ``<= T``.  The test suite checks
  Algorithm 1 against it.

* :func:`brute_force_moldable` — exhaustive enumeration over even
  allocations for tiny packs, a second independent witness.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import CapacityError, ConfigurationError
from ..resilience.expected_time import ExpectedTimeModel

__all__ = ["exact_no_redistribution", "brute_force_moldable"]


def _min_procs_for(
    profile: np.ndarray, j_grid: np.ndarray, target: float
) -> Optional[int]:
    """Smallest even ``j`` with envelope time ``<= target`` (or ``None``)."""
    mask = profile <= target
    if not bool(mask.any()):
        return None
    return int(j_grid[int(np.argmax(mask))])


def exact_no_redistribution(
    model: ExpectedTimeModel,
    p: int,
    indices: Optional[Sequence[int]] = None,
    alpha: float = 1.0,
) -> Tuple[Dict[int, int], float]:
    """Exact minimal expected makespan without redistribution.

    Bisection over the finite candidate set of envelope values: the
    optimal makespan is one of the ``t^R_{i,j}(alpha)`` values, and
    feasibility of a candidate ``T`` is checked by summing per-task
    minimal processor counts.  Complexity ``O(n p log(n p))``.

    Returns ``(allocation, makespan)``.
    """
    if indices is None:
        indices = range(len(model.pack))
    indices = list(indices)
    n = len(indices)
    if p < 2 * n:
        raise CapacityError(f"need p >= 2n: p={p}, n={n}")
    j_grid = model.j_grid[model.j_grid <= p]
    if j_grid.size == 0:
        raise CapacityError("platform grid empty")
    profiles = {i: model.profile(i, alpha)[: j_grid.size] for i in indices}

    candidates = np.unique(
        np.concatenate([profiles[i] for i in indices])
    )

    def feasible(target: float) -> Optional[Dict[int, int]]:
        allocation: Dict[int, int] = {}
        total = 0
        for i in indices:
            j = _min_procs_for(profiles[i], j_grid, target)
            if j is None:
                return None
            allocation[i] = j
            total += j
            if total > p:
                return None
        return allocation

    lo, hi = 0, len(candidates) - 1
    if feasible(float(candidates[hi])) is None:
        raise CapacityError(
            "instance infeasible even at the largest candidate makespan"
        )
    best: Optional[Dict[int, int]] = None
    while lo <= hi:
        mid = (lo + hi) // 2
        allocation = feasible(float(candidates[mid]))
        if allocation is not None:
            best = allocation
            hi = mid - 1
        else:
            lo = mid + 1
    assert best is not None
    makespan = max(
        float(profiles[i][int(best[i]) // 2 - 1]) for i in indices
    )
    return best, makespan


def brute_force_moldable(
    model: ExpectedTimeModel,
    p: int,
    indices: Optional[Sequence[int]] = None,
    alpha: float = 1.0,
    max_states: int = 2_000_000,
) -> Tuple[Dict[int, int], float]:
    """Exhaustive minimal expected makespan over even allocations.

    Enumerates every assignment of even counts summing to ``<= p``
    (meet-in-the-middle-free, intended for ``n <= 6`` and small ``p``).
    """
    if indices is None:
        indices = range(len(model.pack))
    indices = list(indices)
    n = len(indices)
    if p < 2 * n:
        raise CapacityError(f"need p >= 2n: p={p}, n={n}")
    max_each = p - 2 * (n - 1)
    choices = [range(2, max_each + 1, 2)] * n
    states = math.prod(len(c) for c in choices)
    if states > max_states:
        raise ConfigurationError(
            f"{states} allocations exceed max_states={max_states}"
        )
    best_alloc: Optional[Dict[int, int]] = None
    best_makespan = math.inf
    for combo in itertools.product(*choices):
        if sum(combo) > p:
            continue
        makespan = max(
            model.expected_time(i, j, alpha) for i, j in zip(indices, combo)
        )
        if makespan < best_makespan:
            best_makespan = makespan
            best_alloc = dict(zip(indices, combo))
    assert best_alloc is not None
    return best_alloc, best_makespan
