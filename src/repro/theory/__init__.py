"""Complexity-theory artefacts: Theorem 1 exact solvers, Theorem 2 reduction."""

from .exact import brute_force_moldable, exact_no_redistribution
from .online import (
    CompetitiveReport,
    LowerBound,
    arrival_aware_lower_bound,
    competitive_ratio,
    competitive_report,
    failure_aware_lower_bound,
    fault_free_lower_bound,
    replay_competitive_ratio,
)
from .reduction import (
    MalleableTaskTable,
    ReducedInstance,
    ScheduleStep,
    build_reduction,
    decide_reduced_instance,
    schedule_from_certificate,
    verify_schedule,
)
from .three_partition import (
    ThreePartitionInstance,
    random_no_instance,
    random_yes_instance,
    solve_three_partition,
)

__all__ = [
    "brute_force_moldable",
    "exact_no_redistribution",
    "CompetitiveReport",
    "LowerBound",
    "arrival_aware_lower_bound",
    "competitive_ratio",
    "competitive_report",
    "failure_aware_lower_bound",
    "fault_free_lower_bound",
    "replay_competitive_ratio",
    "MalleableTaskTable",
    "ReducedInstance",
    "ScheduleStep",
    "build_reduction",
    "decide_reduced_instance",
    "schedule_from_certificate",
    "verify_schedule",
    "ThreePartitionInstance",
    "random_no_instance",
    "random_yes_instance",
    "solve_three_partition",
]
