"""3-Partition instances (Garey & Johnson [19]).

An instance is an integer ``B`` and ``3m`` integers ``a_1..a_3m`` with
``B/4 < a_i < B/2`` and ``sum a_i = m B``; the question is whether they
split into ``m`` triples each summing exactly to ``B``.  This is the
strongly NP-complete problem Theorem 2 reduces from.

Besides the instance representation this module provides an exact
backtracking decision procedure (fine for the small ``m`` used in tests)
and generators of random YES instances (built from a hidden partition)
and NO instances.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ConfigurationError

__all__ = [
    "ThreePartitionInstance",
    "solve_three_partition",
    "random_yes_instance",
    "random_no_instance",
]


@dataclass(frozen=True)
class ThreePartitionInstance:
    """A (validated) 3-Partition instance."""

    values: Tuple[int, ...]
    B: int

    def __post_init__(self) -> None:
        if len(self.values) % 3 != 0 or not self.values:
            raise ConfigurationError(
                f"need 3m values, got {len(self.values)}"
            )
        if self.B <= 0:
            raise ConfigurationError("B must be positive")
        if sum(self.values) != self.m * self.B:
            raise ConfigurationError(
                f"values must sum to m*B = {self.m * self.B}, got {sum(self.values)}"
            )
        for value in self.values:
            if not self.B / 4 < value < self.B / 2:
                raise ConfigurationError(
                    f"value {value} violates B/4 < a_i < B/2 (B={self.B})"
                )

    @property
    def m(self) -> int:
        """Number of triples."""
        return len(self.values) // 3

    def verify_partition(self, triples: Sequence[Sequence[int]]) -> bool:
        """Check a proposed partition (indices into ``values``)."""
        flat = [index for triple in triples for index in triple]
        if sorted(flat) != list(range(len(self.values))):
            return False
        return all(
            len(triple) == 3
            and sum(self.values[index] for index in triple) == self.B
            for triple in triples
        )


def solve_three_partition(
    instance: ThreePartitionInstance,
) -> Optional[List[Tuple[int, int, int]]]:
    """Exact backtracking solver; returns the triples or ``None``.

    Exponential in ``m`` — intended for the small instances exercised by
    the Theorem 2 tests (m <= 5 runs instantly).
    """
    n = len(instance.values)
    used = [False] * n
    triples: List[Tuple[int, int, int]] = []

    def backtrack() -> bool:
        first = next((i for i in range(n) if not used[i]), None)
        if first is None:
            return True
        used[first] = True
        remaining = [i for i in range(n) if not used[i]]
        for j_pos, j in enumerate(remaining):
            partial = instance.values[first] + instance.values[j]
            if partial >= instance.B:
                continue
            needed = instance.B - partial
            for k in remaining[j_pos + 1:]:
                if instance.values[k] != needed:
                    continue
                used[j] = used[k] = True
                triples.append((first, j, k))
                if backtrack():
                    return True
                triples.pop()
                used[j] = used[k] = False
        used[first] = False
        return False

    if backtrack():
        return list(triples)
    return None


def random_yes_instance(
    m: int, rng: np.random.Generator, base: int = 100
) -> ThreePartitionInstance:
    """YES instance built from a hidden partition.

    Each triple is ``(base+d1, base+d2, base+d3)`` with ``d1+d2+d3 = 0``
    and deviations small enough to respect ``B/4 < a_i < B/2`` with
    ``B = 3*base``.
    """
    if m < 1:
        raise ConfigurationError("m must be >= 1")
    B = 3 * base
    max_dev = max(1, base // 5)  # keeps values well inside (B/4, B/2)
    values: List[int] = []
    for _ in range(m):
        # draw d1 freely, then d2 so that d3 = -(d1+d2) also stays within
        # [-max_dev, max_dev] — otherwise the third value can escape the
        # 3-Partition bounds B/4 < a_i < B/2
        d1 = int(rng.integers(-max_dev, max_dev + 1))
        d2_low = max(-max_dev, -max_dev - d1)
        d2_high = min(max_dev, max_dev - d1)
        d2 = int(rng.integers(d2_low, d2_high + 1))
        d3 = -(d1 + d2)
        values.extend([base + d1, base + d2, base + d3])
    order = rng.permutation(len(values))
    return ThreePartitionInstance(
        values=tuple(int(values[i]) for i in order), B=B
    )


def random_no_instance(
    m: int, rng: np.random.Generator, base: int = 100
) -> ThreePartitionInstance:
    """NO instance (verified by the exact solver).

    Perturbs YES instances until one becomes infeasible while still
    meeting the 3-Partition well-formedness constraints; falls back to a
    deterministic construction if sampling fails.
    """
    for _ in range(200):
        candidate = random_yes_instance(m, rng, base=base)
        values = list(candidate.values)
        # Move one unit between two values: the sum is preserved but the
        # multiset usually stops partitioning.
        i, j = rng.choice(len(values), size=2, replace=False)
        values[i] += 1
        values[j] -= 1
        try:
            perturbed = ThreePartitionInstance(tuple(values), candidate.B)
        except ConfigurationError:
            continue
        if solve_three_partition(perturbed) is None:
            return perturbed
    raise ConfigurationError(
        f"could not find a NO instance for m={m}; try another seed"
    )
