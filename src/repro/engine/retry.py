"""The engine's retry policy: bounded attempts, deterministic backoff.

Every executor shares one small law for "try again": a
:class:`RetryPolicy` carries the attempt budget and an exponential
backoff schedule whose jitter derives from the failing
:class:`~repro.engine.request.RunRequest`'s seed — so two runs of the
same campaign back off identically, and two requests that fail in the
same poll cycle spread out instead of thundering back together.

The taxonomy it dispatches on lives in :mod:`repro.exceptions`:

* :class:`~repro.exceptions.TransientEngineError` (and plain
  ``OSError``, so broker spool hiccups need no wrapping) — retry until
  the budget runs out;
* :class:`~repro.exceptions.PermanentEngineError` — surface
  immediately;
* anything else a runner raises is *deterministic* by the RunRequest
  purity contract (same seed ⇒ same exception), so retrying cannot
  help: it is treated as permanent and — in the queue engine — becomes
  a :class:`~repro.exceptions.PoisonChunkError` headed for the
  dead-letter spool.

Two layers use this module:

* :func:`execute_with_retry` wraps one request *in place* (inside
  ``_execute_chunk``, hence inside every executor's worker — serial,
  pooled, async and queue alike) and retries transient failures there;
* the :class:`~repro.engine.queue_exec.QueueExecutor` applies the same
  policy per *chunk* at the submitter for transport-level failures
  (corrupt payloads, worker crashes) that the worker never saw.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..exceptions import (
    ConfigurationError,
    PermanentEngineError,
    TransientEngineError,
)
from ..rng import derive_rng

__all__ = [
    "RetryPolicy",
    "DEFAULT_RETRY_POLICY",
    "is_transient",
    "execute_with_retry",
]


def is_transient(exc: BaseException) -> bool:
    """Whether the retry layer may re-attempt after this failure.

    :class:`~repro.exceptions.PermanentEngineError` always wins over
    the transient classification, even though both derive from
    :class:`~repro.exceptions.EngineError`.
    """
    if isinstance(exc, PermanentEngineError):
        return False
    return isinstance(exc, (TransientEngineError, OSError))


@dataclass(frozen=True)
class RetryPolicy:
    """Attempt budget + deterministic exponential backoff.

    Parameters
    ----------
    max_attempts:
        Total executions allowed per unit of work (first try included);
        ``1`` disables retrying.
    backoff_base:
        Delay before the first retry, in seconds.
    backoff_factor:
        Multiplier applied per further retry (exponential backoff).
    backoff_max:
        Ceiling on any single delay.
    jitter:
        Fractional spread: each delay is scaled by a factor drawn
        uniformly from ``[1 - jitter, 1 + jitter]`` — *deterministically*,
        from the work unit's seed and the attempt number, so a re-run
        of the same campaign reproduces the same schedule.
    """

    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ConfigurationError("backoff delays must be >= 0")
        if self.backoff_factor < 1.0:
            raise ConfigurationError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigurationError(
                f"jitter must be in [0, 1), got {self.jitter}"
            )

    def delay(self, attempt: int, seed: int) -> float:
        """Seconds to wait after failed attempt number ``attempt`` (1-based).

        A pure function of ``(policy, attempt, seed)``: the jitter
        factor comes from :func:`repro.rng.derive_rng`, not a global
        RNG, so backoff schedules are reproducible across processes.
        """
        if attempt < 1:
            raise ConfigurationError(f"attempt must be >= 1, got {attempt}")
        raw = min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** (attempt - 1),
        )
        if self.jitter == 0.0 or raw == 0.0:
            return raw
        spread = derive_rng(seed, "retry-jitter", attempt).random()
        return raw * (1.0 - self.jitter + 2.0 * self.jitter * spread)


#: The stock policy every executor starts from.
DEFAULT_RETRY_POLICY = RetryPolicy()


def execute_with_retry(
    fn: Callable[[int], Any],
    *,
    seed: int,
    policy: Optional[RetryPolicy],
    sleep: Callable[[float], None] = time.sleep,
) -> Any:
    """Run ``fn(attempt)`` under ``policy``; return its first success.

    ``fn`` receives the 1-based attempt number (chaos injection keys on
    it).  Transient failures (:func:`is_transient`) are retried after
    the policy's deterministic backoff; permanent ones — and the last
    transient one once the budget is spent — propagate to the caller.
    ``policy=None`` means a single unguarded attempt.
    """
    if policy is None:
        return fn(1)
    attempt = 1
    while True:
        try:
            return fn(attempt)
        except BaseException as exc:  # noqa: BLE001 - classified below
            if not is_transient(exc) or attempt >= policy.max_attempts:
                raise
            sleep(policy.delay(attempt, seed))
            attempt += 1
