"""The engine's unit of work.

A :class:`RunRequest` describes one self-contained simulation unit — a
workload draw, a fault draw, the policy set to run on it and any model
knobs — entirely through a module-level runner function, a picklable
payload and one derived seed.  ``fn(*payload, seed=seed)`` must be a
*pure function of its arguments*: every random quantity (workload draw,
failure times, sampling noise) must derive from ``seed`` through
:mod:`repro.rng`, and nothing may depend on process identity, execution
order or wall-clock time.  That contract is what lets every executor —
serial, pooled or persistent — return byte-identical results for the
same request list (see :mod:`repro.engine`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Tuple

from ..exceptions import ConfigurationError

__all__ = ["RunRequest", "execute_request"]


@dataclass(frozen=True)
class RunRequest:
    """One deterministic execution unit submitted to an executor.

    Attributes
    ----------
    fn:
        Module-level runner called as ``fn(*payload, seed=seed)``.  It
        must be importable by name (pickled by reference) so process
        pools can dispatch it, and deterministic given its arguments.
    payload:
        Positional arguments (workload/policy/model knobs).  Everything
        here crosses process boundaries, so it must pickle.
    seed:
        The unit's entire entropy: workload and fault draws inside
        ``fn`` must derive from it and nothing else.
    tag:
        Caller-side ordering key (replicate index, sweep position,
        chunk number).  Executors return results in request order, so
        the tag is bookkeeping, not a contract.
    """

    fn: Callable[..., Any]
    payload: Tuple[Any, ...] = ()
    seed: int = 0
    tag: int = 0

    def __post_init__(self) -> None:
        if not callable(self.fn):
            raise ConfigurationError(
                f"RunRequest.fn must be callable, got {type(self.fn)!r}"
            )
        if getattr(self.fn, "__name__", "<lambda>") == "<lambda>":
            raise ConfigurationError(
                "RunRequest.fn must be a module-level function "
                "(lambdas do not pickle across process boundaries)"
            )
        if not isinstance(self.payload, tuple):
            raise ConfigurationError(
                f"RunRequest.payload must be a tuple, got {type(self.payload)!r}"
            )


def execute_request(request: RunRequest) -> Any:
    """Run one request in the current process."""
    return request.fn(*request.payload, seed=request.seed)
