"""The unified execution engine: one pluggable run-fabric.

Every layer that drives the simulator — figure sweeps
(:mod:`repro.experiments`), batch campaigns (:mod:`repro.batch`) and
Monte-Carlo validation (:mod:`repro.validation`) — submits its work
here instead of owning a private fan-out loop.  The engine is two small
pieces:

* a :class:`RunRequest` — one unit of work: a module-level runner
  function, a picklable payload (workload draw + fault draw + policy +
  model knobs) and a single derived seed;
* an :class:`Executor` — ``map(requests) -> results`` in request
  order, in one of three implementations: :class:`SerialExecutor`
  (reference path), :class:`PoolExecutor` (fresh process pool per
  dispatch) and :class:`PersistentPoolExecutor` (workers and their
  workload caches kept alive across whole campaigns).

The RunRequest determinism contract
-----------------------------------

Executors may run requests in any process, in any grouping, with any
pool lifetime — so correctness rests on one contract, which every
runner function must honour:

1. **All entropy flows from the seed.**  ``fn(*payload, seed=seed)``
   must derive every random quantity (workload draw, failure times,
   sampling noise) from ``seed`` via :mod:`repro.rng`; no global RNG,
   no process identity, no wall clock.
2. **Requests are independent.**  A runner must not communicate with
   other requests except through its return value; execution order and
   chunk boundaries are unobservable.
3. **Reuse must be invisible.**  Anything a runner memoises in
   :data:`repro.engine.cache.shared_cache` must be a pure function of
   its cache key, and any internal caching of a reused object (for
   example the :class:`~repro.resilience.expected_time.ExpectedTimeModel`
   profile ring, which evaluates on a quantised-alpha grid) must be
   history-independent: a warm hit returns exactly what a cold rebuild
   would.

Under this contract every executor produces **byte-identical** results
for the same request list — the property
``tests/test_perf_equivalence.py`` pins across serial, pool and
persistent execution — and the only observable differences are
wall-clock and the ``cache_info()``-style counters in
:class:`EngineStats`.
"""

from __future__ import annotations

from .cache import WorkloadCache, shared_cache
from .executors import (
    ENGINES,
    EngineStats,
    Executor,
    PersistentPoolExecutor,
    PoolExecutor,
    SerialExecutor,
    create_executor,
    default_chunk_size,
    ensure_executor,
    resolve_engine,
)
from .request import RunRequest, execute_request

__all__ = [
    "ENGINES",
    "EngineStats",
    "Executor",
    "PersistentPoolExecutor",
    "PoolExecutor",
    "RunRequest",
    "SerialExecutor",
    "WorkloadCache",
    "create_executor",
    "default_chunk_size",
    "ensure_executor",
    "execute_request",
    "resolve_engine",
    "shared_cache",
]
