"""The unified execution engine: one pluggable run-fabric.

Every layer that drives the simulator — figure sweeps
(:mod:`repro.experiments`), batch campaigns (:mod:`repro.batch`) and
Monte-Carlo validation (:mod:`repro.validation`) — submits its work
here instead of owning a private fan-out loop.  The engine is two small
pieces:

* a :class:`RunRequest` — one unit of work: a module-level runner
  function, a picklable payload (workload draw + fault draw + policy +
  model knobs) and a single derived seed;
* an :class:`Executor` — ``map(requests) -> results`` in request
  order, in one of five implementations: :class:`SerialExecutor`
  (reference path), :class:`PoolExecutor` (fresh process pool per
  dispatch), :class:`PersistentPoolExecutor` (workers and their
  workload caches kept alive across whole campaigns),
  :class:`AsyncExecutor` (a persistent pool driven by an asyncio event
  loop, overlapping dispatch with reassembly) and
  :class:`QueueExecutor` (chunks serialised through a pluggable
  :class:`Broker` to workers that may live outside this process tree —
  or this host; ``python -m repro.engine.worker`` is the worker-side
  entrypoint, ``python -m repro.engine.broker_server`` serves a spool
  over token-authenticated HTTP and :class:`HTTPBroker` /
  :func:`connect_broker` are the client side).

The RunRequest determinism contract
-----------------------------------

Executors may run requests in any process, in any grouping, with any
pool lifetime — so correctness rests on one contract, which every
runner function must honour:

1. **All entropy flows from the seed.**  ``fn(*payload, seed=seed)``
   must derive every random quantity (workload draw, failure times,
   sampling noise) from ``seed`` via :mod:`repro.rng`; no global RNG,
   no process identity, no wall clock.
2. **Requests are independent.**  A runner must not communicate with
   other requests except through its return value; execution order and
   chunk boundaries are unobservable.
3. **Reuse must be invisible.**  Anything a runner memoises in
   :data:`repro.engine.cache.shared_cache` must be a pure function of
   its cache key, and any internal caching of a reused object (for
   example the :class:`~repro.resilience.expected_time.ExpectedTimeModel`
   profile ring, which evaluates on a quantised-alpha grid) must be
   history-independent: a warm hit returns exactly what a cold rebuild
   would.

Under this contract every executor produces **byte-identical** results
for the same request list — the property
``tests/test_perf_equivalence.py`` pins across serial, pool,
persistent, async and queue execution — and the only observable
differences are wall-clock and the ``cache_info()``-style counters in
:class:`EngineStats` (which the pool *and* queue transports both carry
back from their workers).

The contract also powers the resilience layer (``docs/RESILIENCE.md``):
because any execution of a request is byte-identical, work can be
retried (:class:`RetryPolicy`), requeued, deduplicated, journaled for
crash-resume (:class:`ResultJournal`) and exercised under deterministic
fault injection (:class:`FaultPlan`) without ever changing a result.
"""

from __future__ import annotations

from .async_exec import AsyncExecutor
from .broker import Broker, FileBroker, worker_identity
from .cache import WorkloadCache, shared_cache
from .chaos import (
    ChaosBroker,
    ChaosCrash,
    ChaosHTTPTransport,
    ChaosShardBroker,
    FaultPlan,
)
from .executors import (
    ENGINES,
    EngineStats,
    Executor,
    PersistentPoolExecutor,
    PoolExecutor,
    SerialExecutor,
    create_executor,
    default_chunk_size,
    ensure_executor,
    resolve_engine,
)
from .http_broker import HTTPBroker, connect_broker
from .journal import ResultJournal, ensure_journal
from .queue_exec import QueueExecutor
from .request import RunRequest, execute_request
from .retry import DEFAULT_RETRY_POLICY, RetryPolicy
from .shard_router import ShardRouter

__all__ = [
    "ENGINES",
    "DEFAULT_RETRY_POLICY",
    "AsyncExecutor",
    "Broker",
    "ChaosBroker",
    "ChaosCrash",
    "ChaosHTTPTransport",
    "ChaosShardBroker",
    "EngineStats",
    "Executor",
    "FaultPlan",
    "FileBroker",
    "HTTPBroker",
    "PersistentPoolExecutor",
    "PoolExecutor",
    "QueueExecutor",
    "ResultJournal",
    "RetryPolicy",
    "RunRequest",
    "SerialExecutor",
    "ShardRouter",
    "WorkloadCache",
    "connect_broker",
    "create_executor",
    "default_chunk_size",
    "ensure_executor",
    "ensure_journal",
    "execute_request",
    "resolve_engine",
    "shared_cache",
    "worker_identity",
]
