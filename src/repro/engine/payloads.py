"""Wire format of the queue fabric: task and result payload codecs.

Both ends of a :class:`~repro.engine.broker.Broker` speak this format:
the submitting :class:`~repro.engine.queue_exec.QueueExecutor` encodes
chunks of :class:`~repro.engine.request.RunRequest` with
:func:`encode_task`, and workers publish either an ``ok`` payload — the
chunk results plus the worker-side cache-counter deltas, exactly the
tuple the in-process ``_execute_chunk`` produces — or an ``error``
payload carrying the formatted traceback, which :func:`decode_result`
re-raises at the submitter as :class:`RuntimeError`.

This lives apart from :mod:`repro.engine.worker` so importing the
engine package never imports the ``python -m repro.engine.worker``
entrypoint module itself.
"""

from __future__ import annotations

import pickle
import traceback

__all__ = [
    "PAYLOAD_VERSION",
    "encode_task",
    "decode_task",
    "encode_result",
    "encode_error",
    "decode_result",
    "execute_payload",
]

#: Result-payload protocol version (bump on layout changes).
PAYLOAD_VERSION = 1


def encode_task(requests) -> bytes:
    """Pickle one chunk of :class:`RunRequest` for broker transport."""
    return pickle.dumps(tuple(requests), protocol=pickle.HIGHEST_PROTOCOL)


def decode_task(payload: bytes):
    """Inverse of :func:`encode_task`."""
    return pickle.loads(payload)


def encode_result(chunk_output) -> bytes:
    """Pickle one chunk's ``(results, cache deltas...)`` tuple."""
    return pickle.dumps(
        (PAYLOAD_VERSION, "ok", chunk_output),
        protocol=pickle.HIGHEST_PROTOCOL,
    )


def encode_error(exc: BaseException) -> bytes:
    """Pickle a worker-side failure (the traceback text travels back)."""
    text = "".join(traceback.format_exception(type(exc), exc, exc.__traceback__))
    return pickle.dumps((PAYLOAD_VERSION, "error", text))


def decode_result(payload: bytes):
    """Decode a result payload; raise on error payloads.

    Returns the ``(results, workload, profile, decision)`` tuple the
    in-process ``_execute_chunk`` would have produced, re-raising a
    worker-side failure as :class:`RuntimeError` carrying the remote
    traceback.
    """
    version, status, body = pickle.loads(payload)
    if version != PAYLOAD_VERSION:
        raise RuntimeError(
            f"queue payload version {version} != {PAYLOAD_VERSION}; "
            "submitter and worker are running different repro versions"
        )
    if status == "error":
        raise RuntimeError(f"queue worker failed:\n{body}")
    return body


def execute_payload(payload: bytes) -> bytes:
    """Run one task payload in this process; never raises."""
    from .executors import _execute_chunk

    try:
        return encode_result(_execute_chunk(decode_task(payload)))
    except BaseException as exc:  # noqa: BLE001 - must travel back whole
        return encode_error(exc)
