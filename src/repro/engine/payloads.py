"""Wire format of the queue fabric: task and result payload codecs.

Both ends of a :class:`~repro.engine.broker.Broker` speak this format:
the submitting :class:`~repro.engine.queue_exec.QueueExecutor` encodes
chunks of :class:`~repro.engine.request.RunRequest` with
:func:`encode_task`, and workers publish either an ``ok`` payload — the
chunk results plus the worker-side cache/engine-counter deltas, exactly
the tuple the in-process ``_execute_chunk`` produces — or an ``error``
payload carrying the formatted traceback *and a retry classification*:

* ``"transient"`` — the worker's in-place retries ran out on a
  retryable failure (I/O, injected chaos); the submitter may resubmit
  the chunk under its own :class:`~repro.engine.retry.RetryPolicy`.
  :func:`decode_result` re-raises these as
  :class:`~repro.exceptions.TransientEngineError`.
* ``"permanent"`` — the chunk raised a deterministic error (requests
  are pure functions of their seed, so a re-run *must* fail
  identically); re-raised as
  :class:`~repro.exceptions.PermanentEngineError` and dead-lettered by
  the submitter without wasting resubmissions.

A payload that cannot be unpickled at all (truncated or corrupted in
transit) raises :class:`~repro.exceptions.TransientEngineError` — the
result bytes are gone but the work is repeatable, so the submitter
retries the chunk.  A version mismatch is
:class:`~repro.exceptions.PermanentEngineError`: retrying cannot fix
skewed software.

This lives apart from :mod:`repro.engine.worker` so importing the
engine package never imports the ``python -m repro.engine.worker``
entrypoint module itself.
"""

from __future__ import annotations

import pickle
import traceback
from typing import Optional, TYPE_CHECKING

from ..exceptions import PermanentEngineError, TransientEngineError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .chaos import FaultPlan
    from .retry import RetryPolicy

__all__ = [
    "PAYLOAD_VERSION",
    "encode_task",
    "decode_task",
    "encode_result",
    "encode_error",
    "decode_result",
    "execute_payload",
]

#: Result-payload protocol version (bump on layout changes).
#: v2 (this PR): error payloads carry a retry classification, ok
#: payloads a fifth engine-counter delta tuple.
PAYLOAD_VERSION = 2


def encode_task(requests) -> bytes:
    """Pickle one chunk of :class:`RunRequest` for broker transport."""
    return pickle.dumps(tuple(requests), protocol=pickle.HIGHEST_PROTOCOL)


def decode_task(payload: bytes):
    """Inverse of :func:`encode_task`."""
    return pickle.loads(payload)


def encode_result(chunk_output) -> bytes:
    """Pickle one chunk's ``(results, counter deltas...)`` tuple."""
    return pickle.dumps(
        (PAYLOAD_VERSION, "ok", chunk_output),
        protocol=pickle.HIGHEST_PROTOCOL,
    )


def encode_error(exc: BaseException) -> bytes:
    """Pickle a worker-side failure: classification + remote traceback."""
    from .retry import is_transient

    kind = "transient" if is_transient(exc) else "permanent"
    text = "".join(traceback.format_exception(type(exc), exc, exc.__traceback__))
    return pickle.dumps((PAYLOAD_VERSION, "error", (kind, text)))


def decode_result(payload: bytes):
    """Decode a result payload; raise the taxonomy on non-``ok`` ones.

    Returns the ``(results, workload, profile, decision, engine)``
    tuple the in-process ``_execute_chunk`` would have produced.
    Raises :class:`~repro.exceptions.TransientEngineError` for
    undecodable bytes and transient worker failures,
    :class:`~repro.exceptions.PermanentEngineError` for version skew
    and deterministic worker failures — each carrying the remote
    traceback when one travelled back.
    """
    try:
        version, status, body = pickle.loads(payload)
    except Exception as exc:  # noqa: BLE001 - any unpickle failure
        raise TransientEngineError(
            f"queue result payload is corrupt ({len(payload)} bytes): {exc!r}"
        ) from exc
    if version != PAYLOAD_VERSION:
        raise PermanentEngineError(
            f"queue payload version {version} != {PAYLOAD_VERSION}; "
            "submitter and worker are running different repro versions"
        )
    if status == "error":
        kind, text = body
        message = f"queue worker failed ({kind}):\n{text}"
        if kind == "transient":
            raise TransientEngineError(message)
        raise PermanentEngineError(message)
    return body


def execute_payload(
    payload: bytes,
    *,
    policy: Optional["RetryPolicy"] = None,
    plan: Optional["FaultPlan"] = None,
) -> bytes:
    """Run one task payload in this process; never raises.

    ``policy`` applies the worker-side in-place retry of transient
    request failures (the same layer every executor uses); ``plan``
    threads an active chaos :class:`~repro.engine.chaos.FaultPlan`
    into the runners.  A failure that escapes the retry budget is
    published as an error payload with its classification.
    """
    from .executors import _execute_chunk

    try:
        return encode_result(
            _execute_chunk(decode_task(payload), policy=policy, plan=plan)
        )
    except BaseException as exc:  # noqa: BLE001 - must travel back whole
        return encode_error(exc)
