"""The remote broker client: the ``Broker`` protocol over HTTP.

:class:`HTTPBroker` implements the full
:class:`~repro.engine.broker.Broker` operation set against a
``python -m repro.engine.broker_server`` — a durable
:class:`~repro.engine.broker.FileBroker` spool behind a stdlib
``ThreadingHTTPServer`` (:mod:`repro.engine.broker_server`).  Plug it
into :class:`~repro.engine.queue_exec.QueueExecutor(broker=...)
<repro.engine.queue_exec.QueueExecutor>` or CLI ``--broker URL`` and a
campaign fans out to ``python -m repro.engine.worker --broker URL``
workers on any host that can reach the server.

Partition tolerance is the design driver — a flaky network must *stall*
a campaign, never kill it or corrupt it:

* **Taxonomy-mapped failures.**  Connection errors, timeouts, 5xx
  responses and undecodable bodies raise
  :class:`~repro.exceptions.TransientEngineError`; authentication
  failures (401/403) and protocol skew (404) raise
  :class:`~repro.exceptions.PermanentEngineError`.  Every operation
  retries transients under a :class:`~repro.engine.retry.RetryPolicy`
  with the engine's deterministic backoff, counting re-sent round
  trips in :attr:`HTTPBroker.wire_retries`.
* **Idempotent claims.**  ``claim`` sends a per-operation nonce that is
  *constant across wire retries*; the server caches its last claim
  response per worker and replays it when the same nonce returns.  A
  response lost on the wire therefore cannot strand a task "claimed by
  a worker that never heard about it".
* **Two-phase result fetch.**  ``fetch_result`` peeks the result, and
  only acks (consumes) it after the payload decoded off the wire — a
  truncated response never destroys the sole copy of a result.

Both make every operation safe to repeat blindly, which is exactly what
the retry layer does.  Chaos testing hooks in below the client:
:class:`~repro.engine.chaos.ChaosHTTPTransport` wraps the
:class:`HTTPTransport` and injects seeded resets, 5xx, timeouts and
truncated bodies keyed on the same per-operation identity.
"""

from __future__ import annotations

import base64
import json
import re
import threading
import urllib.error
import urllib.request
import uuid
import zlib
from typing import Dict, List, Optional, Tuple

from ..exceptions import PermanentEngineError, TransientEngineError
from .retry import RetryPolicy, execute_with_retry

__all__ = [
    "DEFAULT_WIRE_POLICY",
    "HTTPTransport",
    "HTTPBroker",
    "connect_broker",
]

#: Stock wire-level retry schedule: patient enough (~3 s of cumulative
#: backoff) to ride out a broker-server restart, still quick to fail
#: over when combined with the queue executor's own per-op retries.
DEFAULT_WIRE_POLICY = RetryPolicy(
    max_attempts=5,
    backoff_base=0.1,
    backoff_factor=2.0,
    backoff_max=1.0,
    jitter=0.25,
)


def _wire_seed(key: str) -> int:
    """Deterministic backoff seed for one logical operation."""
    return zlib.crc32(key.encode("utf-8"))


def _b64(payload: bytes) -> str:
    """Bytes -> JSON-safe base64 text."""
    return base64.b64encode(payload).decode("ascii")


def _unb64(text: str) -> bytes:
    """Inverse of :func:`_b64`."""
    return base64.b64decode(text.encode("ascii"))


class HTTPTransport:
    """One authenticated POST per broker operation (the chaos seam).

    :meth:`send` returns ``(HTTP status, raw response bytes)`` and lets
    connection-level failures propagate as the ``OSError`` family
    ``urllib`` raises — classification into the engine taxonomy happens
    in :class:`HTTPBroker`.  ``key`` names the *logical operation*: it
    is held constant across the client's wire retries of one operation,
    which is what lets :class:`~repro.engine.chaos.ChaosHTTPTransport`
    key its single-shot fault decisions (the retry after an injected
    fault always sees a clean wire).
    """

    def __init__(
        self,
        url: str,
        token: Optional[str] = None,
        *,
        timeout: float = 10.0,
    ):
        self.url = url.rstrip("/")
        self.token = token
        self.timeout = float(timeout)

    def send(self, op: str, body: bytes, *, key: str) -> Tuple[int, bytes]:
        """POST one operation body; ``(status, response bytes)``."""
        headers = {"Content-Type": "application/json"}
        if self.token:
            headers["Authorization"] = f"Bearer {self.token}"
        request = urllib.request.Request(
            f"{self.url}/api/{op}", data=body, headers=headers, method="POST"
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                return resp.status, resp.read()
        except urllib.error.HTTPError as exc:
            # Non-2xx with a reachable server: surface the status code
            # uniformly so the broker can classify it.
            try:
                payload = exc.read()
            except Exception:  # noqa: BLE001 - body is best-effort
                payload = b""
            return exc.code, payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HTTPTransport({self.url!r})"


class HTTPBroker:
    """A remote :class:`~repro.engine.broker.Broker` over HTTP.

    Parameters
    ----------
    url:
        Base URL of a running ``python -m repro.engine.broker_server``.
    token:
        Bearer token if the server was started with one; a mismatch
        surfaces as :class:`~repro.exceptions.PermanentEngineError`
        (retrying cannot fix bad credentials).
    timeout:
        Per-request socket timeout in seconds.
    retry_policy:
        Wire-level retry schedule applied to every operation
        (:data:`DEFAULT_WIRE_POLICY`); ``None`` disables wire retries
        (each transient then surfaces immediately — the queue
        executor's per-op retry layer still applies on top).
    transport:
        Override the :class:`HTTPTransport` (tests and
        :class:`~repro.engine.chaos.ChaosHTTPTransport` wrapping).
    """

    def __init__(
        self,
        url: str,
        *,
        token: Optional[str] = None,
        timeout: float = 10.0,
        retry_policy: Optional[RetryPolicy] = DEFAULT_WIRE_POLICY,
        transport=None,
    ):
        self.transport = (
            HTTPTransport(url, token, timeout=timeout)
            if transport is None
            else transport
        )
        self.url = getattr(self.transport, "url", url.rstrip("/"))
        self.retry_policy = retry_policy
        self.wire_retries = 0
        self._lock = threading.Lock()
        self._ops = 0
        self._last_status: Dict[str, object] = {}

    # -- wire plumbing -----------------------------------------------------
    def _next_key(self, op: str) -> str:
        with self._lock:
            self._ops += 1
            return f"{op}#{self._ops}"

    def _round_trip(self, op: str, payload: bytes, key: str) -> Dict:
        try:
            status, body = self.transport.send(op, payload, key=key)
        except (TransientEngineError, PermanentEngineError):
            raise
        except Exception as exc:  # noqa: BLE001 - URLError/OSError family
            raise TransientEngineError(
                f"broker {op} @ {self.url} unreachable: {exc!r}"
            ) from exc
        if status in (401, 403):
            raise PermanentEngineError(
                f"broker {op} @ {self.url}: authentication failed "
                f"(HTTP {status}) — check the bearer token"
            )
        if status == 404:
            raise PermanentEngineError(
                f"broker {op} @ {self.url}: unknown operation (HTTP 404) — "
                "client and server are running different repro versions"
            )
        if status >= 500 or status == 429:
            raise TransientEngineError(
                f"broker {op} @ {self.url}: HTTP {status} "
                f"({body[:200].decode('utf-8', 'replace')})"
            )
        if status != 200:
            raise PermanentEngineError(
                f"broker {op} @ {self.url}: unexpected HTTP {status}"
            )
        try:
            return json.loads(body)
        except ValueError as exc:
            raise TransientEngineError(
                f"broker {op} @ {self.url}: response truncated or corrupt "
                f"({len(body)} bytes)"
            ) from exc

    def _call(
        self,
        op: str,
        body: Dict[str, object],
        *,
        key: Optional[str] = None,
        retry: bool = True,
    ) -> Dict:
        """One logical operation: POST + classify + retry transients.

        The serialised body and ``key`` are identical on every attempt,
        so the server (idempotent by design) and the chaos layer
        (single-shot per key) both see wire retries as what they are:
        the *same* operation asked again.
        """
        if key is None:
            key = self._next_key(op)
        payload = json.dumps(body, sort_keys=True).encode("utf-8")

        def attempt(number: int) -> Dict:
            if number > 1:
                with self._lock:
                    self.wire_retries += 1
            return self._round_trip(op, payload, key)

        policy = self.retry_policy if retry else None
        return execute_with_retry(attempt, seed=_wire_seed(key), policy=policy)

    # -- Broker protocol ---------------------------------------------------
    def submit(self, task_id: str, payload: bytes) -> None:
        """Enqueue one task payload (idempotent overwrite on retry)."""
        self._call(
            "submit",
            {"task_id": task_id, "payload": _b64(payload)},
            key=f"submit:{task_id}",
        )

    def claim(self, worker_id: str) -> Optional[Tuple[str, bytes]]:
        """Atomically take one queued task, or ``None`` if empty.

        The per-call nonce makes the operation idempotent: a wire retry
        re-sends the same nonce and the server replays its cached
        response instead of claiming a second task — a lost response
        cannot strand a claim.
        """
        nonce = uuid.uuid4().hex
        data = self._call(
            "claim",
            {"worker_id": worker_id, "nonce": nonce},
            key=f"claim:{nonce}",
        )
        if data.get("task_id") is None:
            return None
        return data["task_id"], _unb64(data["payload"])

    def complete(self, task_id: str, payload: bytes) -> None:
        """Publish a finished task's result payload (idempotent)."""
        self._call(
            "complete",
            {"task_id": task_id, "payload": _b64(payload)},
            key=f"complete:{task_id}",
        )

    def fetch_result(self, task_id: str) -> Optional[bytes]:
        """Collect a result, or ``None`` — two-phase (peek, then ack).

        The result is only consumed server-side after its bytes arrived
        intact; a failed ack is harmless (the lingering duplicate is
        absorbed by the executor's duplicate sweep or a later fetch).
        """
        data = self._call(
            "peek_result", {"task_id": task_id}, key=f"peek:{task_id}"
        )
        payload = data.get("payload")
        if payload is None:
            return None
        raw = _unb64(payload)
        try:
            self._call(
                "ack_result", {"task_id": task_id}, key=f"ack:{task_id}"
            )
        except TransientEngineError:
            pass  # the copy is safe with us; the spool copy lingers
        return raw

    def requeue(self, task_id: str) -> bool:
        """Push a claimed task back onto the queue; ``True`` if it was."""
        data = self._call(
            "requeue", {"task_id": task_id}, key=f"requeue:{task_id}"
        )
        return bool(data.get("requeued"))

    def discard(self, task_id: str) -> bool:
        """Withdraw a queued task / uncollected result; ``True`` if any."""
        data = self._call(
            "discard", {"task_id": task_id}, key=f"discard:{task_id}"
        )
        return bool(data.get("removed"))

    def dead_letter(self, task_id: str, payload: bytes, info: bytes) -> None:
        """Quarantine a poisoned task with its payload + failure info."""
        self._call(
            "dead_letter",
            {
                "task_id": task_id,
                "payload": _b64(payload),
                "info": _b64(info),
            },
            key=f"dead:{task_id}",
        )

    def dead_letters(self) -> List[str]:
        """Task ids currently quarantined in the dead-letter spool."""
        return list(self._call("dead_letters", {})["task_ids"])

    def fetch_dead_letter(
        self, task_id: str
    ) -> Optional[Tuple[bytes, bytes]]:
        """Remove one quarantined task; ``(payload, info)`` or ``None``."""
        data = self._call(
            "fetch_dead_letter",
            {"task_id": task_id},
            key=f"fetch-dead:{task_id}",
        )
        if data.get("payload") is None:
            return None
        return _unb64(data["payload"]), _unb64(data.get("info") or "")

    def heartbeat(self, worker_id: str) -> None:
        """Record that ``worker_id`` is alive on the server's clock."""
        self._call("heartbeat", {"worker_id": worker_id})

    def deregister(self, worker_id: str) -> None:
        """Say goodbye: drop the worker's lease/liveness state."""
        self._call(
            "deregister",
            {"worker_id": worker_id},
            key=f"deregister:{worker_id}",
        )

    def live_workers(self, horizon: float) -> List[str]:
        """Workers the *server's monotonic clock* heard within ``horizon``."""
        data = self._call("live_workers", {"horizon": float(horizon)})
        return list(data["workers"])

    def stale_claims(self, horizon: float) -> List[str]:
        """Claims whose lease expired on the server's monotonic clock.

        Lease arithmetic happens entirely server-side, so clock skew
        between submitter, workers and server cannot misjudge liveness.
        """
        data = self._call("stale_claims", {"horizon": float(horizon)})
        return list(data["task_ids"])

    def request_stop(self) -> None:
        """Raise the cooperative shutdown flag for all workers."""
        self._call("request_stop", {}, key="request_stop")

    def stop_requested(self) -> bool:
        """Whether shutdown has been requested."""
        return bool(self._call("stop_requested", {})["stop"])

    def probe(self) -> Dict[str, object]:
        """One *unretried* ``/status`` round trip — the health probe.

        The shard router's circuit breaker calls this to decide
        (re-)admission; a probe must answer fast from the live server
        or fail fast, never sit in wire-retry backoff against a dead
        one.  The returned status document carries ``schema_version``
        (protocol skew detection) and ``boot_monotonic`` (restart
        detection) — see :mod:`repro.engine.broker_server`.
        """
        status = self._call("status", {}, retry=False)
        with self._lock:
            self._last_status = status
        return status

    # -- observability -----------------------------------------------------
    def server_status(self) -> Dict[str, object]:
        """The server's ``/status`` document (queue depths, counters)."""
        status = self._call("status", {})
        with self._lock:
            self._last_status = status
        return status

    def engine_counters(self) -> Dict[str, int]:
        """Fleet/wire counter totals for ``EngineStats`` folding.

        Combines the client-side wire-retry count with the server's
        lease/fleet counters; best-effort — with the server unreachable
        the last fetched server counters are reused, so a partitioned
        status poll can never fail a dispatch.
        """
        try:
            status = self.server_status()
        except (TransientEngineError, PermanentEngineError):
            with self._lock:
                status = self._last_status
        with self._lock:
            counters = {"wire_retries": self.wire_retries}
        for name in ("lease_expiries", "worker_joins", "worker_leaves"):
            counters[name] = int(status.get(name, 0))
        return counters

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HTTPBroker({self.url!r})"


#: URL-shaped specs (``scheme://...``) we can actually speak.  Anything
#: else URL-shaped is rejected loudly instead of being silently treated
#: as a spool *directory* named e.g. ``redis://host``.
_SUPPORTED_SCHEMES = ("http", "https")
_SCHEME_RE = re.compile(r"^(?P<scheme>[A-Za-z][A-Za-z0-9+.-]*)://")


def connect_broker(
    spec: str,
    *,
    token: Optional[str] = None,
    timeout: float = 10.0,
    retry_policy: Optional[RetryPolicy] = DEFAULT_WIRE_POLICY,
    chaos_plan=None,
):
    """A broker from a CLI-style spec — or a shard router from several.

    One spec is an ``http(s)://`` URL (an :class:`HTTPBroker`, with
    ``chaos_plan`` wire faults, if any, armed below it via
    :class:`~repro.engine.chaos.ChaosHTTPTransport`) or a
    :class:`~repro.engine.broker.FileBroker` spool directory.  A
    URL-shaped spec with any other scheme (``redis://...``) raises
    :class:`~repro.exceptions.PermanentEngineError` naming the
    supported schemes.

    A **comma-separated list** of specs builds a
    :class:`~repro.engine.shard_router.ShardRouter` over the individual
    brokers, in list order (the order is part of the routing key — use
    the same list everywhere).  Sharded sub-brokers default to the
    fail-fast :data:`~repro.engine.shard_router.SHARD_WIRE_POLICY`
    (the router can route around a slow shard, so per-shard patience
    buys nothing), and a ``chaos_plan`` with shard faults armed wraps
    each shard in a
    :class:`~repro.engine.chaos.ChaosShardBroker` keyed by its index.

    Shared by CLI ``--broker`` and the worker entrypoint so both sides
    of the fabric accept the same notation.
    """
    if "," in spec:
        specs = [part.strip() for part in spec.split(",") if part.strip()]
        from .shard_router import SHARD_WIRE_POLICY, ShardRouter

        per_shard_policy = (
            SHARD_WIRE_POLICY
            if retry_policy is DEFAULT_WIRE_POLICY
            else retry_policy
        )
        brokers = [
            connect_broker(
                part,
                token=token,
                timeout=timeout,
                retry_policy=per_shard_policy,
                chaos_plan=chaos_plan,
            )
            for part in specs
        ]
        if chaos_plan is not None and chaos_plan.any_shard_faults():
            from .chaos import ChaosShardBroker

            brokers = [
                ChaosShardBroker(broker, chaos_plan, index)
                for index, broker in enumerate(brokers)
            ]
        return ShardRouter(brokers)
    match = _SCHEME_RE.match(spec)
    if match and match.group("scheme").lower() not in _SUPPORTED_SCHEMES:
        raise PermanentEngineError(
            f"unsupported broker scheme {match.group('scheme')!r} in "
            f"{spec!r} — supported specs: "
            + ", ".join(f"{scheme}://HOST[:PORT]" for scheme in _SUPPORTED_SCHEMES)
            + ", a spool DIR, or a comma-separated list of those"
        )
    if match:
        transport = HTTPTransport(spec, token, timeout=timeout)
        if chaos_plan is not None and chaos_plan.any_wire_faults():
            from .chaos import ChaosHTTPTransport

            transport = ChaosHTTPTransport(transport, chaos_plan)
        return HTTPBroker(
            spec, token=token, retry_policy=retry_policy, transport=transport
        )
    from .broker import FileBroker

    return FileBroker(spec)
