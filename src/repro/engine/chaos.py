"""Deterministic fault injection for the run fabric.

The paper's whole subject is computing through failures; this module
turns the same discipline on our own execution engine.  A
:class:`FaultPlan` is a seed-driven schedule of injected faults —
worker crashes before/after claiming, stalled heartbeats, transient
``OSError`` on spool I/O, truncated result payloads, slow workers,
transient runner errors, and (for the remote fabric) wire-level HTTP
faults: connection resets, injected 5xx, timeouts and truncated
response bodies (:class:`ChaosHTTPTransport`) — that wraps any
:class:`~repro.engine.broker.Broker` (:class:`ChaosBroker`) and the
worker entrypoint (``python -m repro.engine.worker --chaos PLAN``), so
every supervision path in the fabric — retry/backoff, heartbeat
requeue, duplicate-result absorption, inline fallback — is exercised
*reproducibly* in tests and benchmarks.

Two properties make the layer safe to run under the byte-identity
pins:

1. **Determinism.**  Every injection decision is a pure function of
   ``(plan.seed, site, key)`` through :func:`repro.rng.derive_rng` —
   no global RNG, no wall clock.  The same plan over the same campaign
   fires the same faults.
2. **Single-shot per site.**  A fault fires at most once per
   ``(site, key)`` — the first result fetch of a task may come back
   truncated, the *re*-fetch after the retry never is; a runner fault
   fires only on attempt 1.  Combined with the supervision machinery
   (retries for I/O and corruption, heartbeat requeue plus inline
   fallback for crashes and stalls) this guarantees recovery: under
   any plan seed, a dispatch with ``inline_fallback`` enabled
   completes with results byte-identical to the fault-free run — the
   invariant ``tests/test_engine_chaos.py`` pins on fig7/fig10.

The injected exceptions are the real taxonomy
(:class:`~repro.exceptions.TransientEngineError`, plain ``OSError``),
so recovery flows through exactly the code paths a genuine fault would
take.
"""

from __future__ import annotations

import json
import socket
import time
from dataclasses import dataclass, fields, replace
from typing import Dict, List, Optional, Set, Tuple, Union

from ..exceptions import ConfigurationError, TransientEngineError
from ..rng import derive_rng

__all__ = [
    "FaultPlan",
    "ChaosBroker",
    "ChaosCrash",
    "ChaosHTTPTransport",
    "ChaosShardBroker",
    "stable_task_key",
]

Key = Union[int, str]


def stable_task_key(task_id: str) -> str:
    """The run-stable part of a queue task id.

    The queue executor prefixes task ids with a per-executor nonce
    (``<nonce>-d00001-c000000``) so concurrent campaigns can share a
    spool; chaos decisions key on the suffix — dispatch + chunk index —
    so the same plan over the same campaign fires the same faults in
    every run.
    """
    _, _, suffix = task_id.partition("-")
    return suffix or task_id


class ChaosCrash(SystemExit):
    """An injected worker crash (a ``SystemExit`` so processes die).

    Raised out of :func:`repro.engine.worker.serve` when the plan
    schedules a crash: in a worker subprocess the interpreter exits
    without completing the claimed task (the claim goes stale and is
    requeued); in-process tests catch it like any exception.
    """


#: FaultPlan fields that are *wire*-level rates (the HTTP transport).
_WIRE_RATE_FIELDS = (
    "wire_reset",
    "wire_5xx",
    "wire_timeout",
    "wire_truncate",
)

#: FaultPlan fields that are *shard*-level rates (the shard router).
_SHARD_RATE_FIELDS = (
    "shard_down",
    "shard_flap",
)

#: FaultPlan fields that are injection *rates* (probabilities in [0, 1]).
_RATE_FIELDS = (
    "crash_before_claim",
    "crash_after_claim",
    "stalled_heartbeat",
    "broker_io_error",
    "corrupt_result",
    "slow_worker",
    "runner_fault",
) + _WIRE_RATE_FIELDS + _SHARD_RATE_FIELDS


@dataclass(frozen=True)
class FaultPlan:
    """A seed-driven schedule of injected faults.

    All ``*_rate``-style fields are probabilities in ``[0, 1]``; the
    durations are seconds.  The plan is immutable, picklable and
    JSON-serialisable (it travels to worker subprocesses on their
    command line).

    Parameters
    ----------
    seed:
        Master seed of every injection decision.
    crash_before_claim:
        A worker dies on start-up, before claiming anything (keyed by
        its chaos index — the fleet shrinks; supervision must absorb).
    crash_after_claim:
        A worker dies after claiming a task and before completing it
        (keyed by task id — the stale claim must be requeued).
    stalled_heartbeat:
        A worker stops heartbeating for ``stall_duration`` seconds
        while still holding — and eventually completing — its claim
        (keyed by task id — exercises requeue *and* the
        duplicate-result path).
    broker_io_error:
        A broker operation (submit / fetch / requeue) raises a
        transient ``OSError`` on its first invocation for a task.
    corrupt_result:
        The first fetch of a task's result returns truncated bytes
        (the decode fails; the chunk must be retried).
    slow_worker:
        A worker sleeps ``slow_delay`` seconds before executing a
        claimed task.
    runner_fault:
        A request raises :class:`~repro.exceptions.TransientEngineError`
        on its first attempt (keyed by the request seed — exercises the
        in-place retry layer of *every* executor).
    wire_reset, wire_5xx, wire_timeout, wire_truncate:
        HTTP wire faults, armed by wrapping an
        :class:`~repro.engine.http_broker.HTTPTransport` in
        :class:`ChaosHTTPTransport`: a connection reset *after* the
        server processed the request (the response is lost — the hard
        idempotency case), an injected 503, a socket timeout before
        the request is sent, and a response body cut in half.  At most
        one fires per logical operation; the retry always sees a clean
        wire.
    shard_down, shard_flap:
        Shard-router faults, armed by wrapping each shard broker of a
        multi-spec ``connect_broker`` in a :class:`ChaosShardBroker`
        (keyed by shard index): a blackholed shard transport starting
        ``shard_down_delay`` seconds after the shard's first operation
        — *mid-campaign*, with work in flight — lasting forever
        (``shard_down``, exercising breaker-open failover) or
        ``shard_flap_duration`` seconds (``shard_flap``, exercising
        half-open probe re-admission).
    stall_duration, slow_delay, shard_down_delay, shard_flap_duration:
        Durations for the stall / slow / shard injections.
    """

    seed: int = 0
    crash_before_claim: float = 0.0
    crash_after_claim: float = 0.0
    stalled_heartbeat: float = 0.0
    broker_io_error: float = 0.0
    corrupt_result: float = 0.0
    slow_worker: float = 0.0
    runner_fault: float = 0.0
    wire_reset: float = 0.0
    wire_5xx: float = 0.0
    wire_timeout: float = 0.0
    wire_truncate: float = 0.0
    shard_down: float = 0.0
    shard_flap: float = 0.0
    stall_duration: float = 0.3
    slow_delay: float = 0.02
    shard_down_delay: float = 0.25
    shard_flap_duration: float = 1.0

    def __post_init__(self) -> None:
        for name in _RATE_FIELDS:
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(
                    f"FaultPlan.{name} must be in [0, 1], got {rate}"
                )
        durations = (
            self.stall_duration,
            self.slow_delay,
            self.shard_down_delay,
            self.shard_flap_duration,
        )
        if any(duration < 0 for duration in durations):
            raise ConfigurationError("chaos durations must be >= 0")

    # -- decisions ---------------------------------------------------------
    def decide(self, rate: float, site: str, *keys: Key) -> bool:
        """One deterministic coin: fires with ``rate`` at ``(site, keys)``.

        A pure function of ``(plan.seed, site, keys)``; callers key on
        stable identifiers (task ids, request seeds, worker indices) so
        the schedule is reproducible across runs and processes.
        """
        if rate <= 0.0:
            return False
        if rate >= 1.0:
            return True
        return derive_rng(self.seed, "chaos", site, *keys).random() < rate

    def maybe_runner_fault(self, request_seed: int, attempt: int) -> None:
        """Raise a transient fault for this request's *first* attempt."""
        if attempt == 1 and self.decide(
            self.runner_fault, "runner", request_seed
        ):
            raise TransientEngineError(
                f"chaos: injected runner fault (request seed {request_seed})"
            )

    def any_faults(self) -> bool:
        """Whether any injection rate is non-zero."""
        return any(getattr(self, name) > 0.0 for name in _RATE_FIELDS)

    def any_wire_faults(self) -> bool:
        """Whether any HTTP wire-level injection rate is non-zero."""
        return any(getattr(self, name) > 0.0 for name in _WIRE_RATE_FIELDS)

    def any_shard_faults(self) -> bool:
        """Whether any shard-router injection rate is non-zero."""
        return any(getattr(self, name) > 0.0 for name in _SHARD_RATE_FIELDS)

    # -- wire format -------------------------------------------------------
    def to_json(self) -> str:
        """Compact JSON (the worker command-line / CLI format)."""
        return json.dumps(
            {f.name: getattr(self, f.name) for f in fields(self)},
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Inverse of :meth:`to_json`."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"invalid chaos plan JSON: {exc}") from exc
        return cls.from_spec(data)

    @classmethod
    def from_spec(
        cls, spec: Union[str, Dict[str, object], "FaultPlan", None]
    ) -> Optional["FaultPlan"]:
        """Build a plan from a CLI-style spec.

        Accepts ``None`` (no chaos), an existing plan, a dict, a JSON
        object string, or ``key=value`` pairs like
        ``"seed=7,crash_after_claim=0.25,corrupt_result=0.5"``.
        """
        if spec is None or isinstance(spec, FaultPlan):
            return spec
        if isinstance(spec, str):
            text = spec.strip()
            if not text:
                return None
            if text.startswith("{"):
                return cls.from_json(text)
            data: Dict[str, object] = {}
            for pair in text.split(","):
                if "=" not in pair:
                    raise ConfigurationError(
                        f"chaos spec entries must be key=value, got {pair!r}"
                    )
                key, value = (part.strip() for part in pair.split("=", 1))
                data[key] = value
            spec = data
        known = {f.name for f in fields(cls)}
        unknown = set(spec) - known
        if unknown:
            raise ConfigurationError(
                f"unknown chaos plan fields {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
        kwargs: Dict[str, object] = {}
        for key, value in spec.items():
            kwargs[key] = int(value) if key == "seed" else float(value)
        return cls(**kwargs)

    def describe(self) -> str:
        """One-line digest of the active injections."""
        active = [
            f"{name}={getattr(self, name):g}"
            for name in _RATE_FIELDS
            if getattr(self, name) > 0.0
        ]
        return f"FaultPlan(seed={self.seed}, {', '.join(active) or 'no faults'})"


class ChaosBroker:
    """A :class:`~repro.engine.broker.Broker` wrapper that injects faults.

    Wraps any broker and perturbs the *transport* deterministically:
    transient ``OSError`` on the first ``submit`` / ``fetch_result`` /
    ``requeue`` touching a task, and a truncated payload on the first
    successful result fetch of a task scheduled for corruption.  All
    injections are single-shot per ``(operation, task)`` — the retry
    that follows always sees a clean broker — and every other operation
    passes straight through, so the wrapped broker's contract is
    preserved.

    ``injected`` counts fired faults by site (observability for tests
    and the soak benchmark).
    """

    def __init__(self, broker, plan: FaultPlan):
        self.broker = broker
        self.plan = plan
        self.injected: Dict[str, int] = {}
        self._op_counts: Dict[Tuple[str, str], int] = {}

    def _first_call(self, op: str, task_id: str) -> bool:
        key = (op, task_id)
        count = self._op_counts.get(key, 0)
        self._op_counts[key] = count + 1
        return count == 0

    def _fire(self, site: str) -> None:
        self.injected[site] = self.injected.get(site, 0) + 1

    def _maybe_io_error(self, op: str, task_id: str) -> None:
        if self._first_call(op, task_id) and self.plan.decide(
            self.plan.broker_io_error, f"io-{op}", stable_task_key(task_id)
        ):
            self._fire(f"io-{op}")
            raise OSError(f"chaos: injected {op} I/O error for {task_id!r}")

    # -- perturbed operations ----------------------------------------------
    def submit(self, task_id: str, payload: bytes) -> None:
        self._maybe_io_error("submit", task_id)
        self.broker.submit(task_id, payload)

    def fetch_result(self, task_id: str) -> Optional[bytes]:
        self._maybe_io_error("fetch", task_id)
        payload = self.broker.fetch_result(task_id)
        if payload is None:
            return None
        if self._first_call("corrupt", task_id) and self.plan.decide(
            self.plan.corrupt_result, "corrupt", stable_task_key(task_id)
        ):
            self._fire("corrupt")
            return payload[: max(1, len(payload) // 2)]
        return payload

    def requeue(self, task_id: str) -> bool:
        self._maybe_io_error("requeue", task_id)
        return self.broker.requeue(task_id)

    # -- transparent operations --------------------------------------------
    def claim(self, worker_id: str):
        return self.broker.claim(worker_id)

    def complete(self, task_id: str, payload: bytes) -> None:
        self.broker.complete(task_id, payload)

    def discard(self, task_id: str) -> bool:
        return self.broker.discard(task_id)

    def dead_letter(self, task_id: str, payload: bytes, info: bytes) -> None:
        self.broker.dead_letter(task_id, payload, info)

    def dead_letters(self) -> List[str]:
        return self.broker.dead_letters()

    def fetch_dead_letter(self, task_id: str):
        return self.broker.fetch_dead_letter(task_id)

    def heartbeat(self, worker_id: str) -> None:
        self.broker.heartbeat(worker_id)

    def deregister(self, worker_id: str) -> None:
        deregister = getattr(self.broker, "deregister", None)
        if deregister is not None:
            deregister(worker_id)

    def engine_counters(self) -> Dict[str, int]:
        getter = getattr(self.broker, "engine_counters", None)
        return {} if getter is None else getter()

    def supervise(self) -> None:
        # A wrapped ShardRouter still needs its idle supervision pass
        # (half-open probes, stranded-chunk migration).
        supervise = getattr(self.broker, "supervise", None)
        if supervise is not None:
            supervise()

    def live_workers(self, horizon: float) -> List[str]:
        return self.broker.live_workers(horizon)

    def stale_claims(self, horizon: float) -> List[str]:
        return self.broker.stale_claims(horizon)

    def request_stop(self) -> None:
        self.broker.request_stop()

    def stop_requested(self) -> bool:
        return self.broker.stop_requested()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ChaosBroker({self.broker!r}, {self.plan.describe()})"


class ChaosShardBroker:
    """Blackhole one shard of a router's transport, deterministically.

    Wraps one shard broker of a
    :class:`~repro.engine.shard_router.ShardRouter` (a multi-spec
    ``connect_broker`` arms one wrapper per shard, keyed by index).
    Whether *this* shard goes dark is a pure function of
    ``(plan.seed, site, shard_index)``; the outage begins
    ``plan.shard_down_delay`` seconds after the wrapper's first
    operation — mid-campaign, so chunks are in flight when the shard
    vanishes — and lasts forever (``shard_down``) or
    ``plan.shard_flap_duration`` seconds (``shard_flap``; the recovered
    shard must then pass the router's half-open probe to be
    re-admitted).  During the outage every operation — the health probe
    included — raises :class:`~repro.exceptions.TransientEngineError`,
    exactly what a killed server looks like through a fail-fast wire
    policy.
    """

    def __init__(
        self,
        broker,
        plan: FaultPlan,
        shard_index: int,
        *,
        clock=time.monotonic,
    ):
        self.broker = broker
        self.plan = plan
        self.shard_index = int(shard_index)
        self._clock = clock
        self._first_op: Optional[float] = None
        down = plan.decide(plan.shard_down, "shard-down", self.shard_index)
        flap = plan.decide(plan.shard_flap, "shard-flap", self.shard_index)
        self._mode = "down" if down else ("flap" if flap else None)
        self.injected: Dict[str, int] = {}

    def _gate(self, op: str) -> None:
        """Raise if this shard is inside its scheduled blackout."""
        if self._mode is None:
            return
        now = self._clock()
        if self._first_op is None:
            self._first_op = now
        start = self._first_op + self.plan.shard_down_delay
        if now < start:
            return
        if (
            self._mode == "flap"
            and now >= start + self.plan.shard_flap_duration
        ):
            return
        site = f"shard-{self._mode}"
        self.injected[site] = self.injected.get(site, 0) + 1
        raise TransientEngineError(
            f"chaos: shard {self.shard_index} blackholed ({op})"
        )

    # -- Broker protocol (every op gated) ----------------------------------
    def submit(self, task_id: str, payload: bytes) -> None:
        self._gate("submit")
        self.broker.submit(task_id, payload)

    def claim(self, worker_id: str) -> Optional[Tuple[str, bytes]]:
        self._gate("claim")
        return self.broker.claim(worker_id)

    def complete(self, task_id: str, payload: bytes) -> None:
        self._gate("complete")
        self.broker.complete(task_id, payload)

    def fetch_result(self, task_id: str) -> Optional[bytes]:
        self._gate("fetch_result")
        return self.broker.fetch_result(task_id)

    def requeue(self, task_id: str) -> bool:
        self._gate("requeue")
        return self.broker.requeue(task_id)

    def discard(self, task_id: str) -> bool:
        self._gate("discard")
        return self.broker.discard(task_id)

    def dead_letter(self, task_id: str, payload: bytes, info: bytes) -> None:
        self._gate("dead_letter")
        self.broker.dead_letter(task_id, payload, info)

    def dead_letters(self) -> List[str]:
        self._gate("dead_letters")
        return self.broker.dead_letters()

    def fetch_dead_letter(
        self, task_id: str
    ) -> Optional[Tuple[bytes, bytes]]:
        self._gate("fetch_dead_letter")
        return self.broker.fetch_dead_letter(task_id)

    def heartbeat(self, worker_id: str) -> None:
        self._gate("heartbeat")
        self.broker.heartbeat(worker_id)

    def deregister(self, worker_id: str) -> None:
        self._gate("deregister")
        self.broker.deregister(worker_id)

    def live_workers(self, horizon: float) -> List[str]:
        self._gate("live_workers")
        return self.broker.live_workers(horizon)

    def stale_claims(self, horizon: float) -> List[str]:
        self._gate("stale_claims")
        return self.broker.stale_claims(horizon)

    def request_stop(self) -> None:
        self._gate("request_stop")
        self.broker.request_stop()

    def stop_requested(self) -> bool:
        self._gate("stop_requested")
        return self.broker.stop_requested()

    def probe(self) -> Dict[str, object]:
        # Gated too: a blackholed shard must fail its health probe, or
        # the router would re-admit a shard whose transport is dark.
        self._gate("probe")
        probe = getattr(self.broker, "probe", None)
        if probe is None:
            return {"stop": self.broker.stop_requested()}
        return probe()

    def __getattr__(self, name: str):
        # Observability extras (pending_tasks, engine_counters, ...)
        # pass through ungated.
        return getattr(self.broker, name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ChaosShardBroker({self.broker!r}, index={self.shard_index}, "
            f"mode={self._mode})"
        )


class ChaosHTTPTransport:
    """An HTTP transport wrapper that perturbs the wire deterministically.

    Wraps anything with ``send(op, body, *, key) -> (status, bytes)``
    (:class:`~repro.engine.http_broker.HTTPTransport`) and injects the
    four classic wide-area faults.  Each decision is keyed on the
    *logical operation identity* — the ``key`` the client holds
    constant across its wire retries — via :func:`stable_task_key`
    (task-carrying keys decide identically across executor nonces), and
    at most one fault fires per logical operation, so the retry that
    follows always sees a clean wire and recovery is guaranteed even at
    rate 1.0:

    * ``wire_timeout`` — ``socket.timeout`` *before* sending (the
      request never reached the server);
    * ``wire_reset`` — the request *is* forwarded and processed, then
      ``ConnectionResetError`` (the response is lost — the hard case
      that exercises idempotent claims and two-phase result fetch);
    * ``wire_5xx`` — an injected 503 response;
    * ``wire_truncate`` — the response body arrives cut in half.

    ``injected`` counts fired faults by site, like
    :class:`ChaosBroker.injected`.
    """

    def __init__(self, transport, plan: FaultPlan):
        self.transport = transport
        self.plan = plan
        self.url = getattr(transport, "url", "")
        self.injected: Dict[str, int] = {}
        self._seen: Set[Tuple[str, str]] = set()

    def _fire(self, site: str) -> None:
        self.injected[site] = self.injected.get(site, 0) + 1

    def send(self, op: str, body: bytes, *, key: str) -> Tuple[int, bytes]:
        """Forward through the wrapped transport, perhaps perturbed once."""
        plan = self.plan
        site_key = (op, key)
        if site_key not in self._seen:
            self._seen.add(site_key)
            chaos_key = stable_task_key(key)
            if plan.decide(plan.wire_timeout, f"wire-timeout-{op}", chaos_key):
                self._fire("wire-timeout")
                raise socket.timeout(
                    f"chaos: injected timeout on {op} ({key!r})"
                )
            if plan.decide(plan.wire_reset, f"wire-reset-{op}", chaos_key):
                self._fire("wire-reset")
                self.transport.send(op, body, key=key)  # the server DID act
                raise ConnectionResetError(
                    f"chaos: response lost for {op} ({key!r}); "
                    "the server processed the request"
                )
            if plan.decide(plan.wire_5xx, f"wire-5xx-{op}", chaos_key):
                self._fire("wire-5xx")
                return 503, b'{"error": "chaos: injected 503"}'
            if plan.decide(
                plan.wire_truncate, f"wire-truncate-{op}", chaos_key
            ):
                self._fire("wire-truncate")
                status, response = self.transport.send(op, body, key=key)
                return status, response[: len(response) // 2]
        return self.transport.send(op, body, key=key)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ChaosHTTPTransport({self.transport!r}, {self.plan.describe()})"


def sleep_for(duration: float) -> None:
    """``time.sleep`` behind a seam the tests can monkeypatch."""
    if duration > 0:
        time.sleep(duration)


def with_seed(plan: Optional[FaultPlan], seed: int) -> Optional[FaultPlan]:
    """The same plan re-keyed to another master seed (``None`` passes)."""
    return None if plan is None else replace(plan, seed=seed)
