"""Crash-resumable dispatch: a content-addressed chunk-result journal.

A :class:`ResultJournal` is a directory of completed chunk results
keyed by the *content* of the work — the runner function's identity,
its payload and the :class:`~repro.engine.request.RunRequest` seeds —
so a re-submitted campaign recognises work it already finished.  Every
executor consults it (when one is attached) before executing or
dispatching a chunk, and journals each chunk result as it lands:
killing a paper-scale sweep after N chunks and re-running the same
command recomputes only the remaining chunks, with the skips counted
as ``journal_hits`` in :class:`~repro.engine.executors.EngineStats`.

Why content addressing is sound here: requests are pure functions of
``(fn, payload, seed)`` — the determinism contract in
:mod:`repro.engine` — so two chunks with equal keys *must* produce
byte-identical results, whether they ran in this campaign, a previous
crash of it, or another host sharing the journal directory.  The same
property makes the journal double as the cross-host result cache of
the distributed-campaign roadmap item.

Entries are the queue fabric's versioned ``ok`` payloads
(:mod:`repro.engine.payloads`), written atomically (staging + rename),
so a journal survives being shared with live writers and being torn
down mid-write; the payload version is folded into the key, so entries
from an incompatible wire format are simply never hit.  All journal
I/O is best-effort: an unreadable or corrupt entry is a miss, a failed
write is skipped — the journal accelerates a campaign, it can never
wedge one.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import uuid
from pathlib import Path
from typing import Iterable, Optional, Tuple, Union

from .request import RunRequest

__all__ = ["ResultJournal", "ensure_journal", "decode_journal_hit"]

#: Bumped when the key derivation itself changes layout.
_KEY_VERSION = 1


def _request_material(request: RunRequest) -> bytes:
    """The stable bytes one request contributes to its chunk's key.

    The runner is identified by module + qualname (its *identity*, not
    its bytecode), the payload by its pickled bytes at a fixed
    protocol, and the seed as text.  ``tag`` is excluded: it is
    caller-side bookkeeping and cannot influence the result.
    """
    fn = request.fn
    header = f"{fn.__module__}:{fn.__qualname__}:{request.seed}:".encode()
    return header + pickle.dumps(request.payload, protocol=4)


class ResultJournal:
    """A directory store of completed chunk results, keyed by content.

    Layout under ``root``: ``<key[:2]>/<key>.result`` (sharded by the
    first hex byte so huge campaigns do not create one giant
    directory) plus a ``tmp/`` staging area for atomic writes.
    Multiple processes — and hosts sharing the directory — may read
    and write concurrently: keys are content-addressed, so concurrent
    writers of one key write identical bytes, and ``os.replace``
    guarantees readers never observe a partial entry.
    """

    def __init__(self, root: Union[os.PathLike, str]):
        self.root = Path(root)
        (self.root / "tmp").mkdir(parents=True, exist_ok=True)

    # -- keys --------------------------------------------------------------
    def chunk_key(self, requests: Iterable[RunRequest]) -> str:
        """The content hash of one chunk of requests (hex digest)."""
        from .payloads import PAYLOAD_VERSION

        digest = hashlib.sha256()
        digest.update(f"repro-journal:{_KEY_VERSION}:{PAYLOAD_VERSION}".encode())
        for request in requests:
            material = _request_material(request)
            digest.update(len(material).to_bytes(8, "big"))
            digest.update(material)
        return digest.hexdigest()

    def _entry_path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.result"

    # -- store -------------------------------------------------------------
    def get(self, key: str) -> Optional[bytes]:
        """The journaled payload for ``key``, or ``None`` (best-effort)."""
        try:
            return self._entry_path(key).read_bytes()
        except (OSError, ValueError):
            return None

    def put(self, key: str, payload: bytes) -> bool:
        """Write one entry atomically; ``True`` if it is now present."""
        target = self._entry_path(key)
        staged = self.root / "tmp" / f"{uuid.uuid4().hex}.staging"
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            staged.write_bytes(payload)
            os.replace(staged, target)
        except OSError:
            try:
                staged.unlink(missing_ok=True)
            except OSError:  # pragma: no cover - staging already gone
                pass
            return False
        return True

    def discard(self, key: str) -> bool:
        """Drop one entry (e.g. after a format-version miss)."""
        try:
            self._entry_path(key).unlink()
        except OSError:
            return False
        return True

    # -- introspection -----------------------------------------------------
    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("??/*.result"))

    def clear(self) -> int:
        """Remove every entry; returns how many were dropped."""
        dropped = 0
        for entry in self.root.glob("??/*.result"):
            try:
                entry.unlink()
                dropped += 1
            except OSError:  # pragma: no cover - concurrent clear
                pass
        return dropped

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultJournal({str(self.root)!r})"


def ensure_journal(
    journal: Union["ResultJournal", os.PathLike, str, None],
) -> Optional[ResultJournal]:
    """Coerce a journal argument (path or instance) to a ResultJournal."""
    if journal is None or isinstance(journal, ResultJournal):
        return journal
    return ResultJournal(journal)


def decode_journal_hit(payload: bytes) -> Optional[Tuple]:
    """Decode one journaled payload; ``None`` if stale or unreadable.

    A journal entry that no longer decodes (version skew, torn file
    from a pre-atomic writer, disk corruption) is a miss, never an
    error — the chunk simply re-runs and overwrites it.
    """
    from .payloads import decode_result

    try:
        return decode_result(payload)
    except Exception:  # noqa: BLE001 - any decode failure is a miss
        return None
