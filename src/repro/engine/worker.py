"""The queue fabric's worker-side entrypoint.

::

    python -m repro.engine.worker --broker /path/to/spool

runs one worker process against a :class:`~repro.engine.broker.FileBroker`
spool: claim a task, unpickle its tuple of
:class:`~repro.engine.request.RunRequest`, execute it exactly like an
in-process chunk (same code path as every other engine, so results are
byte-identical by construction), and publish a result payload that
carries the chunk results *plus* the worker-side cache-counter deltas —
workload cache, profile cache, decision state — so the submitting
:class:`~repro.engine.queue_exec.QueueExecutor` can fold them into its
:class:`~repro.engine.executors.EngineStats` just as a process pool
would.  Failures inside a chunk are published as error payloads (the
traceback travels back to the submitter and is re-raised there);
the worker itself keeps serving.

Liveness: the worker heartbeats through the broker on every loop
iteration, and exits when the broker's cooperative stop flag is raised
(once the queue is drained), when ``--max-idle`` seconds pass without
work, or after ``--max-tasks`` tasks (testing hook).  Workers can join
from any host that shares the spool; start several to scale a campaign
out (see ``examples/remote_campaign.py``).

Chaos: ``--chaos PLAN`` (a :class:`~repro.engine.chaos.FaultPlan` as
JSON) arms deterministic worker-side fault injection — crash on
start-up before any claim (keyed by ``--chaos-index``), crash after
claiming a task, a stalled heartbeat that outlives the submitter's
timeout while the task still completes (the duplicate-result path),
and artificially slow execution.  Each decision is a pure function of
the plan seed and a stable key, so a chaotic fleet is exactly
reproducible (see :mod:`repro.engine.chaos`).
"""

from __future__ import annotations

import argparse
import time
from typing import Optional, Sequence

from .broker import Broker, FileBroker, worker_identity
from .chaos import ChaosCrash, FaultPlan, sleep_for, stable_task_key
from .payloads import (  # noqa: F401 - re-exported wire-format codecs
    PAYLOAD_VERSION,
    decode_result,
    decode_task,
    encode_error,
    encode_result,
    encode_task,
    execute_payload,
)
from .retry import DEFAULT_RETRY_POLICY

__all__ = [
    "encode_task",
    "decode_task",
    "encode_result",
    "decode_result",
    "serve",
    "main",
]


def serve(
    broker: Broker,
    *,
    worker_id: Optional[str] = None,
    poll_interval: float = 0.02,
    max_idle: Optional[float] = None,
    max_tasks: Optional[int] = None,
    heartbeat_interval: float = 1.0,
    chaos: Optional[FaultPlan] = None,
    chaos_index: int = 0,
    retry_policy=DEFAULT_RETRY_POLICY,
) -> int:
    """Serve the broker until stopped; returns tasks executed.

    One iteration = heartbeat, claim, execute+complete (or idle-sleep).
    Exits when the broker's stop flag is up and no task was claimable,
    after ``max_idle`` seconds without work, or after ``max_tasks``
    tasks.

    A daemon thread heartbeats every ``heartbeat_interval`` seconds *in
    parallel with chunk execution*, so a worker deep inside a long
    chunk still advertises liveness — without it, any chunk outlasting
    the submitter's ``heartbeat_timeout`` would be judged dead,
    requeued and executed twice (harmless but wasteful).

    ``chaos`` arms worker-side fault injection (see the module
    docstring); ``chaos_index`` keys the start-up crash decision so a
    plan can kill worker 0 but spare worker 1.  ``retry_policy`` is the
    in-place retry applied to transient request failures inside each
    chunk — the same layer every in-process executor applies — so a
    transient fault recovers *here* instead of costing a round trip.
    """
    import threading

    worker_id = worker_id or worker_identity()
    stop_beating = threading.Event()
    beats_suspended = threading.Event()

    def _beat() -> None:
        while not stop_beating.wait(heartbeat_interval):
            if beats_suspended.is_set():
                continue
            try:
                broker.heartbeat(worker_id)
            except OSError:  # pragma: no cover - spool torn down
                return

    if chaos is not None and chaos.decide(
        chaos.crash_before_claim, "crash-before", chaos_index
    ):
        raise ChaosCrash(3)

    beater = threading.Thread(target=_beat, daemon=True)
    beater.start()
    executed = 0
    idle_since = time.monotonic()
    chaos_seen = set()
    try:
        while True:
            if not beats_suspended.is_set():
                broker.heartbeat(worker_id)
            task = broker.claim(worker_id)
            if task is not None:
                task_id, payload = task
                if chaos is not None and task_id not in chaos_seen:
                    chaos_seen.add(task_id)
                    task_key = stable_task_key(task_id)
                    if chaos.decide(
                        chaos.crash_after_claim, "crash-after", task_key
                    ):
                        raise ChaosCrash(3)
                    if chaos.decide(chaos.slow_worker, "slow", task_key):
                        sleep_for(chaos.slow_delay)
                    if chaos.decide(
                        chaos.stalled_heartbeat, "stall", task_key
                    ):
                        beats_suspended.set()
                        sleep_for(chaos.stall_duration)
                        beats_suspended.clear()
                broker.complete(
                    task_id,
                    execute_payload(payload, policy=retry_policy, plan=chaos),
                )
                executed += 1
                idle_since = time.monotonic()
                if max_tasks is not None and executed >= max_tasks:
                    return executed
                continue
            if broker.stop_requested():
                return executed
            if (
                max_idle is not None
                and time.monotonic() - idle_since > max_idle
            ):
                return executed
            time.sleep(poll_interval)
    finally:
        stop_beating.set()
        beater.join(timeout=heartbeat_interval + 1.0)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entrypoint: ``python -m repro.engine.worker --broker DIR``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.engine.worker",
        description=(
            "Serve a repro.engine queue-executor spool: claim RunRequest "
            "chunks, execute them, publish results (with cache-counter "
            "deltas) back through the broker."
        ),
    )
    parser.add_argument(
        "--broker",
        required=True,
        metavar="DIR",
        help="FileBroker spool directory shared with the submitter",
    )
    parser.add_argument(
        "--poll-interval",
        type=float,
        default=0.02,
        help="seconds to sleep when the queue is empty (default 0.02)",
    )
    parser.add_argument(
        "--max-idle",
        type=float,
        default=None,
        help="exit after this many idle seconds (default: wait for stop)",
    )
    parser.add_argument(
        "--max-tasks",
        type=int,
        default=None,
        help="exit after executing this many tasks (testing hook)",
    )
    parser.add_argument(
        "--heartbeat-interval",
        type=float,
        default=1.0,
        help="seconds between liveness beats (default 1.0)",
    )
    parser.add_argument(
        "--worker-id",
        default=None,
        help="override the advertised worker identity",
    )
    parser.add_argument(
        "--chaos",
        default=None,
        metavar="PLAN",
        help="arm deterministic fault injection (a FaultPlan as JSON)",
    )
    parser.add_argument(
        "--chaos-index",
        type=int,
        default=0,
        help="this worker's index in the fleet (keys start-up crashes)",
    )
    args = parser.parse_args(argv)
    executed = serve(
        FileBroker(args.broker),
        worker_id=args.worker_id,
        poll_interval=args.poll_interval,
        max_idle=args.max_idle,
        max_tasks=args.max_tasks,
        heartbeat_interval=args.heartbeat_interval,
        chaos=None if args.chaos is None else FaultPlan.from_json(args.chaos),
        chaos_index=args.chaos_index,
    )
    print(f"worker exit: {executed} task(s) executed")
    return 0


if __name__ == "__main__":  # pragma: no cover - subprocess entrypoint
    raise SystemExit(main())
