"""The queue fabric's worker-side entrypoint.

::

    python -m repro.engine.worker --broker /path/to/spool
    python -m repro.engine.worker --broker http://host:8642 --broker-token T
    python -m repro.engine.worker --broker http://a:8642,http://b:8642

runs one worker process against a broker — a local
:class:`~repro.engine.broker.FileBroker` spool directory, (the
elastic-fleet shape) an ``http(s)://`` URL of a running
``python -m repro.engine.broker_server``, or a comma-separated list of
those specs (a sharded fabric: the worker serves every shard through a
:class:`~repro.engine.shard_router.ShardRouter` and migrates off a
shard whose breaker opens) — claim a task, unpickle its
tuple of :class:`~repro.engine.request.RunRequest`, execute it exactly
like an in-process chunk (same code path as every other engine, so
results are byte-identical by construction), and publish a result
payload that carries the chunk results *plus* the worker-side
cache-counter deltas — workload cache, profile cache, decision state —
so the submitting :class:`~repro.engine.queue_exec.QueueExecutor` can
fold them into its :class:`~repro.engine.executors.EngineStats` just as
a process pool would.  Failures inside a chunk are published as error
payloads (the traceback travels back to the submitter and is re-raised
there); the worker itself keeps serving.

Liveness and elasticity: the worker heartbeats through the broker (a
daemon thread beats in parallel with chunk execution, and *backs off
and retries* when a beat fails — a broker hiccup must not silently
kill liveness), and exits when the broker's cooperative stop flag is
raised, when ``--max-idle`` seconds pass without work, or after
``--max-tasks`` tasks (testing hook).  Workers may join a campaign at
any time from any host that reaches the broker, and leave gracefully:
``SIGTERM`` requests a *drain* — the claimed chunk is finished and its
result published, the lease released, the worker deregistered — so
shrinking a fleet never loses or duplicates work.  Transient broker
failures (a partition, a restarting broker server) stall the loop with
exponential backoff instead of killing the process.

Chaos: ``--chaos PLAN`` (a :class:`~repro.engine.chaos.FaultPlan` as
JSON) arms deterministic worker-side fault injection — crash on
start-up before any claim (keyed by ``--chaos-index``), crash after
claiming a task, a stalled heartbeat that outlives the submitter's
timeout while the task still completes (the duplicate-result path),
and artificially slow execution.  Each decision is a pure function of
the plan seed and a stable key, so a chaotic fleet is exactly
reproducible (see :mod:`repro.engine.chaos`).
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
import threading
import time
from typing import Optional, Sequence, Tuple

from ..exceptions import TransientEngineError
from .broker import Broker, worker_identity
from .chaos import ChaosCrash, FaultPlan, sleep_for, stable_task_key
from .http_broker import connect_broker
from .payloads import (  # noqa: F401 - re-exported wire-format codecs
    PAYLOAD_VERSION,
    decode_result,
    decode_task,
    encode_error,
    encode_result,
    encode_task,
    execute_payload,
)
from .retry import DEFAULT_RETRY_POLICY

__all__ = [
    "encode_task",
    "decode_task",
    "encode_result",
    "decode_result",
    "serve",
    "main",
]

#: Ceiling on the transient-failure backoff of the serve loop (seconds).
_MAX_BACKOFF = 2.0


def serve(
    broker: Broker,
    *,
    worker_id: Optional[str] = None,
    poll_interval: float = 0.02,
    max_idle: Optional[float] = None,
    max_tasks: Optional[int] = None,
    heartbeat_interval: float = 1.0,
    chaos: Optional[FaultPlan] = None,
    chaos_index: int = 0,
    retry_policy=DEFAULT_RETRY_POLICY,
    drain: Optional[threading.Event] = None,
) -> int:
    """Serve the broker until stopped; returns tasks executed.

    One iteration = publish any pending result, heartbeat, claim,
    execute (or idle-sleep).  Exits when the broker's stop flag is up
    and no task was claimable, after ``max_idle`` seconds without work,
    after ``max_tasks`` tasks, or — the graceful-drain path — when
    ``drain`` is set *and* the claimed chunk has been finished and
    published (``main`` sets it from ``SIGTERM``).  On every exit path
    the worker deregisters from the broker, releasing its liveness
    record immediately.

    A daemon thread heartbeats every ``heartbeat_interval`` seconds *in
    parallel with chunk execution*, so a worker deep inside a long
    chunk still advertises liveness — without it, any chunk outlasting
    the submitter's ``heartbeat_timeout`` would be judged dead,
    requeued and executed twice (harmless but wasteful).  A beat that
    fails backs off exponentially and keeps retrying: transient broker
    trouble must never silently kill liveness.  The claim/complete loop
    is hardened the same way — a transient broker failure (partition,
    broker-server restart) stalls the worker, it does not kill it, and
    an executed chunk's result is held and re-published until the
    broker accepts it (at-least-once, never lost).

    ``chaos`` arms worker-side fault injection (see the module
    docstring); ``chaos_index`` keys the start-up crash decision so a
    plan can kill worker 0 but spare worker 1.  ``retry_policy`` is the
    in-place retry applied to transient request failures inside each
    chunk — the same layer every in-process executor applies — so a
    transient fault recovers *here* instead of costing a round trip.
    """
    worker_id = worker_id or worker_identity()
    stop_beating = threading.Event()
    beats_suspended = threading.Event()

    def _log(message: str) -> None:
        print(f"worker[{worker_id}]: {message}", file=sys.stderr, flush=True)

    def _beat() -> None:
        delay = heartbeat_interval
        while not stop_beating.wait(delay):
            if beats_suspended.is_set():
                continue
            try:
                broker.heartbeat(worker_id)
            except (TransientEngineError, OSError) as exc:
                delay = min(delay * 2.0, max(heartbeat_interval, 30.0))
                _log(f"heartbeat failed ({exc}); next beat in {delay:.1f}s")
            else:
                delay = heartbeat_interval

    if chaos is not None and chaos.decide(
        chaos.crash_before_claim, "crash-before", chaos_index
    ):
        raise ChaosCrash(3)

    beater = threading.Thread(target=_beat, daemon=True)
    beater.start()
    executed = 0
    idle_since = time.monotonic()
    chaos_seen = set()
    unpublished: Optional[Tuple[str, bytes]] = None
    backoff = poll_interval
    try:
        while True:
            if unpublished is not None:
                # An executed chunk's result outranks everything: hold
                # it and retry until the broker accepts it (a drain-safe
                # worker may not exit with a claimed chunk unpublished).
                task_id, result = unpublished
                try:
                    broker.complete(task_id, result)
                except (TransientEngineError, OSError) as exc:
                    _log(
                        f"publishing {task_id} failed ({exc}); "
                        f"retrying in {backoff:.2f}s"
                    )
                    time.sleep(backoff)
                    backoff = min(backoff * 2.0, _MAX_BACKOFF)
                    continue
                unpublished = None
                backoff = poll_interval
                executed += 1
                idle_since = time.monotonic()
                if max_tasks is not None and executed >= max_tasks:
                    return executed
                continue
            if drain is not None and drain.is_set():
                _log(f"drained after {executed} task(s)")
                return executed
            if not beats_suspended.is_set():
                try:
                    broker.heartbeat(worker_id)
                except (TransientEngineError, OSError):
                    pass  # the beater thread owns beat retries
            try:
                task = broker.claim(worker_id)
            except (TransientEngineError, OSError) as exc:
                _log(f"claim failed ({exc}); backing off {backoff:.2f}s")
                time.sleep(backoff)
                backoff = min(backoff * 2.0, _MAX_BACKOFF)
                continue
            backoff = poll_interval
            if task is not None:
                task_id, payload = task
                if chaos is not None and task_id not in chaos_seen:
                    chaos_seen.add(task_id)
                    task_key = stable_task_key(task_id)
                    if chaos.decide(
                        chaos.crash_after_claim, "crash-after", task_key
                    ):
                        raise ChaosCrash(3)
                    if chaos.decide(chaos.slow_worker, "slow", task_key):
                        sleep_for(chaos.slow_delay)
                    if chaos.decide(
                        chaos.stalled_heartbeat, "stall", task_key
                    ):
                        beats_suspended.set()
                        sleep_for(chaos.stall_duration)
                        beats_suspended.clear()
                unpublished = (
                    task_id,
                    execute_payload(payload, policy=retry_policy, plan=chaos),
                )
                continue
            try:
                if broker.stop_requested():
                    return executed
            except (TransientEngineError, OSError):
                pass  # an unreachable stop flag reads as "keep going"
            if (
                max_idle is not None
                and time.monotonic() - idle_since > max_idle
            ):
                return executed
            time.sleep(poll_interval)
    finally:
        stop_beating.set()
        beater.join(timeout=heartbeat_interval + 1.0)
        deregister = getattr(broker, "deregister", None)
        if deregister is not None:
            try:
                deregister(worker_id)
            except (TransientEngineError, OSError):
                pass  # best-effort goodbye; staleness ages us out anyway


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entrypoint: ``python -m repro.engine.worker --broker URL|DIR``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.engine.worker",
        description=(
            "Serve a repro.engine queue-executor broker: claim RunRequest "
            "chunks, execute them, publish results (with cache-counter "
            "deltas) back through the broker.  SIGTERM drains: the "
            "claimed chunk is finished and published before exit."
        ),
    )
    parser.add_argument(
        "--broker",
        required=True,
        metavar="SPEC[,SPEC...]",
        help=(
            "broker to serve: an http(s):// URL of a "
            "`python -m repro.engine.broker_server`, a FileBroker "
            "spool directory shared with the submitter, or a "
            "comma-separated list of those — a sharded fabric the "
            "worker serves through a ShardRouter, migrating off any "
            "shard whose health probe fails (list the shards in the "
            "submitter's order)"
        ),
    )
    parser.add_argument(
        "--broker-token",
        default=None,
        metavar="TOKEN",
        help="bearer token for http(s) brokers (default: $REPRO_BROKER_TOKEN)",
    )
    parser.add_argument(
        "--poll-interval",
        type=float,
        default=0.02,
        help="seconds to sleep when the queue is empty (default 0.02)",
    )
    parser.add_argument(
        "--max-idle",
        type=float,
        default=None,
        help="exit after this many idle seconds (default: wait for stop)",
    )
    parser.add_argument(
        "--max-tasks",
        type=int,
        default=None,
        help="exit after executing this many tasks (testing hook)",
    )
    parser.add_argument(
        "--heartbeat-interval",
        type=float,
        default=1.0,
        help="seconds between liveness beats (default 1.0)",
    )
    parser.add_argument(
        "--worker-id",
        default=None,
        help="override the advertised worker identity",
    )
    parser.add_argument(
        "--chaos",
        default=None,
        metavar="PLAN",
        help="arm deterministic fault injection (a FaultPlan as JSON)",
    )
    parser.add_argument(
        "--chaos-index",
        type=int,
        default=0,
        help="this worker's index in the fleet (keys start-up crashes)",
    )
    args = parser.parse_args(argv)
    token = (
        args.broker_token
        if args.broker_token is not None
        else os.environ.get("REPRO_BROKER_TOKEN")
    )
    plan = None if args.chaos is None else FaultPlan.from_json(args.chaos)
    broker = connect_broker(args.broker, token=token, chaos_plan=plan)
    drain = threading.Event()
    try:
        signal.signal(signal.SIGTERM, lambda signum, frame: drain.set())
    except ValueError:  # pragma: no cover - not the main thread
        pass
    executed = serve(
        broker,
        worker_id=args.worker_id,
        poll_interval=args.poll_interval,
        max_idle=args.max_idle,
        max_tasks=args.max_tasks,
        heartbeat_interval=args.heartbeat_interval,
        chaos=plan,
        chaos_index=args.chaos_index,
        drain=drain,
    )
    state = "drained" if drain.is_set() else "exit"
    print(f"worker {state}: {executed} task(s) executed")
    return 0


if __name__ == "__main__":  # pragma: no cover - subprocess entrypoint
    raise SystemExit(main())
