"""The executors behind the run-fabric.

Every executor consumes a list of :class:`~repro.engine.request.RunRequest`
and returns results *in request order*:

* :class:`SerialExecutor` — the reference path: every request runs in
  the calling process, one after the other;
* :class:`PoolExecutor` — fans contiguous request chunks across a fresh
  process pool per :meth:`~Executor.map` call (the PR-1 replicate
  engine, generalised to any request);
* :class:`PersistentPoolExecutor` — same fan-out, but the pool (and
  each worker's :data:`~repro.engine.cache.shared_cache`) stays alive
  across ``map`` calls, amortising pool start-up and workload
  construction over whole sweeps and multi-figure campaigns;
* :class:`~repro.engine.async_exec.AsyncExecutor` — a persistent pool
  driven by an asyncio event loop, overlapping chunk dispatch with
  result reassembly (defined in :mod:`repro.engine.async_exec`);
* :class:`~repro.engine.queue_exec.QueueExecutor` — chunks serialised
  through a pluggable :class:`~repro.engine.broker.Broker` to worker
  processes that may live outside this process tree — or this host
  (defined in :mod:`repro.engine.queue_exec`).

This module holds the shared machinery (:class:`Executor`,
:class:`EngineStats`, chunking, the engine registry) plus the first
three executors; the async and queue engines build on it from their own
modules.

Because requests are self-seeded and mutually independent (see the
determinism contract in :mod:`repro.engine.request`), chunk boundaries,
worker counts and pool lifetimes cannot influence any result — every
executor is byte-identical to the serial path.  Chunked dispatch bounds
pickling overhead: with ``R`` requests and ``N`` workers the default
chunk size is ``ceil(R / (4 N))``, ~4 chunks per worker to smooth load
imbalance.

Besides the ordered :meth:`Executor.map`, every executor streams:
:meth:`Executor.map_stream` yields ``(start_index, chunk_results)``
pairs the moment each chunk completes, so long sweeps can render
progress while the pool is still working.  Streamed results are the
same objects ``map`` would return — only arrival order differs.
"""

from __future__ import annotations

import functools
import math
import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    ClassVar,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..exceptions import ConfigurationError
from .cache import shared_cache
from .chaos import FaultPlan
from .journal import ResultJournal, decode_journal_hit, ensure_journal
from .request import RunRequest, execute_request
from .retry import DEFAULT_RETRY_POLICY, RetryPolicy, execute_with_retry

__all__ = [
    "ENGINES",
    "EngineStats",
    "Executor",
    "SerialExecutor",
    "PoolExecutor",
    "PersistentPoolExecutor",
    "create_executor",
    "ensure_executor",
    "resolve_engine",
    "default_chunk_size",
]

#: Engine names accepted by :func:`create_executor` and the CLI.
ENGINES: Tuple[str, ...] = ("serial", "pool", "persistent", "async", "queue")


def default_chunk_size(requests: int, workers: int) -> int:
    """Contiguous requests per dispatch unit (~4 chunks per worker)."""
    return max(1, math.ceil(requests / (4 * workers)))


@dataclass
class EngineStats:
    """``cache_info()``-style counters of one executor's lifetime."""

    tasks_submitted: int = 0    #: requests accepted by map()
    dispatches: int = 0         #: map() calls
    pool_launches: int = 0      #: process pools created
    pool_reuses: int = 0        #: map() calls served by an already-warm pool
    workloads_built: int = 0    #: workload-cache misses across all processes
    workloads_reused: int = 0   #: workload-cache hits across all processes
    profile_hits: int = 0       #: model profile-cache hits across processes
    profile_misses: int = 0     #: model profile-cache misses across processes
    decision_rows_patched: int = 0  #: decision-matrix rows recomputed
    decision_rows_reused: int = 0   #: component rows (finish/RC/keep) reused
    decision_scratch_allocs: int = 0  #: scratch ndarrays preallocated by caches
    decision_profile_env_reused: int = 0  #: profile rows copied from the env cache
    decision_profile_tau_patched: int = 0  #: profile rows via the tau_last patch
    retries: int = 0            #: retried attempts (in-place + chunk resubmits)
    requeues: int = 0           #: stale claims pushed back onto the queue
    dead_lettered: int = 0      #: chunks quarantined after exhausting retries
    duplicate_results: int = 0  #: redundant completions absorbed (first wins)
    wire_retries: int = 0       #: HTTP-broker requests retried on the wire
    lease_expiries: int = 0     #: server-side claim leases judged expired
    worker_joins: int = 0       #: workers first seen by the broker server
    worker_leaves: int = 0      #: workers that deregistered (graceful drain)
    shard_failovers: int = 0    #: shard breakers opened with failover sweeps
    breaker_opens: int = 0      #: shard circuit-breaker open transitions
    chunks_migrated: int = 0    #: chunks resubmitted from a dead shard
    journal_hits: int = 0       #: chunks served from the result journal
    journal_misses: int = 0     #: chunks the journal had not seen yet

    def cache_info(self) -> Dict[str, int]:
        """The counters as a plain dict."""
        return {
            "tasks_submitted": self.tasks_submitted,
            "dispatches": self.dispatches,
            "pool_launches": self.pool_launches,
            "pool_reuses": self.pool_reuses,
            "workloads_built": self.workloads_built,
            "workloads_reused": self.workloads_reused,
            "profile_hits": self.profile_hits,
            "profile_misses": self.profile_misses,
            "decision_rows_patched": self.decision_rows_patched,
            "decision_rows_reused": self.decision_rows_reused,
            "decision_scratch_allocs": self.decision_scratch_allocs,
            "decision_profile_env_reused": self.decision_profile_env_reused,
            "decision_profile_tau_patched": self.decision_profile_tau_patched,
            "retries": self.retries,
            "requeues": self.requeues,
            "dead_lettered": self.dead_lettered,
            "duplicate_results": self.duplicate_results,
            "wire_retries": self.wire_retries,
            "lease_expiries": self.lease_expiries,
            "worker_joins": self.worker_joins,
            "worker_leaves": self.worker_leaves,
            "shard_failovers": self.shard_failovers,
            "breaker_opens": self.breaker_opens,
            "chunks_migrated": self.chunks_migrated,
            "journal_hits": self.journal_hits,
            "journal_misses": self.journal_misses,
        }

    def any_resilience_events(self) -> bool:
        """Whether any retry/quarantine/journal counter is non-zero."""
        return bool(
            self.retries
            or self.requeues
            or self.dead_lettered
            or self.duplicate_results
            or self.wire_retries
            or self.lease_expiries
            or self.journal_hits
            or self.journal_misses
        )

    def any_fleet_events(self) -> bool:
        """Whether any remote-broker/fleet counter is non-zero."""
        return bool(
            self.wire_retries
            or self.lease_expiries
            or self.worker_joins
            or self.worker_leaves
            or self.shard_failovers
            or self.breaker_opens
            or self.chunks_migrated
        )

    def describe_fleet(self) -> str:
        """One-line remote-broker fleet digest for ``--verbose``."""
        text = (
            f"worker joins: {self.worker_joins} "
            f"leaves: {self.worker_leaves} / "
            f"lease expiries: {self.lease_expiries} "
            f"wire retries: {self.wire_retries}"
        )
        if self.shard_failovers or self.breaker_opens or self.chunks_migrated:
            text += (
                f" / shard failovers: {self.shard_failovers} "
                f"breaker opens: {self.breaker_opens} "
                f"chunks migrated: {self.chunks_migrated}"
            )
        return text

    def describe_resilience(self) -> str:
        """One-line retry/quarantine/journal digest for ``--verbose``."""
        return (
            f"retries: {self.retries} requeues: {self.requeues} "
            f"dead-lettered: {self.dead_lettered} "
            f"duplicates absorbed: {self.duplicate_results} / "
            f"journal hits: {self.journal_hits} "
            f"(misses: {self.journal_misses})"
        )

    def decision_reuse_rate(self) -> float:
        """Share of decision-matrix rows served without recomputation."""
        rows = self.decision_rows_patched + self.decision_rows_reused
        return self.decision_rows_reused / rows if rows else 0.0

    def describe_decisions(self) -> str:
        """One-line decision-state digest for ``--verbose`` output."""
        return (
            f"rows patched: {self.decision_rows_patched} "
            f"reused: {self.decision_rows_reused} "
            f"reuse rate: {self.decision_reuse_rate():.1%} "
            f"profile env reuses: {self.decision_profile_env_reused} "
            f"tau patches: {self.decision_profile_tau_patched} "
            f"(scratch allocations: {self.decision_scratch_allocs})"
        )

    def profile_hit_rate(self) -> float:
        """Profile-cache hit rate across every dispatched request."""
        lookups = self.profile_hits + self.profile_misses
        return self.profile_hits / lookups if lookups else 0.0

    def describe(self) -> str:
        """One-line digest for ``--verbose`` output."""
        return (
            f"tasks submitted: {self.tasks_submitted} "
            f"(dispatches: {self.dispatches}) / "
            f"reused workloads: {self.workloads_reused} "
            f"(built: {self.workloads_built}) / "
            f"pool reuse count: {self.pool_reuses} "
            f"(launches: {self.pool_launches})"
        )

    def describe_profiles(self) -> str:
        """One-line profile-cache digest for ``--verbose`` output."""
        return (
            f"hits: {self.profile_hits} misses: {self.profile_misses} "
            f"hit rate: {self.profile_hit_rate():.1%}"
        )


def _execute_one(
    request: RunRequest,
    policy: Optional[RetryPolicy],
    plan: Optional[FaultPlan],
) -> Tuple[Any, int]:
    """Run one request under the retry layer; ``(result, retries)``.

    Transient failures (and injected chaos runner faults) are retried
    in place with the policy's deterministic backoff; the retry count
    rides back to the submitter in the chunk's engine-counter delta.
    """
    retried = 0

    def attempt(number: int) -> Any:
        nonlocal retried
        retried = number - 1
        if plan is not None:
            plan.maybe_runner_fault(request.seed, number)
        return execute_request(request)

    value = execute_with_retry(attempt, seed=request.seed, policy=policy)
    return value, retried


def _execute_chunk(
    requests: Tuple[RunRequest, ...],
    policy: Optional[RetryPolicy] = None,
    plan: Optional[FaultPlan] = None,
) -> Tuple[
    List[Any],
    Tuple[int, int],
    Tuple[int, int],
    Tuple[int, int, int, int, int],
    Tuple[int],
]:
    """Run one contiguous chunk in the current process.

    Module-level so it pickles under every multiprocessing start method
    (the executors bind ``policy``/``plan`` with ``functools.partial``,
    which pickles by reference plus the frozen dataclasses).  Returns
    the results plus this chunk's ``(hits, misses)`` deltas of the
    process-local workload cache, of the process-wide profile counters
    (:meth:`~repro.resilience.expected_time.ExpectedTimeModel.
    process_cache_snapshot`), of the decision-state counters
    (:func:`~repro.core.kernels.process_decision_snapshot`) and of the
    engine's own resilience counters (in-place retries), which the
    parent aggregates into its :class:`EngineStats` (workers' counters
    are otherwise invisible to the submitting process).
    """
    from ..core.kernels import process_decision_snapshot
    from ..resilience.expected_time import ExpectedTimeModel

    hits_before, misses_before = shared_cache.snapshot()
    p_hits_before, p_misses_before = ExpectedTimeModel.process_cache_snapshot()
    d_before = process_decision_snapshot()
    results = []
    retries = 0
    for request in requests:
        value, retried = _execute_one(request, policy, plan)
        results.append(value)
        retries += retried
    hits_after, misses_after = shared_cache.snapshot()
    p_hits_after, p_misses_after = ExpectedTimeModel.process_cache_snapshot()
    d_after = process_decision_snapshot()
    return (
        results,
        (hits_after - hits_before, misses_after - misses_before),
        (p_hits_after - p_hits_before, p_misses_after - p_misses_before),
        tuple(after - before for after, before in zip(d_after, d_before)),
        (retries,),
    )


def _stream_futures(
    executor: "Executor", pool, chunks: List[Tuple[RunRequest, ...]]
) -> Iterator[Tuple[int, List[Any]]]:
    """Submit chunks to a live pool and yield each as it completes.

    Journal-aware: chunks the attached result journal already holds are
    yielded up front without touching the pool; every executed chunk is
    journaled as it lands.
    """
    from concurrent.futures import as_completed

    call = executor._chunk_call()
    futures = {}
    hits: List[Tuple[int, List[Any]]] = []
    start = 0
    for chunk in chunks:
        cached = executor._journal_fetch(chunk)
        if cached is not None:
            hits.append((start, cached))
        else:
            futures[pool.submit(call, chunk)] = (start, chunk)
        start += len(chunk)
    yield from hits
    for future in as_completed(futures):
        output = future.result()
        executor._fold_output(output)
        chunk_start, chunk = futures[future]
        executor._journal_store(chunk, output)
        yield chunk_start, output[0]


class Executor:
    """Common machinery: ordered dispatch, statistics, lifecycle.

    Every executor also carries the resilience layer's three knobs:

    ``retry_policy``
        The :class:`~repro.engine.retry.RetryPolicy` applied to every
        unit of work (in-place per-request retries everywhere, plus
        per-chunk resubmission in the queue engine).  ``None`` disables
        retrying.
    ``chaos_plan``
        An optional :class:`~repro.engine.chaos.FaultPlan` threaded
        into every chunk execution (and, for the queue engine, into the
        broker and worker fleet) for deterministic fault injection.
    ``journal``
        An optional :class:`~repro.engine.journal.ResultJournal` (or a
        directory path) consulted before executing any chunk and
        updated as chunks land, making interrupted campaigns resumable.
    """

    name: ClassVar[str] = "?"

    def __init__(
        self,
        *,
        retry_policy: Optional[RetryPolicy] = DEFAULT_RETRY_POLICY,
        chaos_plan: Optional[FaultPlan] = None,
        journal: Union[ResultJournal, os.PathLike, str, None] = None,
    ) -> None:
        self._stats = EngineStats()
        self.retry_policy = retry_policy
        self.chaos_plan = FaultPlan.from_spec(chaos_plan)
        self.journal = ensure_journal(journal)

    # -- public API --------------------------------------------------------
    def map(self, requests: Sequence[RunRequest]) -> List[Any]:
        """Execute every request; results come back in request order."""
        requests = self._accept(requests)
        if not requests:
            return []
        return self._map(requests)

    def map_stream(
        self, requests: Sequence[RunRequest]
    ) -> Iterator[Tuple[int, List[Any]]]:
        """Yield ``(start_index, chunk_results)`` as chunks complete.

        The streaming counterpart of :meth:`map`: the same chunks run on
        the same processes and the ``(index, result)`` pairs are exactly
        :meth:`map`'s — only the *arrival order* varies, since pooled
        executors yield each chunk the moment it finishes.  Callers that
        need request order reassemble via ``start_index`` (see
        :func:`repro.experiments.runner.run_scenario`); by the
        determinism contract the reassembled list is byte-identical to a
        plain ``map`` call.
        """
        requests = self._accept(requests)
        if not requests:
            return iter(())
        return self._map_stream(requests)

    def _accept(self, requests: Sequence[RunRequest]) -> List[RunRequest]:
        """Validate a dispatch and count it into the statistics."""
        requests = list(requests)
        for request in requests:
            if not isinstance(request, RunRequest):
                raise ConfigurationError(
                    f"executors accept RunRequest, got {type(request)!r}"
                )
        self._stats.tasks_submitted += len(requests)
        self._stats.dispatches += 1
        return requests

    def stats(self) -> EngineStats:
        """Lifetime counters (shared reference, updated in place)."""
        return self._stats

    def close(self) -> None:
        """Release any held resources (idempotent)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- helpers for subclasses -------------------------------------------
    def _map(self, requests: List[RunRequest]) -> List[Any]:
        raise NotImplementedError

    def _map_stream(
        self, requests: List[RunRequest]
    ) -> Iterator[Tuple[int, List[Any]]]:
        """Default streaming: one request at a time, in request order."""
        return self._stream_inline([(request,) for request in requests])

    def _chunk_call(self) -> Callable[[Tuple[RunRequest, ...]], Tuple]:
        """``_execute_chunk`` with this executor's retry/chaos knobs bound.

        A :func:`functools.partial` of the module-level function, so it
        pickles under every multiprocessing start method.
        """
        return functools.partial(
            _execute_chunk, policy=self.retry_policy, plan=self.chaos_plan
        )

    def _run_inline(self, chunks: List[Tuple[RunRequest, ...]]) -> List[Any]:
        """Execute chunks in this process, folding in the cache deltas."""
        results: List[Any] = []
        for start, chunk_results in self._stream_inline(chunks):
            results.extend(chunk_results)
        return results

    def _stream_inline(
        self, chunks: List[Tuple[RunRequest, ...]]
    ) -> Iterator[Tuple[int, List[Any]]]:
        """Execute chunks in this process, yielding each as it finishes.

        Journal-aware like every dispatch path: known chunks are served
        from the attached journal, fresh ones are journaled as they
        complete.
        """
        call = self._chunk_call()
        start = 0
        for chunk in chunks:
            cached = self._journal_fetch(chunk)
            if cached is not None:
                yield start, cached
            else:
                output = call(chunk)
                self._fold_output(output)
                self._journal_store(chunk, output)
                yield start, output[0]
            start += len(chunk)

    def _fold(
        self,
        workloads: Tuple[int, int],
        profiles: Tuple[int, int],
        decisions: Tuple[int, int, int, int, int],
        engine: Tuple[int] = (0,),
    ) -> None:
        """Fold one chunk's cache/engine deltas into the statistics.

        ``decisions`` tuples from journals written before the
        profile-delta counters existed carry three entries; the two new
        slots then stay zero.
        """
        self._stats.workloads_reused += workloads[0]
        self._stats.workloads_built += workloads[1]
        self._stats.profile_hits += profiles[0]
        self._stats.profile_misses += profiles[1]
        self._stats.decision_rows_patched += decisions[0]
        self._stats.decision_rows_reused += decisions[1]
        self._stats.decision_scratch_allocs += decisions[2]
        if len(decisions) > 3:
            self._stats.decision_profile_env_reused += decisions[3]
            self._stats.decision_profile_tau_patched += decisions[4]
        self._stats.retries += engine[0]

    def _fold_output(self, chunk_output: Tuple) -> None:
        """Fold one ``_execute_chunk`` output tuple into the statistics."""
        _, workloads, profiles, decisions, engine = chunk_output
        self._fold(workloads, profiles, decisions, engine)

    # -- journal plumbing --------------------------------------------------
    def _journal_fetch(
        self, chunk: Tuple[RunRequest, ...]
    ) -> Optional[List[Any]]:
        """This chunk's journaled results, or ``None`` (counted either way).

        A hit returns results without folding the stored cache deltas —
        no work happened, so the counters must not claim any.  An entry
        that fails to decode (stale format, torn write) is discarded
        and treated as a miss.
        """
        if self.journal is None:
            return None
        key = self.journal.chunk_key(chunk)
        payload = self.journal.get(key)
        if payload is not None:
            output = decode_journal_hit(payload)
            if output is not None:
                self._stats.journal_hits += 1
                return list(output[0])
            self.journal.discard(key)
        self._stats.journal_misses += 1
        return None

    def _journal_store(
        self, chunk: Tuple[RunRequest, ...], chunk_output: Tuple
    ) -> None:
        """Journal one completed chunk's encoded output (best-effort)."""
        if self.journal is not None:
            from .payloads import encode_result

            self.journal.put(
                self.journal.chunk_key(chunk), encode_result(chunk_output)
            )

    def _collect(self, chunk_outputs) -> List[Any]:
        results: List[Any] = []
        for output in chunk_outputs:
            results.extend(output[0])
            self._fold_output(output)
        return results

    def _gather(
        self, stream: Iterator[Tuple[int, List[Any]]], total: int
    ) -> List[Any]:
        """Reassemble a completion-ordered stream into request order."""
        results: List[Any] = [None] * total
        for start, chunk_results in stream:
            results[start:start + len(chunk_results)] = chunk_results
        return results


class SerialExecutor(Executor):
    """Reference path: every request runs here, in submission order."""

    name = "serial"

    def _map(self, requests: List[RunRequest]) -> List[Any]:
        return self._run_inline([tuple(requests)])


class _PooledExecutor(Executor):
    """Shared chunking/validation of the two process-pool executors."""

    def __init__(
        self,
        workers: int = 2,
        chunk_size: Optional[int] = None,
        *,
        retry_policy: Optional[RetryPolicy] = DEFAULT_RETRY_POLICY,
        chaos_plan: Optional[FaultPlan] = None,
        journal: Union[ResultJournal, os.PathLike, str, None] = None,
    ):
        super().__init__(
            retry_policy=retry_policy, chaos_plan=chaos_plan, journal=journal
        )
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)
        self.chunk_size = None if chunk_size is None else max(1, int(chunk_size))

    def _chunked(self, requests: List[RunRequest]) -> List[Tuple[RunRequest, ...]]:
        size = (
            default_chunk_size(len(requests), self.workers)
            if self.chunk_size is None
            else self.chunk_size
        )
        return [
            tuple(requests[start:start + size])
            for start in range(0, len(requests), size)
        ]


class PoolExecutor(_PooledExecutor):
    """One fresh process pool per ``map`` call.

    A single-chunk (or single-worker) dispatch skips the pool — and its
    fork cost — entirely, exactly like the PR-1 replicate engine.
    """

    name = "pool"

    def _map(self, requests: List[RunRequest]) -> List[Any]:
        chunks = self._chunked(requests)
        if self.workers == 1 or len(chunks) == 1:
            return self._run_inline(chunks)
        from concurrent.futures import ProcessPoolExecutor

        self._stats.pool_launches += 1
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            return self._gather(
                _stream_futures(self, pool, chunks), len(requests)
            )

    def _map_stream(
        self, requests: List[RunRequest]
    ) -> Iterator[Tuple[int, List[Any]]]:
        chunks = self._chunked(requests)
        if self.workers == 1 or len(chunks) == 1:
            return self._stream_inline(chunks)

        def stream() -> Iterator[Tuple[int, List[Any]]]:
            from concurrent.futures import ProcessPoolExecutor

            self._stats.pool_launches += 1
            with ProcessPoolExecutor(max_workers=self.workers) as pool:
                yield from _stream_futures(self, pool, chunks)

        return stream()


class _PersistentPooled(_PooledExecutor):
    """Keep-alive pool lifecycle shared by the persistent/async engines.

    The first pooled dispatch launches a ``ProcessPoolExecutor``; every
    later one reuses it (counted as ``pool_reuses``), so sweep
    campaigns pay pool start-up once and worker processes keep their
    :data:`~repro.engine.cache.shared_cache` warm across sweep points.
    """

    def __init__(
        self,
        workers: int = 2,
        chunk_size: Optional[int] = None,
        **kwargs,
    ):
        super().__init__(workers, chunk_size, **kwargs)
        self._pool = None

    def _ensure_pool(self):
        """The live pool, launching it on first use (counted either way)."""
        if self._pool is None:
            from concurrent.futures import ProcessPoolExecutor

            self._pool = ProcessPoolExecutor(max_workers=self.workers)
            self._stats.pool_launches += 1
        else:
            self._stats.pool_reuses += 1
        return self._pool

    def close(self) -> None:
        """Shut the persistent pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None


class PersistentPoolExecutor(_PersistentPooled):
    """A pool kept alive across ``map`` calls (and the workloads with it).

    The first dispatch launches the workers; every later dispatch
    reuses them, so sweep campaigns pay pool start-up once and worker
    processes keep their :data:`~repro.engine.cache.shared_cache` warm
    across sweep points.  Call :meth:`close` (or use the executor as a
    context manager) when the campaign is done.
    """

    name = "persistent"

    def _map(self, requests: List[RunRequest]) -> List[Any]:
        if self.workers == 1:
            return self._run_inline(self._chunked(requests))
        return self._gather(
            _stream_futures(self, self._ensure_pool(), self._chunked(requests)),
            len(requests),
        )

    def _map_stream(
        self, requests: List[RunRequest]
    ) -> Iterator[Tuple[int, List[Any]]]:
        if self.workers == 1:
            return self._stream_inline(self._chunked(requests))
        return _stream_futures(self, self._ensure_pool(), self._chunked(requests))


def resolve_engine(
    engine: Optional[str],
    workers: Optional[int],
    *,
    pooled_default: str = "pool",
) -> str:
    """The one place that answers "which engine for these knobs?".

    An explicit ``engine`` always wins; otherwise ``workers`` > 1 picks
    ``pooled_default`` ("pool" for one-shot dispatches, "persistent" for
    sweeps that dispatch many times against the same executor) and
    anything else is serial.
    """
    if engine is not None:
        return engine
    if workers is not None and workers > 1:
        return pooled_default
    return "serial"


@contextmanager
def ensure_executor(
    executor: Optional[Executor] = None,
    *,
    engine: Optional[str] = None,
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    pooled_default: str = "pool",
    retry_policy: Optional[RetryPolicy] = DEFAULT_RETRY_POLICY,
    chaos_plan: Union[FaultPlan, Dict[str, object], str, None] = None,
    journal: Union[ResultJournal, os.PathLike, str, None] = None,
) -> Iterator[Executor]:
    """Yield a ready executor; own (and close) it only if we made it.

    A caller-supplied ``executor`` is yielded untouched and left open —
    it may have further dispatches coming (the next sweep point, the
    next figure) and carries its own resilience knobs.  Otherwise one is
    created from :func:`resolve_engine`'s rule and closed when the block
    exits.
    """
    if executor is not None:
        yield executor
        return
    owned = create_executor(
        resolve_engine(engine, workers, pooled_default=pooled_default),
        workers=1 if workers is None else workers,
        chunk_size=chunk_size,
        retry_policy=retry_policy,
        chaos_plan=chaos_plan,
        journal=journal,
    )
    try:
        yield owned
    finally:
        owned.close()


def create_executor(
    engine: str = "serial",
    *,
    workers: int = 1,
    chunk_size: Optional[int] = None,
    retry_policy: Optional[RetryPolicy] = DEFAULT_RETRY_POLICY,
    chaos_plan: Union[FaultPlan, Dict[str, object], str, None] = None,
    journal: Union[ResultJournal, os.PathLike, str, None] = None,
) -> Executor:
    """Instantiate an executor by engine name (CLI ``--engine`` values).

    ``async`` and ``queue`` import lazily (their modules import this
    one), with their self-contained defaults — the queue engine hosts
    its own :class:`~repro.engine.broker.FileBroker` spool and worker
    fleet; build :class:`~repro.engine.queue_exec.QueueExecutor`
    directly to point it at an externally served broker.  The three
    resilience knobs (``retry_policy``, ``chaos_plan``, ``journal``;
    see :class:`Executor`) thread through to every engine.
    """
    resilience = dict(
        retry_policy=retry_policy, chaos_plan=chaos_plan, journal=journal
    )
    if engine == "serial":
        return SerialExecutor(**resilience)
    if engine == "pool":
        return PoolExecutor(workers=workers, chunk_size=chunk_size, **resilience)
    if engine == "persistent":
        return PersistentPoolExecutor(
            workers=workers, chunk_size=chunk_size, **resilience
        )
    if engine == "async":
        from .async_exec import AsyncExecutor

        return AsyncExecutor(workers=workers, chunk_size=chunk_size, **resilience)
    if engine == "queue":
        from .queue_exec import QueueExecutor

        return QueueExecutor(workers=workers, chunk_size=chunk_size, **resilience)
    known = ", ".join(ENGINES)
    raise ConfigurationError(
        f"unknown engine {engine!r}; known engines: {known}"
    )
