"""Sharded broker fabric: one ``Broker`` over N brokers, with failover.

:class:`ShardRouter` implements the full
:class:`~repro.engine.broker.Broker` protocol over a list of underlying
brokers — any mix of :class:`~repro.engine.broker.FileBroker` spools and
:class:`~repro.engine.http_broker.HTTPBroker` servers (CLI form:
``--broker SPEC,SPEC,...`` through
:func:`~repro.engine.http_broker.connect_broker`).  A campaign keeps its
figure series byte-identical while a whole broker shard is killed and
later restarted; the router degrades, reroutes and re-admits instead of
stalling.

Three mechanisms carry that guarantee:

* **Deterministic seed-keyed assignment.**  A chunk's *home shard* is
  ``crc32(f"{seed}:{stable_task_key(task_id)}") % N`` — a pure function
  of the router seed and the task's nonce-free key, so every submitter
  and worker router over the same shard list agrees on placement, across
  fresh executors and process restarts alike.
* **Health-probed circuit breaker.**  Each shard runs a
  closed → open → half-open breaker: ``failure_threshold`` consecutive
  transport failures open it (the shard stops taking operations);
  after ``reopen_after`` seconds the next touch runs a single unretried
  health probe (:meth:`HTTPBroker.probe
  <repro.engine.http_broker.HTTPBroker.probe>` /
  :meth:`FileBroker.probe <repro.engine.broker.FileBroker.probe>`), and
  only a successful probe re-admits the shard.  The probe compares the
  server's ``schema_version`` (a mismatch is protocol skew — the shard
  is excluded permanently) and ``boot_monotonic`` (a change is a
  restart — counted, then welcomed back).
* **Failover by resubmission.**  The submitter-side router remembers
  every submitted payload until its result is collected; when a shard's
  breaker opens, chunks currently placed there are resubmitted to the
  next surviving shard in the rotation.  This is safe because
  ``RunRequest``s are pure functions of their seed — a duplicate
  execution produces byte-identical bytes and the executor's
  first-result-wins absorption handles any copy that the dead shard
  still delivers after recovery.

Degraded-mode semantics (what each operation does while shards are
down) are deliberately asymmetric, matching how the queue executor and
``worker.serve`` consume them:

* ``submit``/``claim`` raise
  :class:`~repro.exceptions.TransientEngineError` only on *total*
  outage (no reachable shard) — a worker then backs off instead of
  idle-exiting, and the executor's retry layer rides it out;
* ``fetch_result`` returns ``None`` when unroutable — a total outage
  *stalls* a campaign, never kills it;
* ``complete`` prefers the shard the chunk was claimed from but fails
  over to any reachable shard (results are keyed by task id and
  byte-identical wherever they land; the submitter's fetch sweep checks
  fallback shards for exactly this case);
* liveness/stop operations (``heartbeat``, ``live_workers``,
  ``stale_claims``, ``request_stop``, ``stop_requested``,
  ``dead_letters``) are unions / broadcasts over the reachable shards.

Global claim order is **per-shard FIFO**, not global FIFO: chunks are
hash-partitioned, so the lexicographic claim order a single
``FileBroker`` guarantees holds within each shard only.  The queue
executor reassembles by task id and never relies on claim order.
"""

from __future__ import annotations

import threading
import time
import zlib
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from ..exceptions import PermanentEngineError, TransientEngineError
from .broker import Broker
from .chaos import stable_task_key

__all__ = ["ShardRouter", "SHARD_WIRE_POLICY"]

# A router can fail over, so per-shard patience is worth less than with
# a single broker: fail fast, let the routing layer route around.
# connect_broker substitutes this for DEFAULT_WIRE_POLICY when building
# the sub-brokers of a multi-spec (sharded) connection.
from .retry import RetryPolicy

SHARD_WIRE_POLICY = RetryPolicy(
    max_attempts=3,
    backoff_base=0.05,
    backoff_factor=2.0,
    backoff_max=0.25,
    jitter=0.25,
)

#: Breaker states (kept as strings: they read well in describe output).
_CLOSED = "closed"
_OPEN = "open"
_HALF_OPEN = "half-open"

#: Every Nth consecutive fetch miss for a task widens the result sweep
#: to all reachable shards — closes the asymmetric-partition window
#: where a worker failed over its ``complete`` to a shard the submitter
#: never knew to poll.
_FULL_SWEEP_EVERY = 8

#: Completed-task registry entries kept before the oldest are trimmed
#: (worker-side routers complete tasks they will never fetch).
_DONE_CAP = 4096


class _Shard:
    """Per-shard breaker state (mutated only under the router's lock)."""

    __slots__ = (
        "index",
        "broker",
        "name",
        "state",
        "failures",
        "opened_at",
        "probed",
        "last_boot",
        "skewed",
        "last_counters",
    )

    def __init__(self, index: int, broker: Broker):
        self.index = index
        self.broker = broker
        self.name = (
            getattr(broker, "url", None)
            or str(getattr(broker, "root", None) or repr(broker))
        )
        self.state = _CLOSED
        self.failures = 0
        self.opened_at = 0.0
        self.probed = False  # one eager probe on first touch
        self.last_boot: Optional[float] = None
        self.skewed = False
        self.last_counters: Dict[str, int] = {}


class ShardRouter:
    """The full :class:`~repro.engine.broker.Broker` over N shards.

    Parameters
    ----------
    brokers:
        The underlying brokers, in shard-index order.  The *order is
        part of the routing key*: every router over the same campaign
        must list the same shards in the same order.
    seed:
        Keys the chunk→shard assignment (with
        :func:`~repro.engine.chaos.stable_task_key`, so assignment is
        independent of the executor nonce).
    failure_threshold:
        Consecutive transport failures that open a shard's breaker.
    reopen_after:
        Seconds an open breaker waits before the next touch runs the
        half-open health probe.
    clock:
        Injectable monotonic clock (tests).
    """

    def __init__(
        self,
        brokers: Sequence[Broker],
        *,
        seed: int = 0,
        failure_threshold: int = 3,
        reopen_after: float = 5.0,
        clock=time.monotonic,
    ):
        if not brokers:
            raise ValueError("ShardRouter needs at least one broker")
        self.seed = int(seed)
        self.failure_threshold = max(1, int(failure_threshold))
        self.reopen_after = float(reopen_after)
        self._clock = clock
        self._lock = threading.RLock()
        self._shards = [_Shard(i, b) for i, b in enumerate(brokers)]
        self._cursor = 0
        # Submitter-side memory that makes failover possible: where each
        # task currently lives (last entry = current shard) and the
        # payload to resubmit it with.
        self._history: Dict[str, List[int]] = {}
        self._payloads: Dict[str, bytes] = {}
        self._misses: Dict[str, int] = {}
        self._done: Deque[str] = deque()
        self.counters: Dict[str, int] = {
            "shard_failovers": 0,
            "breaker_opens": 0,
            "chunks_migrated": 0,
            "shard_restarts": 0,
        }

    # -- assignment --------------------------------------------------------
    def _home_shard(self, task_id: str) -> int:
        key = f"{self.seed}:{stable_task_key(task_id)}"
        return zlib.crc32(key.encode("utf-8")) % len(self._shards)

    def _rotation(self, start: int) -> List[_Shard]:
        n = len(self._shards)
        return [self._shards[(start + step) % n] for step in range(n)]

    # -- breaker -----------------------------------------------------------
    def _available(self, shard: _Shard) -> bool:
        """Gate one shard; may run the (first-touch or half-open) probe."""
        with self._lock:
            if shard.skewed:
                return False
            if shard.state == _CLOSED:
                if shard.probed:
                    return True
                shard.probed = True  # eager first-touch probe below
            elif shard.state == _OPEN:
                if self._clock() - shard.opened_at < self.reopen_after:
                    return False
                shard.state = _HALF_OPEN
            # _HALF_OPEN (here or from a concurrent thread): probe.
        return self._probe(shard)

    def _probe(self, shard: _Shard) -> bool:
        """One unretried health check; decides (re-)admission."""
        probe = getattr(shard.broker, "probe", None)
        try:
            status = (
                probe()
                if probe is not None
                else {"stop": shard.broker.stop_requested()}
            )
        except PermanentEngineError:
            # Bad token / unknown operation: retrying cannot fix it.
            with self._lock:
                shard.skewed = True
            return False
        except (TransientEngineError, OSError):
            with self._lock:
                if shard.state != _OPEN:
                    self.counters["breaker_opens"] += 1
                shard.state = _OPEN
                shard.opened_at = self._clock()
            return False
        if not isinstance(status, dict):
            status = {}
        schema = status.get("schema_version")
        if schema is not None:
            from .broker_server import SCHEMA_VERSION

            if int(schema) != SCHEMA_VERSION:
                with self._lock:
                    shard.skewed = True
                return False
        with self._lock:
            boot = status.get("boot_monotonic")
            if boot is not None:
                if shard.last_boot is not None and boot != shard.last_boot:
                    self.counters["shard_restarts"] += 1
                shard.last_boot = boot
            shard.state = _CLOSED
            shard.failures = 0
        return True

    def _note_failure(self, shard: _Shard) -> None:
        opened = False
        with self._lock:
            shard.failures += 1
            if (
                shard.state == _CLOSED
                and shard.failures >= self.failure_threshold
            ) or shard.state == _HALF_OPEN:
                shard.state = _OPEN
                shard.opened_at = self._clock()
                self.counters["breaker_opens"] += 1
                opened = True
        if opened:
            self._failover(shard)

    def _note_success(self, shard: _Shard) -> None:
        with self._lock:
            shard.failures = 0
            if shard.state != _CLOSED and not shard.skewed:
                shard.state = _CLOSED

    # -- failover ----------------------------------------------------------
    def _failover(self, shard: _Shard) -> None:
        """A breaker just opened: move its unacked chunks to survivors."""
        with self._lock:
            self.counters["shard_failovers"] += 1
            stranded = [
                task_id
                for task_id, history in self._history.items()
                if history and history[-1] == shard.index
                and task_id in self._payloads
            ]
        for task_id in stranded:
            self._migrate(task_id)

    def _migrate(self, task_id: str) -> Optional[int]:
        """Resubmit a stranded chunk to a reachable shard; its index."""
        with self._lock:
            payload = self._payloads.get(task_id)
            history = self._history.get(task_id)
            if payload is None or not history:
                return None
            current = history[-1]
        for shard in self._rotation(self._home_shard(task_id)):
            if shard.index == current or not self._available(shard):
                continue
            try:
                shard.broker.submit(task_id, payload)
            except (TransientEngineError, OSError):
                self._note_failure(shard)
                continue
            self._note_success(shard)
            with self._lock:
                history = self._history.setdefault(task_id, [current])
                if not history or history[-1] != shard.index:
                    history.append(shard.index)
                self.counters["chunks_migrated"] += 1
            return shard.index
        return None

    def _record_placement(self, task_id: str, index: int) -> None:
        with self._lock:
            history = self._history.setdefault(task_id, [])
            if not history or history[-1] != index:
                history.append(index)

    def _forget(self, task_id: str, *, keep: Optional[int] = None) -> None:
        """Drop the task's registry entries + stray cross-shard copies."""
        with self._lock:
            history = self._history.pop(task_id, [])
            self._payloads.pop(task_id, None)
            self._misses.pop(task_id, None)
        indices = list(dict.fromkeys(history))
        if indices in ([], [keep]):
            return  # never migrated: no stray copies to chase
        # A migrated task may have left queue copies anywhere it touched
        # — including the shard the result came from (the migration
        # resubmitted there but a *different* shard's copy completed
        # first).  Discard everywhere; the fetched result is already
        # consumed, so this only withdraws unclaimed duplicates.
        for index in indices:
            shard = self._shards[index]
            if not self._available(shard):
                continue
            try:
                shard.broker.discard(task_id)
            except (TransientEngineError, OSError):
                self._note_failure(shard)

    def _trim_done(self, task_id: str) -> None:
        """Bound worker-side registry growth for completed tasks."""
        with self._lock:
            self._done.append(task_id)
            while len(self._done) > _DONE_CAP:
                old = self._done.popleft()
                self._history.pop(old, None)
                self._payloads.pop(old, None)
                self._misses.pop(old, None)

    # -- Broker protocol ---------------------------------------------------
    def submit(self, task_id: str, payload: bytes) -> None:
        """Enqueue on the home shard, failing over along the rotation."""
        with self._lock:
            history = self._history.get(task_id)
            current = history[-1] if history else None
        order = self._rotation(self._home_shard(task_id))
        if current is not None:
            # Resubmissions (executor backoff) stick to the shard the
            # chunk currently lives on, so its claimed/queued copies
            # stay in one place while that shard is healthy.
            order.sort(key=lambda shard: shard.index != current)
        last_error: Optional[BaseException] = None
        for shard in order:
            if not self._available(shard):
                continue
            try:
                shard.broker.submit(task_id, payload)
            except (TransientEngineError, OSError) as exc:
                last_error = exc
                self._note_failure(shard)
                continue
            self._note_success(shard)
            with self._lock:
                self._payloads[task_id] = payload
            self._record_placement(task_id, shard.index)
            return
        raise TransientEngineError(
            f"shard router: no reachable shard (of {len(self._shards)}) "
            f"accepted submit of {task_id!r}"
            + (f" (last: {last_error})" if last_error else "")
        )

    def claim(self, worker_id: str) -> Optional[Tuple[str, bytes]]:
        """Take one queued task from any reachable shard (rotating).

        Raises :class:`~repro.exceptions.TransientEngineError` when *no*
        shard is reachable — callers (``worker.serve``) back off instead
        of reading a total outage as an idle, drained queue.
        """
        with self._lock:
            start = self._cursor
            self._cursor = (self._cursor + 1) % len(self._shards)
        reachable = False
        for shard in self._rotation(start):
            if not self._available(shard):
                continue
            try:
                claimed = shard.broker.claim(worker_id)
            except (TransientEngineError, OSError):
                self._note_failure(shard)
                continue
            reachable = True
            self._note_success(shard)
            if claimed is not None:
                self._record_placement(claimed[0], shard.index)
                return claimed
        if not reachable:
            raise TransientEngineError(
                f"shard router: all {len(self._shards)} shards unavailable"
            )
        return None

    def complete(self, task_id: str, payload: bytes) -> None:
        """Publish a result — to the claim shard, else any survivor.

        Results are keyed by task id and byte-identical wherever they
        are computed, so landing one on a fallback shard is safe; the
        submitter's fetch sweep widens to other shards when the chunk's
        recorded shard keeps missing.
        """
        with self._lock:
            history = self._history.get(task_id)
            current = history[-1] if history else None
        order = self._rotation(
            current if current is not None else self._home_shard(task_id)
        )
        last_error: Optional[BaseException] = None
        for shard in order:
            if not self._available(shard):
                continue
            try:
                shard.broker.complete(task_id, payload)
            except (TransientEngineError, OSError) as exc:
                last_error = exc
                self._note_failure(shard)
                continue
            self._note_success(shard)
            self._record_placement(task_id, shard.index)
            self._trim_done(task_id)
            return
        raise TransientEngineError(
            f"shard router: complete({task_id!r}) found no reachable shard"
            + (f" (last: {last_error})" if last_error else "")
        )

    def fetch_result(self, task_id: str) -> Optional[bytes]:
        """Collect a result: current shard first, history, then sweep.

        Unroutable (total outage) returns ``None`` — the campaign stalls
        and resumes, it never dies on a fetch.  If the chunk's current
        shard is down it is migrated (resubmitted to a survivor) before
        the fetch, so a single dead shard delays a result by at most one
        poll interval plus a re-execution.
        """
        with self._lock:
            history = list(self._history.get(task_id, ()))
        if not history:
            history = [self._home_shard(task_id)]
        current = self._shards[history[-1]]
        if not self._available(current):
            migrated = self._migrate(task_id)
            if migrated is not None:
                history.append(migrated)
        sweep = list(dict.fromkeys(reversed(history)))
        with self._lock:
            misses = self._misses.get(task_id, 0)
        if (misses + 1) % _FULL_SWEEP_EVERY == 0:
            sweep += [
                shard.index
                for shard in self._shards
                if shard.index not in sweep
            ]
        for index in sweep:
            shard = self._shards[index]
            if not self._available(shard):
                continue
            try:
                payload = shard.broker.fetch_result(task_id)
            except (TransientEngineError, OSError):
                self._note_failure(shard)
                continue
            self._note_success(shard)
            if payload is not None:
                self._forget(task_id, keep=index)
                return payload
        with self._lock:
            if task_id in self._history:  # unknown ids stay untracked
                self._misses[task_id] = misses + 1
        return None

    def requeue(self, task_id: str) -> bool:
        """Requeue on the shard currently holding the claim."""
        with self._lock:
            history = self._history.get(task_id)
        index = history[-1] if history else self._home_shard(task_id)
        shard = self._shards[index]
        if not self._available(shard):
            return False
        try:
            requeued = shard.broker.requeue(task_id)
        except (TransientEngineError, OSError):
            self._note_failure(shard)
            return False
        self._note_success(shard)
        return requeued

    def discard(self, task_id: str) -> bool:
        """Withdraw the task from every shard it has touched."""
        with self._lock:
            history = list(self._history.get(task_id, ()))
        if not history:
            history = [self._home_shard(task_id)]
        removed = False
        for index in dict.fromkeys(history):
            shard = self._shards[index]
            if not self._available(shard):
                continue
            try:
                removed = shard.broker.discard(task_id) or removed
            except (TransientEngineError, OSError):
                self._note_failure(shard)
                continue
            self._note_success(shard)
        with self._lock:
            self._history.pop(task_id, None)
            self._payloads.pop(task_id, None)
            self._misses.pop(task_id, None)
        return removed

    def dead_letter(self, task_id: str, payload: bytes, info: bytes) -> None:
        """Quarantine on the current shard, else any reachable shard."""
        with self._lock:
            history = self._history.get(task_id)
            current = history[-1] if history else None
        order = self._rotation(
            current if current is not None else self._home_shard(task_id)
        )
        for shard in order:
            if not self._available(shard):
                continue
            try:
                shard.broker.dead_letter(task_id, payload, info)
            except (TransientEngineError, OSError):
                self._note_failure(shard)
                continue
            self._note_success(shard)
            self._forget(task_id, keep=shard.index)
            return
        raise TransientEngineError(
            f"shard router: dead_letter({task_id!r}) found no reachable shard"
        )

    def dead_letters(self) -> List[str]:
        """Union of every reachable shard's quarantine (sorted)."""
        found = set()
        for shard in self._shards:
            if not self._available(shard):
                continue
            try:
                found.update(shard.broker.dead_letters())
            except (TransientEngineError, OSError):
                self._note_failure(shard)
                continue
            self._note_success(shard)
        return sorted(found)

    def fetch_dead_letter(
        self, task_id: str
    ) -> Optional[Tuple[bytes, bytes]]:
        """First reachable shard that holds the quarantined task wins."""
        for shard in self._shards:
            if not self._available(shard):
                continue
            try:
                entry = shard.broker.fetch_dead_letter(task_id)
            except (TransientEngineError, OSError):
                self._note_failure(shard)
                continue
            self._note_success(shard)
            if entry is not None:
                return entry
        return None

    def heartbeat(self, worker_id: str) -> None:
        """Advertise liveness on every reachable shard (best-effort)."""
        for shard in self._shards:
            if not self._available(shard):
                continue
            try:
                shard.broker.heartbeat(worker_id)
            except (TransientEngineError, OSError):
                self._note_failure(shard)
                continue
            self._note_success(shard)

    def live_workers(self, horizon: float) -> List[str]:
        """Union of worker ids any reachable shard heard recently."""
        alive = set()
        for shard in self._shards:
            if not self._available(shard):
                continue
            try:
                alive.update(shard.broker.live_workers(horizon))
            except (TransientEngineError, OSError):
                self._note_failure(shard)
                continue
            self._note_success(shard)
        return sorted(alive)

    def deregister(self, worker_id: str) -> None:
        """Drop liveness state on every reachable shard (best-effort)."""
        for shard in self._shards:
            if not self._available(shard):
                continue
            try:
                shard.broker.deregister(worker_id)
            except (TransientEngineError, OSError):
                self._note_failure(shard)
                continue
            self._note_success(shard)

    def stale_claims(self, horizon: float) -> List[str]:
        """Union of expired claims across the reachable shards."""
        stale = set()
        for shard in self._shards:
            if not self._available(shard):
                continue
            try:
                stale.update(shard.broker.stale_claims(horizon))
            except (TransientEngineError, OSError):
                self._note_failure(shard)
                continue
            self._note_success(shard)
        return sorted(stale)

    def request_stop(self) -> None:
        """Raise the shutdown flag on every reachable shard."""
        for shard in self._shards:
            if not self._available(shard):
                continue
            try:
                shard.broker.request_stop()
            except (TransientEngineError, OSError):
                self._note_failure(shard)
                continue
            self._note_success(shard)

    def stop_requested(self) -> bool:
        """Whether any reachable shard has the shutdown flag raised."""
        for shard in self._shards:
            if not self._available(shard):
                continue
            try:
                stop = shard.broker.stop_requested()
            except (TransientEngineError, OSError):
                self._note_failure(shard)
                continue
            self._note_success(shard)
            if stop:
                return True
        return False

    # -- supervision + observability ---------------------------------------
    def supervise(self) -> None:
        """One supervision pass (the executor calls this while idle).

        Drives open breakers through their half-open probes when due,
        and migrates any chunk stranded on an unavailable shard (the
        eager sweep at breaker-open time can miss chunks whose failover
        target was itself down at that moment).
        """
        for shard in self._shards:
            self._available(shard)
        with self._lock:
            stranded = [
                task_id
                for task_id, history in self._history.items()
                if history
                and task_id in self._payloads
                and self._shards[history[-1]].state != _CLOSED
            ]
        for task_id in stranded:
            self._migrate(task_id)

    def pending_tasks(self) -> int:
        """Queued task count summed over reachable shards (monitoring)."""
        total = 0
        for shard in self._shards:
            counter = getattr(shard.broker, "pending_tasks", None)
            if counter is None or not self._available(shard):
                continue
            try:
                total += counter()
            except (TransientEngineError, OSError):
                self._note_failure(shard)
        return total

    def engine_counters(self) -> Dict[str, int]:
        """Router failover counters + summed sub-broker counters.

        Open/skewed shards reuse their last fetched counters instead of
        paying a doomed round trip — a dead shard can never stall the
        executor's end-of-dispatch stats sync.
        """
        with self._lock:
            totals = dict(self.counters)
        for shard in self._shards:
            getter = getattr(shard.broker, "engine_counters", None)
            if getter is None:
                continue
            with self._lock:
                reachable = shard.state == _CLOSED and not shard.skewed
            if reachable:
                try:
                    counters = getter()
                except (TransientEngineError, OSError):
                    self._note_failure(shard)
                    counters = dict(shard.last_counters)
                else:
                    with self._lock:
                        shard.last_counters = dict(counters)
            else:
                counters = dict(shard.last_counters)
            for name, value in counters.items():
                totals[name] = totals.get(name, 0) + int(value)
        return totals

    def describe_fleet(self) -> str:
        """Per-shard breakdown for ``--verbose`` output and examples."""
        with self._lock:
            counters = dict(self.counters)
            lines = [
                f"shard[{shard.index}] {shard.name}: "
                + ("schema-skew" if shard.skewed else shard.state)
                + (
                    f" (failures={shard.failures})"
                    if shard.failures
                    else ""
                )
                for shard in self._shards
            ]
        head = (
            f"shards: {len(self._shards)} / "
            f"failovers: {counters['shard_failovers']} "
            f"breaker opens: {counters['breaker_opens']} "
            f"migrated: {counters['chunks_migrated']} "
            f"restarts: {counters['shard_restarts']}"
        )
        return head + "".join(f"\n  {line}" for line in lines)

    def shard_states(self) -> List[str]:
        """Current breaker state per shard (``closed``/``open``/...)."""
        with self._lock:
            return [
                "schema-skew" if shard.skewed else shard.state
                for shard in self._shards
            ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShardRouter({[shard.name for shard in self._shards]!r})"
