"""The queue fabric's transport: a pluggable task/result broker.

The queue executor (:mod:`repro.engine.queue_exec`) never talks to its
workers directly — it serialises work through a :class:`Broker`, an
at-least-once task/result queue small enough to implement over any
shared medium.  The bundled :class:`FileBroker` runs it over a spool
directory (atomic renames on one host or any shared filesystem); a
remote backend (redis, SQS, an HTTP service) only has to provide the
same small operation set to plug in.

The delivery contract
---------------------

Brokers are deliberately *at-least-once*, not exactly-once: a claimed
task whose worker goes silent is requeued and may eventually run twice.
That is safe — and is why the contract is so small — because every
payload is a pickled tuple of :class:`~repro.engine.request.RunRequest`
and requests are pure functions of their seed (the determinism contract
in :mod:`repro.engine`): duplicate executions produce byte-identical
result payloads, so whichever completion lands first is *the* answer
and later duplicates overwrite it with the same bytes.

Concretely a broker must guarantee:

* :meth:`~Broker.submit` / :meth:`~Broker.claim` — each submitted task
  is claimed by at most one worker at a time (atomic hand-off);
* :meth:`~Broker.complete` / :meth:`~Broker.fetch_result` — a completed
  task's result payload is retrievable exactly once by the submitter;
  completing an already-completed task is a harmless overwrite;
* :meth:`~Broker.requeue` — a claimed task can be pushed back for
  another worker (used when the claimant's heartbeat goes stale);
* :meth:`~Broker.discard` — a queued task (and any uncollected result)
  can be withdrawn by the submitter, e.g. when a dispatch aborts;
* :meth:`~Broker.dead_letter` / :meth:`~Broker.dead_letters` /
  :meth:`~Broker.fetch_dead_letter` — a chunk that exhausted its retry
  budget is quarantined with its payload and remote traceback instead
  of wedging the campaign (see :mod:`repro.engine.retry` and the
  runbook in ``docs/RESILIENCE.md``);
* :meth:`~Broker.heartbeat` / :meth:`~Broker.live_workers` /
  :meth:`~Broker.deregister` — workers advertise liveness (and say
  goodbye when they drain); the submitter uses it for timeout
  decisions;
* :meth:`~Broker.request_stop` / :meth:`~Broker.stop_requested` — a
  cooperative shutdown flag workers poll between tasks.
"""

from __future__ import annotations

import os
import socket
import time
import uuid
from pathlib import Path
from typing import Dict, List, Optional, Protocol, Tuple, runtime_checkable

from ..exceptions import ConfigurationError

__all__ = ["Broker", "FileBroker", "worker_identity"]


def worker_identity() -> str:
    """A broker-unique worker id: ``host-pid-nonce``."""
    return f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:6]}"


@runtime_checkable
class Broker(Protocol):
    """The pluggable queue transport (see the module docstring).

    Implementations carry opaque ``bytes`` payloads both ways and never
    inspect them; all ordering/reassembly semantics live in the queue
    executor, all purity/duplication semantics in the RunRequest
    determinism contract.
    """

    def submit(self, task_id: str, payload: bytes) -> None:
        """Enqueue one task payload under ``task_id``."""
        ...

    def claim(self, worker_id: str) -> Optional[Tuple[str, bytes]]:
        """Atomically take one queued task, or ``None`` if empty."""
        ...

    def complete(self, task_id: str, payload: bytes) -> None:
        """Publish a finished task's result payload (idempotent)."""
        ...

    def fetch_result(self, task_id: str) -> Optional[bytes]:
        """Collect (and consume) a result, or ``None`` if not ready."""
        ...

    def requeue(self, task_id: str) -> bool:
        """Push a claimed task back onto the queue; ``True`` if it was."""
        ...

    def discard(self, task_id: str) -> bool:
        """Withdraw a queued task and drop any uncollected result.

        ``True`` if anything was removed.  A task currently *claimed*
        is not touched — its eventual result is dropped by the next
        ``discard`` or overwritten by a later submit of the same id.
        """
        ...

    def dead_letter(self, task_id: str, payload: bytes, info: bytes) -> None:
        """Quarantine a poisoned task: keep its payload + failure info.

        Dead-lettered tasks are out of the delivery loop — no worker
        will claim them — but stay inspectable and resubmittable by an
        operator (``info`` carries the remote traceback).
        """
        ...

    def dead_letters(self) -> List[str]:
        """Task ids currently quarantined in the dead-letter spool."""
        ...

    def fetch_dead_letter(
        self, task_id: str
    ) -> Optional[Tuple[bytes, bytes]]:
        """Remove one quarantined task; ``(payload, info)`` or ``None``.

        Fetching un-quarantines: the caller now owns the payload (to
        resubmit it after a fix, or drop it for good).
        """
        ...

    def heartbeat(self, worker_id: str) -> None:
        """Record that ``worker_id`` is alive right now."""
        ...

    def live_workers(self, horizon: float) -> List[str]:
        """Workers whose last heartbeat is younger than ``horizon`` s."""
        ...

    def deregister(self, worker_id: str) -> None:
        """Forget a worker's liveness record (a graceful drain/leave)."""
        ...

    def stale_claims(self, horizon: float) -> List[str]:
        """Task ids claimed by workers silent for over ``horizon`` s."""
        ...

    def request_stop(self) -> None:
        """Raise the cooperative shutdown flag for all workers."""
        ...

    def stop_requested(self) -> bool:
        """Whether shutdown has been requested."""
        ...


class FileBroker:
    """The bundled local broker: a spool directory of atomic renames.

    Layout under ``root`` (all directories created eagerly)::

        queue/<task>.task      submitted, unclaimed payloads
        claimed/<task>.task    payloads a worker is executing
        claimed/<task>.owner   claimant worker id (one line)
        results/<task>.result  completed result payloads
        dead/<task>.task       quarantined (dead-lettered) payloads
        dead/<task>.info       the quarantined task's failure report
        workers/<worker>.beat  heartbeat files (mtime = last beat)
        stop                   cooperative-shutdown sentinel

    Every visible file appears via ``os.replace`` of a fsynced staging
    file written *in the target's own directory* (dot-prefixed, so no
    glob sees it; same-directory so the rename never crosses a device
    on spools that mount subdirectories separately), so readers never
    observe partial payloads — even across a crash mid-write — and a claim *is*
    one ``os.replace`` from ``queue/`` to ``claimed/`` — the filesystem
    arbitrates racing workers (the losers get ``FileNotFoundError`` and
    move on).  This works unchanged across processes of one host and
    across hosts mounting a shared filesystem; liveness comes from
    heartbeat-file mtimes, so hosts sharing a spool should have loosely
    synchronised clocks (the horizon is seconds, not microseconds).
    """

    def __init__(self, root: os.PathLike | str):
        self.root = Path(root)
        for sub in ("queue", "claimed", "results", "dead", "workers"):
            (self.root / sub).mkdir(parents=True, exist_ok=True)

    # -- internals ---------------------------------------------------------
    def _write_atomic(self, target: Path, payload: bytes) -> None:
        # Stage in the *target's* directory: os.replace cannot cross
        # filesystems, and a shared spool may mount subdirectories on
        # different devices.  The leading dot keeps staging files out of
        # every ``*.task`` / ``*.result`` / ``*.beat`` glob; the fsync
        # before the rename means a crash (broker-server power loss
        # included) can never publish a torn payload under a final name.
        staged = target.parent / f".{uuid.uuid4().hex}.staging"
        with open(staged, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(staged, target)

    def _queue_path(self, task_id: str) -> Path:
        if "/" in task_id or task_id in ("", ".", ".."):
            raise ConfigurationError(f"invalid task id {task_id!r}")
        return self.root / "queue" / f"{task_id}.task"

    # -- Broker protocol ---------------------------------------------------
    def submit(self, task_id: str, payload: bytes) -> None:
        """Stage the payload and rename it into ``queue/``."""
        self._write_atomic(self._queue_path(task_id), payload)

    def claim(self, worker_id: str) -> Optional[Tuple[str, bytes]]:
        """Take the lexicographically first queued task, if any.

        The ``os.replace`` into ``claimed/`` is the atomic hand-off;
        losing a race just moves on to the next entry.
        """
        claimed_dir = self.root / "claimed"
        for entry in sorted(self.root.joinpath("queue").glob("*.task")):
            target = claimed_dir / entry.name
            try:
                os.replace(entry, target)
            except FileNotFoundError:
                continue  # another worker won this task
            task_id = entry.stem
            try:
                # Stamp the *claim* time: os.replace preserves the
                # submit-time mtime, which would otherwise make a task
                # that waited in the queue look instantly stale to
                # ownerless-claim aging in stale_claims().
                os.utime(target)
                self._write_atomic(
                    claimed_dir / f"{task_id}.owner", worker_id.encode()
                )
                return task_id, target.read_bytes()
            except FileNotFoundError:
                continue  # requeued from under us: treat as a lost race
        return None

    def complete(self, task_id: str, payload: bytes) -> None:
        """Publish the result and drop the claim (idempotent)."""
        self._write_atomic(
            self.root / "results" / f"{task_id}.result", payload
        )
        for suffix in (".task", ".owner"):
            try:
                os.remove(self.root / "claimed" / f"{task_id}{suffix}")
            except FileNotFoundError:
                pass  # requeued meanwhile, or a duplicate completion

    def fetch_result(self, task_id: str) -> Optional[bytes]:
        """Read and consume one result file, if it has landed."""
        path = self.root / "results" / f"{task_id}.result"
        try:
            payload = path.read_bytes()
        except FileNotFoundError:
            return None
        try:
            os.remove(path)
        except FileNotFoundError:  # pragma: no cover - racing fetchers
            pass
        return payload

    def peek_result(self, task_id: str) -> Optional[bytes]:
        """Read a result *without* consuming it (``None`` if not landed).

        The broker server's two-phase result fetch is built on this:
        the remote client peeks, decodes, and only then acks the
        consumption — so a response lost on the wire never destroys
        the sole copy of a result.
        """
        try:
            return (self.root / "results" / f"{task_id}.result").read_bytes()
        except FileNotFoundError:
            return None

    def requeue(self, task_id: str) -> bool:
        """Move a claimed task back to ``queue/`` (e.g. dead claimant)."""
        try:
            os.replace(
                self.root / "claimed" / f"{task_id}.task",
                self._queue_path(task_id),
            )
        except FileNotFoundError:
            return False  # completed (or re-claimed) in the meantime
        try:
            os.remove(self.root / "claimed" / f"{task_id}.owner")
        except FileNotFoundError:
            pass
        return True

    def discard(self, task_id: str) -> bool:
        """Remove the queued payload and/or result file for ``task_id``."""
        removed = False
        for path in (
            self._queue_path(task_id),
            self.root / "results" / f"{task_id}.result",
        ):
            try:
                os.remove(path)
                removed = True
            except FileNotFoundError:
                pass
        return removed

    def dead_letter(self, task_id: str, payload: bytes, info: bytes) -> None:
        """Quarantine ``task_id``: payload + failure report into ``dead/``.

        Any residue of the task elsewhere in the spool (a queued
        payload from a racing resubmit, an uncollected error result)
        is withdrawn, so quarantine is the task's terminal state until
        an operator fetches it back.
        """
        self._write_atomic(self.root / "dead" / f"{task_id}.task", payload)
        self._write_atomic(self.root / "dead" / f"{task_id}.info", info)
        self.discard(task_id)

    def dead_letters(self) -> List[str]:
        """Quarantined task ids, lexicographically sorted."""
        return sorted(
            entry.stem for entry in self.root.joinpath("dead").glob("*.task")
        )

    def fetch_dead_letter(
        self, task_id: str
    ) -> Optional[Tuple[bytes, bytes]]:
        """Remove one quarantined task; ``(payload, info)`` or ``None``."""
        task_path = self.root / "dead" / f"{task_id}.task"
        info_path = self.root / "dead" / f"{task_id}.info"
        try:
            payload = task_path.read_bytes()
        except FileNotFoundError:
            return None
        try:
            info = info_path.read_bytes()
        except FileNotFoundError:
            info = b""
        for path in (task_path, info_path):
            try:
                os.remove(path)
            except FileNotFoundError:  # pragma: no cover - racing fetchers
                pass
        return payload, info

    def heartbeat(self, worker_id: str) -> None:
        """Touch the worker's beat file (mtime is the liveness clock)."""
        path = self.root / "workers" / f"{worker_id}.beat"
        try:
            os.utime(path)
        except FileNotFoundError:
            self._write_atomic(path, b"")

    def live_workers(self, horizon: float) -> List[str]:
        """Worker ids that heartbeat within the last ``horizon`` s."""
        now = time.time()
        alive = []
        for path in self.root.joinpath("workers").glob("*.beat"):
            try:
                if now - path.stat().st_mtime <= horizon:
                    alive.append(path.stem)
            except FileNotFoundError:  # pragma: no cover - races with rm
                continue
        return alive

    def deregister(self, worker_id: str) -> None:
        """Remove the worker's beat file (a drained worker's goodbye).

        A deregistered worker drops out of :meth:`live_workers`
        immediately instead of lingering until its last beat ages past
        the horizon — so the submitter's inline fallback and requeue
        decisions see fleet departures promptly.
        """
        try:
            os.remove(self.root / "workers" / f"{worker_id}.beat")
        except FileNotFoundError:
            pass

    def stale_claims(self, horizon: float) -> List[str]:
        """Claimed task ids whose owner has been silent > ``horizon`` s.

        A claim without an owner file yet (the window between the two
        claim writes) is judged by the claim file's own age instead.
        """
        live = set(self.live_workers(horizon))
        now = time.time()
        stale = []
        for entry in self.root.joinpath("claimed").glob("*.task"):
            owner_path = entry.with_suffix(".owner")
            try:
                owner = owner_path.read_text().strip()
            except FileNotFoundError:
                try:
                    if now - entry.stat().st_mtime > horizon:
                        stale.append(entry.stem)
                except FileNotFoundError:
                    pass
                continue
            if owner not in live:
                stale.append(entry.stem)
        return stale

    def request_stop(self) -> None:
        """Drop the ``stop`` sentinel workers poll between tasks."""
        self._write_atomic(self.root / "stop", b"stop\n")

    def stop_requested(self) -> bool:
        """Whether the ``stop`` sentinel exists."""
        return (self.root / "stop").exists()

    # -- convenience -------------------------------------------------------
    def pending_tasks(self) -> int:
        """Queued (unclaimed) task count — monitoring helper."""
        return sum(1 for _ in self.root.joinpath("queue").glob("*.task"))

    def probe(self) -> Dict[str, object]:
        """Health probe for the shard router's circuit breaker.

        A missing spool must *fail* the probe, not read as an empty
        queue (``glob`` over an absent directory is silently empty), so
        the structure is checked explicitly before the depth counts.
        """
        for sub in ("queue", "claimed", "results"):
            if not (self.root / sub).is_dir():
                raise OSError(
                    f"spool {self.root} is missing its {sub}/ directory"
                )
        return {
            "queued": self.pending_tasks(),
            "stop": self.stop_requested(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FileBroker({str(self.root)!r})"
