"""The asyncio executor: overlapped dispatch and reassembly.

:class:`AsyncExecutor` is the fourth engine behind the
:class:`~repro.engine.executors.Executor` interface.  Chunks still run
on a process pool (the work is CPU-bound python, so real parallelism
needs processes), but the *parent* side is driven by an asyncio event
loop instead of a blocking ``pool.map``: every chunk becomes an awaited
future, completed chunks are folded into the statistics and reassembled
the moment they land, and the loop goes back to waiting while the
remaining workers keep crunching.  That overlap is what
:meth:`~repro.engine.executors.Executor.map_stream` wants — each
``(start_index, chunk_results)`` pair is yielded between event-loop
steps with zero end-of-dispatch barrier — and it is the natural seam
for future executors that await work living outside this host (the
queue executor builds exactly that seam out of a broker instead of a
pool).

Like every engine, the executor is a pure transport: requests are
self-seeded and independent (the :class:`~repro.engine.request.RunRequest`
determinism contract), so event-loop scheduling, chunk completion order
and pool reuse cannot influence any result — the reassembled output is
byte-identical to :class:`~repro.engine.executors.SerialExecutor`.
The pool persists across ``map`` calls (as in
:class:`~repro.engine.executors.PersistentPoolExecutor`), so sweeps pay
process start-up once.
"""

from __future__ import annotations

import asyncio
from typing import Any, Iterator, List, Tuple

from .executors import _PersistentPooled
from .request import RunRequest

__all__ = ["AsyncExecutor"]


class AsyncExecutor(_PersistentPooled):
    """asyncio-driven process fan-out with streaming reassembly.

    ``map`` and ``map_stream`` submit every chunk to a persistent
    process pool and then step an event loop: each
    ``asyncio.FIRST_COMPLETED`` wait wakes the parent exactly when a
    chunk lands, so statistics folding and result reassembly overlap
    the remaining computation instead of waiting for a full barrier.
    Results are byte-identical to every other engine (the determinism
    contract); only arrival order — and wall-clock — differ.

    Parameters
    ----------
    workers:
        Process count of the underlying pool (``1`` runs inline, like
        the pooled executors).
    chunk_size:
        Contiguous requests per dispatch unit; default ~4 chunks per
        worker (:func:`~repro.engine.executors.default_chunk_size`).
    """

    name = "async"

    def _map(self, requests: List[RunRequest]) -> List[Any]:
        chunks = self._chunked(requests)
        if self.workers == 1 or len(chunks) == 1:
            return self._run_inline(chunks)
        slots: List[Any] = [None] * len(requests)
        for start, results in self._drive(chunks):
            slots[start:start + len(results)] = results
        return slots

    def _map_stream(
        self, requests: List[RunRequest]
    ) -> Iterator[Tuple[int, List[Any]]]:
        chunks = self._chunked(requests)
        if self.workers == 1 or len(chunks) == 1:
            return self._stream_inline(chunks)
        return self._drive(chunks)

    def _drive(
        self, chunks: List[Tuple[RunRequest, ...]]
    ) -> Iterator[Tuple[int, List[Any]]]:
        """Submit all chunks, then step the loop and yield completions.

        A private event loop per dispatch (the pool outlives it): all
        chunk futures are created up front, then every iteration awaits
        ``FIRST_COMPLETED``, folds the finished chunks' cache deltas and
        yields their ``(start_index, results)`` pairs while the pool
        keeps working on the rest.  Journal-aware like every dispatch
        path: already-journaled chunks are yielded before the loop ever
        spins, and fresh completions are journaled as they land.
        """
        call = self._chunk_call()
        hits: List[Tuple[int, List[Any]]] = []
        fresh: List[Tuple[int, Tuple[RunRequest, ...]]] = []
        start = 0
        for chunk in chunks:
            cached = self._journal_fetch(chunk)
            if cached is not None:
                hits.append((start, cached))
            else:
                fresh.append((start, chunk))
            start += len(chunk)
        yield from hits
        if not fresh:
            return
        pool = self._ensure_pool()
        loop = asyncio.new_event_loop()
        try:
            pending = {}
            for chunk_start, chunk in fresh:
                future = loop.run_in_executor(pool, call, chunk)
                pending[future] = (chunk_start, chunk)
            while pending:
                done, _ = loop.run_until_complete(
                    asyncio.wait(
                        set(pending), return_when=asyncio.FIRST_COMPLETED
                    )
                )
                for future in done:
                    output = future.result()
                    self._fold_output(output)
                    chunk_start, chunk = pending.pop(future)
                    self._journal_store(chunk, output)
                    yield chunk_start, output[0]
        finally:
            loop.close()
