"""Per-process workload memoisation.

Replicates of the same scenario draw their pack — and build their
:class:`~repro.resilience.expected_time.ExpectedTimeModel` — from
``(config, replicate seed)`` alone, so identical draws requested twice
(the same scenario appearing at several sweep points, paired campaigns,
repeated figures of a multi-figure run) can share one construction.
:data:`shared_cache` is that memo: one instance per process, so pool
workers that stay alive across dispatches (the persistent executor)
keep their packs warm across whole campaigns.

Reuse is safe because every cached value is a pure function of its key:
by the :class:`~repro.engine.request.RunRequest` determinism contract a
rebuild would produce the same pack and a model whose outputs are
cache-history-independent, so hits never change any result.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Dict, Hashable, Tuple

from ..exceptions import ConfigurationError

__all__ = ["WorkloadCache", "shared_cache"]


class WorkloadCache:
    """Bounded LRU memo of workload constructions.

    ``get_or_build(key, builder)`` returns the cached value for ``key``
    or calls ``builder()`` and remembers the result, evicting the
    least-recently-used entry past ``capacity``.  Counters feed the
    engine's ``cache_info()``-style statistics.

    The default capacity covers the replicate working set of the
    ``tiny``/``small`` scaling presets, so repeated figures of one
    campaign reuse every draw.  Paper-scale scenarios cycle 50
    replicates per sweep point — more than fit here by default, and each
    paper-scale model holds megabytes of grids, so cross-figure reuse at
    that scale is opt-in: raise ``shared_cache.capacity`` to at least
    the scenario's replicate count and budget the memory accordingly.
    """

    def __init__(self, capacity: int = 16):
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get_or_build(self, key: Hashable, builder: Callable[[], Any]) -> Any:
        """The value for ``key``, building (and caching) it on a miss."""
        try:
            value = self._entries[key]
        except KeyError:
            pass
        else:
            self._entries.move_to_end(key)
            self.hits += 1
            return value
        value = builder()
        self.misses += 1
        self._entries[key] = value
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        return value

    def snapshot(self) -> Tuple[int, int]:
        """Current ``(hits, misses)`` — used to compute per-chunk deltas."""
        return self.hits, self.misses

    def cache_info(self) -> Dict[str, float]:
        """Counters in the style of ``functools.lru_cache.cache_info``."""
        lookups = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self._entries),
            "capacity": self.capacity,
            "hit_rate": self.hits / lookups if lookups else 0.0,
        }

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0


#: The process-wide memo.  Pool workers each hold their own instance;
#: the persistent executor's workers keep it warm across dispatches.
shared_cache = WorkloadCache()
