"""The remote broker server: a durable spool behind authenticated HTTP.

::

    python -m repro.engine.broker_server --spool /srv/campaign --port 8642

exposes the full :class:`~repro.engine.broker.Broker` operation set of
a :class:`~repro.engine.broker.FileBroker` spool over token-bearer
HTTP, for :class:`~repro.engine.http_broker.HTTPBroker` submitters and
``python -m repro.engine.worker --broker http://host:8642`` workers on
any reachable host.  Three properties carry the fabric's robustness
story (the operator runbook is ``docs/RESILIENCE.md``):

* **Durability.**  Every queue/claim/result/dead-letter mutation is an
  fsynced atomic rename in the spool — the server process holds *no*
  task state worth losing.  Kill it (``kill -9`` included) and restart
  it on the same ``--spool`` and every queued, claimed, completed and
  quarantined task is exactly where it was.
* **Server-side leases.**  ``claim`` opens a lease stamped with the
  *server's monotonic clock*, renewed by heartbeats and released by
  ``complete``/``requeue``/``deregister``.  ``stale_claims`` is pure
  server-side arithmetic on that one clock, so cross-host wall-clock
  skew can never misjudge a worker dead (or alive).  After a restart
  the lease table is empty: claims become reclaimable one horizon
  after boot — late enough for surviving workers to re-announce
  themselves, soon enough that work lost with a dead worker requeues.
* **Idempotent wire semantics.**  Claims carry a client nonce and the
  last response per worker is cached and replayed, and result fetches
  are two-phase (peek, then ack) — so the
  :class:`~repro.engine.http_broker.HTTPBroker` client may blindly
  retry any operation whose response was lost to the network.

The transport is deliberately stdlib-only (``ThreadingHTTPServer`` +
JSON bodies, base64 for payload bytes): one request per operation, a
bearer token compared in constant time, ``/status`` for monitoring.
"""

from __future__ import annotations

import argparse
import base64
import hmac
import json
import os
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Sequence, Set, Tuple

from .broker import FileBroker

__all__ = ["SCHEMA_VERSION", "BrokerService", "BrokerServer", "main"]

#: Version of the wire operation set + status document.  Bump it when
#: an operation's semantics change incompatibly; shard-router health
#: probes compare it to tell protocol skew (permanent exclusion) from
#: a mere restart (``boot_monotonic`` moved — transient, re-admitted).
SCHEMA_VERSION = 2

#: Hard cap on request bodies (a chunk payload is typically ~KBs).
MAX_BODY_BYTES = 256 * 1024 * 1024


def _b64(payload: bytes) -> str:
    """Bytes -> JSON-safe base64 text."""
    return base64.b64encode(payload).decode("ascii")


def _unb64(text: str) -> bytes:
    """Inverse of :func:`_b64`."""
    return base64.b64decode(text.encode("ascii"))


class BrokerService:
    """Server-side broker semantics: durable spool + monotonic leases.

    Everything durable delegates to the :class:`FileBroker` spool;
    everything *temporal* — heartbeats, claim leases, the fleet
    join/leave ledger — lives in memory on one monotonic clock
    (``clock``, injectable for tests).  ``handle(op, data)`` dispatches
    one decoded request and returns the response document; transport
    concerns (HTTP, auth, JSON framing) stay in the handler class.
    """

    def __init__(self, spool, *, clock=time.monotonic):
        self.spool = (
            spool if isinstance(spool, FileBroker) else FileBroker(spool)
        )
        self._clock = clock
        self._lock = threading.RLock()
        self._started = clock()
        self._beats: Dict[str, float] = {}
        self._known: Set[str] = set()
        self._owners: Dict[str, str] = {}
        self._claimed_at: Dict[str, float] = {}
        self._expired: Set[str] = set()
        self._claim_replay: Dict[str, Tuple[str, Dict]] = {}
        self.counters: Dict[str, int] = {
            "requests": 0,
            "worker_joins": 0,
            "worker_leaves": 0,
            "lease_expiries": 0,
        }

    # -- internals ---------------------------------------------------------
    def _note_beat(self, worker_id: str) -> None:
        self._beats[worker_id] = self._clock()
        if worker_id not in self._known:
            self._known.add(worker_id)
            self.counters["worker_joins"] += 1

    def _release_lease(self, task_id: str) -> None:
        self._owners.pop(task_id, None)
        self._claimed_at.pop(task_id, None)
        self._expired.discard(task_id)

    def handle(self, op: str, data: Dict) -> Dict:
        """Dispatch one operation; raises ``LookupError`` on unknown ops."""
        handler = getattr(self, f"_op_{op}", None)
        if handler is None or not op.islower() or op.startswith("_"):
            raise LookupError(op)
        with self._lock:
            self.counters["requests"] += 1
        return handler(data)

    # -- durable operations (spool-backed) ---------------------------------
    def _op_submit(self, data: Dict) -> Dict:
        self.spool.submit(data["task_id"], _unb64(data["payload"]))
        return {}

    def _op_claim(self, data: Dict) -> Dict:
        worker_id = data["worker_id"]
        nonce = data.get("nonce")
        with self._lock:
            cached = self._claim_replay.get(worker_id)
            if nonce is not None and cached is not None and cached[0] == nonce:
                # The worker never saw our previous answer: replay it
                # verbatim instead of claiming a second task (idempotent
                # claim — the partition-tolerance linchpin).
                return dict(cached[1])
            self._note_beat(worker_id)
        task = self.spool.claim(worker_id)
        with self._lock:
            if task is None:
                response: Dict = {"task_id": None}
            else:
                task_id, payload = task
                self._owners[task_id] = worker_id
                self._claimed_at[task_id] = self._clock()
                self._expired.discard(task_id)
                response = {"task_id": task_id, "payload": _b64(payload)}
            if nonce is not None:
                self._claim_replay[worker_id] = (nonce, dict(response))
        return response

    def _op_complete(self, data: Dict) -> Dict:
        task_id = data["task_id"]
        self.spool.complete(task_id, _unb64(data["payload"]))
        with self._lock:
            self._release_lease(task_id)
        return {}

    def _op_peek_result(self, data: Dict) -> Dict:
        payload = self.spool.peek_result(data["task_id"])
        return {"payload": None if payload is None else _b64(payload)}

    def _op_ack_result(self, data: Dict) -> Dict:
        return {"removed": self.spool.fetch_result(data["task_id"]) is not None}

    def _op_requeue(self, data: Dict) -> Dict:
        task_id = data["task_id"]
        requeued = self.spool.requeue(task_id)
        if requeued:
            with self._lock:
                self._release_lease(task_id)
        return {"requeued": requeued}

    def _op_discard(self, data: Dict) -> Dict:
        return {"removed": self.spool.discard(data["task_id"])}

    def _op_dead_letter(self, data: Dict) -> Dict:
        task_id = data["task_id"]
        self.spool.dead_letter(
            task_id, _unb64(data["payload"]), _unb64(data.get("info") or "")
        )
        with self._lock:
            self._release_lease(task_id)
        return {}

    def _op_dead_letters(self, data: Dict) -> Dict:
        return {"task_ids": self.spool.dead_letters()}

    def _op_fetch_dead_letter(self, data: Dict) -> Dict:
        fetched = self.spool.fetch_dead_letter(data["task_id"])
        if fetched is None:
            return {"payload": None}
        payload, info = fetched
        return {"payload": _b64(payload), "info": _b64(info)}

    def _op_request_stop(self, data: Dict) -> Dict:
        self.spool.request_stop()
        return {}

    def _op_stop_requested(self, data: Dict) -> Dict:
        return {"stop": self.spool.stop_requested()}

    # -- temporal operations (server monotonic clock) ----------------------
    def _op_heartbeat(self, data: Dict) -> Dict:
        with self._lock:
            self._note_beat(data["worker_id"])
        return {}

    def _op_deregister(self, data: Dict) -> Dict:
        worker_id = data["worker_id"]
        with self._lock:
            self._beats.pop(worker_id, None)
            self._claim_replay.pop(worker_id, None)
            if worker_id in self._known:
                self._known.discard(worker_id)
                self.counters["worker_leaves"] += 1
        self.spool.deregister(worker_id)
        return {}

    def _op_live_workers(self, data: Dict) -> Dict:
        horizon = float(data["horizon"])
        with self._lock:
            now = self._clock()
            workers = sorted(
                worker
                for worker, beat in self._beats.items()
                if now - beat <= horizon
            )
        return {"workers": workers}

    def _op_stale_claims(self, data: Dict) -> Dict:
        horizon = float(data["horizon"])
        with self._lock:
            now = self._clock()
            stale = []
            claimed = self.spool.root.joinpath("claimed").glob("*.task")
            for entry in claimed:
                task_id = entry.stem
                owner = self._owners.get(task_id)
                if owner is None:
                    # Unknown lease (a claim that survived a server
                    # restart): recover the owner from the spool so a
                    # surviving worker's fresh beats still renew it.
                    try:
                        owner = (
                            entry.with_suffix(".owner").read_text().strip()
                        )
                    except OSError:
                        owner = None
                # The lease's last signal: boot time (the restart grace
                # period), the claim stamp, and the owner's last beat —
                # all on this one monotonic clock.
                last = max(
                    self._started,
                    self._claimed_at.get(task_id, self._started),
                    self._beats.get(owner, self._started)
                    if owner is not None
                    else self._started,
                )
                if now - last > horizon:
                    stale.append(task_id)
                    if task_id not in self._expired:
                        self._expired.add(task_id)
                        self.counters["lease_expiries"] += 1
            return {
                "task_ids": sorted(stale),
                "lease_expiries": self.counters["lease_expiries"],
            }

    def _op_status(self, data: Dict) -> Dict:
        with self._lock:
            status: Dict[str, object] = {
                "spool": str(self.spool.root),
                # schema_version vs boot_monotonic is how a shard
                # router's health probe tells a *restarted* server
                # (boot stamp moved, welcome it back) from *protocol
                # skew* (schema changed, exclude it permanently).
                "schema_version": SCHEMA_VERSION,
                "boot_monotonic": self._started,
                "uptime": self._clock() - self._started,
                "queued": self.spool.pending_tasks(),
                "claimed": sum(
                    1
                    for _ in self.spool.root.joinpath("claimed").glob(
                        "*.task"
                    )
                ),
                "dead": len(self.spool.dead_letters()),
                "workers_known": len(self._known),
                "stop": self.spool.stop_requested(),
            }
            status.update(self.counters)
        return status


class _Handler(BaseHTTPRequestHandler):
    """JSON-over-POST framing around a :class:`BrokerService`."""

    server_version = "repro-broker/1"
    protocol_version = "HTTP/1.1"

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        """``POST /api/<op>`` with a JSON body -> a JSON response."""
        if not self.server.check_auth(self.headers.get("Authorization")):
            self._reply(401, {"error": "unauthorized"})
            return
        if not self.path.startswith("/api/"):
            self._reply(404, {"error": f"unknown path {self.path!r}"})
            return
        op = self.path[len("/api/"):]
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            self._reply(400, {"error": "bad Content-Length"})
            return
        if length > MAX_BODY_BYTES:
            self._reply(413, {"error": "request body too large"})
            return
        raw = self.rfile.read(length) if length else b""
        try:
            data = json.loads(raw) if raw else {}
        except ValueError:
            self._reply(400, {"error": "request body is not JSON"})
            return
        try:
            body = self.server.service.handle(op, data)
        except LookupError:
            self._reply(404, {"error": f"unknown operation {op!r}"})
        except (KeyError, TypeError, ValueError) as exc:
            self._reply(400, {"error": f"bad request: {exc!r}"})
        except OSError as exc:
            self._reply(500, {"error": f"spool I/O failed: {exc!r}"})
        else:
            self._reply(200, body)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        """``GET /status`` convenience for curl/monitoring."""
        if not self.server.check_auth(self.headers.get("Authorization")):
            self._reply(401, {"error": "unauthorized"})
            return
        if self.path in ("/status", "/api/status"):
            self._reply(200, self.server.service.handle("status", {}))
        else:
            self._reply(404, {"error": f"unknown path {self.path!r}"})

    def _reply(self, status: int, body: Dict) -> None:
        payload = json.dumps(body).encode("utf-8")
        try:
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            pass  # the client hung up mid-response; nothing to salvage

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Per-request logging only under ``--verbose``."""
        if getattr(self.server, "verbose", False):  # pragma: no cover
            BaseHTTPRequestHandler.log_message(self, format, *args)


class BrokerServer:
    """One broker server: spool + service + threaded HTTP listener.

    Usable three ways: in-process for tests and examples
    (:meth:`start` / :meth:`shutdown`), blocking from ``__main__``
    (:meth:`serve_forever`), and *restartable* — construct a new
    instance on the same spool (and port; the listener sets
    ``allow_reuse_address``) after a kill and every durable task state
    is recovered from disk, while leases restart from the boot-time
    grace period (see :class:`BrokerService`).
    """

    def __init__(
        self,
        spool,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        token: Optional[str] = None,
        verbose: bool = False,
    ):
        self.service = BrokerService(spool)
        self.host = host
        self.token = token
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.service = self.service
        self._httpd.verbose = verbose

        def check_auth(header: Optional[str]) -> bool:
            if not token:
                return True
            return header is not None and hmac.compare_digest(
                header, f"Bearer {token}"
            )

        self._httpd.check_auth = check_auth
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        """The bound TCP port (useful with ``port=0`` auto-assignment)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """The base URL clients should connect to."""
        return f"http://{self.host}:{self.port}"

    def start(self) -> str:
        """Serve on a daemon thread; returns the base URL."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            daemon=True,
        )
        self._thread.start()
        return self.url

    def serve_forever(self) -> None:
        """Serve on the calling thread (the ``__main__`` path)."""
        self._httpd.serve_forever(poll_interval=0.5)

    def close_socket(self) -> None:
        """Release the listening socket (after ``serve_forever`` returns)."""
        self._httpd.server_close()

    def shutdown(self) -> None:
        """Stop a :meth:`start`-ed server and release the socket.

        The spool is untouched: a new :class:`BrokerServer` on the same
        directory resumes the campaign.
        """
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join(timeout=5.0)
            self._thread = None
        self._httpd.server_close()


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entrypoint: ``python -m repro.engine.broker_server``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.engine.broker_server",
        description=(
            "Serve a FileBroker spool over token-authenticated HTTP for "
            "HTTPBroker submitters and `python -m repro.engine.worker "
            "--broker URL` fleets.  The spool is durable: kill and "
            "restart this server on the same --spool and the campaign "
            "resumes."
        ),
    )
    parser.add_argument(
        "--spool",
        required=True,
        metavar="DIR",
        help="FileBroker spool directory (created if missing)",
    )
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address (default 127.0.0.1; 0.0.0.0 for a fleet)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=8642,
        help="TCP port (default 8642; 0 picks a free one)",
    )
    parser.add_argument(
        "--token",
        default=None,
        help=(
            "bearer token clients must present "
            "(default: $REPRO_BROKER_TOKEN; empty = unauthenticated)"
        ),
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="log every request to stderr",
    )
    args = parser.parse_args(argv)
    token = (
        args.token
        if args.token is not None
        else os.environ.get("REPRO_BROKER_TOKEN")
    )
    server = BrokerServer(
        args.spool,
        host=args.host,
        port=args.port,
        token=token,
        verbose=args.verbose,
    )
    print(
        f"broker server on {server.url} "
        f"(spool: {args.spool}, auth: {'token' if token else 'open'})",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("broker server: interrupted; spool is durable, restart to resume")
    finally:
        server.close_socket()
    return 0


if __name__ == "__main__":  # pragma: no cover - subprocess entrypoint
    raise SystemExit(main())
