"""The queue executor: run-fabric dispatch through a pluggable broker.

:class:`QueueExecutor` is the fifth engine behind the
:class:`~repro.engine.executors.Executor` interface and the first whose
workers need not live in this process tree: every chunk of
:class:`~repro.engine.request.RunRequest` is pickled and pushed through
a :class:`~repro.engine.broker.Broker`, executed by whatever worker
processes serve that broker (``python -m repro.engine.worker``), and
collected back as a result payload carrying the chunk results plus the
worker-side cache-counter deltas — so
:class:`~repro.engine.executors.EngineStats` (workload, profile-cache
and decision-state counters included) survives the queue boundary
exactly as it survives a process pool.

Two deployment shapes, one class:

* **Self-contained** (the default): no broker given — the executor
  creates a private :class:`~repro.engine.broker.FileBroker` spool in a
  temporary directory and spawns ``workers`` local worker subprocesses
  against it, cleaning both up on :meth:`~QueueExecutor.close`.  This
  is what CLI ``--engine queue`` uses.
* **Shared broker**: pass a broker whose spool other processes — on
  this host or any host mounting the spool — serve with
  ``python -m repro.engine.worker --broker DIR``.  The executor only
  submits and collects; the worker fleet is yours (see
  ``examples/remote_campaign.py``).

Supervision (the full story is ``docs/RESILIENCE.md``): workers
heartbeat through the broker; a claimed chunk whose claimant goes
silent past ``heartbeat_timeout`` is requeued for another worker
(counted as ``requeues``), and if the fleet dies entirely the
submitting process claims the remaining chunks itself
(``inline_fallback``), so a dispatch always completes.  A chunk that
comes back as a *transient* failure (worker I/O, a corrupted result
payload, injected chaos) is resubmitted under the executor's
:class:`~repro.engine.retry.RetryPolicy` with deterministic backoff; a
*permanent* failure — or a transient one that exhausts the budget — is
quarantined in the broker's dead-letter spool with its remote
traceback, and the dispatch finishes the surviving chunks before
reporting the loss (:class:`~repro.exceptions.PoisonChunkError`, or
``None`` slots with ``on_poison="quarantine"``).  Duplicate executions
caused by requeueing are harmless: requests are pure functions of their
seed (the determinism contract in :mod:`repro.engine`), so any
execution of a chunk yields byte-identical results; redundant
completions are absorbed first-result-wins and counted as
``duplicate_results``.  The queue engine is pinned byte-identical to
:class:`SerialExecutor` alongside every other engine in
``tests/test_perf_equivalence.py`` — and, under any chaos
:class:`~repro.engine.chaos.FaultPlan`, in ``tests/test_engine_chaos.py``.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import sys
import tempfile
import time
import uuid
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

from ..exceptions import (
    ConfigurationError,
    PermanentEngineError,
    PoisonChunkError,
    TransientEngineError,
)
from .broker import Broker, FileBroker, worker_identity
from .chaos import ChaosBroker
from .executors import _PooledExecutor
from .request import RunRequest
from .payloads import decode_result, encode_task, execute_payload
from .retry import execute_with_retry

__all__ = ["QueueExecutor"]


def _worker_env() -> dict:
    """The spawned worker's environment: inherit + parent's sys.path.

    Workers are fresh interpreters, so anything importable here (the
    ``repro`` package itself, plus whatever modules the RunRequest
    runner functions live in) must be importable there; exporting the
    parent's ``sys.path`` as ``PYTHONPATH`` guarantees it.
    """
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
    return env


class QueueExecutor(_PooledExecutor):
    """Broker-backed fan-out with heartbeat/timeout supervision.

    Parameters
    ----------
    workers:
        Local worker subprocesses to spawn when the executor owns its
        broker (``1`` runs inline, like the pooled executors).  With a
        caller-supplied broker nothing is spawned and this only sizes
        the chunking.
    chunk_size:
        Contiguous requests per broker task; default ~4 chunks per
        worker (:func:`~repro.engine.executors.default_chunk_size`).
    broker:
        A :class:`~repro.engine.broker.Broker` served by an external
        worker fleet.  ``None`` (default) self-hosts a
        :class:`~repro.engine.broker.FileBroker` plus local workers.
    poll_interval:
        Seconds between result-collection passes (and the spawned
        workers' idle poll).
    heartbeat_timeout:
        Seconds of claimant silence after which a claimed task is
        requeued — and, with no live workers at all, after which the
        submitter starts executing queued tasks itself.
    inline_fallback:
        Allow the submitting process to claim tasks when the fleet is
        dead or absent (default ``True``); disable to fail fast with
        :class:`RuntimeError` instead.
    worker_max_idle:
        ``--max-idle`` passed to self-hosted workers (default 600 s):
        if the submitter dies without :meth:`close` (kill -9, OOM),
        orphaned workers stop polling after this long rather than
        spinning forever.  A fleet that idled out is respawned on the
        next dispatch.  ``None`` disables the bound.  Ignored with a
        caller-supplied broker (the fleet is yours).
    on_poison:
        What to do with chunks that exhausted their retry budget:
        ``"raise"`` (default) finishes the rest of the dispatch, then
        raises :class:`~repro.exceptions.PoisonChunkError` carrying
        every quarantined chunk's id, attempt count and remote
        traceback; ``"quarantine"`` merely counts them
        (``dead_lettered``) and leaves their result slots ``None``.
        Either way the chunk payloads wait in the broker's dead-letter
        spool for inspection or resubmission.
    shutdown_timeout:
        Seconds :meth:`close` waits for each spawned worker to honour
        the cooperative stop sentinel before escalating to ``kill()``.
    retry_policy, chaos_plan, journal:
        The resilience knobs shared by every executor (see
        :class:`~repro.engine.executors.Executor`).  Here the policy
        additionally governs per-chunk resubmission and transient
        broker I/O, the chaos plan wraps the broker in a
        :class:`~repro.engine.chaos.ChaosBroker` and rides to spawned
        workers on their command line, and the journal short-circuits
        chunks a previous (possibly killed) campaign already finished.
    """

    name = "queue"

    def __init__(
        self,
        workers: int = 2,
        chunk_size: Optional[int] = None,
        *,
        broker: Optional[Broker] = None,
        poll_interval: float = 0.02,
        heartbeat_timeout: float = 60.0,
        inline_fallback: bool = True,
        worker_max_idle: Optional[float] = 600.0,
        on_poison: str = "raise",
        shutdown_timeout: float = 10.0,
        **kwargs,
    ):
        super().__init__(workers, chunk_size, **kwargs)
        if poll_interval <= 0:
            raise ConfigurationError(
                f"poll_interval must be > 0, got {poll_interval}"
            )
        if heartbeat_timeout <= 0:
            raise ConfigurationError(
                f"heartbeat_timeout must be > 0, got {heartbeat_timeout}"
            )
        if on_poison not in ("raise", "quarantine"):
            raise ConfigurationError(
                f'on_poison must be "raise" or "quarantine", got {on_poison!r}'
            )
        if shutdown_timeout <= 0:
            raise ConfigurationError(
                f"shutdown_timeout must be > 0, got {shutdown_timeout}"
            )
        self._broker = broker
        self._spawn_workers = broker is None
        self._spool: Optional[str] = None
        self._procs: List[subprocess.Popen] = []
        self._chaos: Optional[ChaosBroker] = None
        self.poll_interval = float(poll_interval)
        self.heartbeat_timeout = float(heartbeat_timeout)
        self.inline_fallback = bool(inline_fallback)
        self.worker_max_idle = (
            None if worker_max_idle is None else float(worker_max_idle)
        )
        self.on_poison = on_poison
        self.shutdown_timeout = float(shutdown_timeout)
        self._submitter = f"submitter-{worker_identity()}"
        self._nonce = uuid.uuid4().hex[:8]
        self._counter_base: Dict[str, int] = {}

    # -- fabric lifecycle --------------------------------------------------
    def _ensure_fabric(self) -> Broker:
        """The live broker, creating the spool + fleet on first use.

        A self-hosted fleet that exited (``worker_max_idle`` elapsed
        between campaigns, or a crash) is respawned here rather than
        silently degrading every later dispatch to inline execution.
        With an active chaos plan the broker comes back wrapped in a
        persistent :class:`~repro.engine.chaos.ChaosBroker`, so the
        single-shot injection bookkeeping spans the dispatch loop.
        """
        if self._broker is None:
            self._spool = tempfile.mkdtemp(prefix="repro-queue-")
            self._broker = FileBroker(self._spool)
            self._spawn_fleet()
        else:
            if self._stats.dispatches > 1:
                self._stats.pool_reuses += 1
            if (
                self._spawn_workers
                and self._fleet_dead()
                and not self._broker.stop_requested()
            ):
                self._procs = []
                self._spawn_fleet()
        if self.chaos_plan is not None and self.chaos_plan.any_faults():
            if self._chaos is None or self._chaos.broker is not self._broker:
                self._chaos = ChaosBroker(self._broker, self.chaos_plan)
            return self._chaos
        return self._broker

    @property
    def broker(self) -> Optional[Broker]:
        """The attached broker (``None`` for a not-yet-started spool).

        Exposed so callers can reach transport observability — e.g. a
        :class:`~repro.engine.shard_router.ShardRouter`'s per-shard
        ``describe_fleet()`` breakdown under CLI ``--verbose``.
        """
        return self._broker

    def _spawn_fleet(self) -> None:
        """Launch ``workers`` local worker subprocesses on the spool."""
        command = [
            sys.executable,
            "-m",
            "repro.engine.worker",
            "--broker",
            self._spool,
            "--poll-interval",
            str(self.poll_interval),
        ]
        if self.worker_max_idle is not None:
            command += ["--max-idle", str(self.worker_max_idle)]
        chaos_active = (
            self.chaos_plan is not None and self.chaos_plan.any_faults()
        )
        if chaos_active:
            command += ["--chaos", self.chaos_plan.to_json()]
        self._stats.pool_launches += 1
        for index in range(self.workers):
            worker_command = list(command)
            if chaos_active:
                worker_command += ["--chaos-index", str(index)]
            log = open(  # noqa: SIM115 - handed to the subprocess
                os.path.join(self._spool, f"worker-{index}.log"), "ab"
            )
            self._procs.append(
                subprocess.Popen(
                    worker_command,
                    stdout=log,
                    stderr=subprocess.STDOUT,
                    env=_worker_env(),
                    close_fds=True,
                )
            )
            log.close()

    def _fleet_dead(self) -> bool:
        """All spawned workers have exited (only meaningful if spawned)."""
        return bool(self._procs) and all(
            proc.poll() is not None for proc in self._procs
        )

    def close(self) -> None:
        """Stop the fleet and remove the owned spool (idempotent).

        Workers get ``shutdown_timeout`` seconds to honour the stop
        sentinel; one that is wedged (stuck syscall, pathological
        chunk) is killed outright so ``close`` always returns.
        """
        if self._broker is not None and (self._spawn_workers or self._procs):
            try:
                self._broker.request_stop()
            except OSError:  # pragma: no cover - spool already gone
                pass
        for proc in self._procs:
            try:
                proc.wait(timeout=self.shutdown_timeout)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
        self._procs = []
        self._chaos = None
        if self._spool is not None:
            shutil.rmtree(self._spool, ignore_errors=True)
            self._spool = None
            self._broker = None

    # -- dispatch ----------------------------------------------------------
    def _map(self, requests: List[RunRequest]) -> List[Any]:
        chunks = self._chunked(requests)
        if self.workers == 1 and self._spawn_workers:
            return self._run_inline(chunks)
        return self._gather(self._dispatch(chunks), len(requests))

    def _map_stream(
        self, requests: List[RunRequest]
    ) -> Iterator[Tuple[int, List[Any]]]:
        chunks = self._chunked(requests)
        if self.workers == 1 and self._spawn_workers:
            return self._stream_inline(chunks)
        return self._dispatch(chunks)

    def _broker_call(self, fn, *args, seed: int = 0):
        """One broker operation under the retry policy.

        Transient spool I/O (a full disk hiccup, an injected chaos
        ``OSError``) retries with the same deterministic backoff as
        everything else; the attempts beyond the first are counted as
        ``retries``.
        """

        def attempt(number: int):
            if number > 1:
                self._stats.retries += 1
            return fn(*args)

        return execute_with_retry(attempt, seed=seed, policy=self.retry_policy)

    def _sync_broker_counters(self, broker: Broker) -> None:
        """Fold the broker's fabric counters into :class:`EngineStats`.

        Remote brokers (:class:`~repro.engine.http_broker.HTTPBroker`)
        expose cumulative wire/fleet counters via ``engine_counters()``;
        brokers without that surface contribute nothing.  Counters are
        cumulative per broker lifetime, so only the delta since the last
        sync is added — and a counter that *shrank* means the broker
        server restarted (fresh counters on the same spool), in which
        case the whole reported value is new events.
        """
        getter = getattr(broker, "engine_counters", None)
        if getter is None:
            return
        try:
            totals = getter()
        except (TransientEngineError, PermanentEngineError, OSError):
            return  # stats folding is best-effort, never fails a dispatch
        for name, total in totals.items():
            if not hasattr(self._stats, name):
                continue
            base = self._counter_base.get(name, 0)
            if total < base:
                base = 0
            if total > base:
                setattr(
                    self._stats, name, getattr(self._stats, name) + total - base
                )
            self._counter_base[name] = total

    def _dispatch(
        self, chunks: List[Tuple[RunRequest, ...]]
    ) -> Iterator[Tuple[int, List[Any]]]:
        """Submit chunks to the broker; yield results as they land.

        One iteration of the wait loop = resubmit chunks whose backoff
        deadline passed, collect every landed result, then (only if
        nothing landed) supervise: requeue stale claims and, with the
        fleet dead or absent past the heartbeat horizon, claim a task
        and run it inline.  Reassembly is by submitted chunk index, so
        arrival order is irrelevant to the result.  Chunks the attached
        journal already holds never reach the broker at all.
        """
        dispatch = self._stats.dispatches  # unique per map() call

        hits: List[Tuple[int, List[Any]]] = []
        fresh: List[Tuple[int, int, Tuple[RunRequest, ...]]] = []
        start = 0
        for index, chunk in enumerate(chunks):
            cached = self._journal_fetch(chunk)
            if cached is not None:
                hits.append((start, cached))
            else:
                fresh.append((index, start, chunk))
            start += len(chunk)
        yield from hits
        if not fresh:
            return  # fully journaled: never touch (or spawn) the fabric
        broker = self._ensure_fabric()

        starts: Dict[str, int] = {}
        payloads: Dict[str, bytes] = {}
        chunk_of: Dict[str, Tuple[RunRequest, ...]] = {}
        seeds: Dict[str, int] = {}
        attempts: Dict[str, int] = {}
        retry_at: Dict[str, float] = {}  # backoff deadlines (monotonic)
        requeued: Set[str] = set()  # tasks that may complete twice
        completed: Set[str] = set()
        dead: List[Tuple[str, int, str]] = []

        budget = 1 if self.retry_policy is None else self.retry_policy.max_attempts

        def quarantine(task_id: str, exc: Exception) -> None:
            text = str(exc)
            try:
                broker.dead_letter(task_id, payloads[task_id], text.encode())
            except (TransientEngineError, OSError):
                pass  # quarantine is best-effort (e.g. every shard down)
            self._stats.dead_lettered += 1
            dead.append((task_id, attempts[task_id], text))
            pending.pop(task_id, None)

        def absorb_duplicates() -> None:
            # A requeued/resubmitted task we already collected may still
            # produce a second (byte-identical) completion; consume it so
            # the spool stays clean and count it.
            for task_id in requeued & completed:
                try:
                    if broker.fetch_result(task_id) is not None:
                        self._stats.duplicate_results += 1
                except OSError:  # pragma: no cover - sweep is best-effort
                    pass

        for index, chunk_start, chunk in fresh:
            task_id = f"{self._nonce}-d{dispatch:05d}-c{index:06d}"
            payload = encode_task(chunk)
            seed = chunk[0].seed
            self._broker_call(broker.submit, task_id, payload, seed=seed)
            starts[task_id] = chunk_start
            payloads[task_id] = payload
            chunk_of[task_id] = chunk
            seeds[task_id] = seed
            attempts[task_id] = 1
        pending = dict(starts)
        idle_since = time.monotonic()
        try:
            while pending:
                landed = False
                now = time.monotonic()
                for task_id in [
                    t for t, when in retry_at.items() if when <= now
                ]:
                    del retry_at[task_id]
                    self._broker_call(
                        broker.submit,
                        task_id,
                        payloads[task_id],
                        seed=seeds[task_id],
                    )
                    requeued.add(task_id)
                for task_id in sorted(pending):
                    if task_id in retry_at:
                        continue  # resubmission still waiting out backoff
                    payload = self._broker_call(
                        broker.fetch_result, task_id, seed=seeds[task_id]
                    )
                    if payload is None:
                        continue
                    landed = True
                    try:
                        output = decode_result(payload)
                    except TransientEngineError as exc:
                        if attempts[task_id] >= budget:
                            quarantine(task_id, exc)
                        else:
                            delay = (
                                0.0
                                if self.retry_policy is None
                                else self.retry_policy.delay(
                                    attempts[task_id], seeds[task_id]
                                )
                            )
                            retry_at[task_id] = time.monotonic() + delay
                            attempts[task_id] += 1
                            self._stats.retries += 1
                        continue
                    except PermanentEngineError as exc:
                        quarantine(task_id, exc)
                        continue
                    self._fold_output(output)
                    self._journal_store(chunk_of[task_id], output)
                    completed.add(task_id)
                    yield pending.pop(task_id), list(output[0])
                absorb_duplicates()
                if landed or not pending:
                    idle_since = time.monotonic()
                    continue
                for task_id in broker.stale_claims(self.heartbeat_timeout):
                    if task_id in pending and task_id not in retry_at:
                        if self._broker_call(
                            broker.requeue, task_id, seed=seeds[task_id]
                        ):
                            requeued.add(task_id)
                            self._stats.requeues += 1
                supervise = getattr(broker, "supervise", None)
                if supervise is not None:
                    # Shard-aware brokers use the idle beat to run
                    # half-open health probes and migrate chunks off
                    # shards whose breaker opened (see ShardRouter).
                    supervise()
                if self._should_execute_inline(broker, idle_since):
                    try:
                        claimed = broker.claim(self._submitter)
                    except (TransientEngineError, OSError):
                        claimed = None  # total outage: keep polling
                    if claimed is not None:
                        task_id, payload = claimed
                        result = execute_payload(
                            payload,
                            policy=self.retry_policy,
                            plan=self.chaos_plan,
                        )
                        try:
                            broker.complete(task_id, result)
                        except (TransientEngineError, OSError):
                            # The claim's lease goes stale and the
                            # chunk requeues; purity makes the re-run
                            # byte-identical.
                            pass
                        continue
                time.sleep(self.poll_interval)
        finally:
            # Abandoned dispatch (worker error re-raised, or the
            # map_stream consumer closed early): withdraw what never
            # ran and drop uncollected results, so a shared fleet does
            # not burn time on — and a shared spool does not accumulate
            # — the remains of a dead campaign.  In-flight claimed
            # chunks finish and overwrite harmlessly.
            for task_id in pending:
                broker.discard(task_id)
            absorb_duplicates()
            self._sync_broker_counters(broker)
        if dead and self.on_poison == "raise":
            lines = [
                f"queue executor: {len(dead)} chunk(s) quarantined in the "
                "dead-letter spool after exhausting their retry budget:"
            ]
            for task_id, tried, text in dead:
                lines.append(f"--- {task_id} (attempts: {tried}) ---\n{text}")
            raise PoisonChunkError("\n".join(lines), chunks=dead)

    def _should_execute_inline(
        self, broker: Broker, idle_since: float
    ) -> bool:
        """Whether the submitter should start serving its own queue.

        Yes when the spawned fleet has died outright, or when no worker
        anywhere has heartbeat within the timeout *and* we have already
        waited one full heartbeat horizon for a fleet to appear.  With
        ``inline_fallback`` off the first condition raises instead —
        a dead fleet cannot finish the dispatch.
        """
        if self._fleet_dead():
            if not self.inline_fallback:
                raise RuntimeError(
                    "queue executor: all spawned workers exited with the "
                    "dispatch incomplete (see worker-*.log in the spool)"
                )
            return True
        if self._procs:
            return False  # spawned fleet alive: let it work
        if not self.inline_fallback:
            return False
        return (
            not broker.live_workers(self.heartbeat_timeout)
            and time.monotonic() - idle_since > self.heartbeat_timeout
        )
