"""The queue executor: run-fabric dispatch through a pluggable broker.

:class:`QueueExecutor` is the fifth engine behind the
:class:`~repro.engine.executors.Executor` interface and the first whose
workers need not live in this process tree: every chunk of
:class:`~repro.engine.request.RunRequest` is pickled and pushed through
a :class:`~repro.engine.broker.Broker`, executed by whatever worker
processes serve that broker (``python -m repro.engine.worker``), and
collected back as a result payload carrying the chunk results plus the
worker-side cache-counter deltas — so
:class:`~repro.engine.executors.EngineStats` (workload, profile-cache
and decision-state counters included) survives the queue boundary
exactly as it survives a process pool.

Two deployment shapes, one class:

* **Self-contained** (the default): no broker given — the executor
  creates a private :class:`~repro.engine.broker.FileBroker` spool in a
  temporary directory and spawns ``workers`` local worker subprocesses
  against it, cleaning both up on :meth:`~QueueExecutor.close`.  This
  is what CLI ``--engine queue`` uses.
* **Shared broker**: pass a broker whose spool other processes — on
  this host or any host mounting the spool — serve with
  ``python -m repro.engine.worker --broker DIR``.  The executor only
  submits and collects; the worker fleet is yours (see
  ``examples/remote_campaign.py``).

Resilience: workers heartbeat through the broker; a claimed chunk whose
claimant goes silent past ``heartbeat_timeout`` is requeued for another
worker, and if the fleet dies entirely the submitting process claims
the remaining chunks itself (``inline_fallback``), so a dispatch always
completes.  Duplicate executions caused by requeueing are harmless:
requests are pure functions of their seed (the determinism contract in
:mod:`repro.engine`), so any execution of a chunk yields byte-identical
results and reassembly by chunk index is deterministic — the queue
engine is pinned byte-identical to :class:`SerialExecutor` alongside
every other engine in ``tests/test_perf_equivalence.py``.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import sys
import tempfile
import time
import uuid
from typing import Any, Iterator, List, Optional, Tuple

from ..exceptions import ConfigurationError
from .broker import Broker, FileBroker, worker_identity
from .executors import _PooledExecutor
from .request import RunRequest
from .payloads import decode_result, encode_task, execute_payload

__all__ = ["QueueExecutor"]


def _worker_env() -> dict:
    """The spawned worker's environment: inherit + parent's sys.path.

    Workers are fresh interpreters, so anything importable here (the
    ``repro`` package itself, plus whatever modules the RunRequest
    runner functions live in) must be importable there; exporting the
    parent's ``sys.path`` as ``PYTHONPATH`` guarantees it.
    """
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
    return env


class QueueExecutor(_PooledExecutor):
    """Broker-backed fan-out with heartbeat/timeout supervision.

    Parameters
    ----------
    workers:
        Local worker subprocesses to spawn when the executor owns its
        broker (``1`` runs inline, like the pooled executors).  With a
        caller-supplied broker nothing is spawned and this only sizes
        the chunking.
    chunk_size:
        Contiguous requests per broker task; default ~4 chunks per
        worker (:func:`~repro.engine.executors.default_chunk_size`).
    broker:
        A :class:`~repro.engine.broker.Broker` served by an external
        worker fleet.  ``None`` (default) self-hosts a
        :class:`~repro.engine.broker.FileBroker` plus local workers.
    poll_interval:
        Seconds between result-collection passes (and the spawned
        workers' idle poll).
    heartbeat_timeout:
        Seconds of claimant silence after which a claimed task is
        requeued — and, with no live workers at all, after which the
        submitter starts executing queued tasks itself.
    inline_fallback:
        Allow the submitting process to claim tasks when the fleet is
        dead or absent (default ``True``); disable to fail fast with
        :class:`RuntimeError` instead.
    worker_max_idle:
        ``--max-idle`` passed to self-hosted workers (default 600 s):
        if the submitter dies without :meth:`close` (kill -9, OOM),
        orphaned workers stop polling after this long rather than
        spinning forever.  A fleet that idled out is respawned on the
        next dispatch.  ``None`` disables the bound.  Ignored with a
        caller-supplied broker (the fleet is yours).
    """

    name = "queue"

    def __init__(
        self,
        workers: int = 2,
        chunk_size: Optional[int] = None,
        *,
        broker: Optional[Broker] = None,
        poll_interval: float = 0.02,
        heartbeat_timeout: float = 60.0,
        inline_fallback: bool = True,
        worker_max_idle: Optional[float] = 600.0,
    ):
        super().__init__(workers, chunk_size)
        if poll_interval <= 0:
            raise ConfigurationError(
                f"poll_interval must be > 0, got {poll_interval}"
            )
        if heartbeat_timeout <= 0:
            raise ConfigurationError(
                f"heartbeat_timeout must be > 0, got {heartbeat_timeout}"
            )
        self._broker = broker
        self._spawn_workers = broker is None
        self._spool: Optional[str] = None
        self._procs: List[subprocess.Popen] = []
        self.poll_interval = float(poll_interval)
        self.heartbeat_timeout = float(heartbeat_timeout)
        self.inline_fallback = bool(inline_fallback)
        self.worker_max_idle = (
            None if worker_max_idle is None else float(worker_max_idle)
        )
        self._submitter = f"submitter-{worker_identity()}"
        self._nonce = uuid.uuid4().hex[:8]

    # -- fabric lifecycle --------------------------------------------------
    def _ensure_fabric(self) -> Broker:
        """The live broker, creating the spool + fleet on first use.

        A self-hosted fleet that exited (``worker_max_idle`` elapsed
        between campaigns, or a crash) is respawned here rather than
        silently degrading every later dispatch to inline execution.
        """
        if self._broker is None:
            self._spool = tempfile.mkdtemp(prefix="repro-queue-")
            self._broker = FileBroker(self._spool)
            self._spawn_fleet()
        else:
            if self._stats.dispatches > 1:
                self._stats.pool_reuses += 1
            if (
                self._spawn_workers
                and self._fleet_dead()
                and not self._broker.stop_requested()
            ):
                self._procs = []
                self._spawn_fleet()
        return self._broker

    def _spawn_fleet(self) -> None:
        """Launch ``workers`` local worker subprocesses on the spool."""
        command = [
            sys.executable,
            "-m",
            "repro.engine.worker",
            "--broker",
            self._spool,
            "--poll-interval",
            str(self.poll_interval),
        ]
        if self.worker_max_idle is not None:
            command += ["--max-idle", str(self.worker_max_idle)]
        self._stats.pool_launches += 1
        for index in range(self.workers):
            log = open(  # noqa: SIM115 - handed to the subprocess
                os.path.join(self._spool, f"worker-{index}.log"), "ab"
            )
            self._procs.append(
                subprocess.Popen(
                    command,
                    stdout=log,
                    stderr=subprocess.STDOUT,
                    env=_worker_env(),
                    close_fds=True,
                )
            )
            log.close()

    def _fleet_dead(self) -> bool:
        """All spawned workers have exited (only meaningful if spawned)."""
        return bool(self._procs) and all(
            proc.poll() is not None for proc in self._procs
        )

    def close(self) -> None:
        """Stop the fleet and remove the owned spool (idempotent)."""
        if self._broker is not None and (self._spawn_workers or self._procs):
            try:
                self._broker.request_stop()
            except OSError:  # pragma: no cover - spool already gone
                pass
        for proc in self._procs:
            try:
                proc.wait(timeout=10.0)
            except subprocess.TimeoutExpired:  # pragma: no cover - hung
                proc.kill()
                proc.wait()
        self._procs = []
        if self._spool is not None:
            shutil.rmtree(self._spool, ignore_errors=True)
            self._spool = None
            self._broker = None

    # -- dispatch ----------------------------------------------------------
    def _map(self, requests: List[RunRequest]) -> List[Any]:
        chunks = self._chunked(requests)
        if self.workers == 1 and self._spawn_workers:
            return self._run_inline(chunks)
        slots: List[Any] = [None] * len(requests)
        for start, results in self._dispatch(chunks):
            slots[start:start + len(results)] = results
        return slots

    def _map_stream(
        self, requests: List[RunRequest]
    ) -> Iterator[Tuple[int, List[Any]]]:
        chunks = self._chunked(requests)
        if self.workers == 1 and self._spawn_workers:
            return self._stream_inline(chunks)
        return self._dispatch(chunks)

    def _dispatch(
        self, chunks: List[Tuple[RunRequest, ...]]
    ) -> Iterator[Tuple[int, List[Any]]]:
        """Submit chunks to the broker; yield results as they land.

        One iteration of the wait loop = collect every landed result,
        then (only if nothing landed) supervise: requeue stale claims
        and, with the fleet dead or absent past the heartbeat horizon,
        claim a task and run it inline.  Reassembly is by submitted
        chunk index, so arrival order is irrelevant to the result.
        """
        broker = self._ensure_fabric()
        starts = {}
        start = 0
        dispatch = self._stats.dispatches  # unique per map() call
        for index, chunk in enumerate(chunks):
            task_id = f"{self._nonce}-d{dispatch:05d}-c{index:06d}"
            broker.submit(task_id, encode_task(chunk))
            starts[task_id] = start
            start += len(chunk)
        pending = dict(starts)
        idle_since = time.monotonic()
        try:
            while pending:
                landed = False
                for task_id in sorted(pending):
                    payload = broker.fetch_result(task_id)
                    if payload is None:
                        continue
                    results, workloads, profiles, decisions = decode_result(
                        payload
                    )
                    self._fold(workloads, profiles, decisions)
                    yield pending.pop(task_id), list(results)
                    landed = True
                if landed or not pending:
                    idle_since = time.monotonic()
                    continue
                for task_id in broker.stale_claims(self.heartbeat_timeout):
                    if task_id in pending:
                        broker.requeue(task_id)
                if self._should_execute_inline(broker, idle_since):
                    claimed = broker.claim(self._submitter)
                    if claimed is not None:
                        task_id, payload = claimed
                        broker.complete(task_id, execute_payload(payload))
                        continue
                time.sleep(self.poll_interval)
        finally:
            # Abandoned dispatch (worker error re-raised, or the
            # map_stream consumer closed early): withdraw what never
            # ran and drop uncollected results, so a shared fleet does
            # not burn time on — and a shared spool does not accumulate
            # — the remains of a dead campaign.  In-flight claimed
            # chunks finish and overwrite harmlessly.
            for task_id in pending:
                broker.discard(task_id)

    def _should_execute_inline(
        self, broker: Broker, idle_since: float
    ) -> bool:
        """Whether the submitter should start serving its own queue.

        Yes when the spawned fleet has died outright, or when no worker
        anywhere has heartbeat within the timeout *and* we have already
        waited one full heartbeat horizon for a fleet to appear.  With
        ``inline_fallback`` off the first condition raises instead —
        a dead fleet cannot finish the dispatch.
        """
        if self._fleet_dead():
            if not self.inline_fallback:
                raise RuntimeError(
                    "queue executor: all spawned workers exited with the "
                    "dispatch incomplete (see worker-*.log in the spool)"
                )
            return True
        if self._procs:
            return False  # spawned fleet alive: let it work
        if not self.inline_fallback:
            return False
        return (
            not broker.live_workers(self.heartbeat_timeout)
            and time.monotonic() - idle_since > self.heartbeat_timeout
        )
