"""Platform model (Section 3.1).

A :class:`Cluster` is a set of ``p`` identical processors, each with an
individual MTBF ``mu`` (exponential fail-stop arrivals of rate
``lambda = 1/mu``), a platform-wide downtime ``D`` paid after every
failure, and buddy pairing for the double-checkpointing scheme (which
forces every allocation to be even).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import CapacityError, ConfigurationError
from ..units import SECONDS_PER_YEAR, years

__all__ = ["Cluster", "DEFAULT_DOWNTIME", "DEFAULT_MTBF_YEARS"]

#: Default per-processor MTBF (Section 6.1: "fixed to 100 years").
DEFAULT_MTBF_YEARS: float = 100.0
#: Default downtime in seconds.  The paper leaves ``D`` platform-dependent
#: and unspecified; 60 s follows the double-checkpointing literature
#: (Dongarra, Herault, Robert 2014).  See DESIGN.md section 3.
DEFAULT_DOWNTIME: float = 60.0


@dataclass(frozen=True)
class Cluster:
    """Immutable description of the execution platform.

    Attributes
    ----------
    processors:
        Platform size ``p``.  Must be an even number >= 2 because the
        buddy-checkpointing scheme consumes processors in pairs.
    mtbf:
        Per-processor mean time between failures ``mu`` in **seconds**.
    downtime:
        Downtime ``D`` (seconds) between a failure and the start of the
        recovery; platform-dependent, application-independent.
    """

    processors: int
    mtbf: float = DEFAULT_MTBF_YEARS * SECONDS_PER_YEAR
    downtime: float = DEFAULT_DOWNTIME

    def __post_init__(self) -> None:
        if self.processors < 2:
            raise ConfigurationError(
                f"a cluster needs at least 2 processors, got {self.processors}"
            )
        if self.processors % 2 != 0:
            raise ConfigurationError(
                "the double-checkpointing scheme pairs processors: "
                f"p must be even, got {self.processors}"
            )
        if self.mtbf <= 0:
            raise ConfigurationError(f"MTBF must be positive, got {self.mtbf}")
        if self.downtime < 0:
            raise ConfigurationError(
                f"downtime must be non-negative, got {self.downtime}"
            )

    @classmethod
    def with_mtbf_years(
        cls,
        processors: int,
        mtbf_years: float = DEFAULT_MTBF_YEARS,
        downtime: float = DEFAULT_DOWNTIME,
    ) -> "Cluster":
        """Build a cluster with the MTBF expressed in years (paper units)."""
        return cls(processors=processors, mtbf=years(mtbf_years), downtime=downtime)

    @property
    def failure_rate(self) -> float:
        """Per-processor failure rate ``lambda = 1 / mu``."""
        return 1.0 / self.mtbf

    @property
    def platform_failure_rate(self) -> float:
        """Aggregate rate ``p * lambda`` (a failure every ``mu/p`` on average)."""
        return self.processors / self.mtbf

    def task_mtbf(self, j: int) -> float:
        """MTBF of a task running on ``j`` processors: ``mu_{i,j} = mu / j``.

        See Section 3.1 and [Herault & Robert 2015] for the proof that the
        MTBF of a group of ``j`` processors is ``mu/j``.
        """
        if j < 1:
            raise CapacityError(f"task processor count must be >= 1, got {j}")
        if j > self.processors:
            raise CapacityError(
                f"task cannot use {j} processors on a {self.processors}-proc cluster"
            )
        return self.mtbf / j

    def validate_allocation_total(self, total: int) -> None:
        """Raise :class:`CapacityError` if ``total`` exceeds the platform."""
        if total > self.processors:
            raise CapacityError(
                f"allocation total {total} exceeds platform size {self.processors}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Cluster(p={self.processors}, mtbf={self.mtbf / SECONDS_PER_YEAR:.1f}y,"
            f" D={self.downtime:g}s)"
        )
