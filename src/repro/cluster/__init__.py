"""Platform substrate: cluster description and processor bookkeeping."""

from .cluster import Cluster, DEFAULT_DOWNTIME, DEFAULT_MTBF_YEARS
from .processors import ProcessorMap

__all__ = ["Cluster", "DEFAULT_DOWNTIME", "DEFAULT_MTBF_YEARS", "ProcessorMap"]
