"""Processor identity bookkeeping.

The heuristics of the paper only reason about *counts* ``sigma(i)``, but a
faithful fault simulator needs to know *which* task a failing processor
belongs to.  :class:`ProcessorMap` maintains the partition of processor ids
into per-task sets plus a free pool, and keeps buddy pairs contiguous (a
task always holds an even number of processors, so pairs never straddle
tasks).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from ..exceptions import CapacityError, SimulationError

__all__ = ["ProcessorMap"]


class ProcessorMap:
    """Tracks which processors each task currently owns.

    Processors are integers ``0..p-1``.  The map enforces the pack-level
    invariants: per-task counts are even, the same processor never belongs
    to two tasks, and releases return processors to the free pool.
    """

    def __init__(self, p: int):
        if p < 2 or p % 2 != 0:
            raise CapacityError(f"processor count must be even and >= 2, got {p}")
        self._p = p
        self._free: List[int] = list(range(p - 1, -1, -1))  # stack, low ids out first
        self._owner: Dict[int, int] = {}
        self._held: Dict[int, Set[int]] = {}

    # -- queries -----------------------------------------------------------
    @property
    def p(self) -> int:
        return self._p

    @property
    def free_count(self) -> int:
        return len(self._free)

    def count(self, task: int) -> int:
        """Number of processors currently owned by ``task``."""
        return len(self._held.get(task, ()))

    def owner_of(self, proc: int) -> Optional[int]:
        """Task owning ``proc``, or ``None`` if it is idle."""
        if not 0 <= proc < self._p:
            raise CapacityError(f"processor id {proc} out of range 0..{self._p - 1}")
        return self._owner.get(proc)

    def held_by(self, task: int) -> frozenset[int]:
        """Frozen view of the processors owned by ``task``."""
        return frozenset(self._held.get(task, ()))

    def counts(self) -> Dict[int, int]:
        """Snapshot ``{task: count}`` for all tasks holding processors."""
        return {task: len(procs) for task, procs in self._held.items() if procs}

    # -- mutations ----------------------------------------------------------
    def acquire(self, task: int, count: int) -> List[int]:
        """Give ``count`` free processors to ``task`` (count must be even)."""
        self._check_even(count)
        if count > len(self._free):
            raise CapacityError(
                f"task {task} requested {count} processors but only "
                f"{len(self._free)} are free"
            )
        granted = [self._free.pop() for _ in range(count)]
        bucket = self._held.setdefault(task, set())
        for proc in granted:
            self._owner[proc] = task
            bucket.add(proc)
        return granted

    def release(self, task: int, count: Optional[int] = None) -> List[int]:
        """Return ``count`` processors of ``task`` (default: all) to the pool."""
        bucket = self._held.get(task)
        if not bucket:
            if count in (None, 0):
                return []
            raise SimulationError(f"task {task} holds no processors to release")
        if count is None:
            count = len(bucket)
        self._check_even(count)
        if count > len(bucket):
            raise CapacityError(
                f"task {task} holds {len(bucket)} processors; cannot release {count}"
            )
        released = sorted(bucket, reverse=True)[:count]
        for proc in released:
            bucket.discard(proc)
            del self._owner[proc]
            self._free.append(proc)
        if not bucket:
            del self._held[task]
        return released

    def transfer(self, src: int, dst: int, count: int) -> List[int]:
        """Move ``count`` processors from ``src`` to ``dst`` directly."""
        self._check_even(count)
        moved = self.release(src, count)
        # re-acquire the exact ids we just released (they sit on top of the
        # free stack, but order is not guaranteed; claim them explicitly)
        for proc in moved:
            self._free.remove(proc)
            self._owner[proc] = dst
            self._held.setdefault(dst, set()).add(proc)
        return moved

    def resize(self, task: int, new_count: int) -> None:
        """Set ``task``'s holding to exactly ``new_count`` processors."""
        self._check_even(new_count)
        current = self.count(task)
        if new_count > current:
            self.acquire(task, new_count - current)
        elif new_count < current:
            self.release(task, current - new_count)

    def apply_counts(self, targets: Dict[int, int]) -> None:
        """Resize several tasks at once (shrink first so grows can succeed)."""
        shrinks = {t: c for t, c in targets.items() if c < self.count(t)}
        grows = {t: c for t, c in targets.items() if c > self.count(t)}
        for task, new_count in shrinks.items():
            self.resize(task, new_count)
        for task, new_count in grows.items():
            self.resize(task, new_count)

    # -- internals -----------------------------------------------------------
    @staticmethod
    def _check_even(count: int) -> None:
        if count < 0 or count % 2 != 0:
            raise CapacityError(
                f"processor counts move in buddy pairs; got odd/negative {count}"
            )

    def validate(self) -> None:
        """Assert internal consistency (used by tests and debug runs)."""
        seen: Set[int] = set(self._free)
        if len(seen) != len(self._free):
            raise SimulationError("duplicate processors in free pool")
        for task, bucket in self._held.items():
            if len(bucket) % 2 != 0:
                raise SimulationError(f"task {task} holds an odd count")
            for proc in bucket:
                if proc in seen:
                    raise SimulationError(f"processor {proc} double-booked")
                seen.add(proc)
                if self._owner.get(proc) != task:
                    raise SimulationError("owner map out of sync")
        if seen != set(range(self._p)):
            raise SimulationError("processor partition does not cover 0..p-1")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProcessorMap(p={self._p}, free={len(self._free)})"
