"""The online batch scheduler.

The classic space-sharing batch model the related-work section points
at: the platform runs one batch at a time; when it drains, the scheduler
looks at the queue of *released* jobs, forms the next batch, and
launches it.  Inside a batch the full machinery of the paper applies —
Algorithm 1 seeds the allocation and any redistribution policy handles
completions and failures.

Batch formation is a pluggable choice:

* ``"all"`` — take every queued job (capacity-capped, largest first):
  maximises co-scheduling, the natural analogue of the paper's packs;
* ``"fixed"`` — take at most ``batch_size`` jobs (largest first): the
  bounded-batch policy of classical schedulers.

If the queue is empty when the platform drains, the clock jumps to the
next release (idling is explicit in the metrics).

Replicated campaign runs — the same job stream under independent fault
draws — submit through the unified execution engine
(:func:`run_replicated_campaigns`): one
:class:`~repro.engine.RunRequest` per campaign replicate, so a study
averaging campaign metrics over many fault draws fans out across the
same serial/pool/persistent executors as the figure sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace as dc_replace
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from ..cluster import Cluster
from ..core.policy import Policy
from ..exceptions import CapacityError, ConfigurationError
from ..resilience.checkpoint import ResilienceModel
from ..rng import derive_seed
from ..simulation import SimulationResult, Simulator
from ..tasks import Pack, TaskSpec
from .jobs import CampaignMetrics, Job, JobMetrics

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..engine import Executor

__all__ = [
    "BatchRun",
    "BatchResult",
    "OnlineBatchScheduler",
    "campaign_replicate_seed",
    "run_replicated_campaigns",
]

BATCH_POLICIES = ("all", "fixed")


@dataclass
class BatchRun:
    """One executed batch."""

    position: int
    start: float
    job_ids: tuple[int, ...]
    result: SimulationResult

    @property
    def end(self) -> float:
        """Absolute completion instant of the batch."""
        return self.start + self.result.makespan


@dataclass
class BatchResult:
    """Outcome of a whole campaign."""

    policy: str
    batch_policy: str
    batches: List[BatchRun] = field(default_factory=list)
    metrics: Optional[CampaignMetrics] = None

    @property
    def makespan(self) -> float:
        """Completion of the last batch."""
        return self.batches[-1].end if self.batches else 0.0

    @property
    def batch_count(self) -> int:
        """Number of batches formed."""
        return len(self.batches)

    def summary(self) -> str:
        """One-line digest."""
        sizes = ",".join(str(len(b.job_ids)) for b in self.batches)
        text = (
            f"batch[{self.batch_policy}]/{self.policy}: "
            f"{self.batch_count} batches [{sizes}]"
        )
        if self.metrics is not None:
            text += f" — {self.metrics.summary()}"
        return text


class OnlineBatchScheduler:
    """Drain-and-refill batch execution of a job campaign.

    Parameters
    ----------
    jobs:
        The campaign (any order; sorted internally by release time).
    cluster:
        The platform; every batch gets all of it.
    policy:
        Redistribution policy applied *inside* each batch.
    batch_policy:
        ``"all"`` or ``"fixed"`` (see module docstring).
    batch_size:
        Cap for the ``"fixed"`` policy (ignored otherwise).
    seed:
        Fault streams derive from ``(seed, "batch", position)`` — batches
        see independent but reproducible failures.
    inject_faults:
        ``False`` runs every batch fault-free.
    """

    def __init__(
        self,
        jobs: Sequence[Job],
        cluster: Cluster,
        policy: Policy | str = "ig-el",
        *,
        batch_policy: str = "all",
        batch_size: Optional[int] = None,
        seed: int = 0,
        inject_faults: bool = True,
        resilience: Optional[ResilienceModel] = None,
    ):
        if not jobs:
            raise ConfigurationError("a campaign needs at least one job")
        ids = [job.job_id for job in jobs]
        if len(set(ids)) != len(ids):
            raise ConfigurationError("duplicate job ids in the campaign")
        if batch_policy not in BATCH_POLICIES:
            raise ConfigurationError(
                f"unknown batch policy {batch_policy!r}; "
                f"choose from {BATCH_POLICIES}"
            )
        if batch_policy == "fixed":
            if batch_size is None or batch_size < 1:
                raise ConfigurationError(
                    "the 'fixed' batch policy needs batch_size >= 1"
                )
        self.jobs = sorted(jobs, key=lambda job: (job.release, job.job_id))
        self.cluster = cluster
        self.policy = policy
        self.batch_policy = batch_policy
        self.batch_size = batch_size
        self.seed = int(seed)
        self.inject_faults = bool(inject_faults)
        self.resilience = resilience
        self.capacity = cluster.processors // 2  # one buddy pair per job
        if self.capacity < 1:
            raise CapacityError("the platform cannot host a single buddy pair")

    # ------------------------------------------------------------------
    def _batch_seed(self, position: int) -> int:
        return derive_seed(self.seed, "batch", position)

    def _form_batch(self, queue: List[Job]) -> List[Job]:
        """Pick the next batch from the released queue (mutates it)."""
        queue.sort(key=lambda job: (-job.task.size, job.job_id))
        limit = self.capacity
        if self.batch_policy == "fixed":
            limit = min(limit, self.batch_size or limit)
        batch = queue[:limit]
        del queue[:limit]
        return batch

    @staticmethod
    def _as_pack(batch: Sequence[Job]) -> Pack:
        members: List[TaskSpec] = []
        for position, job in enumerate(batch):
            members.append(
                dc_replace(job.task, index=position, name=f"J{job.job_id}")
            )
        return Pack(members)

    # ------------------------------------------------------------------
    def run(self) -> BatchResult:
        """Execute the campaign and return batches + per-job metrics."""
        policy_name = (
            self.policy if isinstance(self.policy, str) else self.policy.name
        )
        outcome = BatchResult(
            policy=policy_name, batch_policy=self.batch_policy
        )
        pending = list(self.jobs)  # sorted by release
        queue: List[Job] = []
        job_metrics: Dict[int, JobMetrics] = {}
        clock = 0.0
        position = 0

        while pending or queue:
            # admit everything released by now; jump the clock if idle
            if not queue:
                if pending and pending[0].release > clock:
                    clock = pending[0].release
            while pending and pending[0].release <= clock:
                queue.append(pending.pop(0))
            batch = self._form_batch(queue)
            if not batch:  # pragma: no cover - guarded by the clock jump
                raise ConfigurationError("formed an empty batch")
            simulator = Simulator(
                self._as_pack(batch),
                self.cluster,
                self.policy,
                seed=self._batch_seed(position),
                inject_faults=self.inject_faults,
                resilience=self.resilience,
            )
            result = simulator.run()
            run = BatchRun(
                position=position,
                start=clock,
                job_ids=tuple(job.job_id for job in batch),
                result=result,
            )
            outcome.batches.append(run)
            for local_index, job in enumerate(batch):
                job_metrics[job.job_id] = JobMetrics(
                    job_id=job.job_id,
                    release=job.release,
                    start=clock,
                    completion=clock + float(result.completion_times[local_index]),
                )
            clock = run.end
            position += 1

        outcome.metrics = CampaignMetrics(
            jobs=[job_metrics[job.job_id] for job in self.jobs]
        )
        return outcome


# ---------------------------------------------------------------------------
# replicated campaigns through the unified engine


def campaign_replicate_seed(base_seed: int, replicate: int) -> int:
    """Stable derived seed for one campaign replicate's fault draws."""
    return derive_seed(base_seed, "campaign", replicate)


def _run_campaign(
    jobs: tuple,
    cluster: Cluster,
    policy: str,
    batch_policy: str,
    batch_size: Optional[int],
    inject_faults: bool,
    *,
    seed: int,
) -> BatchResult:
    """Engine runner: one whole campaign under one fault-draw seed.

    Batches inside a campaign are inherently sequential (batch ``t+1``
    depends on the queue left by batch ``t``), so the campaign is the
    engine's unit of work and replicates are the axis that fans out.
    """
    return OnlineBatchScheduler(
        list(jobs),
        cluster,
        policy,
        batch_policy=batch_policy,
        batch_size=batch_size,
        seed=seed,
        inject_faults=inject_faults,
    ).run()


def run_replicated_campaigns(
    jobs: Sequence[Job],
    cluster: Cluster,
    policy: Policy | str = "ig-el",
    *,
    batch_policy: str = "all",
    batch_size: Optional[int] = None,
    replicates: int = 1,
    seed: int = 0,
    inject_faults: bool = True,
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    engine: Optional[str] = None,
    executor: Optional["Executor"] = None,
) -> List[BatchResult]:
    """Run one campaign under ``replicates`` independent fault draws.

    The job stream (sizes **and** release times) is shared by every
    replicate — common random numbers, exactly like the paired
    replicates of the figure sweeps — while the fault streams derive
    from ``campaign_replicate_seed(seed, r)``, so two campaigns with the
    same ``(jobs, seed)`` are byte-identical regardless of the executor,
    worker count or batch policy under comparison.  Results come back in
    replicate order.

    ``executor`` submits to a caller-owned executor (left open);
    otherwise ``engine``/``workers`` pick one exactly as in
    :func:`repro.experiments.runner.run_scenario`.
    """
    from ..engine import RunRequest, ensure_executor

    if replicates < 1:
        raise ConfigurationError(
            f"replicates must be >= 1, got {replicates}"
        )
    policy_name = policy if isinstance(policy, str) else policy.name
    # Validate the campaign eagerly (duplicate ids, batch knobs,
    # capacity) so configuration errors surface here, not inside a
    # worker process.
    OnlineBatchScheduler(
        jobs,
        cluster,
        policy_name,
        batch_policy=batch_policy,
        batch_size=batch_size,
        seed=seed,
        inject_faults=inject_faults,
    )
    payload = (
        tuple(jobs),
        cluster,
        policy_name,
        batch_policy,
        batch_size,
        inject_faults,
    )
    requests = [
        RunRequest(
            fn=_run_campaign,
            payload=payload,
            seed=campaign_replicate_seed(seed, replicate),
            tag=replicate,
        )
        for replicate in range(replicates)
    ]
    with ensure_executor(
        executor, engine=engine, workers=workers, chunk_size=chunk_size
    ) as active:
        return active.map(requests)
