"""Online batch scheduling — the dynamic counterpart of packs.

Section 2.3 situates the paper's *static* pack co-scheduling against
*batch scheduling*, "where jobs are dynamically partitioned into batches
as they are submitted to the system".  This package implements that
counterpart so the two regimes can be compared on the same substrate:

* :mod:`repro.batch.jobs` — jobs (a task plus a release time), arrival
  processes (Poisson and deterministic traces) and per-job metrics;
* :mod:`repro.batch.scheduler` — :class:`OnlineBatchScheduler`: when the
  platform goes idle, the queue of released jobs is formed into the next
  batch (capacity-capped), scheduled with Algorithm 1 and executed
  through the fault-injection simulator with any redistribution policy.

The comparison to the static side is deliberate: with all release times
at zero and one batch, the scheduler degenerates to the paper's single
pack; with the clairvoyant partitions of :mod:`repro.packing` it shows
what knowing the future buys.
"""

from __future__ import annotations

from .jobs import (
    CampaignMetrics,
    Job,
    JobMetrics,
    poisson_stream,
    stream_from_sizes,
)
from .scheduler import (
    BatchResult,
    BatchRun,
    OnlineBatchScheduler,
    campaign_replicate_seed,
    run_replicated_campaigns,
)

__all__ = [
    "Job",
    "JobMetrics",
    "CampaignMetrics",
    "poisson_stream",
    "stream_from_sizes",
    "OnlineBatchScheduler",
    "BatchResult",
    "BatchRun",
    "campaign_replicate_seed",
    "run_replicated_campaigns",
]
