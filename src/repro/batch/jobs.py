"""Jobs, arrival processes and campaign metrics.

A :class:`Job` wraps one malleable task with a release time; an arrival
process produces a finite campaign of jobs.  :class:`CampaignMetrics`
aggregates the quantities batch-scheduling papers report: waiting time,
response time (flow time) and stretch (response over the job's best
possible execution time).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..exceptions import ConfigurationError
from ..rng import derive_rng
from ..tasks import PAPER_M_INF, PAPER_M_SUP, TaskSpec, WorkloadGenerator

__all__ = [
    "Job",
    "JobMetrics",
    "CampaignMetrics",
    "poisson_stream",
    "stream_from_sizes",
]


@dataclass(frozen=True)
class Job:
    """One submitted application: a task plus its release time."""

    job_id: int
    task: TaskSpec
    release: float

    def __post_init__(self) -> None:
        if self.job_id < 0:
            raise ConfigurationError("job_id must be >= 0")
        if self.release < 0:
            raise ConfigurationError(
                f"release time must be >= 0, got {self.release}"
            )


def poisson_stream(
    n: int,
    mean_interarrival: float,
    *,
    m_inf: float = PAPER_M_INF,
    m_sup: float = PAPER_M_SUP,
    checkpoint_unit_cost: float = 1.0,
    seed: int = 0,
) -> List[Job]:
    """A campaign of ``n`` jobs with Poisson arrivals.

    Sizes are drawn from the paper's uniform model; release times are the
    cumulative sums of exponential inter-arrival gaps with the requested
    mean.  Jobs are returned sorted by release time.
    """
    if n < 1:
        raise ConfigurationError(f"campaign size must be >= 1, got {n}")
    if mean_interarrival < 0:
        raise ConfigurationError("mean inter-arrival must be >= 0")
    rng = derive_rng(seed, "job-stream")
    generator = WorkloadGenerator(
        m_inf=m_inf, m_sup=m_sup, checkpoint_unit_cost=checkpoint_unit_cost
    )
    pack = generator.generate(n, rng=rng)
    if mean_interarrival == 0:
        releases = np.zeros(n)
    else:
        releases = np.cumsum(rng.exponential(mean_interarrival, size=n))
        releases[0] = 0.0  # the campaign starts with its first submission
    return [
        Job(job_id=i, task=pack[i], release=float(releases[i]))
        for i in range(n)
    ]


def stream_from_sizes(
    sizes: Sequence[float],
    releases: Sequence[float],
    *,
    checkpoint_unit_cost: float = 1.0,
) -> List[Job]:
    """Deterministic campaign from explicit sizes and release times."""
    if len(sizes) != len(releases):
        raise ConfigurationError(
            f"sizes and releases lengths differ: {len(sizes)} vs {len(releases)}"
        )
    generator = WorkloadGenerator(
        m_inf=min(sizes),
        m_sup=max(sizes),
        checkpoint_unit_cost=checkpoint_unit_cost,
    )
    pack = generator.from_sizes(sizes)
    jobs = [
        Job(job_id=i, task=pack[i], release=float(release))
        for i, release in enumerate(releases)
    ]
    return sorted(jobs, key=lambda job: (job.release, job.job_id))


@dataclass(frozen=True)
class JobMetrics:
    """Timing outcome of one job."""

    job_id: int
    release: float
    start: float       #: start of the batch that ran the job
    completion: float  #: absolute completion instant

    def __post_init__(self) -> None:
        if not self.release <= self.start <= self.completion:
            raise ConfigurationError(
                f"job {self.job_id}: inconsistent times "
                f"release={self.release} start={self.start} "
                f"completion={self.completion}"
            )

    @property
    def waiting(self) -> float:
        """Queue time before the job's batch started."""
        return self.start - self.release

    @property
    def response(self) -> float:
        """Flow time: completion minus release."""
        return self.completion - self.release


@dataclass
class CampaignMetrics:
    """Aggregate metrics over a finished campaign."""

    jobs: List[JobMetrics] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.jobs:
            raise ConfigurationError("campaign metrics need at least one job")

    @property
    def makespan(self) -> float:
        """Completion of the last job (absolute)."""
        return max(job.completion for job in self.jobs)

    @property
    def mean_waiting(self) -> float:
        """Average queue time."""
        return float(np.mean([job.waiting for job in self.jobs]))

    @property
    def max_waiting(self) -> float:
        """Worst queue time."""
        return max(job.waiting for job in self.jobs)

    @property
    def mean_response(self) -> float:
        """Average flow time."""
        return float(np.mean([job.response for job in self.jobs]))

    def mean_stretch(self, best_times: Sequence[float]) -> float:
        """Mean of response over the job's best standalone time.

        ``best_times[i]`` must be job ``i``'s fault-free time at its
        processor threshold (its dedicated-mode optimum); stretch 1 means
        the job ran as if alone on the machine.
        """
        if len(best_times) != len(self.jobs):
            raise ConfigurationError(
                "best_times length must match the job count"
            )
        stretches = []
        for job in self.jobs:
            best = best_times[job.job_id]
            if best <= 0 or not math.isfinite(best):
                raise ConfigurationError(
                    f"job {job.job_id}: best time must be positive/finite"
                )
            stretches.append(job.response / best)
        return float(np.mean(stretches))

    def summary(self) -> str:
        """One-line digest."""
        return (
            f"{len(self.jobs)} jobs: makespan={self.makespan:.6g}s "
            f"wait(mean/max)={self.mean_waiting:.4g}/{self.max_waiting:.4g}s "
            f"response(mean)={self.mean_response:.4g}s"
        )
