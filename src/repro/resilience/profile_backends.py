"""Profile-evaluation backends: the Eq. (4) elementwise pass, three ways.

Every batched profile evaluation in the library bottoms out in the same
elementwise pass over ``(row, grid-slot)`` blocks::

    work     = alpha * t_ff
    n_ff     = floor(work / (tau - C))
    tau_last = work - n_ff * (tau - C)
    t^R      = prefactor * (n_ff * exp_period + expm1(lam * tau_last))

The ``profile_backend`` knob on
:class:`~repro.resilience.expected_time.ExpectedTimeModel` selects how
that pass executes:

``"reference"``
    The original code paths verbatim — per-call ``np.stack`` of the
    task grids inside :func:`~repro.resilience.expected_time.
    stacked_raw_profiles` and the inline fancy-indexed block of
    ``profile_rows_into``.  Kept as the bit-identity anchor, mirroring
    ``decision_kernel="scalar"`` / ``decision_state="rebuild"`` /
    ``event_queue="scan"``.

``"fused"`` (the default)
    :class:`FusedProfileBackend`: the same operations in the same
    order, but over *persistent* stacked grid blocks with in-place
    ``np.take`` gathers and reused ``floor``/``expm1`` workspaces — no
    per-call ``np.stack``, no temporaries.  Because float64 elementwise
    operations are bitwise deterministic regardless of how their
    operands were laid out in memory, the fused rows are bit-identical
    to the reference rows by construction (pinned by
    ``tests/test_properties_profile_backends.py``).

``"numba"``
    :class:`NumbaProfileBackend`: the identical scalar recurrence
    compiled per element by :mod:`numba` (``fastmath=False``, so IEEE
    semantics — and therefore bit-identity — are preserved).  numba is
    a *soft* dependency: the import is guarded, nothing in the package
    requires it, and :func:`resolve_profile_backend` silently falls
    back to ``"fused"`` when it is absent.  Requesting ``"numba"`` is
    therefore always safe; :data:`NUMBA_AVAILABLE` tells you what you
    actually got.

Backends only compute *raw* Eq. (4) rows; the Eq. (6) running-minimum
envelope, alpha quantisation and ring insertion stay in
:class:`~repro.resilience.expected_time.ExpectedTimeModel`, so every
backend shares the exact same caching semantics.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..exceptions import ConfigurationError

__all__ = [
    "PROFILE_BACKENDS",
    "NUMBA_AVAILABLE",
    "ensure_profile_backend",
    "resolve_profile_backend",
    "make_profile_backend",
    "FusedProfileBackend",
    "NumbaProfileBackend",
]

#: Accepted ``profile_backend`` names: ``"fused"`` is the default fast
#: path, ``"numba"`` an optional compiled gate (falls back to fused),
#: ``"reference"`` the original per-call np.stack code kept verbatim.
PROFILE_BACKENDS = ("fused", "numba", "reference")

try:  # soft dependency — never required, never installed by this repo
    import numba  # type: ignore
except ImportError:  # pragma: no cover - exercised on numba-free hosts
    numba = None  # type: ignore[assignment]

#: Whether the optional numba gate can actually compile.
NUMBA_AVAILABLE = numba is not None


def ensure_profile_backend(name: str) -> str:
    """Validate a ``profile_backend`` name (no availability fallback)."""
    if name not in PROFILE_BACKENDS:
        raise ConfigurationError(
            f"profile_backend must be one of {PROFILE_BACKENDS}, "
            f"got {name!r}"
        )
    return name


def resolve_profile_backend(name: str) -> str:
    """The backend that will actually run: ``"numba"`` degrades to
    ``"fused"`` when numba is not importable (soft-dependency contract).
    """
    ensure_profile_backend(name)
    if name == "numba" and not NUMBA_AVAILABLE:
        return "fused"
    return name


class FusedProfileBackend:
    """Raw Eq. (4) rows off persistent stacked blocks, allocation-free.

    ``blocks`` is the model's ``(n_tasks, grid)`` stacked-grid dict
    (:meth:`~repro.resilience.expected_time.ExpectedTimeModel.
    _stacked_grids`).  :meth:`raw_rows` gathers the selected task rows
    with ``np.take(..., out=...)`` into four reused workspaces and runs
    the Eq. (4) recurrence in place — the exact operation sequence of
    the reference multi-grid branch (multiply, divide, floor, multiply,
    subtract, multiply, expm1, multiply, add, multiply), so every row
    is bit-identical to :func:`~repro.resilience.expected_time.
    stacked_raw_profiles` over freshly stacked grids.
    """

    name = "fused"

    def __init__(self, blocks: Dict[str, np.ndarray]):
        self._t_ff = blocks["t_ff"]
        self._wpp = blocks["wpp"]
        self._lam = blocks["lam"]
        self._prefactor = blocks["prefactor"]
        self._exp_period = blocks["exp_period"]
        self._width = int(self._t_ff.shape[1])
        self._capacity = 0
        self._wa = self._wb = self._wc = self._wd = np.empty((0, 0))

    def _ensure_capacity(self, k: int) -> None:
        """Grow the four workspaces to at least ``k`` rows (amortised:
        normally one allocation sized to the pack, but duplicate-alpha
        batches may exceed the task count)."""
        if k <= self._capacity:
            return
        capacity = max(k, int(self._t_ff.shape[0]), 2 * self._capacity)
        shape = (capacity, self._width)
        self._wa = np.empty(shape)
        self._wb = np.empty(shape)
        self._wc = np.empty(shape)
        self._wd = np.empty(shape)
        self._capacity = capacity

    def raw_rows(self, sel: np.ndarray, alpha_q: np.ndarray) -> np.ndarray:
        """Raw Eq. (4) rows for ``(sel[r], alpha_q[r])`` pairs.

        ``alpha_q`` must already be quantised (float64, one per row);
        rows with ``alpha_q <= 0`` are exactly zero, like the reference.
        Returns a ``(len(sel), grid)`` view into backend-owned scratch —
        valid only until the next call; callers copy what they keep.
        """
        k = int(sel.size)
        self._ensure_capacity(k)
        a = self._wa[:k]
        b = self._wb[:k]
        c = self._wc[:k]
        d = self._wd[:k]
        np.take(self._t_ff, sel, axis=0, out=a)
        np.multiply(alpha_q[:, None], a, out=c)     # c = work
        np.take(self._wpp, sel, axis=0, out=b)
        np.divide(c, b, out=a)
        np.floor(a, out=a)                          # a = n_ff
        np.multiply(a, b, out=d)
        np.subtract(c, d, out=c)                    # c = tau_last
        np.take(self._lam, sel, axis=0, out=b)
        with np.errstate(over="ignore"):
            # exp overflow -> inf is legitimate (hopeless MTBF configs),
            # exactly like the reference kernel.
            np.multiply(b, c, out=c)
            np.expm1(c, out=c)                      # c = expm1(lam tau_last)
            np.take(self._exp_period, sel, axis=0, out=b)
            np.multiply(a, b, out=a)                # a = n_ff * exp_period
            np.add(a, c, out=a)
            np.take(self._prefactor, sel, axis=0, out=b)
            np.multiply(b, a, out=a)
        zero = alpha_q <= 0.0
        if bool(np.any(zero)):
            # inf prefactor times the zero row would give nan; finished
            # tasks cost exactly nothing, like the reference.
            a[zero] = 0.0
        return a

    def raw_row(self, i: int, alpha_q: float) -> np.ndarray:
        """One raw Eq. (4) row — the single-miss ``profile()`` fast path.

        The batched gather/broadcast machinery of :meth:`raw_rows` is
        pure overhead at ``k = 1``; this runs the same operation
        sequence directly on the 1-D stacked-block row views (so the
        result stays bit-identical).  Returns backend-owned scratch —
        valid only until the next call.
        """
        self._ensure_capacity(1)
        a = self._wa[0]
        if alpha_q <= 0.0:
            a[:] = 0.0
            return a
        c = self._wc[0]
        d = self._wd[0]
        wpp = self._wpp[i]
        np.multiply(alpha_q, self._t_ff[i], out=c)  # c = work
        np.divide(c, wpp, out=a)
        np.floor(a, out=a)                          # a = n_ff
        np.multiply(a, wpp, out=d)
        np.subtract(c, d, out=c)                    # c = tau_last
        with np.errstate(over="ignore"):
            np.multiply(self._lam[i], c, out=c)
            np.expm1(c, out=c)                      # c = expm1(lam tau_last)
            np.multiply(a, self._exp_period[i], out=a)
            np.add(a, c, out=a)                     # a = n_ff exp_period + .
            np.multiply(self._prefactor[i], a, out=a)
        return a


_NUMBA_KERNEL = None


def _numba_kernel():
    """Compile (once per process) the per-element Eq. (4) recurrence."""
    global _NUMBA_KERNEL
    if _NUMBA_KERNEL is None:
        import math

        @numba.njit(cache=False, fastmath=False)  # IEEE order preserved
        def kernel(sel, alpha_q, t_ff, wpp, lam, prefactor, exp_period, out):
            for r in range(sel.shape[0]):
                i = sel[r]
                a = alpha_q[r]
                if a <= 0.0:
                    for s in range(out.shape[1]):
                        out[r, s] = 0.0
                    continue
                for s in range(out.shape[1]):
                    work = a * t_ff[i, s]
                    n_ff = math.floor(work / wpp[i, s])
                    tau_last = work - n_ff * wpp[i, s]
                    out[r, s] = prefactor[i, s] * (
                        n_ff * exp_period[i, s]
                        + math.expm1(lam[i, s] * tau_last)
                    )

        _NUMBA_KERNEL = kernel
    return _NUMBA_KERNEL


class NumbaProfileBackend(FusedProfileBackend):
    """The fused pass compiled per element by numba (optional gate).

    Same persistent blocks and scratch discipline as the fused backend;
    the elementwise recurrence runs inside one ``njit`` kernel
    (``fastmath=False`` keeps IEEE evaluation order, hence
    bit-identity).  Only constructible when :data:`NUMBA_AVAILABLE`.
    """

    name = "numba"

    def __init__(self, blocks: Dict[str, np.ndarray]):
        if not NUMBA_AVAILABLE:  # pragma: no cover - guarded upstream
            raise ConfigurationError(
                "profile_backend='numba' requested but numba is not "
                "importable; resolve_profile_backend falls back to 'fused'"
            )
        super().__init__(blocks)
        self._kernel = _numba_kernel()

    def raw_rows(self, sel: np.ndarray, alpha_q: np.ndarray) -> np.ndarray:
        k = int(sel.size)
        self._ensure_capacity(k)
        out = self._wa[:k]
        self._kernel(
            sel, alpha_q, self._t_ff, self._wpp, self._lam,
            self._prefactor, self._exp_period, out,
        )
        return out


def make_profile_backend(
    name: str, blocks: Dict[str, np.ndarray]
) -> Optional[FusedProfileBackend]:
    """Instantiate the *resolved* backend (``None`` for the reference)."""
    resolved = resolve_profile_backend(name)
    if resolved == "reference":
        return None
    if resolved == "numba":
        return NumbaProfileBackend(blocks)
    return FusedProfileBackend(blocks)
