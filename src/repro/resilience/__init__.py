"""Resilience substrate: faults, checkpointing, expected completion times."""

from .checkpoint import (
    CheckpointStrategy,
    DalyStrategy,
    FixedPeriodStrategy,
    ResilienceModel,
    YoungStrategy,
)
from .distributions import (
    ExponentialFaults,
    FaultDistribution,
    LogNormalFaults,
    TraceFaults,
    WeibullFaults,
)
from .expected_time import (
    ExpectedTimeModel,
    TaskGrid,
    checkpoint_count,
    ensure_alpha_vector,
    last_period,
    stacked_raw_profiles,
)
from .faults import FaultInjector, NullFaultInjector
from .profile_backends import (
    NUMBA_AVAILABLE,
    PROFILE_BACKENDS,
    ensure_profile_backend,
    resolve_profile_backend,
)
from .replication import (
    ReplicatedExpectedTimeModel,
    crossover_mtbf,
    mnfti,
    mnfti_asymptotic,
    mtti,
)
from .silent import (
    SilentErrorConfig,
    SilentErrorModel,
    simulate_silent_execution,
)

__all__ = [
    "ReplicatedExpectedTimeModel",
    "crossover_mtbf",
    "mnfti",
    "mnfti_asymptotic",
    "mtti",
    "SilentErrorConfig",
    "SilentErrorModel",
    "simulate_silent_execution",
    "CheckpointStrategy",
    "DalyStrategy",
    "FixedPeriodStrategy",
    "ResilienceModel",
    "YoungStrategy",
    "ExponentialFaults",
    "FaultDistribution",
    "LogNormalFaults",
    "TraceFaults",
    "WeibullFaults",
    "ExpectedTimeModel",
    "TaskGrid",
    "checkpoint_count",
    "ensure_alpha_vector",
    "last_period",
    "stacked_raw_profiles",
    "PROFILE_BACKENDS",
    "NUMBA_AVAILABLE",
    "ensure_profile_backend",
    "resolve_profile_backend",
    "FaultInjector",
    "NullFaultInjector",
]
