"""Silent errors with verification — the paper's future-work extension.

Section 7 closes with: *"It would also be interesting to deal not only
with fail-stop errors, but also with silent errors.  This would require
to add verification mechanisms to detect such errors."*  This module
implements that extension analytically, following the standard
verified-checkpointing pattern of the silent-error literature (e.g.
Benoit, Cavelan, Robert et al.):

* computation proceeds in **patterns** ``w`` work + ``V`` verification +
  ``C`` checkpoint;
* *fail-stop* errors (rate ``lambda_f`` per processor) are detected
  instantly and roll back to the last checkpoint, exactly as in the
  paper;
* *silent* errors (rate ``lambda_s`` per processor) corrupt the data
  without any signal and are only caught by the verification at the end
  of the pattern, which then rolls back and re-executes the whole
  pattern.  Because the verification runs *before* the checkpoint, every
  stored checkpoint is guaranteed valid.

Expected time of one pattern of length ``T = w + V + C`` under both error
sources (``Λ_f = j λ_f``, ``Λ_s = j λ_s``):

.. math::

    E_{fs}(T) = e^{Λ_f R}\\Big(\\tfrac{1}{Λ_f} + D\\Big)(e^{Λ_f T} - 1),
    \\qquad
    p_s = 1 - e^{-Λ_s w},

.. math::

    E(pattern) = \\frac{E_{fs}(T) + p_s R}{1 - p_s},

the geometric-retry closure over silent corruptions.  The first-order
optimal work length generalises Young's formula to
``w^* = sqrt((V + C) / (Λ_f / 2 + Λ_s))``; :meth:`SilentErrorModel.optimal_work`
refines it numerically.

:func:`simulate_silent_execution` is a faithful Monte-Carlo sampler of
the same process, used by the validation suite to check the closed form.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy.optimize import minimize_scalar

from ..cluster import Cluster
from ..exceptions import CapacityError, ConfigurationError
from ..tasks import Pack

__all__ = [
    "SilentErrorConfig",
    "SilentErrorModel",
    "simulate_silent_execution",
]


@dataclass(frozen=True)
class SilentErrorConfig:
    """Parameters of the silent-error extension.

    Attributes
    ----------
    silent_rate:
        Per-processor silent-error rate ``lambda_s`` (errors/second).
        Platform studies place it at the same order of magnitude as the
        fail-stop rate.
    verification_unit_cost:
        The constant ``v`` in ``V_i = v * m_i``: verification touches the
        whole memory footprint, like a checkpoint, so it scales the same
        way (``V_{i,j} = V_i / j``).
    """

    silent_rate: float
    verification_unit_cost: float = 0.1

    def __post_init__(self) -> None:
        if self.silent_rate < 0:
            raise ConfigurationError("silent_rate must be non-negative")
        if self.verification_unit_cost < 0:
            raise ConfigurationError(
                "verification_unit_cost must be non-negative"
            )


class SilentErrorModel:
    """Expected completion times under fail-stop *and* silent errors.

    Mirrors the accessor surface of
    :class:`~repro.resilience.expected_time.ExpectedTimeModel` (``profile``
    over the even-``j`` grid with the Eq. (6) envelope, scalar
    ``expected_time``) so downstream tooling can swap the models.

    Parameters
    ----------
    pack, cluster:
        As elsewhere; the cluster supplies the fail-stop rate and ``D``.
    config:
        Silent-error rate and verification cost model.
    """

    def __init__(
        self,
        pack: Pack,
        cluster: Cluster,
        config: SilentErrorConfig,
        max_procs: Optional[int] = None,
    ):
        self.pack = pack
        self.cluster = cluster
        self.config = config
        j_max = cluster.processors if max_procs is None else int(max_procs)
        if j_max < 2:
            raise ConfigurationError("max_procs must be >= 2")
        if j_max % 2 != 0:
            j_max -= 1
        self._j_grid = np.arange(2, j_max + 1, 2, dtype=float)
        self._work_cache: dict[tuple[int, int], float] = {}
        self._profiles: dict[tuple[int, float], np.ndarray] = {}

    # -- per-(task, j) primitives -----------------------------------------
    @property
    def j_grid(self) -> np.ndarray:
        """Even processor counts."""
        return self._j_grid

    def _slot(self, j: int) -> int:
        if j < 2 or j % 2 != 0:
            raise CapacityError(f"j must be an even count >= 2, got {j}")
        slot = j // 2 - 1
        if slot >= self._j_grid.size:
            raise CapacityError(
                f"j={j} exceeds the grid maximum {int(self._j_grid[-1])}"
            )
        return slot

    def checkpoint_cost(self, i: int, j: int) -> float:
        """``C_{i,j} = C_i / j``."""
        self._slot(j)
        return self.pack[i].checkpoint_cost / j

    def verification_cost(self, i: int, j: int) -> float:
        """``V_{i,j} = v m_i / j``."""
        self._slot(j)
        return self.config.verification_unit_cost * self.pack[i].size / j

    def failstop_rate(self, j: int) -> float:
        """``Λ_f = j / mu``."""
        return j / self.cluster.mtbf

    def silent_rate(self, j: int) -> float:
        """``Λ_s = j lambda_s``."""
        return j * self.config.silent_rate

    # -- pattern machinery --------------------------------------------------
    def pattern_time(self, i: int, j: int, work: float) -> float:
        """Expected wall-clock time of one ``w + V + C`` pattern.

        ``inf`` when silent errors make the pattern unwinnable
        (``p_s -> 1``) — longer patterns always retry forever at some
        point, which is what bounds the optimal work length.
        """
        if work <= 0:
            raise ConfigurationError("pattern work length must be positive")
        cost = self.checkpoint_cost(i, j)
        verification = self.verification_cost(i, j)
        total = work + verification + cost
        lam_f = self.failstop_rate(j)
        lam_s = self.silent_rate(j)
        recovery = cost  # buddy protocol: R = C
        with np.errstate(over="ignore"):
            e_failstop = (
                math.exp(min(lam_f * recovery, 700.0))
                * (1.0 / lam_f + self.cluster.downtime)
                * math.expm1(min(lam_f * total, 700.0))
            )
        p_silent = -math.expm1(-lam_s * work)
        if p_silent >= 1.0:
            return math.inf
        return (e_failstop + p_silent * recovery) / (1.0 - p_silent)

    def first_order_work(self, i: int, j: int) -> float:
        """Generalised Young work length ``sqrt((V+C)/(Λ_f/2 + Λ_s))``."""
        rate = self.failstop_rate(j) / 2.0 + self.silent_rate(j)
        if rate <= 0:
            raise ConfigurationError(
                "at least one error rate must be positive"
            )
        overhead = self.checkpoint_cost(i, j) + self.verification_cost(i, j)
        return math.sqrt(overhead / rate)

    def optimal_work(self, i: int, j: int) -> float:
        """Numerically optimal work length (per-pattern efficiency).

        Minimises ``pattern_time / work`` — the expected cost per unit of
        useful work — starting from the first-order guess.  Memoised per
        ``(task, j)``.
        """
        key = (i, j)
        cached = self._work_cache.get(key)
        if cached is not None:
            return cached
        guess = self.first_order_work(i, j)

        def efficiency(log_work: float) -> float:
            work = math.exp(log_work)
            value = self.pattern_time(i, j, work) / work
            return value if math.isfinite(value) else 1e300

        result = minimize_scalar(
            efficiency,
            bracket=(math.log(guess / 8.0), math.log(guess), math.log(guess * 8.0)),
            method="brent",
            options={"xtol": 1e-6},
        )
        work = float(math.exp(result.x))
        self._work_cache[key] = work
        return work

    # -- totals ---------------------------------------------------------------
    def expected_time(
        self,
        i: int,
        j: int,
        alpha: float = 1.0,
        work: Optional[float] = None,
    ) -> float:
        """Expected time to complete a fraction ``alpha`` of task ``i``.

        Splits ``alpha t_{i,j}`` into full patterns of the (optimal unless
        given) work length plus one final partial pattern, mirroring
        Eqs. (2)-(4).
        """
        if alpha < 0.0 or alpha > 1.0 + 1e-12:
            raise ConfigurationError(f"alpha must be in [0, 1], got {alpha}")
        if alpha == 0.0:
            return 0.0
        slot = self._slot(j)
        t_ff = float(self.pack[i].fault_free_time(int(self._j_grid[slot])))
        target = alpha * t_ff
        work_length = self.optimal_work(i, j) if work is None else float(work)
        if work_length <= 0:
            raise ConfigurationError("work length must be positive")
        n_full = int(math.floor(target / work_length))
        remainder = target - n_full * work_length
        total = n_full * self.pattern_time(i, j, work_length)
        if remainder > 0:
            total += self.pattern_time(i, j, remainder)
        return total

    def profile(self, i: int, alpha: float = 1.0) -> np.ndarray:
        """Expected-time envelope over the even-``j`` grid (Eq. 6 analogue)."""
        key = (i, float(alpha))
        cached = self._profiles.get(key)
        if cached is not None:
            return cached
        raw = np.array(
            [
                self.expected_time(i, int(j), alpha)
                for j in self._j_grid.astype(int)
            ]
        )
        envelope = np.minimum.accumulate(raw)
        envelope.setflags(write=False)
        self._profiles[key] = envelope
        return envelope

    def threshold(self, i: int, alpha: float = 1.0) -> int:
        """Smallest ``j`` attaining the envelope minimum."""
        envelope = self.profile(i, alpha)
        return int(self._j_grid[int(np.argmin(envelope))])

    def verification_overhead(self, i: int, j: int) -> float:
        """Fault-free fraction of time spent verifying, at the optimal work."""
        work = self.optimal_work(i, j)
        verification = self.verification_cost(i, j)
        cost = self.checkpoint_cost(i, j)
        return verification / (work + verification + cost)


def simulate_silent_execution(
    model: SilentErrorModel,
    i: int,
    j: int,
    *,
    alpha: float = 1.0,
    work: Optional[float] = None,
    rng: Optional[np.random.Generator] = None,
    max_events: int = 10_000_000,
) -> float:
    """Monte-Carlo sample of one execution under both error sources.

    Replays the exact process the closed form models: patterns of work
    are attempted; fail-stop arrivals (exponential, rate ``Λ_f``) abort
    the attempt with rollback ``D + R``; silent arrivals during the work
    segment (rate ``Λ_s``) let the pattern *finish* and then force a
    rollback ``R`` plus full retry.  Returns the total wall-clock time.

    ``max_events`` guards against unwinnable configurations.
    """
    if rng is None:
        rng = np.random.default_rng()
    slot = model._slot(j)
    t_ff = float(model.pack[i].fault_free_time(int(model.j_grid[slot])))
    target = alpha * t_ff
    work_length = model.optimal_work(i, j) if work is None else float(work)
    cost = model.checkpoint_cost(i, j)
    verification = model.verification_cost(i, j)
    recovery = cost
    downtime = model.cluster.downtime
    lam_f = model.failstop_rate(j)
    lam_s = model.silent_rate(j)

    clock = 0.0
    done = 0.0
    events = 0
    while done < target - 1e-12:
        segment = min(work_length, target - done)
        pattern = segment + verification + cost
        # attempt the pattern until no fail-stop error interrupts it
        while True:
            events += 1
            if events > max_events:
                raise ConfigurationError(
                    "simulation exceeded max_events; the configuration "
                    "is likely unwinnable"
                )
            arrival = rng.exponential(1.0 / lam_f) if lam_f > 0 else math.inf
            if arrival >= pattern:
                clock += pattern
                break
            clock += arrival + downtime + recovery
        # pattern completed fail-stop-wise; silent corruption?
        corrupted = (
            lam_s > 0 and rng.exponential(1.0 / lam_s) < segment
        )
        if corrupted:
            clock += recovery  # rollback, retry the same segment
        else:
            done += segment
    return clock
