"""Failure inter-arrival distributions.

The paper drives its fault simulator "with an exponential law of parameter
lambda" (Section 6.1); :class:`ExponentialFaults` is therefore the default
everywhere.  Weibull and log-normal generators — the two families used by
the checkpointing literature the paper builds on ([20, 21]) — and a trace
replayer are provided for sensitivity extensions.

All distributions expose the *mean* inter-arrival time (the per-processor
MTBF) as their primary parameter so they can be swapped without retuning.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from ..exceptions import ConfigurationError

__all__ = [
    "FaultDistribution",
    "ExponentialFaults",
    "WeibullFaults",
    "LogNormalFaults",
    "TraceFaults",
]


class FaultDistribution(ABC):
    """A distribution of failure inter-arrival times on one processor."""

    @abstractmethod
    def sample(self, rng: np.random.Generator, proc: int) -> float:
        """Draw the next inter-arrival time (seconds) for processor ``proc``."""

    @abstractmethod
    def mean(self) -> float:
        """Mean inter-arrival time (the per-processor MTBF)."""

    def sample_initial(self, rng: np.random.Generator, p: int) -> np.ndarray:
        """Vector of first arrival times for processors ``0..p-1``.

        Default: one i.i.d. draw per processor.  Subclasses may override
        (e.g. trace replay uses the recorded first events).
        """
        return np.array([self.sample(rng, proc) for proc in range(p)], dtype=float)


class ExponentialFaults(FaultDistribution):
    """Memoryless fail-stop arrivals: ``Exp(lambda)`` with ``lambda = 1/mtbf``."""

    def __init__(self, mtbf: float):
        if mtbf <= 0:
            raise ConfigurationError(f"MTBF must be positive, got {mtbf}")
        self.mtbf = float(mtbf)

    def sample(self, rng: np.random.Generator, proc: int) -> float:
        return float(rng.exponential(self.mtbf))

    def sample_initial(self, rng: np.random.Generator, p: int) -> np.ndarray:
        return rng.exponential(self.mtbf, size=p)

    def mean(self) -> float:
        return self.mtbf

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ExponentialFaults(mtbf={self.mtbf:g})"


class WeibullFaults(FaultDistribution):
    """Weibull arrivals parameterised by mean and shape.

    ``shape < 1`` gives the infant-mortality behaviour observed on real
    HPC failure logs; ``shape = 1`` degenerates to the exponential law.
    The scale is derived from the requested mean:
    ``scale = mean / Gamma(1 + 1/shape)``.
    """

    def __init__(self, mtbf: float, shape: float = 0.7):
        if mtbf <= 0:
            raise ConfigurationError(f"MTBF must be positive, got {mtbf}")
        if shape <= 0:
            raise ConfigurationError(f"Weibull shape must be positive, got {shape}")
        self.mtbf = float(mtbf)
        self.shape = float(shape)
        self.scale = self.mtbf / math.gamma(1.0 + 1.0 / self.shape)

    def sample(self, rng: np.random.Generator, proc: int) -> float:
        return float(self.scale * rng.weibull(self.shape))

    def sample_initial(self, rng: np.random.Generator, p: int) -> np.ndarray:
        return self.scale * rng.weibull(self.shape, size=p)

    def mean(self) -> float:
        return self.mtbf

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"WeibullFaults(mtbf={self.mtbf:g}, shape={self.shape:g})"


class LogNormalFaults(FaultDistribution):
    """Log-normal arrivals parameterised by mean and log-space sigma."""

    def __init__(self, mtbf: float, sigma: float = 1.0):
        if mtbf <= 0:
            raise ConfigurationError(f"MTBF must be positive, got {mtbf}")
        if sigma <= 0:
            raise ConfigurationError(f"sigma must be positive, got {sigma}")
        self.mtbf = float(mtbf)
        self.sigma = float(sigma)
        # E[X] = exp(mu + sigma^2/2)  =>  mu = ln(mean) - sigma^2/2
        self.mu_log = math.log(self.mtbf) - 0.5 * self.sigma**2

    def sample(self, rng: np.random.Generator, proc: int) -> float:
        return float(rng.lognormal(self.mu_log, self.sigma))

    def sample_initial(self, rng: np.random.Generator, p: int) -> np.ndarray:
        return rng.lognormal(self.mu_log, self.sigma, size=p)

    def mean(self) -> float:
        return self.mtbf

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LogNormalFaults(mtbf={self.mtbf:g}, sigma={self.sigma:g})"


class TraceFaults(FaultDistribution):
    """Replays recorded per-processor failure timestamps.

    ``traces[proc]`` is the increasing list of absolute failure times for
    that processor; once a trace is exhausted the processor never fails
    again.  Useful to re-run a simulation against a captured failure log.
    """

    def __init__(self, traces: Sequence[Sequence[float]]):
        self._traces = [list(map(float, trace)) for trace in traces]
        for proc, trace in enumerate(self._traces):
            if any(b <= a for a, b in zip(trace, trace[1:])):
                raise ConfigurationError(
                    f"trace for processor {proc} is not strictly increasing"
                )
        self._cursor = [0] * len(self._traces)
        arrivals = [t for trace in self._traces for t in trace]
        gaps: list[float] = []
        for trace in self._traces:
            gaps.extend(np.diff(trace))
        self._mean = float(np.mean(gaps)) if gaps else math.inf
        self._n_events = len(arrivals)

    def sample(self, rng: np.random.Generator, proc: int) -> float:
        """Inter-arrival to the next recorded event for ``proc``."""
        if proc >= len(self._traces):
            return math.inf
        trace = self._traces[proc]
        cursor = self._cursor[proc]
        if cursor >= len(trace):
            return math.inf
        previous = trace[cursor - 1] if cursor > 0 else 0.0
        self._cursor[proc] = cursor + 1
        return trace[cursor] - previous

    def sample_initial(self, rng: np.random.Generator, p: int) -> np.ndarray:
        first = np.full(p, math.inf)
        for proc in range(min(p, len(self._traces))):
            if self._traces[proc]:
                first[proc] = self._traces[proc][0]
                self._cursor[proc] = 1
        return first

    def mean(self) -> float:
        return self._mean

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TraceFaults(processors={len(self._traces)}, events={self._n_events})"
