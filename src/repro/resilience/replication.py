"""Process replication as an alternative resilience mechanism.

The related-work section (2.2) contrasts checkpointing with *process
replication* (RedMPI [12]): every logical process runs twice, a failure
killing one replica is masked, and the application is only interrupted
when **both** replicas of some process have died.  This module provides
the standard analytic machinery (Ferreira et al.; Hérault & Robert [16])
so replication can be compared quantitatively against the paper's buddy
checkpointing:

* :func:`mnfti` — Mean Number of Failures To Interruption for ``n_r``
  replica pairs, by the exact recursion over degraded pairs, plus its
  :func:`mnfti_asymptotic` birthday-paradox approximation;
* :func:`mtti` — Mean Time To Interruption of a ``j``-processor run;
* :class:`ReplicatedExpectedTimeModel` — the analogue of
  :class:`~repro.resilience.expected_time.ExpectedTimeModel` when a task
  duplicates every process: ``j`` physical processors provide ``j/2``
  logical ones, failures follow the much rarer interruption process, and
  periodic checkpoints (Young period at the interruption MTBF) guard
  against interruptions;
* :func:`crossover_mtbf` — the per-processor MTBF below which replication
  beats plain checkpointed execution for a given task and allocation.

Replication trades *throughput* (half the processors do redundant work)
for *failure rarity* (interruptions need two hits on the same pair); the
crossover therefore moves toward replication as platforms grow less
reliable — the qualitative claim this module's benchmark checks.
"""

from __future__ import annotations

import math
from typing import Optional, Union

import numpy as np

from ..cluster import Cluster
from ..exceptions import CapacityError, ConfigurationError
from ..tasks import Pack
from .checkpoint import CheckpointStrategy, YoungStrategy
from .expected_time import ExpectedTimeModel

__all__ = [
    "mnfti",
    "mnfti_asymptotic",
    "mtti",
    "ReplicatedExpectedTimeModel",
    "crossover_mtbf",
]

ArrayLike = Union[int, float, np.ndarray]


def mnfti(pairs: int) -> float:
    """Mean Number of Failures To Interruption for ``pairs`` replica pairs.

    Exact recursion on the number of degraded pairs ``d`` (pairs that
    already lost one replica).  Failures strike alive processors uniformly
    at random; from state ``d`` the next failure interrupts with
    probability ``d / (2 n_r - d)`` (it hits the survivor of a degraded
    pair) and otherwise degrades a fresh pair:

    .. math::

        E(d) = 1 + \\frac{2 (n_r - d)}{2 n_r - d}\\, E(d + 1),
        \\qquad E(n_r) = 1,

    and ``MNFTI = E(0)``.

    >>> mnfti(1)
    2.0
    """
    if pairs < 1:
        raise ConfigurationError(f"pairs must be >= 1, got {pairs}")
    expected = 1.0  # E(n_r): every survivor belongs to a degraded pair
    for d in range(pairs - 1, -1, -1):
        survive = 2.0 * (pairs - d) / (2.0 * pairs - d)
        expected = 1.0 + survive * expected
    return expected


def mnfti_asymptotic(pairs: int) -> float:
    """Birthday-paradox approximation ``sqrt(pi n_r)`` of :func:`mnfti`.

    Accurate to a few percent beyond ~50 pairs; exposed so tests and
    benchmarks can check the exact recursion's asymptotics.
    """
    if pairs < 1:
        raise ConfigurationError(f"pairs must be >= 1, got {pairs}")
    return math.sqrt(math.pi * pairs)


def mtti(cluster: Cluster, j: int) -> float:
    """Mean Time To Interruption of a replicated ``j``-processor task.

    ``j`` physical processors host ``j/2`` replica pairs; failures arrive
    with the task MTBF ``mu/j`` and only every :func:`mnfti`-th failure
    (on average) interrupts, hence ``MTTI = MNFTI(j/2) * mu / j``.
    """
    if j < 2 or j % 2 != 0:
        raise CapacityError(f"replication needs an even j >= 2, got {j}")
    return mnfti(j // 2) * cluster.mtbf / j


class ReplicatedExpectedTimeModel:
    """Expected completion times when tasks duplicate every process.

    Mirrors the public surface of
    :class:`~repro.resilience.expected_time.ExpectedTimeModel` (``profile``,
    ``expected_time``, ``threshold``) with replication semantics:

    * ``j`` physical processors execute the task at the *speed of j/2*
      (every process is doubled);
    * the failure process is the interruption process of rate
      ``1 / MTTI(j)``;
    * checkpoints are still taken (an interruption rolls back to the last
      checkpoint) with the configured strategy's period evaluated at the
      interruption MTBF — the standard replication+checkpointing combo;
    * checkpoint, recovery and downtime semantics are unchanged
      (``R = C``, downtime ``D``).

    The same Eq. (4) machinery applies with ``lambda j -> 1/MTTI(j)`` and
    ``t_{i,j} -> t_{i, j/2}``; the Eq. (6) prefix-minimum envelope is
    applied identically.
    """

    def __init__(
        self,
        pack: Pack,
        cluster: Cluster,
        strategy: Optional[CheckpointStrategy] = None,
        max_procs: Optional[int] = None,
    ):
        self.pack = pack
        self.cluster = cluster
        self.strategy = strategy if strategy is not None else YoungStrategy()
        j_max = cluster.processors if max_procs is None else int(max_procs)
        if j_max < 2:
            raise ConfigurationError("max_procs must be >= 2")
        if j_max % 2 != 0:
            j_max -= 1
        self._j_grid = np.arange(2, j_max + 1, 2, dtype=float)
        #: interruption rates 1/MTTI(j) for every even j
        pairs = (self._j_grid / 2).astype(int)
        mnfti_values = np.array([mnfti(int(k)) for k in pairs])
        self._lam = self._j_grid / (cluster.mtbf * mnfti_values)
        self._profiles: dict[tuple[int, float], np.ndarray] = {}

    # ------------------------------------------------------------------
    @property
    def j_grid(self) -> np.ndarray:
        """Even physical processor counts."""
        return self._j_grid

    def _slot(self, j: int) -> int:
        if j < 2 or j % 2 != 0:
            raise CapacityError(f"j must be an even count >= 2, got {j}")
        slot = j // 2 - 1
        if slot >= self._j_grid.size:
            raise CapacityError(
                f"j={j} exceeds the grid maximum {int(self._j_grid[-1])}"
            )
        return slot

    def fault_free_time(self, i: int, j: int) -> float:
        """Fault-free time at ``j`` physical processors: ``t_{i, j/2}``."""
        slot = self._slot(j)
        logical = max(1, int(self._j_grid[slot]) // 2)
        return float(self.pack[i].fault_free_time(logical))

    def checkpoint_cost(self, i: int, j: int) -> float:
        """``C_i / (j/2)`` — checkpoints are written by logical processes."""
        slot = self._slot(j)
        logical = max(1, int(self._j_grid[slot]) // 2)
        return self.pack[i].checkpoint_cost / logical

    def period(self, i: int, j: int) -> float:
        """Checkpoint period at the interruption MTBF."""
        slot = self._slot(j)
        mtbf_interruption = 1.0 / self._lam[slot]
        return float(
            self.strategy.period(mtbf_interruption, self.checkpoint_cost(i, j))
        )

    def profile(self, i: int, alpha: float = 1.0) -> np.ndarray:
        """Envelope of expected times over the even-``j`` grid."""
        if alpha < 0.0 or alpha > 1.0 + 1e-12:
            raise ConfigurationError(f"alpha must be in [0, 1], got {alpha}")
        key = (i, float(alpha))
        cached = self._profiles.get(key)
        if cached is not None:
            return cached
        task = self.pack[i]
        logical = np.maximum(1, (self._j_grid / 2).astype(int))
        t_ff = np.asarray(task.fault_free_time(logical), dtype=float)
        cost = task.checkpoint_cost / logical
        mtbf_interruption = 1.0 / self._lam
        tau = np.asarray(
            self.strategy.period(mtbf_interruption, cost), dtype=float
        )
        work_per_period = tau - cost
        if np.any(work_per_period <= 0):
            raise ConfigurationError(
                "replicated checkpoint period does not exceed its cost"
            )
        if alpha <= 0.0:
            raw = np.zeros_like(t_ff)
        else:
            work = alpha * t_ff
            n_ff = np.floor(work / work_per_period)
            tau_last = work - n_ff * work_per_period
            with np.errstate(over="ignore"):
                # inf on hopeless configurations is the correct answer
                prefactor = np.exp(self._lam * cost) * (
                    1.0 / self._lam + self.cluster.downtime
                )
                raw = prefactor * (
                    n_ff * np.expm1(self._lam * tau)
                    + np.expm1(self._lam * tau_last)
                )
        envelope = np.minimum.accumulate(raw)
        envelope.setflags(write=False)
        self._profiles[key] = envelope
        return envelope

    def expected_time(self, i: int, j: int, alpha: float = 1.0) -> float:
        """Expected time of task ``i`` on ``j`` physical processors."""
        return float(self.profile(i, alpha)[self._slot(j)])

    def threshold(self, i: int, alpha: float = 1.0) -> int:
        """Smallest ``j`` attaining the envelope minimum."""
        envelope = self.profile(i, alpha)
        return int(self._j_grid[int(np.argmin(envelope))])


def crossover_mtbf(
    pack: Pack,
    i: int,
    j: int,
    *,
    processors: Optional[int] = None,
    downtime: float = 60.0,
    strategy: Optional[CheckpointStrategy] = None,
    mtbf_low: float = 60.0,
    mtbf_high: float = 100.0 * 365.25 * 86400.0,
    tolerance: float = 1e-3,
) -> Optional[float]:
    """Per-processor MTBF at which replication starts to beat checkpointing.

    Compares the plain checkpointed expected time with the replicated one
    for task ``i`` on ``j`` processors as a function of the per-processor
    MTBF, and bisects for the crossover.  Returns ``None`` when one
    mechanism dominates over the whole ``[mtbf_low, mtbf_high]`` range
    (replication everywhere for terrible platforms, checkpointing
    everywhere for reliable ones).

    Replication is the rare-failure loser (it wastes half the platform)
    and the frequent-failure winner — the advantage function is monotone
    in the MTBF, which is what makes bisection valid.
    """
    if j < 2 or j % 2 != 0:
        raise CapacityError(f"j must be an even count >= 2, got {j}")
    p = processors if processors is not None else j
    if mtbf_low >= mtbf_high:
        raise ConfigurationError("mtbf_low must be below mtbf_high")

    def advantage(mtbf: float) -> float:
        """positive when replication wins at this MTBF"""
        cluster = Cluster(processors=p, mtbf=mtbf, downtime=downtime)
        plain = ExpectedTimeModel(pack, cluster, max_procs=j)
        replicated = ReplicatedExpectedTimeModel(
            pack, cluster, strategy=strategy, max_procs=j
        )
        return plain.expected_time(i, j, 1.0) - replicated.expected_time(
            i, j, 1.0
        )

    low, high = mtbf_low, mtbf_high
    adv_low, adv_high = advantage(low), advantage(high)
    if adv_low <= 0:  # checkpointing already wins on the worst platform
        return None
    if adv_high > 0:  # replication wins even on the best platform
        return None
    while (high - low) > tolerance * low:
        mid = math.sqrt(low * high)  # geometric bisection over decades
        if advantage(mid) > 0:
            low = mid
        else:
            high = mid
    return math.sqrt(low * high)
