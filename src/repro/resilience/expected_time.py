"""Expected completion times under failures (Section 3.2).

For a task ``T_i`` executing a remaining work fraction ``alpha`` on ``j``
processors with periodic checkpointing, the paper derives (Eqs. 2-4):

.. math::

    N^{ff}_{i,j}(\\alpha) =
        \\Big\\lfloor \\frac{\\alpha t_{i,j}}{\\tau_{i,j} - C_{i,j}}
        \\Big\\rfloor,
    \\qquad
    \\tau_{last} = \\alpha t_{i,j} - N^{ff}_{i,j}(\\alpha)
                   (\\tau_{i,j} - C_{i,j}),

.. math::

    t^R_{i,j}(\\alpha) = e^{\\lambda j R_{i,j}}
        \\Big(\\frac{1}{\\lambda j} + D\\Big)
        \\Big( N^{ff}_{i,j}(\\alpha)\\,(e^{\\lambda j \\tau_{i,j}} - 1)
             + (e^{\\lambda j \\tau_{last}} - 1) \\Big).

Adding processors raises the failure rate, so ``t^R`` is not monotone in
``j``; Eq. (6) replaces it by its running minimum over even ``j`` (the
"threshold" envelope), restoring assumption (5).

The whole grid over even ``j`` is evaluated at once with NumPy (the
envelope needs the prefix minimum anyway).  Envelope profiles are cached
in flat preallocated ndarray rows keyed by ``(task, quantised alpha)``:
rollback alphas are continuous floats, so the alpha is quantised to the
1e-12 grid — and the profile is *evaluated at the quantised alpha* — to
keep the hit rate high under faults while staying deterministic: the
returned envelope is a pure function of ``(task, quantised alpha)``,
never of what the cache happened to contain (the perturbation is below
1e-12 relative, far under the model's fidelity).  Eviction is FIFO over
the row ring.
This is the hot path of the library; the batch accessors
(:meth:`ExpectedTimeModel.expected_times`,
:meth:`ExpectedTimeModel.profile_batch`) let the scheduling heuristics
evaluate all candidate ``j`` — or all tasks at one ``alpha`` — in a
single vectorised call instead of per-slot scalar lookups.
"""

from __future__ import annotations

import math
import sys
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from ..cluster import Cluster
from ..exceptions import CapacityError, ConfigurationError
from ..tasks import Pack
from .checkpoint import ResilienceModel
from .profile_backends import (
    NUMBA_AVAILABLE,
    PROFILE_BACKENDS,
    ensure_profile_backend,
    make_profile_backend,
    resolve_profile_backend,
)

__all__ = [
    "ExpectedTimeModel",
    "TaskGrid",
    "checkpoint_count",
    "last_period",
    "stacked_raw_profiles",
    "ensure_alpha_vector",
    "PROFILE_BACKENDS",
    "NUMBA_AVAILABLE",
]

#: Quantisation step of the profile-cache alpha key (~1e-12).
_ALPHA_QUANTUM = 1e-12
_ALPHA_SCALE = 1.0 / _ALPHA_QUANTUM

#: Process-wide profile-cache [hits, misses], summed over every model
#: this process ever built.  A module-level cell rather than class
#: attributes: mutating a type attribute costs ~150ns per write in
#: CPython (type-cache invalidation), a list slot ~15ns — and this sits
#: on the cache-hit fast path.  Monotone, so the engine can delta it
#: around a work chunk regardless of workload-cache eviction.
_PROCESS_PROFILE_COUNTERS = [0, 0]


def ensure_alpha_vector(
    alphas, n: int, caller: str = "profile evaluation"
) -> np.ndarray:
    """Validated ``(n,)`` float64 C-contiguous alpha vector.

    The cache-boundary contract: every public batched accessor runs its
    ``alphas`` through this exactly once, so the kernels underneath
    (:func:`stacked_raw_profiles`, the profile backends) can assume a
    conforming array and never silently copy on the hot path.  A
    conforming input passes through untouched; a non-float64 or
    non-contiguous one is converted *here*, visibly, instead of inside
    every per-call ``np.asarray``.
    """
    arr = (
        alphas
        if isinstance(alphas, np.ndarray)
        else np.asarray(alphas, dtype=np.float64)
    )
    if arr.dtype != np.float64 or not arr.flags.c_contiguous:
        arr = np.ascontiguousarray(arr, dtype=np.float64)
    if arr.shape != (n,):
        raise ConfigurationError(
            f"{caller} needs one alpha per row: "
            f"{n} rows, alphas shape {arr.shape}"
        )
    return arr


def checkpoint_count(alpha: float, t_ff: float, tau: float, cost: float) -> int:
    """``N^ff_{i,j}(alpha)`` — Eq. (2), scalar form."""
    if alpha <= 0.0:
        return 0
    work = tau - cost
    if work <= 0:
        raise ConfigurationError("checkpoint period must exceed checkpoint cost")
    return int(math.floor(alpha * t_ff / work))


def last_period(alpha: float, t_ff: float, tau: float, cost: float) -> float:
    """``tau_last`` — Eq. (3), scalar form."""
    n_ff = checkpoint_count(alpha, t_ff, tau, cost)
    return alpha * t_ff - n_ff * (tau - cost)


@dataclass(frozen=True)
class TaskGrid:
    """Precomputed per-task arrays over the even-``j`` grid.

    ``index k`` corresponds to ``j = 2 (k + 1)``.
    """

    j: np.ndarray          #: even processor counts 2, 4, ..., j_max
    t_ff: np.ndarray       #: fault-free times t_{i,j}
    cost: np.ndarray       #: checkpoint costs C_{i,j}
    tau: np.ndarray        #: checkpoint periods tau_{i,j}
    lam: np.ndarray        #: task failure rates lambda * j
    prefactor: np.ndarray  #: e^{lambda j R} (1/(lambda j) + D)
    exp_period: np.ndarray  #: e^{lambda j tau} - 1
    work_per_period: np.ndarray  #: tau - C

    def __post_init__(self) -> None:
        # slot() sits on every scalar accessor; memoise its arithmetic
        # (the dataclass is frozen, hence the object.__setattr__).
        object.__setattr__(self, "_slot_memo", {})
        object.__setattr__(self, "_size", len(self.j))

    def slot(self, j: int) -> int:
        """Grid index of an even processor count ``j`` (memoised)."""
        slot = self._slot_memo.get(j)
        if slot is not None:
            return slot
        if j < 2 or j % 2 != 0:
            raise CapacityError(f"j must be an even count >= 2, got {j}")
        slot = j // 2 - 1
        if slot >= self._size:
            raise CapacityError(
                f"j={j} exceeds the grid maximum {int(self.j[-1])}"
            )
        self._slot_memo[j] = slot
        return slot

    def slots(self, j_array: np.ndarray) -> np.ndarray:
        """Grid indices of an array of even processor counts."""
        j_arr = np.asarray(j_array, dtype=np.int64)
        if j_arr.size == 0:
            return np.empty(0, dtype=np.int64)
        if int(j_arr.min()) < 2 or bool(np.any(j_arr & 1)):
            raise CapacityError(
                "every j must be an even count >= 2, got "
                f"{j_arr.tolist()}"
            )
        slots = (j_arr >> 1) - 1
        if int(slots.max()) >= self._size:
            raise CapacityError(
                f"j={int(j_arr.max())} exceeds the grid maximum "
                f"{int(self.j[-1])}"
            )
        return slots


def stacked_raw_profiles(
    grids: Sequence[TaskGrid], alphas: np.ndarray
) -> np.ndarray:
    """Eq. (4) over several stacked task grids, one row per (grid, alpha).

    The fused kernel behind every batched profile evaluation: one
    ``floor``/``expm1`` pass over the 2-D block of stacked grids instead
    of one call per task.  ``alphas`` supplies one remaining-work
    fraction *per row* (callers quantise it first — see
    :meth:`ExpectedTimeModel.profile`), so a single pass can serve both
    the same-alpha case (:meth:`ExpectedTimeModel.profile_batch`) and
    the per-task-alpha case of the decision kernels
    (:meth:`ExpectedTimeModel.profile_matrix`,
    :mod:`repro.core.kernels`).  Rows with ``alpha <= 0`` are exactly
    zero; every other row is bit-identical to the scalar
    :meth:`ExpectedTimeModel.raw_profile` at the same alpha.
    """
    alphas = ensure_alpha_vector(alphas, len(grids), "stacked_raw_profiles")
    if len(grids) == 1:
        # Single-grid fast path: skip the stacking entirely (this is the
        # cache-miss path of every scalar profile evaluation).  A scalar
        # alpha broadcast over the 1-D grid performs the exact same
        # elementwise operations as a one-row stacked block.
        g = grids[0]
        alpha = float(alphas[0])
        if alpha <= 0.0:
            return np.zeros((1, g.t_ff.size))
        work = alpha * g.t_ff
        n_ff = np.floor(work / g.work_per_period)
        tau_last = work - n_ff * g.work_per_period
        with np.errstate(over="ignore"):
            row = g.prefactor * (
                n_ff * g.exp_period + np.expm1(g.lam * tau_last)
            )
        return row[None, :]
    t_ff = np.stack([g.t_ff for g in grids])
    if bool(np.all(alphas <= 0.0)):
        return np.zeros_like(t_ff)
    wpp = np.stack([g.work_per_period for g in grids])
    work = alphas[:, None] * t_ff
    n_ff = np.floor(work / wpp)
    tau_last = work - n_ff * wpp
    lam = np.stack([g.lam for g in grids])
    with np.errstate(over="ignore"):
        block = np.stack([g.prefactor for g in grids]) * (
            n_ff * np.stack([g.exp_period for g in grids])
            + np.expm1(lam * tau_last)
        )
    zero = alphas <= 0.0
    if bool(np.any(zero)):
        # An overflowed prefactor (inf) times the zero block would give
        # nan; finished tasks cost exactly nothing, like raw_profile.
        block[zero] = 0.0
    return block


class ExpectedTimeModel:
    """Vectorised evaluator of ``t^R_{i,j}(alpha)`` with the Eq. (6) envelope.

    Parameters
    ----------
    pack:
        The co-scheduled tasks.
    cluster:
        Platform (supplies ``mu`` and ``D``).
    resilience:
        Optional pre-built :class:`ResilienceModel` (defaults to Young).
    max_procs:
        Largest ``j`` in the grid (defaults to ``cluster.processors``).
    cache_size:
        Number of ``(task, alpha)`` profiles kept alive (FIFO eviction
        over a preallocated row ring).
    rc_factor:
        Multiplier on every redistribution cost ``RC_i^{j->k}`` seen by
        the heuristics (ablation knob: 0 makes redistribution free, large
        values discourage it).  The paper's model is ``rc_factor = 1``.
    profile_backend:
        How the Eq. (4) elementwise pass executes on cache misses —
        ``"fused"`` (default, persistent stacked blocks + in-place
        workspaces), ``"numba"`` (optional compiled gate, silently
        falling back to fused when numba is absent) or ``"reference"``
        (the original per-call ``np.stack`` paths, kept verbatim).  All
        backends are bit-identical (:mod:`~repro.resilience.
        profile_backends`); the knob mirrors ``decision_kernel`` /
        ``decision_state`` / ``event_queue``.
    """

    @staticmethod
    def process_cache_snapshot() -> tuple[int, int]:
        """Process-wide profile ``(hits, misses)`` totals.

        Summed over every model this process ever built.  Monotone —
        unlike the per-instance counters these survive workload-cache
        eviction, so the engine can report a profile hit rate across
        whole campaigns.
        """
        return tuple(_PROCESS_PROFILE_COUNTERS)

    def __init__(
        self,
        pack: Pack,
        cluster: Cluster,
        resilience: Optional[ResilienceModel] = None,
        max_procs: Optional[int] = None,
        cache_size: int = 4096,
        rc_factor: float = 1.0,
        profile_backend: str = "fused",
    ):
        if rc_factor < 0:
            raise ConfigurationError("rc_factor must be non-negative")
        if cache_size < 1:
            raise ConfigurationError("cache_size must be >= 1")
        self.pack = pack
        self.cluster = cluster
        self.rc_factor = float(rc_factor)
        self.resilience = (
            resilience if resilience is not None else ResilienceModel(cluster)
        )
        j_max = cluster.processors if max_procs is None else int(max_procs)
        if j_max < 2:
            raise ConfigurationError("max_procs must be >= 2")
        if j_max % 2 != 0:
            j_max -= 1
        self._j_grid = np.arange(2, j_max + 1, 2, dtype=float)
        self._grid_len = len(self._j_grid)
        self._grids: dict[int, TaskGrid] = {}
        # Flat profile store: one preallocated row array per live envelope,
        # grown on demand up to cache_size and then recycled FIFO.
        # _profile_views maps (task, quantised-alpha) -> read-only row and
        # _row_keys tracks each row's occupant for the eviction.  A row is
        # only reused in place when no caller still references it (checked
        # via the refcount); otherwise a fresh array takes its slot and the
        # holder keeps the old, still-valid envelope — the semantics the
        # seed's OrderedDict cache gave for free.
        self._cache_size = int(cache_size)
        self._rows: list[np.ndarray] = []
        self._profile_views: Dict[tuple[int, int], np.ndarray] = {}
        self._row_keys: list[Optional[tuple[int, int]]] = []
        self._clock = 0
        self.cache_hits = 0
        self.cache_misses = 0
        # Stacked per-task grid block behind profile_rows_into: one
        # (n_tasks, grid) copy of each TaskGrid field, built once per
        # model so row-level re-evaluations are pure fancy indexing with
        # no per-call np.stack of grids.
        self._stacked_block: Optional[Dict[str, np.ndarray]] = None
        # Profile backend: requested name, resolved name (numba degrades
        # to fused when absent) and the lazily built backend object —
        # None while unbuilt AND for the reference mode, so the miss
        # paths test `_backend_obj` alone only after _get_backend().
        self.requested_backend = ensure_profile_backend(profile_backend)
        self._backend_name = resolve_profile_backend(profile_backend)
        self._backend_obj = None

    # -- grids ----------------------------------------------------------------
    @property
    def j_grid(self) -> np.ndarray:
        """The even processor-count grid (shared by all tasks)."""
        return self._j_grid

    def grid(self, i: int) -> TaskGrid:
        """Per-task constant arrays, built lazily and kept for the run."""
        cached = self._grids.get(i)
        if cached is not None:
            return cached
        task = self.pack[i]
        j = self._j_grid
        t_ff = np.asarray(task.fault_free_time(j), dtype=float)
        cost = np.asarray(self.resilience.cost(task, j), dtype=float)
        tau = np.asarray(self.resilience.period(task, j), dtype=float)
        lam = np.asarray(self.resilience.task_lambda(j), dtype=float)
        recovery = cost  # buddy protocol: R = C
        with np.errstate(over="ignore"):
            # exp overflow -> inf: the expected time legitimately diverges
            # on hopeless (MTBF << period) configurations
            prefactor = np.exp(lam * recovery) * (
                1.0 / lam + self.cluster.downtime
            )
            exp_period = np.expm1(lam * tau)
        work_per_period = tau - cost
        if np.any(work_per_period <= 0):
            raise ConfigurationError(
                f"task {i}: checkpoint period does not exceed its cost; "
                "the checkpoint strategy is inconsistent"
            )
        grid = TaskGrid(
            j=j,
            t_ff=t_ff,
            cost=cost,
            tau=tau,
            lam=lam,
            prefactor=prefactor,
            exp_period=exp_period,
            work_per_period=work_per_period,
        )
        self._grids[i] = grid
        return grid

    # -- profile backend -------------------------------------------------------
    @property
    def profile_backend(self) -> str:
        """The *resolved* backend name (``"numba"`` requests may read
        ``"fused"`` here — the soft-dependency fallback)."""
        return self._backend_name

    def set_profile_backend(self, profile_backend: str) -> str:
        """Switch the Eq. (4) backend; returns the resolved name.

        Cheap and value-safe at any time: backends are bit-identical and
        the profile ring is keyed only by ``(task, quantised alpha)``,
        so warm entries stay valid.  This is how a :class:`Simulator`
        applies its ``profile_backend`` knob to a shared, possibly
        pre-warmed model without rebuilding it.
        """
        self.requested_backend = ensure_profile_backend(profile_backend)
        resolved = resolve_profile_backend(profile_backend)
        if resolved != self._backend_name:
            self._backend_name = resolved
            self._backend_obj = None
        return self._backend_name

    def _get_backend(self):
        """The live backend object (``None`` means reference mode)."""
        backend = self._backend_obj
        if backend is None and self._backend_name != "reference":
            backend = make_profile_backend(
                self._backend_name, self._stacked_grids()
            )
            self._backend_obj = backend
        return backend

    # -- profiles --------------------------------------------------------------
    @staticmethod
    def _alpha_key(alpha: float) -> int:
        """Quantised cache key: alphas within ~1e-12 share a profile.

        Profiles are evaluated at ``key / 1e12`` (see the module
        docstring), so a hit and a fresh computation agree bit for bit.
        """
        return int(round(alpha * _ALPHA_SCALE))

    def _store_profile(self, key: tuple[int, int], values: np.ndarray) -> np.ndarray:
        """Insert an envelope into the flat row ring (FIFO eviction)."""
        if len(self._rows) < self._cache_size:
            arr = np.empty(self._grid_len, dtype=float)
            self._rows.append(arr)
            self._row_keys.append(key)
        else:
            slot = self._clock % self._cache_size
            evicted = self._row_keys[slot]
            if evicted is not None:
                del self._profile_views[evicted]
            arr = self._rows[slot]
            # Reuse the row in place only when provably unreferenced.
            # CPython refs here: self._rows + local arr + getrefcount
            # argument = 3; more means a caller still holds the evicted
            # envelope (or a view of it).  Extra transient references can
            # only over-count, i.e. force a harmless fresh allocation;
            # interpreters without refcounts always take the safe branch.
            getrefcount = getattr(sys, "getrefcount", None)
            if getrefcount is None or getrefcount(arr) > 3:
                arr = np.empty(self._grid_len, dtype=float)
                self._rows[slot] = arr
            else:
                arr.setflags(write=True)
            self._row_keys[slot] = key
        self._clock += 1
        arr[:] = values
        arr.setflags(write=False)
        self._profile_views[key] = arr
        return arr

    def profile(self, i: int, alpha: float = 1.0) -> np.ndarray:
        """Envelope ``t^R_{i,j}(alpha)`` for every even ``j`` in the grid.

        Returns the Eq. (6) running minimum, so the result is non-increasing
        in ``j`` (assumption (5) holds by construction).  The envelope is
        evaluated at the 1e-12-quantised ``alpha`` (module docstring), so
        the result never depends on cache history.
        """
        if alpha < 0.0 or alpha > 1.0 + 1e-12:
            raise ConfigurationError(f"alpha must be in [0, 1], got {alpha}")
        a_key = self._alpha_key(alpha)
        key = (i, a_key)
        cached = self._profile_views.get(key)
        if cached is not None:
            self.cache_hits += 1
            _PROCESS_PROFILE_COUNTERS[0] += 1
            return cached
        self.cache_misses += 1
        _PROCESS_PROFILE_COUNTERS[1] += 1
        backend = self._get_backend()
        if backend is None:
            grid = self.grid(i)
            raw = self.raw_profile(i, a_key / _ALPHA_SCALE, grid)
        else:
            raw = backend.raw_row(i, a_key / _ALPHA_SCALE)
        envelope = np.minimum.accumulate(raw)
        return self._store_profile(key, envelope)

    def profile_batch(
        self, indices: Sequence[int], alpha: float = 1.0
    ) -> np.ndarray:
        """Envelopes of several tasks at one ``alpha``, stacked row-wise.

        Cached profiles are gathered; the missing ones are evaluated in a
        single vectorised pass over their stacked grids (one ``expm1``
        over a 2-D block instead of one call per task) and inserted into
        the cache.  Returns an array of shape ``(len(indices), grid)``.
        """
        if alpha < 0.0 or alpha > 1.0 + 1e-12:
            raise ConfigurationError(f"alpha must be in [0, 1], got {alpha}")
        indices = list(indices)
        out = np.empty((len(indices), self._grid_len), dtype=float)
        a_key = self._alpha_key(alpha)
        # Duplicate task indices must evaluate (and store) only once.
        missing: list[int] = []
        positions_of: Dict[int, list[int]] = {}
        for pos, i in enumerate(indices):
            cached = self._profile_views.get((i, a_key))
            if cached is not None:
                self.cache_hits += 1
                _PROCESS_PROFILE_COUNTERS[0] += 1
                out[pos] = cached
            else:
                self.cache_misses += 1
                _PROCESS_PROFILE_COUNTERS[1] += 1
                if i not in positions_of:
                    positions_of[i] = []
                    missing.append(pos)
                positions_of[i].append(pos)
        if not missing:
            return out
        alpha_q = a_key / _ALPHA_SCALE  # evaluate at the quantised alpha
        backend = self._get_backend()
        if backend is None:
            grids = [self.grid(indices[pos]) for pos in missing]
            block = stacked_raw_profiles(
                grids, np.full(len(grids), alpha_q, dtype=float)
            )
        else:
            sel = np.fromiter(
                (indices[pos] for pos in missing), dtype=np.int64,
                count=len(missing),
            )
            block = backend.raw_rows(
                sel, np.full(len(missing), alpha_q, dtype=float)
            )
        np.minimum.accumulate(block, axis=1, out=block)
        for k, pos in enumerate(missing):
            i = indices[pos]
            self._store_profile((i, a_key), block[k])
            for dup_pos in positions_of[i]:
                out[dup_pos] = block[k]
        return out

    def profile_matrix(
        self, indices: Sequence[int], alphas: Sequence[float]
    ) -> np.ndarray:
        """Envelopes of several tasks, each at its *own* ``alpha``.

        The per-decision generalisation of :meth:`profile_batch`: at a
        scheduling decision point every task carries a distinct
        remaining-work fraction, so the decision kernels
        (:mod:`repro.core.kernels`) need one envelope row per ``(task,
        alpha)`` pair.  Cached rows are gathered; the missing ones are
        evaluated in a single :func:`stacked_raw_profiles` pass and
        inserted.  Row ``r`` is bit-identical to
        ``profile(indices[r], alphas[r])``.  Returns an array of shape
        ``(len(indices), grid)``.
        """
        indices = list(indices)
        alphas_arr = ensure_alpha_vector(alphas, len(indices), "profile_matrix")
        if alphas_arr.size and (
            float(alphas_arr.min()) < 0.0
            or float(alphas_arr.max()) > 1.0 + 1e-12
        ):
            raise ConfigurationError(
                f"every alpha must be in [0, 1], got {alphas_arr.tolist()}"
            )
        out = np.empty((len(indices), self._grid_len), dtype=float)
        keys: list[tuple[int, int]] = []
        missing: list[int] = []
        positions_of: Dict[tuple[int, int], list[int]] = {}
        for pos, i in enumerate(indices):
            key = (i, self._alpha_key(float(alphas_arr[pos])))
            keys.append(key)
            cached = self._profile_views.get(key)
            if cached is not None:
                self.cache_hits += 1
                _PROCESS_PROFILE_COUNTERS[0] += 1
                out[pos] = cached
            else:
                self.cache_misses += 1
                _PROCESS_PROFILE_COUNTERS[1] += 1
                if key not in positions_of:
                    positions_of[key] = []
                    missing.append(pos)
                positions_of[key].append(pos)
        if not missing:
            return out
        alpha_q = np.array(
            [keys[pos][1] / _ALPHA_SCALE for pos in missing], dtype=float
        )
        backend = self._get_backend()
        if backend is None:
            grids = [self.grid(indices[pos]) for pos in missing]
            block = stacked_raw_profiles(grids, alpha_q)
        else:
            sel = np.fromiter(
                (indices[pos] for pos in missing), dtype=np.int64,
                count=len(missing),
            )
            block = backend.raw_rows(sel, alpha_q)
        np.minimum.accumulate(block, axis=1, out=block)
        for row, pos in enumerate(missing):
            self._store_profile(keys[pos], block[row])
            for dup_pos in positions_of[keys[pos]]:
                out[dup_pos] = block[row]
        return out

    def _stacked_grids(self) -> Dict[str, np.ndarray]:
        """The per-task grid fields stacked into (n_tasks, grid) blocks.

        Built once per model (forcing every task grid) and reused by
        every :meth:`profile_rows_into` call — the per-simulation scratch
        the decision-state engine rides on.  Row ``i`` of each block is a
        copy of the corresponding :class:`TaskGrid` array of task ``i``,
        so fancy-indexed evaluations are bit-identical to
        :func:`stacked_raw_profiles` over freshly stacked grids.
        """
        block = self._stacked_block
        if block is None:
            grids = [self.grid(i) for i in range(len(self.pack))]
            block = {
                "t_ff": np.stack([g.t_ff for g in grids]),
                "wpp": np.stack([g.work_per_period for g in grids]),
                "lam": np.stack([g.lam for g in grids]),
                "prefactor": np.stack([g.prefactor for g in grids]),
                "exp_period": np.stack([g.exp_period for g in grids]),
            }
            self._stacked_block = block
        return block

    def profile_rows_into(
        self,
        indices: Sequence[int],
        alphas: np.ndarray,
        out: np.ndarray,
        *,
        store: bool = True,
    ) -> np.ndarray:
        """Row-level profile re-evaluation: :meth:`profile_matrix` into scratch.

        Writes the envelope row of each ``(indices[r], alphas[r])`` pair
        into ``out[r]`` (caller-preallocated, shape ``(len(indices),
        grid)``) and returns ``out``.  Cached rows are gathered from the
        profile ring; missing rows are evaluated in one fused pass over
        the persistent stacked grid block (:meth:`_stacked_grids`) —
        no per-call ``np.stack`` — and inserted into the ring so later
        scalar reads (e.g. the heuristics' ``apply_move`` bookkeeping)
        still hit.  Row ``r`` is bit-identical to
        ``profile(indices[r], alphas[r])``; the decision-state engine
        (:class:`repro.core.kernels.DecisionCache`) relies on that.

        ``store=False`` skips the ring insertion of freshly evaluated
        rows (they are still read from the ring when present).  Right
        for per-event alphas that never recur — storing them would be
        pure eviction churn — and value-safe either way, since profiles
        are pure functions of ``(task, quantised alpha)``, never of
        cache history.
        """
        indices = list(indices)
        alphas_arr = ensure_alpha_vector(
            alphas, len(indices), "profile_rows_into"
        )
        if out.shape[0] < len(indices) or out.shape[1] != self._grid_len:
            raise ConfigurationError(
                f"profile_rows_into scratch too small: out shape "
                f"{out.shape}, need ({len(indices)}, {self._grid_len})"
            )
        if alphas_arr.size and (
            float(alphas_arr.min()) < 0.0
            or float(alphas_arr.max()) > 1.0 + 1e-12
        ):
            raise ConfigurationError(
                f"every alpha must be in [0, 1], got {alphas_arr.tolist()}"
            )
        keys: list[tuple[int, int]] = []
        missing: list[int] = []
        positions_of: Dict[tuple[int, int], list[int]] = {}
        for pos, i in enumerate(indices):
            key = (i, self._alpha_key(float(alphas_arr[pos])))
            keys.append(key)
            cached = self._profile_views.get(key)
            if cached is not None:
                self.cache_hits += 1
                _PROCESS_PROFILE_COUNTERS[0] += 1
                out[pos] = cached
            else:
                self.cache_misses += 1
                _PROCESS_PROFILE_COUNTERS[1] += 1
                if key not in positions_of:
                    positions_of[key] = []
                    missing.append(pos)
                positions_of[key].append(pos)
        if not missing:
            return out
        sel = np.fromiter(
            (indices[pos] for pos in missing), dtype=np.int64,
            count=len(missing),
        )
        alpha_q = np.array(
            [keys[pos][1] / _ALPHA_SCALE for pos in missing], dtype=float
        )
        backend = self._get_backend()
        if backend is None:
            # Reference mode: the multi-grid branch of
            # stacked_raw_profiles, operation for operation, over
            # fancy-indexed rows of the persistent block.
            stacked = self._stacked_grids()
            t_ff = stacked["t_ff"][sel]
            wpp = stacked["wpp"][sel]
            work = alpha_q[:, None] * t_ff
            n_ff = np.floor(work / wpp)
            tau_last = work - n_ff * wpp
            lam = stacked["lam"][sel]
            with np.errstate(over="ignore"):
                block = stacked["prefactor"][sel] * (
                    n_ff * stacked["exp_period"][sel]
                    + np.expm1(lam * tau_last)
                )
            zero = alpha_q <= 0.0
            if bool(np.any(zero)):
                block[zero] = 0.0
        else:
            block = backend.raw_rows(sel, alpha_q)
        np.minimum.accumulate(block, axis=1, out=block)
        for row, pos in enumerate(missing):
            if store:
                self._store_profile(keys[pos], block[row])
            for dup_pos in positions_of[keys[pos]]:
                out[dup_pos] = block[row]
        return out

    def raw_profile(
        self, i: int, alpha: float, grid: Optional[TaskGrid] = None
    ) -> np.ndarray:
        """Eq. (4) without the envelope (exposed for tests/diagnostics).

        ``alpha`` is snapped to the model's 1e-12 alpha grid, like every
        profile evaluation, so ``profile(i, a)`` always equals the prefix
        minimum of ``raw_profile(i, a)`` at the same argument.
        """
        if grid is None:
            grid = self.grid(i)
        alpha = self._alpha_key(alpha) / _ALPHA_SCALE
        return stacked_raw_profiles([grid], np.array([alpha]))[0]

    # -- scalar accessors --------------------------------------------------------
    def expected_time(self, i: int, j: int, alpha: float = 1.0) -> float:
        """``t^R_{i,j}(alpha)`` with the envelope applied (Eq. 6)."""
        grid = self.grid(i)
        return float(self.profile(i, alpha)[grid.slot(j)])

    def expected_times(
        self, i: int, j_array: np.ndarray, alpha: float = 1.0
    ) -> np.ndarray:
        """``t^R_{i,j}(alpha)`` for every even count in ``j_array`` at once.

        One profile lookup plus one fancy index instead of a scalar
        accessor per candidate, with full input validation — the public
        batch accessor.  The heuristics' candidate scans
        (:func:`~repro.core.heuristics.base.candidate_finish_times`) use
        the same single-lookup pattern with the slot arithmetic inlined,
        since their targets are even by construction.
        """
        return self.profile(i, alpha)[self.grid(i).slots(j_array)]

    def fault_free_time(self, i: int, j: int) -> float:
        """``t_{i,j}`` — fault-free time from the precomputed grid."""
        grid = self.grid(i)
        return float(grid.t_ff[grid.slot(j)])

    def checkpoint_cost(self, i: int, j: int) -> float:
        """``C_{i,j}``."""
        grid = self.grid(i)
        return float(grid.cost[grid.slot(j)])

    def period(self, i: int, j: int) -> float:
        """``tau_{i,j}``."""
        grid = self.grid(i)
        return float(grid.tau[grid.slot(j)])

    def recovery(self, i: int, j: int) -> float:
        """``R_{i,j} = C_{i,j}``."""
        return self.checkpoint_cost(i, j)

    @property
    def downtime(self) -> float:
        """Platform downtime ``D``."""
        return self.cluster.downtime

    def restart_overhead(self, i: int, j: int) -> float:
        """``D + R_{i,j}`` — stall paid by the struck task."""
        return self.downtime + self.recovery(i, j)

    def threshold(self, i: int, alpha: float = 1.0) -> int:
        """Smallest ``j`` achieving the minimum of the envelope.

        Beyond this count, extra processors no longer reduce the expected
        time (Section 3.2's "threshold").
        """
        envelope = self.profile(i, alpha)
        best = int(np.argmin(envelope))
        # argmin returns the first occurrence = smallest such j
        return int(self._j_grid[best])

    def cache_info(self) -> dict[str, int | float]:
        """Cache statistics (diagnostics), including the hit rate."""
        lookups = self.cache_hits + self.cache_misses
        return {
            "hits": self.cache_hits,
            "misses": self.cache_misses,
            "entries": len(self._profile_views),
            "capacity": self._cache_size,
            "hit_rate": self.cache_hits / lookups if lookups else 0.0,
        }
