"""Expected completion times under failures (Section 3.2).

For a task ``T_i`` executing a remaining work fraction ``alpha`` on ``j``
processors with periodic checkpointing, the paper derives (Eqs. 2-4):

.. math::

    N^{ff}_{i,j}(\\alpha) =
        \\Big\\lfloor \\frac{\\alpha t_{i,j}}{\\tau_{i,j} - C_{i,j}}
        \\Big\\rfloor,
    \\qquad
    \\tau_{last} = \\alpha t_{i,j} - N^{ff}_{i,j}(\\alpha)
                   (\\tau_{i,j} - C_{i,j}),

.. math::

    t^R_{i,j}(\\alpha) = e^{\\lambda j R_{i,j}}
        \\Big(\\frac{1}{\\lambda j} + D\\Big)
        \\Big( N^{ff}_{i,j}(\\alpha)\\,(e^{\\lambda j \\tau_{i,j}} - 1)
             + (e^{\\lambda j \\tau_{last}} - 1) \\Big).

Adding processors raises the failure rate, so ``t^R`` is not monotone in
``j``; Eq. (6) replaces it by its running minimum over even ``j`` (the
"threshold" envelope), restoring assumption (5).

The whole grid over even ``j`` is evaluated at once with NumPy (the
envelope needs the prefix minimum anyway) and cached per ``(task, alpha)``
— the scheduling heuristics probe many candidate ``j`` for the same
``alpha``, so the hit rate is high.  This is the hot path of the library;
see the performance notes in DESIGN.md.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..cluster import Cluster
from ..exceptions import CapacityError, ConfigurationError
from ..tasks import Pack
from .checkpoint import ResilienceModel

__all__ = ["ExpectedTimeModel", "TaskGrid", "checkpoint_count", "last_period"]


def checkpoint_count(alpha: float, t_ff: float, tau: float, cost: float) -> int:
    """``N^ff_{i,j}(alpha)`` — Eq. (2), scalar form."""
    if alpha <= 0.0:
        return 0
    work = tau - cost
    if work <= 0:
        raise ConfigurationError("checkpoint period must exceed checkpoint cost")
    return int(math.floor(alpha * t_ff / work))


def last_period(alpha: float, t_ff: float, tau: float, cost: float) -> float:
    """``tau_last`` — Eq. (3), scalar form."""
    n_ff = checkpoint_count(alpha, t_ff, tau, cost)
    return alpha * t_ff - n_ff * (tau - cost)


@dataclass(frozen=True)
class TaskGrid:
    """Precomputed per-task arrays over the even-``j`` grid.

    ``index k`` corresponds to ``j = 2 (k + 1)``.
    """

    j: np.ndarray          #: even processor counts 2, 4, ..., j_max
    t_ff: np.ndarray       #: fault-free times t_{i,j}
    cost: np.ndarray       #: checkpoint costs C_{i,j}
    tau: np.ndarray        #: checkpoint periods tau_{i,j}
    lam: np.ndarray        #: task failure rates lambda * j
    prefactor: np.ndarray  #: e^{lambda j R} (1/(lambda j) + D)
    exp_period: np.ndarray  #: e^{lambda j tau} - 1
    work_per_period: np.ndarray  #: tau - C

    def slot(self, j: int) -> int:
        """Grid index of an even processor count ``j``."""
        if j < 2 or j % 2 != 0:
            raise CapacityError(f"j must be an even count >= 2, got {j}")
        slot = j // 2 - 1
        if slot >= len(self.j):
            raise CapacityError(
                f"j={j} exceeds the grid maximum {int(self.j[-1])}"
            )
        return slot


class ExpectedTimeModel:
    """Vectorised evaluator of ``t^R_{i,j}(alpha)`` with the Eq. (6) envelope.

    Parameters
    ----------
    pack:
        The co-scheduled tasks.
    cluster:
        Platform (supplies ``mu`` and ``D``).
    resilience:
        Optional pre-built :class:`ResilienceModel` (defaults to Young).
    max_procs:
        Largest ``j`` in the grid (defaults to ``cluster.processors``).
    cache_size:
        Number of ``(task, alpha)`` profiles kept alive (FIFO eviction).
    rc_factor:
        Multiplier on every redistribution cost ``RC_i^{j->k}`` seen by
        the heuristics (ablation knob: 0 makes redistribution free, large
        values discourage it).  The paper's model is ``rc_factor = 1``.
    """

    def __init__(
        self,
        pack: Pack,
        cluster: Cluster,
        resilience: Optional[ResilienceModel] = None,
        max_procs: Optional[int] = None,
        cache_size: int = 4096,
        rc_factor: float = 1.0,
    ):
        if rc_factor < 0:
            raise ConfigurationError("rc_factor must be non-negative")
        self.pack = pack
        self.cluster = cluster
        self.rc_factor = float(rc_factor)
        self.resilience = (
            resilience if resilience is not None else ResilienceModel(cluster)
        )
        j_max = cluster.processors if max_procs is None else int(max_procs)
        if j_max < 2:
            raise ConfigurationError("max_procs must be >= 2")
        if j_max % 2 != 0:
            j_max -= 1
        self._j_grid = np.arange(2, j_max + 1, 2, dtype=float)
        self._grids: dict[int, TaskGrid] = {}
        self._profile_cache: OrderedDict[tuple[int, float], np.ndarray] = (
            OrderedDict()
        )
        self._cache_size = int(cache_size)
        self.cache_hits = 0
        self.cache_misses = 0

    # -- grids ----------------------------------------------------------------
    @property
    def j_grid(self) -> np.ndarray:
        """The even processor-count grid (shared by all tasks)."""
        return self._j_grid

    def grid(self, i: int) -> TaskGrid:
        """Per-task constant arrays, built lazily and kept for the run."""
        cached = self._grids.get(i)
        if cached is not None:
            return cached
        task = self.pack[i]
        j = self._j_grid
        t_ff = np.asarray(task.fault_free_time(j), dtype=float)
        cost = np.asarray(self.resilience.cost(task, j), dtype=float)
        tau = np.asarray(self.resilience.period(task, j), dtype=float)
        lam = np.asarray(self.resilience.task_lambda(j), dtype=float)
        recovery = cost  # buddy protocol: R = C
        with np.errstate(over="ignore"):
            # exp overflow -> inf: the expected time legitimately diverges
            # on hopeless (MTBF << period) configurations
            prefactor = np.exp(lam * recovery) * (
                1.0 / lam + self.cluster.downtime
            )
            exp_period = np.expm1(lam * tau)
        work_per_period = tau - cost
        if np.any(work_per_period <= 0):
            raise ConfigurationError(
                f"task {i}: checkpoint period does not exceed its cost; "
                "the checkpoint strategy is inconsistent"
            )
        grid = TaskGrid(
            j=j,
            t_ff=t_ff,
            cost=cost,
            tau=tau,
            lam=lam,
            prefactor=prefactor,
            exp_period=exp_period,
            work_per_period=work_per_period,
        )
        self._grids[i] = grid
        return grid

    # -- profiles --------------------------------------------------------------
    def profile(self, i: int, alpha: float = 1.0) -> np.ndarray:
        """Envelope ``t^R_{i,j}(alpha)`` for every even ``j`` in the grid.

        Returns the Eq. (6) running minimum, so the result is non-increasing
        in ``j`` (assumption (5) holds by construction).
        """
        if alpha < 0.0 or alpha > 1.0 + 1e-12:
            raise ConfigurationError(f"alpha must be in [0, 1], got {alpha}")
        key = (i, float(alpha))
        cached = self._profile_cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            self._profile_cache.move_to_end(key)
            return cached
        self.cache_misses += 1
        grid = self.grid(i)
        raw = self.raw_profile(i, alpha, grid)
        envelope = np.minimum.accumulate(raw)
        envelope.setflags(write=False)
        self._profile_cache[key] = envelope
        if len(self._profile_cache) > self._cache_size:
            self._profile_cache.popitem(last=False)
        return envelope

    def raw_profile(
        self, i: int, alpha: float, grid: Optional[TaskGrid] = None
    ) -> np.ndarray:
        """Eq. (4) without the envelope (exposed for tests/diagnostics)."""
        if grid is None:
            grid = self.grid(i)
        if alpha <= 0.0:
            return np.zeros_like(grid.t_ff)
        work = alpha * grid.t_ff
        n_ff = np.floor(work / grid.work_per_period)
        tau_last = work - n_ff * grid.work_per_period
        with np.errstate(over="ignore"):
            return grid.prefactor * (
                n_ff * grid.exp_period + np.expm1(grid.lam * tau_last)
            )

    # -- scalar accessors --------------------------------------------------------
    def expected_time(self, i: int, j: int, alpha: float = 1.0) -> float:
        """``t^R_{i,j}(alpha)`` with the envelope applied (Eq. 6)."""
        grid = self.grid(i)
        return float(self.profile(i, alpha)[grid.slot(j)])

    def fault_free_time(self, i: int, j: int) -> float:
        """``t_{i,j}`` — fault-free time from the precomputed grid."""
        grid = self.grid(i)
        return float(grid.t_ff[grid.slot(j)])

    def checkpoint_cost(self, i: int, j: int) -> float:
        """``C_{i,j}``."""
        grid = self.grid(i)
        return float(grid.cost[grid.slot(j)])

    def period(self, i: int, j: int) -> float:
        """``tau_{i,j}``."""
        grid = self.grid(i)
        return float(grid.tau[grid.slot(j)])

    def recovery(self, i: int, j: int) -> float:
        """``R_{i,j} = C_{i,j}``."""
        return self.checkpoint_cost(i, j)

    @property
    def downtime(self) -> float:
        """Platform downtime ``D``."""
        return self.cluster.downtime

    def restart_overhead(self, i: int, j: int) -> float:
        """``D + R_{i,j}`` — stall paid by the struck task."""
        return self.downtime + self.recovery(i, j)

    def threshold(self, i: int, alpha: float = 1.0) -> int:
        """Smallest ``j`` achieving the minimum of the envelope.

        Beyond this count, extra processors no longer reduce the expected
        time (Section 3.2's "threshold").
        """
        envelope = self.profile(i, alpha)
        best = int(np.argmin(envelope))
        # argmin returns the first occurrence = smallest such j
        return int(self._j_grid[best])

    def cache_info(self) -> dict[str, int]:
        """Cache statistics (diagnostics)."""
        return {
            "hits": self.cache_hits,
            "misses": self.cache_misses,
            "entries": len(self._profile_cache),
        }
