"""Fault injection: per-processor failure streams.

This replaces the closed-source fault simulator of [20, 21] used by the
paper (see DESIGN.md, Substitutions).  Each processor carries its own
arrival stream drawn from a :class:`~repro.resilience.distributions.
FaultDistribution`; the injector merges them in a heap and serves
platform-wide failures in time order.

Per Section 6.1, a failure may strike during a checkpoint but **not**
during downtime, recovery, or redistribution; the simulator therefore
simply discards arrivals that fall inside such a blackout window for the
struck task — the processor's next arrival has already been redrawn, which
implements the "re-draw after the blackout" semantics.
"""

from __future__ import annotations

import heapq
import math
from typing import Iterator, List, Optional, Tuple

import numpy as np

from ..exceptions import ConfigurationError
from .distributions import ExponentialFaults, FaultDistribution

__all__ = ["FaultInjector", "NullFaultInjector"]


class FaultInjector:
    """Merged stream of per-processor failures.

    Parameters
    ----------
    p:
        Number of processors (ids ``0..p-1``).
    distribution:
        Inter-arrival distribution (shared; per-processor streams are
        independent because draws are sequential on a dedicated RNG).
    rng:
        Dedicated random generator.  The simulator derives it from the
        replicate seed under the key ``"faults"`` so fault times are
        identical across policies (common random numbers).
    """

    def __init__(
        self,
        p: int,
        distribution: FaultDistribution,
        rng: np.random.Generator,
    ):
        if p < 1:
            raise ConfigurationError(f"need at least one processor, got {p}")
        self._p = p
        self._distribution = distribution
        self._rng = rng
        self._sequence = 0
        initial = distribution.sample_initial(rng, p)
        self._heap: List[Tuple[float, int, int]] = []
        for proc in range(p):
            arrival = float(initial[proc])
            if math.isfinite(arrival):
                self._heap.append((arrival, self._next_seq(), proc))
        heapq.heapify(self._heap)
        self._drawn = len(self._heap)

    @classmethod
    def exponential(
        cls, p: int, mtbf: float, rng: np.random.Generator
    ) -> "FaultInjector":
        """Injector with the paper's exponential law of mean ``mtbf``."""
        return cls(p, ExponentialFaults(mtbf), rng)

    def _next_seq(self) -> int:
        self._sequence += 1
        return self._sequence

    # -- stream interface ----------------------------------------------------
    def peek(self) -> Tuple[float, int]:
        """(time, proc) of the next failure, ``(inf, -1)`` if none remain."""
        if not self._heap:
            return (math.inf, -1)
        time, _, proc = self._heap[0]
        return (time, proc)

    def pop(self) -> Tuple[float, int]:
        """Consume the next failure and redraw the processor's stream."""
        if not self._heap:
            return (math.inf, -1)
        time, _, proc = heapq.heappop(self._heap)
        gap = self._distribution.sample(self._rng, proc)
        if math.isfinite(gap):
            heapq.heappush(self._heap, (time + gap, self._next_seq(), proc))
            self._drawn += 1
        return (time, proc)

    def failures_until(self, horizon: float) -> Iterator[Tuple[float, int]]:
        """Consume and yield every failure strictly before ``horizon``."""
        while True:
            time, proc = self.peek()
            if time >= horizon:
                return
            yield self.pop()

    @property
    def draws(self) -> int:
        """Total number of arrivals drawn so far (diagnostics)."""
        return self._drawn

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultInjector(p={self._p}, dist={self._distribution!r})"


class NullFaultInjector:
    """Injector for fault-free contexts: never produces a failure."""

    def peek(self) -> Tuple[float, int]:
        return (math.inf, -1)

    def pop(self) -> Tuple[float, int]:
        return (math.inf, -1)

    def failures_until(self, horizon: float) -> Iterator[Tuple[float, int]]:
        return iter(())

    @property
    def draws(self) -> int:
        return 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "NullFaultInjector()"
