"""Checkpointing model (Sections 2.2 and 3.1).

The paper uses the in-memory *double checkpointing* (buddy) protocol
[13, 14]: processors are paired, each checkpoint is mirrored on the buddy,
and the recovery cost equals the checkpoint cost, ``R_{i,j} = C_{i,j}``.
The per-processor checkpoint cost divides the sequential cost evenly:
``C_{i,j} = C_i / j``.

The checkpoint *period* is a pluggable strategy.  The paper applies
Young's first-order formula (Eq. 1):

.. math:: \\tau_{i,j} = \\sqrt{2 \\mu_{i,j} C_{i,j}} + C_{i,j},

valid when ``C_{i,j} << mu_{i,j}``.  Daly's higher-order refinement and a
fixed period are offered as drop-in alternatives for ablation studies.
``tau`` always denotes the **full** period: ``tau - C`` of useful work
followed by a checkpoint of length ``C``.

:class:`ResilienceModel` bundles a cluster with a strategy and provides
the per-(task, j) quantities every other module consumes.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Union

import numpy as np

from ..cluster import Cluster
from ..exceptions import CapacityError, ConfigurationError
from ..tasks import TaskSpec

__all__ = [
    "CheckpointStrategy",
    "YoungStrategy",
    "DalyStrategy",
    "FixedPeriodStrategy",
    "ResilienceModel",
]

ArrayLike = Union[float, np.ndarray]


class CheckpointStrategy(ABC):
    """Maps (task MTBF, checkpoint cost) to a checkpointing period."""

    name: str = "abstract"

    @abstractmethod
    def period(self, mtbf: ArrayLike, cost: ArrayLike) -> ArrayLike:
        """Full period ``tau`` (work + checkpoint) — vectorised."""

    def waste_fraction(self, mtbf: ArrayLike, cost: ArrayLike) -> ArrayLike:
        """Fault-free overhead fraction ``C / tau``."""
        return np.asarray(cost) / self.period(mtbf, cost)


class YoungStrategy(CheckpointStrategy):
    """Young's first-order optimum (Eq. 1): ``sqrt(2 mu C) + C``."""

    name = "young"

    def period(self, mtbf: ArrayLike, cost: ArrayLike) -> ArrayLike:
        mtbf_arr = np.asarray(mtbf, dtype=float)
        cost_arr = np.asarray(cost, dtype=float)
        if np.any(mtbf_arr <= 0):
            raise ConfigurationError("MTBF must be positive")
        if np.any(cost_arr < 0):
            raise ConfigurationError("checkpoint cost must be non-negative")
        result = np.sqrt(2.0 * mtbf_arr * cost_arr) + cost_arr
        if np.ndim(mtbf) == 0 and np.ndim(cost) == 0:
            return float(result)
        return result


class DalyStrategy(CheckpointStrategy):
    """Daly's higher-order estimate [6].

    For ``C < 2 mu`` the optimal useful-work length is

    .. math::
        w = \\sqrt{2 C \\mu}\\,\\Big(1 + \\tfrac13\\sqrt{C/(2\\mu)}
            + \\tfrac19\\,C/(2\\mu)\\Big) - C,

    and ``tau = w + C``; otherwise ``tau = mu + C`` (checkpoint as often
    as the platform survives).
    """

    name = "daly"

    def period(self, mtbf: ArrayLike, cost: ArrayLike) -> ArrayLike:
        mtbf_arr = np.asarray(mtbf, dtype=float)
        cost_arr = np.asarray(cost, dtype=float)
        if np.any(mtbf_arr <= 0):
            raise ConfigurationError("MTBF must be positive")
        if np.any(cost_arr < 0):
            raise ConfigurationError("checkpoint cost must be non-negative")
        ratio = cost_arr / (2.0 * mtbf_arr)
        base = np.sqrt(2.0 * cost_arr * mtbf_arr)
        refined = base * (1.0 + np.sqrt(ratio) / 3.0 + ratio / 9.0)
        tau = np.where(cost_arr < 2.0 * mtbf_arr, refined, mtbf_arr + cost_arr)
        # Guarantee a strictly positive work segment even at degenerate inputs.
        tau = np.maximum(tau, cost_arr * (1.0 + 1e-9))
        if np.ndim(mtbf) == 0 and np.ndim(cost) == 0:
            return float(tau)
        return tau


class FixedPeriodStrategy(CheckpointStrategy):
    """Constant useful-work length ``w``: ``tau = w + C`` (ablation baseline)."""

    name = "fixed"

    def __init__(self, work_per_period: float):
        if work_per_period <= 0:
            raise ConfigurationError("work per period must be positive")
        self.work_per_period = float(work_per_period)

    def period(self, mtbf: ArrayLike, cost: ArrayLike) -> ArrayLike:
        cost_arr = np.asarray(cost, dtype=float)
        result = self.work_per_period + cost_arr
        if np.ndim(cost) == 0:
            return float(result)
        return result


class ResilienceModel:
    """Per-(task, processor-count) resilience quantities.

    Exposes the paper's notation directly: ``cost`` is ``C_{i,j}``,
    ``recovery`` is ``R_{i,j}``, ``period`` is ``tau_{i,j}``,
    ``task_lambda`` is ``lambda * j`` and ``downtime`` is ``D``.
    """

    def __init__(
        self,
        cluster: Cluster,
        strategy: CheckpointStrategy | None = None,
    ):
        self.cluster = cluster
        self.strategy = strategy if strategy is not None else YoungStrategy()

    # -- scalar / vector accessors (j may be an even-int array) --------------
    def cost(self, task: TaskSpec, j: ArrayLike) -> ArrayLike:
        """Checkpoint cost ``C_{i,j} = C_i / j``."""
        self._check_j(j)
        result = task.checkpoint_cost / np.asarray(j, dtype=float)
        return float(result) if np.ndim(j) == 0 else result

    def recovery(self, task: TaskSpec, j: ArrayLike) -> ArrayLike:
        """Recovery cost ``R_{i,j} = C_{i,j}`` (buddy protocol)."""
        return self.cost(task, j)

    def period(self, task: TaskSpec, j: ArrayLike) -> ArrayLike:
        """Checkpoint period ``tau_{i,j}`` per the configured strategy."""
        self._check_j(j)
        j_arr = np.asarray(j, dtype=float)
        return self.strategy.period(self.cluster.mtbf / j_arr, self.cost(task, j))

    def task_lambda(self, j: ArrayLike) -> ArrayLike:
        """Failure rate of a ``j``-processor task: ``lambda j = j / mu``."""
        self._check_j(j)
        result = np.asarray(j, dtype=float) / self.cluster.mtbf
        return float(result) if np.ndim(j) == 0 else result

    @property
    def downtime(self) -> float:
        """Platform downtime ``D``."""
        return self.cluster.downtime

    def restart_overhead(self, task: TaskSpec, j: int) -> float:
        """Total post-failure stall ``D + R_{i,j}`` for a ``j``-proc task."""
        return self.downtime + float(self.recovery(task, j))

    @staticmethod
    def _check_j(j: ArrayLike) -> None:
        if np.any(np.asarray(j) < 1):
            raise CapacityError("processor count must be >= 1")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ResilienceModel({self.cluster!r}, strategy={self.strategy.name})"
