"""Command-line interface.

::

    repro-cosched figures                      # list reproducible figures
    repro-cosched run fig7 --scale small       # regenerate one figure
    repro-cosched run fig8 --plot --csv out.csv --json out.json
    repro-cosched simulate --n 20 --p 100 --policy ig-el --mtbf-years 10
    repro-cosched simulate --gantt --trace-csv events.csv
    repro-cosched policies                     # list scheduling policies
    repro-cosched pack --n 14 --p 12 --k 3     # multi-pack partitioning
    repro-cosched batch --n 10 --p 12          # online batch campaign
    repro-cosched validate --n 4 --p 16        # check Eq. (4) vs Monte-Carlo
    repro-cosched ratios --n 8 --p 24          # competitive ratios
    repro-cosched serve --port 8643            # online scheduling daemon

The same entry point is reachable as ``python -m repro.cli``.

The execution commands (``run``, ``compare``, ``batch``, ``validate``)
accept ``--engine {serial,pool,persistent,async,queue}`` and
``--workers N`` to pick the run-fabric (:mod:`repro.engine`) that fans
their work out; results are byte-identical under every engine and
worker count, and ``--verbose`` prints the engine's
``cache_info()``-style statistics — for ``run`` and ``compare`` also
the models' profile-cache hit rate, and for ``run`` streamed per-point
replicate progress (``Executor.map_stream``) on stderr while a sweep
executes.  The ``queue`` engine self-hosts a local broker spool plus
``--workers`` worker subprocesses (``python -m repro.engine.worker``);
its statistics — profile-cache and decision-state counters included —
travel back across the queue boundary like any other engine's.
``--broker SPEC[,SPEC...]`` points that engine at an *externally
served* broker instead — an ``http(s)://`` URL of a running
``python -m repro.engine.broker_server`` (``--broker-token`` or
``$REPRO_BROKER_TOKEN`` authenticates), a shared spool directory, or a
comma-separated list of those (a sharded fabric behind a
``ShardRouter`` with health-probed failover; ``--verbose`` prints the
per-shard breakdown) — and an elastic fleet of
``python -m repro.engine.worker`` processes, joining and draining at
will, executes the campaign.  Two
resilience knobs ride along (``docs/RESILIENCE.md``): ``--journal
DIR`` records finished chunks so a re-run of the same campaign resumes
instead of recomputing, and ``--chaos PLAN`` arms deterministic fault
injection (``--verbose`` then also prints the retry / requeue /
dead-letter / journal digest).  The benchmark suite under
``benchmarks/`` reads the ``REPRO_BENCH_SCALE`` environment variable
(``tiny``/``small``/``paper``) to pick its scaling preset.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from . import __version__
from .cluster import Cluster
from .core.policy import PAPER_POLICY_LABELS, POLICIES
from .engine import ENGINES, create_executor, resolve_engine
from .exceptions import ConfigurationError
from .experiments import (
    FIGURES,
    SCALES,
    TraceFigureResult,
    list_figures,
    render_figure,
    render_trace_figure,
    run_figure,
)
from .simulation import Simulator, simulate
from .tasks import uniform_pack
from .units import to_days

__all__ = ["main", "build_parser"]


def _add_workload_arguments(
    parser: argparse.ArgumentParser,
    *,
    n: int = 10,
    p: int = 100,
    mtbf_years: float = 100.0,
) -> None:
    """Shared workload/platform knobs (simulate, pack, validate, ratios)."""
    parser.add_argument("--n", type=int, default=n, help="number of tasks")
    parser.add_argument(
        "--p", type=int, default=p, help="number of processors"
    )
    parser.add_argument("--mtbf-years", type=float, default=mtbf_years)
    parser.add_argument("--downtime", type=float, default=60.0)
    parser.add_argument("--m-inf", type=float, default=15_000.0)
    parser.add_argument("--m-sup", type=float, default=25_000.0)
    parser.add_argument("--checkpoint-unit-cost", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=0)


def _add_engine_arguments(parser: argparse.ArgumentParser) -> None:
    """Shared run-fabric knobs (run, compare, batch, validate)."""
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "processes for the engine fan-out (1 = in-process; results "
            "are byte-identical at any worker count)"
        ),
    )
    parser.add_argument(
        "--engine",
        choices=ENGINES,
        default=None,
        help=(
            "execution engine (default: serial, or a process pool when "
            "--workers > 1; 'persistent' keeps workers alive across a "
            "whole sweep, 'async' overlaps dispatch with reassembly, "
            "'queue' serialises work through a local broker spool to "
            "worker subprocesses)"
        ),
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="print the engine's cache/pool statistics after the run",
    )
    parser.add_argument(
        "--journal",
        default=None,
        metavar="DIR",
        help=(
            "content-addressed chunk-result journal: finished chunks are "
            "recorded here and a re-run of the same campaign skips them "
            "(crash-resumable dispatch)"
        ),
    )
    parser.add_argument(
        "--chaos",
        default=None,
        metavar="PLAN",
        help=(
            "arm deterministic fault injection: JSON or key=value pairs, "
            "e.g. 'seed=7,crash_after_claim=0.25,corrupt_result=0.5' "
            "(results stay byte-identical; for testing the fabric)"
        ),
    )
    parser.add_argument(
        "--broker",
        default=None,
        metavar="SPEC[,SPEC...]",
        help=(
            "dispatch through an externally served broker (implies "
            "--engine queue): an http(s):// URL of a running "
            "`python -m repro.engine.broker_server`, a FileBroker "
            "spool directory, or a comma-separated list of those — a "
            "sharded fabric routed with health-probed failover; "
            "workers join with "
            "`python -m repro.engine.worker --broker ...` (same list)"
        ),
    )
    parser.add_argument(
        "--broker-token",
        default=None,
        metavar="TOKEN",
        help=(
            "bearer token for an http(s) --broker "
            "(default: $REPRO_BROKER_TOKEN)"
        ),
    )


def _make_executor(args: argparse.Namespace, *, sweep: bool = False):
    """Build the executor the command's engine flags ask for.

    ``sweep`` commands (many dispatches against one executor) default to
    the persistent pool when ``--workers`` > 1 so pool start-up is paid
    once, not once per sweep point.  ``--broker`` routes dispatch
    through an externally served broker (a remote HTTP broker server or
    a shared spool directory) instead of a self-hosted fleet — the
    queue engine, with workers joining from wherever they like.
    """
    spec = getattr(args, "broker", None)
    if spec is not None:
        if args.engine not in (None, "queue"):
            raise ConfigurationError(
                f"--broker dispatches through the queue engine; "
                f"it cannot be combined with --engine {args.engine}"
            )
        from .engine import FaultPlan, connect_broker
        from .engine.queue_exec import QueueExecutor

        token = getattr(args, "broker_token", None)
        if token is None:
            token = os.environ.get("REPRO_BROKER_TOKEN")
        plan = FaultPlan.from_spec(getattr(args, "chaos", None))
        return QueueExecutor(
            workers=args.workers,
            broker=connect_broker(spec, token=token, chaos_plan=plan),
            chaos_plan=plan,
            journal=getattr(args, "journal", None),
        )
    engine = resolve_engine(
        args.engine,
        args.workers,
        pooled_default="persistent" if sweep else "pool",
    )
    return create_executor(
        engine,
        workers=args.workers,
        chaos_plan=getattr(args, "chaos", None),
        journal=getattr(args, "journal", None),
    )


def _report_engine(
    args: argparse.Namespace, executor, *, profiles: bool = False
) -> None:
    """Print the ``cache_info()``-style counters under ``--verbose``.

    ``profiles`` adds the :class:`~repro.resilience.ExpectedTimeModel`
    profile-cache line (hit rate of the envelope ring across every
    dispatched simulation) and the decision-state line (rows the
    incremental engine patched vs reused across events).  A line of
    resilience counters (retries, requeues, dead-letters, duplicates,
    journal hits) appears whenever any of them fired.
    """
    if args.verbose:
        stats = executor.stats()
        print(f"engine[{executor.name}]: {stats.describe()}")
        if profiles:
            print(f"profiles: {stats.describe_profiles()}")
            if stats.decision_rows_patched + stats.decision_rows_reused:
                print(f"decisions: {stats.describe_decisions()}")
        if stats.any_resilience_events():
            print(f"resilience: {stats.describe_resilience()}")
        if stats.any_fleet_events():
            print(f"fleet: {stats.describe_fleet()}")
        shards = getattr(
            getattr(executor, "broker", None), "describe_fleet", None
        )
        if shards is not None:
            print(shards())


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro-cosched",
        description=(
            "Resilient application co-scheduling with processor "
            "redistribution (Benoit, Pottier, Robert) - reproduction toolkit"
        ),
        epilog=(
            "environment: REPRO_BENCH_SCALE picks the benchmark scaling "
            "preset (tiny/small/paper) for the benchmarks/ suite; "
            "REPRO_BENCH_SEED sets its master seed."
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("figures", help="list the reproducible figures")
    commands.add_parser("policies", help="list the scheduling policies")

    run = commands.add_parser("run", help="regenerate one figure's data")
    run.add_argument("figure", choices=sorted(FIGURES))
    run.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default="small",
        help="scaling preset (default: small)",
    )
    run.add_argument("--seed", type=int, default=0)
    _add_engine_arguments(run)
    run.add_argument(
        "--precision", type=int, default=3, help="digits in the tables"
    )
    run.add_argument(
        "--plot", action="store_true", help="also draw an ASCII chart"
    )
    run.add_argument("--csv", metavar="PATH", help="export the series as CSV")
    run.add_argument("--json", metavar="PATH", help="export the data as JSON")

    sim = commands.add_parser("simulate", help="run one simulation")
    _add_workload_arguments(sim)
    sim.add_argument("--policy", choices=sorted(POLICIES), default="ig-el")
    sim.add_argument(
        "--fault-free", action="store_true", help="disable fault injection"
    )
    sim.add_argument(
        "--gantt", action="store_true", help="draw the allocation Gantt"
    )
    sim.add_argument(
        "--json", metavar="PATH", help="export the result (trace included)"
    )
    sim.add_argument(
        "--trace-csv", metavar="PATH", help="export the event log as CSV"
    )

    pack_cmd = commands.add_parser(
        "pack", help="partition a task set into consecutive packs"
    )
    _add_workload_arguments(pack_cmd, n=14, p=12, mtbf_years=0.5)
    pack_cmd.add_argument(
        "--k", type=int, default=3, help="pack count for LPT/DP"
    )
    pack_cmd.add_argument(
        "--policy", choices=sorted(POLICIES), default="ig-el"
    )
    pack_cmd.add_argument(
        "--execute",
        action="store_true",
        help="run the best partition through the simulator",
    )

    batch = commands.add_parser(
        "batch", help="run a Poisson job campaign through batch scheduling"
    )
    _add_workload_arguments(batch, n=10, p=12, mtbf_years=0.5)
    batch.add_argument(
        "--policy", choices=sorted(POLICIES), default="ig-el"
    )
    batch.add_argument(
        "--mean-interarrival",
        type=float,
        default=30_000.0,
        help="mean job inter-arrival time in seconds",
    )
    batch.add_argument(
        "--batch-size",
        type=int,
        default=None,
        help="cap jobs per batch (default: fill the platform)",
    )
    batch.add_argument(
        "--replicates",
        type=int,
        default=1,
        help=(
            "fault-draw replicates of the campaign (> 1 fans the "
            "replicated campaigns out through the engine)"
        ),
    )
    _add_engine_arguments(batch)

    val = commands.add_parser(
        "validate", help="validate Eq. (4) and the simulator consistency"
    )
    _add_workload_arguments(val, n=4, p=16, mtbf_years=0.05)
    val.add_argument(
        "--samples", type=int, default=200, help="Monte-Carlo sample count"
    )
    _add_engine_arguments(val)

    ratios = commands.add_parser(
        "ratios", help="competitive ratios against certified lower bounds"
    )
    _add_workload_arguments(ratios, n=8, p=24, mtbf_years=0.1)

    serve = commands.add_parser(
        "serve",
        help=(
            "run the rolling-horizon scheduling daemon "
            "(token-authenticated HTTP/JSON; SIGTERM drains gracefully)"
        ),
    )
    from .service.server import add_service_arguments

    add_service_arguments(serve)

    compare = commands.add_parser(
        "compare",
        help="paired-replicate policy comparison with significance",
    )
    _add_workload_arguments(compare, n=6, p=16, mtbf_years=0.02)
    compare.add_argument(
        "--replicates", type=int, default=5, help="paired replicates"
    )
    compare.add_argument(
        "--policies",
        nargs="+",
        default=["ig-eg", "ig-el", "stf-eg", "stf-el"],
        choices=sorted(POLICIES),
    )
    compare.add_argument(
        "--fault-free", action="store_true", help="compare without failures"
    )
    _add_engine_arguments(compare)
    return parser


def _cmd_figures() -> int:
    for name in list_figures():
        print(f"{name:8s} {FIGURES[name].title}")
    return 0


def _cmd_policies() -> int:
    for name in sorted(POLICIES):
        print(f"{name:18s} {PAPER_POLICY_LABELS.get(name, '')}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    progress = None
    if args.verbose:
        def progress(figure: str, x: float, done: int, total: int) -> None:
            print(
                f"{figure} x={x:g}: {done}/{total} replicates",
                file=sys.stderr,
            )

    with _make_executor(args, sweep=True) as executor:
        result = run_figure(
            args.figure,
            scale=args.scale,
            seed=args.seed,
            executor=executor,
            progress=progress,
        )
    if isinstance(result, TraceFigureResult):
        print(render_trace_figure(result, precision=args.precision))
        if args.plot:
            from .viz import plot_trace_figure

            print()
            print(plot_trace_figure(result))
        if args.csv or args.json:
            print(
                "note: --csv/--json exports apply to sweep figures only",
                file=sys.stderr,
            )
        if args.engine is not None or args.workers > 1:
            print(
                "note: trace figures are a single replicate; the engine "
                "flags have no effect on them",
                file=sys.stderr,
            )
        _report_engine(args, executor, profiles=True)
        return 0
    print(render_figure(result, precision=args.precision))
    if args.plot:
        from .viz import plot_figure

        print()
        print(plot_figure(result))
    if args.csv:
        from .io import write_figure_csv

        write_figure_csv(result, args.csv)
        print(f"series written to {args.csv}")
    if args.json:
        from .io import save_figure

        save_figure(result, args.json)
        print(f"figure data written to {args.json}")
    _report_engine(args, executor, profiles=True)
    return 0


def _build_workload(args: argparse.Namespace):
    pack = uniform_pack(
        args.n,
        m_inf=args.m_inf,
        m_sup=args.m_sup,
        checkpoint_unit_cost=args.checkpoint_unit_cost,
        seed=args.seed,
    )
    cluster = Cluster.with_mtbf_years(args.p, args.mtbf_years, args.downtime)
    return pack, cluster


def _cmd_simulate(args: argparse.Namespace) -> int:
    pack, cluster = _build_workload(args)
    needs_trace = args.gantt or args.json or args.trace_csv
    result = Simulator(
        pack,
        cluster,
        args.policy,
        seed=args.seed,
        inject_faults=not args.fault_free,
        record_trace=bool(needs_trace),
    ).run()
    print(result.summary())
    print(
        f"makespan: {result.makespan:.6g} s "
        f"({to_days(result.makespan):.2f} days)"
    )
    if args.gantt:
        from .viz import gantt_chart

        print()
        print(gantt_chart(result))
    if args.json:
        from .io import save_result

        save_result(result, args.json)
        print(f"result written to {args.json}")
    if args.trace_csv:
        from .io import write_trace_csv

        assert result.trace is not None
        write_trace_csv(result.trace, args.trace_csv)
        print(f"event log written to {args.trace_csv}")
    return 0


def _cmd_pack(args: argparse.Namespace) -> int:
    from .packing import (
        MultiPackScheduler,
        PackCostOracle,
        dp_contiguous,
        first_fit_capacity,
        fixed_k_lpt,
        one_pack,
    )

    pack, cluster = _build_workload(args)
    oracle = PackCostOracle(pack, cluster)
    candidates = {}
    if args.n <= oracle.max_group_size:
        candidates["one-pack"] = one_pack(oracle)
    candidates["first-fit"] = first_fit_capacity(oracle)
    if args.k <= args.n:
        candidates[f"lpt-k{args.k}"] = fixed_k_lpt(oracle, args.k)
        candidates[f"dp-k{args.k}"] = dp_contiguous(oracle, args.k)

    for name, partition in candidates.items():
        print(f"{name:12s} {partition.describe()}")
    best_name = min(candidates, key=lambda k: candidates[k].estimated_total)
    print(f"\noracle's choice: {best_name}")

    if args.execute:
        outcome = MultiPackScheduler(
            pack, cluster, args.policy, candidates[best_name], seed=args.seed
        ).run()
        print(outcome.summary())
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    from .batch import (
        OnlineBatchScheduler,
        poisson_stream,
        run_replicated_campaigns,
    )

    jobs = poisson_stream(
        args.n,
        args.mean_interarrival,
        m_inf=args.m_inf,
        m_sup=args.m_sup,
        checkpoint_unit_cost=args.checkpoint_unit_cost,
        seed=args.seed,
    )
    cluster = Cluster.with_mtbf_years(args.p, args.mtbf_years, args.downtime)
    kwargs = {}
    if args.batch_size is not None:
        kwargs = {"batch_policy": "fixed", "batch_size": args.batch_size}
    if args.replicates > 1:
        with _make_executor(args) as executor:
            outcomes = run_replicated_campaigns(
                jobs,
                cluster,
                args.policy,
                replicates=args.replicates,
                seed=args.seed,
                executor=executor,
                **kwargs,
            )
        for replicate, outcome in enumerate(outcomes):
            print(f"replicate {replicate}: {outcome.summary()}")
        import numpy as np

        makespans = np.array([outcome.makespan for outcome in outcomes])
        print(
            f"campaign makespan over {args.replicates} fault draws: "
            f"mean={makespans.mean():.6g}s min={makespans.min():.6g}s "
            f"max={makespans.max():.6g}s"
        )
        _report_engine(args, executor)
        return 0
    if args.engine is not None or args.workers > 1 or args.verbose:
        print(
            "note: --engine/--workers/--verbose fan out (and report on) "
            "replicated campaigns; a single campaign (--replicates 1) "
            "runs sequentially",
            file=sys.stderr,
        )
    outcome = OnlineBatchScheduler(
        jobs, cluster, args.policy, seed=args.seed, **kwargs
    ).run()
    print(outcome.summary())
    for run in outcome.batches:
        ids = ",".join(f"J{j}" for j in run.job_ids)
        print(
            f"  batch {run.position}: start={run.start:.6g}s "
            f"makespan={run.result.makespan:.6g}s jobs=[{ids}]"
        )
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from .resilience import ExpectedTimeModel
    from .validation import (
        check_envelope_assumptions,
        check_fault_free_projection,
        validate_expected_time,
    )

    pack, cluster = _build_workload(args)
    print(check_fault_free_projection(pack, cluster, seed=args.seed).describe())
    print(check_envelope_assumptions(pack, cluster).describe())
    model = ExpectedTimeModel(pack, cluster)
    engine_requested = args.engine is not None or args.workers > 1
    executor = _make_executor(args) if engine_requested else None
    if executor is None and args.verbose:
        print(
            "note: --verbose engine statistics apply to engine-driven "
            "sampling; add --engine or --workers",
            file=sys.stderr,
        )
    failed = 0
    try:
        for i in range(min(args.n, 3)):
            j = min(4, 2 * (cluster.processors // (2 * args.n)) * 2) or 2
            report = validate_expected_time(
                model,
                i,
                max(2, j),
                samples=args.samples,
                seed=args.seed,
                executor=executor,
            )
            print(f"Eq.(4) task {i}: {report.describe()}")
            failed += not report.passed
        if executor is not None:
            _report_engine(args, executor)
    finally:
        if executor is not None:
            executor.close()
    return 1 if failed else 0


def _cmd_ratios(args: argparse.Namespace) -> int:
    from .theory.online import competitive_report

    pack, cluster = _build_workload(args)
    results = [
        simulate(pack, cluster, name, seed=args.seed)
        for name in ("no-redistribution", "ig-eg", "ig-el", "stf-eg", "stf-el")
    ]
    report = competitive_report(pack, cluster, results)
    print(report.render())
    print(f"\nbest policy: {report.best_policy()}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from .experiments import ScenarioConfig, compare_policies

    config = ScenarioConfig(
        n=args.n,
        p=args.p,
        m_inf=args.m_inf,
        m_sup=args.m_sup,
        checkpoint_unit_cost=args.checkpoint_unit_cost,
        mtbf_years=args.mtbf_years,
        downtime=args.downtime,
        replicates=args.replicates,
    )
    with _make_executor(args) as executor:
        outcome = compare_policies(
            config,
            policies=args.policies,
            faults=not args.fault_free,
            seed=args.seed,
            executor=executor,
        )
    print(outcome.render())
    print(f"\nbest policy: {outcome.best_policy()}")
    _report_engine(args, executor, profiles=True)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point (returns the process exit code)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _dispatch(parser, args)
    except BrokenPipeError:
        # stdout was closed early (e.g. `repro-cosched figures | head`);
        # suppress the traceback and exit like a well-behaved filter
        import os

        try:
            sys.stdout.close()
        except BrokenPipeError:
            pass
        os._exit(0)


def _dispatch(parser: argparse.ArgumentParser, args: argparse.Namespace) -> int:
    if args.command == "figures":
        return _cmd_figures()
    if args.command == "policies":
        return _cmd_policies()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "pack":
        return _cmd_pack(args)
    if args.command == "batch":
        return _cmd_batch(args)
    if args.command == "validate":
        return _cmd_validate(args)
    if args.command == "ratios":
        return _cmd_ratios(args)
    if args.command == "serve":
        from .service.server import run_service

        return run_service(args)
    if args.command == "compare":
        return _cmd_compare(args)
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
