"""Character-canvas charts.

A :class:`Canvas` is a fixed-size grid of characters with a data-space to
cell-space transform.  :func:`line_chart` plots one or more ``(x, y)``
series with per-series markers, axes, tick labels and a legend;
:func:`histogram` bins one sample; :func:`sparkline` compresses one series
into a single line of block characters.

The renderers only assume a monospaced font.  They are deliberately free
of any terminal-control sequences so the output can be written to files
(the benchmark harness persists charts next to its tables).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ConfigurationError

__all__ = ["Canvas", "line_chart", "histogram", "sparkline", "SERIES_MARKERS"]

#: Default cycle of per-series markers (chosen to stay distinguishable
#: when two curves overlap: the later series overwrites the earlier one).
SERIES_MARKERS: str = "ox+*#@%&"

#: Eight vertical block characters used by :func:`sparkline`.
_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def _nice_ticks(lo: float, hi: float, count: int) -> List[float]:
    """Round tick positions covering ``[lo, hi]`` (1-2-5 progression)."""
    if count < 2:
        raise ConfigurationError("at least two ticks are required")
    if not math.isfinite(lo) or not math.isfinite(hi):
        raise ConfigurationError("tick range must be finite")
    if hi <= lo:
        hi = lo + max(abs(lo), 1.0) * 1e-3
    raw_step = (hi - lo) / (count - 1)
    magnitude = 10.0 ** math.floor(math.log10(raw_step))
    for factor in (1.0, 2.0, 2.5, 5.0, 10.0):
        step = factor * magnitude
        if step >= raw_step:
            break
    first = math.floor(lo / step) * step
    ticks = []
    value = first
    while value < hi + 0.5 * step:
        if value >= lo - 0.5 * step:
            ticks.append(round(value, 12))
        value += step
    return ticks if len(ticks) >= 2 else [lo, hi]


def _format_tick(value: float) -> str:
    """Compact tick label (trims trailing zeros, switches to sci-notation)."""
    if value == 0:
        return "0"
    if abs(value) >= 1e5 or abs(value) < 1e-3:
        return f"{value:.2g}"
    text = f"{value:.4g}"
    return text


@dataclass
class Canvas:
    """A character grid with a linear data-space transform.

    Parameters
    ----------
    width, height:
        Plot-area size in characters (excluding axes and labels).
    x_min, x_max, y_min, y_max:
        Data-space bounds mapped onto the grid.
    """

    width: int
    height: int
    x_min: float
    x_max: float
    y_min: float
    y_max: float
    cells: List[List[str]] = field(init=False)

    def __post_init__(self) -> None:
        if self.width < 8 or self.height < 4:
            raise ConfigurationError(
                f"canvas must be at least 8x4, got {self.width}x{self.height}"
            )
        if not (self.x_max > self.x_min and self.y_max > self.y_min):
            raise ConfigurationError("canvas bounds must be non-degenerate")
        self.cells = [[" "] * self.width for _ in range(self.height)]

    # -- transforms -------------------------------------------------------
    def col_of(self, x: float) -> int:
        """Column index of data ``x`` (clamped to the grid)."""
        frac = (x - self.x_min) / (self.x_max - self.x_min)
        return min(self.width - 1, max(0, int(round(frac * (self.width - 1)))))

    def row_of(self, y: float) -> int:
        """Row index of data ``y`` (row 0 is the *top* of the grid)."""
        frac = (y - self.y_min) / (self.y_max - self.y_min)
        level = min(self.height - 1, max(0, int(round(frac * (self.height - 1)))))
        return self.height - 1 - level

    # -- drawing ----------------------------------------------------------
    def put(self, x: float, y: float, marker: str) -> None:
        """Place ``marker`` at data coordinates (clamped)."""
        self.cells[self.row_of(y)][self.col_of(x)] = marker

    def segment(self, x0: float, y0: float, x1: float, y1: float, marker: str) -> None:
        """Draw a line segment in data space (dense column-major walk)."""
        c0, c1 = self.col_of(x0), self.col_of(x1)
        if c0 > c1:
            c0, c1, x0, x1, y0, y1 = c1, c0, x1, x0, y1, y0
        steps = max(c1 - c0, 1) * 2
        for step in range(steps + 1):
            t = step / steps
            self.put(x0 + t * (x1 - x0), y0 + t * (y1 - y0), marker)

    def render(self) -> List[str]:
        """Rows of the plot area as strings."""
        return ["".join(row) for row in self.cells]


def _axis_frame(
    canvas: Canvas,
    x_ticks: Sequence[float],
    y_ticks: Sequence[float],
    x_label: str,
    y_label: str,
) -> List[str]:
    """Wrap the canvas with y labels, a left axis and an x tick ruler."""
    y_tick_rows = {canvas.row_of(tick): tick for tick in y_ticks}
    label_width = max(
        (len(_format_tick(t)) for t in y_tick_rows.values()), default=1
    )
    lines: List[str] = []
    if y_label:
        lines.append(" " * (label_width + 2) + y_label)
    for row_index, row in enumerate(canvas.render()):
        tick = y_tick_rows.get(row_index)
        prefix = (
            _format_tick(tick).rjust(label_width) + " ┤"
            if tick is not None
            else " " * label_width + " │"
        )
        lines.append(prefix + row)
    # x axis ruler with tick marks
    ruler = [" "] * canvas.width
    for tick in x_ticks:
        ruler[canvas.col_of(tick)] = "┬"
    lines.append(" " * label_width + " └" + "".join(ruler).replace(" ", "─"))
    # x tick labels, greedily left-to-right without overlap
    labels_row = [" "] * (canvas.width + label_width + 2)
    for tick in x_ticks:
        text = _format_tick(tick)
        start = label_width + 2 + canvas.col_of(tick) - len(text) // 2
        start = max(0, min(start, len(labels_row) - len(text)))
        if all(c == " " for c in labels_row[max(0, start - 1): start + len(text) + 1]):
            labels_row[start: start + len(text)] = list(text)
    lines.append("".join(labels_row).rstrip())
    if x_label:
        pad = label_width + 2 + (canvas.width - len(x_label)) // 2
        lines.append(" " * max(0, pad) + x_label)
    return lines


def line_chart(
    series: Mapping[str, Tuple[Sequence[float], Sequence[float]]],
    *,
    width: int = 72,
    height: int = 18,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
    y_min: Optional[float] = None,
    y_max: Optional[float] = None,
    markers: str = SERIES_MARKERS,
    connect: bool = True,
) -> str:
    """Render a multi-series line chart.

    Parameters
    ----------
    series:
        Mapping ``label -> (x_values, y_values)``.  Series are drawn in
        insertion order; later series overwrite earlier cells.
    width, height:
        Plot-area size in characters.
    y_min, y_max:
        Optional data-space clamps (default: data range with 5% margin).
    markers:
        Marker cycle; series ``i`` uses ``markers[i % len(markers)]``.
    connect:
        Draw segments between consecutive points (otherwise scatter).

    Returns the chart as a multi-line string ending with a legend.

    >>> chart = line_chart({"f": ([0, 1, 2], [0.0, 1.0, 0.5])}, width=20, height=6)
    >>> "f" in chart
    True
    """
    if not series:
        raise ConfigurationError("line_chart needs at least one series")
    xs_all: List[float] = []
    ys_all: List[float] = []
    cleaned: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
    for label, (xs, ys) in series.items():
        x_arr = np.asarray(xs, dtype=float)
        y_arr = np.asarray(ys, dtype=float)
        if x_arr.shape != y_arr.shape:
            raise ConfigurationError(
                f"series {label!r}: x and y lengths differ "
                f"({x_arr.size} vs {y_arr.size})"
            )
        keep = np.isfinite(x_arr) & np.isfinite(y_arr)
        x_arr, y_arr = x_arr[keep], y_arr[keep]
        if x_arr.size == 0:
            continue
        cleaned[label] = (x_arr, y_arr)
        xs_all.extend(x_arr.tolist())
        ys_all.extend(y_arr.tolist())
    if not cleaned:
        raise ConfigurationError("all series are empty or non-finite")

    x_lo, x_hi = min(xs_all), max(xs_all)
    if x_hi <= x_lo:
        x_hi = x_lo + max(abs(x_lo), 1.0) * 1e-3
    data_lo, data_hi = min(ys_all), max(ys_all)
    margin = 0.05 * (data_hi - data_lo or max(abs(data_lo), 1.0))
    y_lo = data_lo - margin if y_min is None else float(y_min)
    y_hi = data_hi + margin if y_max is None else float(y_max)
    if y_hi <= y_lo:
        y_hi = y_lo + max(abs(y_lo), 1.0) * 1e-3

    canvas = Canvas(width, height, x_lo, x_hi, y_lo, y_hi)
    legend: List[str] = []
    for index, (label, (x_arr, y_arr)) in enumerate(cleaned.items()):
        marker = markers[index % len(markers)]
        order = np.argsort(x_arr, kind="stable")
        x_arr, y_arr = x_arr[order], y_arr[order]
        if connect and x_arr.size > 1:
            for k in range(x_arr.size - 1):
                canvas.segment(
                    x_arr[k], y_arr[k], x_arr[k + 1], y_arr[k + 1], marker
                )
        for x, y in zip(x_arr, y_arr):
            canvas.put(x, y, marker)
        legend.append(f"{marker} {label}")

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.extend(
        _axis_frame(
            canvas,
            _nice_ticks(x_lo, x_hi, 6),
            _nice_ticks(y_lo, y_hi, 5),
            x_label,
            y_label,
        )
    )
    lines.append("legend: " + "   ".join(legend))
    return "\n".join(lines)


def histogram(
    values: Sequence[float],
    *,
    bins: int = 20,
    width: int = 50,
    title: str = "",
) -> str:
    """Horizontal-bar histogram of one sample.

    Each row shows the bin interval, a bar scaled to the largest count,
    and the count itself.
    """
    data = np.asarray(values, dtype=float)
    data = data[np.isfinite(data)]
    if data.size == 0:
        raise ConfigurationError("histogram needs at least one finite value")
    if bins < 1:
        raise ConfigurationError("bins must be >= 1")
    counts, edges = np.histogram(data, bins=bins)
    peak = counts.max() if counts.max() > 0 else 1
    lines: List[str] = [title] if title else []
    label_width = max(
        len(f"[{_format_tick(edges[i])}, {_format_tick(edges[i + 1])})")
        for i in range(len(counts))
    )
    for i, count in enumerate(counts):
        closing = ")" if i < len(counts) - 1 else "]"
        interval = f"[{_format_tick(edges[i])}, {_format_tick(edges[i + 1])}{closing}"
        bar = "█" * int(round(width * count / peak))
        lines.append(f"{interval.rjust(label_width)} {bar} {count}")
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """One-line block-character rendering of a series.

    >>> sparkline([0, 1, 2, 3])
    '▁▃▆█'
    """
    data = np.asarray(values, dtype=float)
    data = data[np.isfinite(data)]
    if data.size == 0:
        return ""
    lo, hi = float(data.min()), float(data.max())
    if hi <= lo:
        return _SPARK_LEVELS[0] * data.size
    scaled = (data - lo) / (hi - lo) * (len(_SPARK_LEVELS) - 1)
    return "".join(_SPARK_LEVELS[int(round(s))] for s in scaled)
