"""ASCII heatmaps for two-parameter studies.

Some questions are planes, not lines: *for which (MTBF, checkpoint-cost)
combinations does redistribution pay off?*  :func:`heatmap` renders a
2D value grid with shaded cells, row/column labels and a value legend —
the terminal analogue of a phase diagram.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..exceptions import ConfigurationError
from .ascii_chart import _format_tick

__all__ = ["heatmap"]

#: Shades from low to high.
_SHADES = " ░▒▓█"


def heatmap(
    grid: Sequence[Sequence[float]],
    *,
    x_labels: Optional[Sequence[str]] = None,
    y_labels: Optional[Sequence[str]] = None,
    title: str = "",
    x_name: str = "",
    y_name: str = "",
    cell_width: int = 7,
    precision: int = 2,
    v_min: Optional[float] = None,
    v_max: Optional[float] = None,
) -> str:
    """Render a value grid as a shaded table.

    Parameters
    ----------
    grid:
        ``grid[row][col]``; rows are printed top to bottom.
    x_labels, y_labels:
        Column / row labels (defaults to indices).
    cell_width:
        Characters per cell (values are right-aligned inside).
    v_min, v_max:
        Shade clamps (default: data range).  NaN cells print blank.

    Each cell shows the numeric value followed by a shade glyph scaled
    to the grid range, so both coarse structure and exact numbers
    survive.
    """
    data = np.asarray(grid, dtype=float)
    if data.ndim != 2 or data.size == 0:
        raise ConfigurationError("heatmap needs a non-empty 2D grid")
    rows, cols = data.shape
    if x_labels is not None and len(x_labels) != cols:
        raise ConfigurationError(
            f"expected {cols} x labels, got {len(x_labels)}"
        )
    if y_labels is not None and len(y_labels) != rows:
        raise ConfigurationError(
            f"expected {rows} y labels, got {len(y_labels)}"
        )
    if cell_width < 4:
        raise ConfigurationError("cell_width must be >= 4")
    x_labels = (
        [str(c) for c in range(cols)] if x_labels is None else list(x_labels)
    )
    y_labels = (
        [str(r) for r in range(rows)] if y_labels is None else list(y_labels)
    )

    finite = data[np.isfinite(data)]
    if finite.size == 0:
        raise ConfigurationError("heatmap needs at least one finite value")
    lo = float(finite.min()) if v_min is None else float(v_min)
    hi = float(finite.max()) if v_max is None else float(v_max)
    span = hi - lo

    def shade(value: float) -> str:
        if not np.isfinite(value):
            return " "
        if span <= 0:
            return _SHADES[len(_SHADES) // 2]
        level = (value - lo) / span
        index = min(len(_SHADES) - 1, max(0, int(level * len(_SHADES))))
        return _SHADES[index]

    label_width = max(len(label) for label in y_labels)
    lines: List[str] = []
    if title:
        lines.append(title)
    header = " " * (label_width + 1) + "".join(
        label.rjust(cell_width) for label in x_labels
    )
    if x_name:
        header += f"   {x_name}"
    lines.append(header)
    for r in range(rows):
        cells = []
        for c in range(cols):
            value = data[r, c]
            text = (
                f"{value:.{precision}f}" if np.isfinite(value) else "-"
            ).rjust(cell_width - 1)
            cells.append(text + shade(value))
        lines.append(y_labels[r].rjust(label_width) + " " + "".join(cells))
    if y_name:
        lines.append(f"rows: {y_name}")
    lines.append(
        f"shade: {_SHADES[1]} low ({_format_tick(lo)}) ... "
        f"{_SHADES[-1]} high ({_format_tick(hi)})"
    )
    return "\n".join(lines)
