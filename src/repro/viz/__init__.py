"""Terminal visualisation of simulation and experiment artefacts.

The paper presents its evaluation as line plots (Figs. 5-14).  This
package renders the same artefacts in a text environment:

* :mod:`repro.viz.ascii_chart` — multi-series line charts, histograms and
  sparklines drawn on a character canvas;
* :mod:`repro.viz.gantt` — per-task allocation timelines (Gantt-style)
  reconstructed from simulation traces;
* :mod:`repro.viz.figure_plots` — one-call adapters turning
  :class:`~repro.experiments.figures.FigureResult` /
  :class:`~repro.experiments.figures.TraceFigureResult` into charts.

Everything is pure text: no plotting backend is required, so the charts
work over SSH, in CI logs and in the examples.
"""

from __future__ import annotations

from .ascii_chart import (
    Canvas,
    histogram,
    line_chart,
    sparkline,
)
from .figure_plots import plot_figure, plot_trace_figure
from .gantt import AllocationTimeline, gantt_chart, reconstruct_timelines
from .heatmap import heatmap

__all__ = [
    "Canvas",
    "line_chart",
    "histogram",
    "sparkline",
    "heatmap",
    "plot_figure",
    "plot_trace_figure",
    "AllocationTimeline",
    "reconstruct_timelines",
    "gantt_chart",
]
