"""One-call chart adapters for experiment results.

``plot_figure`` turns a :class:`~repro.experiments.figures.FigureResult`
into the paper's normalised line plot; ``plot_trace_figure`` renders the
two panels of Fig. 9 (makespan after each failure, and the std-dev of the
per-task processor counts).
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from ..experiments.figures import FigureResult, TraceFigureResult
from .ascii_chart import line_chart

__all__ = ["plot_figure", "plot_trace_figure"]


def plot_figure(
    result: FigureResult,
    *,
    width: int = 72,
    height: int = 18,
    normalized: bool = True,
) -> str:
    """Chart a sweep figure (normalised like the paper by default).

    The y-axis is anchored at [0.45, 1.05] in normalised mode, matching
    the paper's fixed [0.5, 1] frame, unless the data escapes that range.
    """
    data = result.normalized if normalized else result.means
    series: Dict[str, Tuple[Sequence[float], Sequence[float]]] = {
        result.labels[key]: (result.x_values, values)
        for key, values in data.items()
    }
    y_values = [v for values in data.values() for v in values]
    y_min = y_max = None
    if normalized and y_values:
        if min(y_values) >= 0.45 and max(y_values) <= 1.1:
            y_min, y_max = 0.45, 1.1
    return line_chart(
        series,
        width=width,
        height=height,
        title=f"{result.figure}: {result.title}",
        x_label=result.x_name,
        y_label="normalized execution time" if normalized else "makespan (s)",
        y_min=y_min,
        y_max=y_max,
    )


def plot_trace_figure(
    result: TraceFigureResult,
    *,
    width: int = 72,
    height: int = 14,
) -> str:
    """Chart the two Fig. 9 panels from a traced single run."""
    makespan_series: Dict[str, Tuple[Sequence[float], Sequence[float]]] = {}
    std_series: Dict[str, Tuple[Sequence[float], Sequence[float]]] = {}
    for key, label in result.labels.items():
        data = result.series[key]
        times = data["failure_times"]
        if times.size == 0:
            continue
        makespan_series[label] = (times, data["makespan"])
        std_series[label] = (times, data["sigma_std"])
    blocks = []
    if makespan_series:
        blocks.append(
            line_chart(
                makespan_series,
                width=width,
                height=height,
                title=f"{result.figure}a: makespan after each handled failure",
                x_label="failure date (s)",
                y_label="projected makespan (s)",
            )
        )
        blocks.append(
            line_chart(
                std_series,
                width=width,
                height=height,
                title=f"{result.figure}b: stddev of per-task processor counts",
                x_label="failure date (s)",
                y_label="stddev #procs",
            )
        )
    else:
        blocks.append(
            f"{result.figure}: no failures were handled in this run "
            "(nothing to plot)"
        )
    finals = ", ".join(
        f"{label}: {result.final_makespans[key]:.6g}s"
        for key, label in result.labels.items()
    )
    blocks.append(f"final makespans — {finals}")
    return "\n\n".join(blocks)
