"""Gantt-style allocation timelines from simulation traces.

The simulator's trace records every allocation change (initial schedule,
redistributions, completions, failures).  :func:`reconstruct_timelines`
replays those events into one :class:`AllocationTimeline` per task —
piecewise-constant ``sigma(t)`` — and :func:`gantt_chart` renders the set
as a text chart: one row per task, column = time bucket, cell brightness
= processor count, with failure and redistribution markers overlaid.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..exceptions import ConfigurationError
from ..simulation.result import SimulationResult
from ..simulation.trace import EventKind, Trace

__all__ = ["AllocationTimeline", "reconstruct_timelines", "gantt_chart"]

#: Cell shades from "few processors" to "many" (quartiles of the max).
_SHADES = "░▒▓█"
_FAILURE_MARK = "X"
_REDISTRIBUTION_MARK = "R"


@dataclass
class AllocationTimeline:
    """Piecewise-constant processor count of one task.

    ``times[k]`` is the instant at which the allocation becomes
    ``sigmas[k]``; the last segment extends to the task's completion.
    """

    task: int
    times: List[float] = field(default_factory=list)
    sigmas: List[int] = field(default_factory=list)
    completion: float = float("nan")
    failure_times: List[float] = field(default_factory=list)
    redistribution_times: List[float] = field(default_factory=list)

    def sigma_at(self, t: float) -> int:
        """Allocation in force at time ``t`` (0 before start / after end)."""
        if not self.times or t < self.times[0]:
            return 0
        if self.completion == self.completion and t >= self.completion:
            return 0  # NaN-safe: completed tasks hold no processors
        slot = bisect_right(self.times, t) - 1
        return self.sigmas[slot]

    def change_points(self) -> List[float]:
        """All instants at which the allocation changes."""
        points = list(self.times)
        if self.completion == self.completion:
            points.append(self.completion)
        return points


def _parse_sigma(detail: str) -> Optional[int]:
    """Extract the new allocation from a ``sigma=K`` event detail."""
    for token in detail.split(","):
        token = token.strip()
        if token.startswith("sigma="):
            try:
                return int(token[len("sigma="):])
            except ValueError:
                return None
    return None


def reconstruct_timelines(
    result: SimulationResult,
    trace: Optional[Trace] = None,
) -> Dict[int, AllocationTimeline]:
    """Replay a trace into per-task allocation timelines.

    Parameters
    ----------
    result:
        The simulation outcome; supplies the initial schedule and, if
        ``trace`` is omitted, the recorded trace.
    trace:
        Explicit trace (useful when the result was deserialised without
        one).

    Raises
    ------
    ConfigurationError
        If no trace is available (the simulation must be run with
        ``record_trace=True``).
    """
    trace = trace if trace is not None else result.trace
    if trace is None:
        raise ConfigurationError(
            "no trace available; run the simulation with record_trace=True"
        )
    timelines: Dict[int, AllocationTimeline] = {}
    for task, sigma in result.initial_sigma.items():
        timeline = AllocationTimeline(task=task)
        timeline.times.append(0.0)
        timeline.sigmas.append(int(sigma))
        timelines[task] = timeline

    for event in trace.events:
        if event.task < 0:
            continue
        timeline = timelines.get(event.task)
        if timeline is None:  # task never scheduled (defensive)
            continue
        if event.kind is EventKind.REDISTRIBUTION:
            sigma = _parse_sigma(event.detail)
            if sigma is not None and sigma != timeline.sigmas[-1]:
                timeline.times.append(event.time)
                timeline.sigmas.append(sigma)
            timeline.redistribution_times.append(event.time)
        elif event.kind is EventKind.FAILURE:
            timeline.failure_times.append(event.time)
        elif event.kind is EventKind.COMPLETION:
            timeline.completion = event.time
        elif event.kind is EventKind.EARLY_RELEASE:
            # processors are freed although the task logically continues;
            # reflect the release in the drawn occupancy
            if timeline.sigmas[-1] != 0:
                timeline.times.append(event.time)
                timeline.sigmas.append(0)
    return timelines


def gantt_chart(
    result: SimulationResult,
    *,
    trace: Optional[Trace] = None,
    width: int = 80,
    max_tasks: int = 40,
    show_markers: bool = True,
) -> str:
    """Render per-task allocation timelines as a text Gantt chart.

    Each row is one task; time runs left to right over ``width`` buckets
    covering ``[0, makespan]``.  Cell shade encodes the processor count
    (quartiles of the pack-wide maximum); ``X`` marks a failure, ``R`` a
    redistribution within the bucket (failures win ties).

    Parameters
    ----------
    max_tasks:
        Rows beyond this count are summarised in a footer (keeps charts
        readable for n=1000 packs).
    """
    if width < 10:
        raise ConfigurationError("gantt width must be >= 10")
    timelines = reconstruct_timelines(result, trace)
    makespan = result.makespan
    if makespan <= 0:
        raise ConfigurationError("makespan must be positive to draw a Gantt")
    sigma_peak = max(
        (max(t.sigmas) for t in timelines.values() if t.sigmas), default=1
    )
    bucket = makespan / width

    def shade(sigma: int) -> str:
        if sigma <= 0:
            return " "
        level = min(
            len(_SHADES) - 1, int(sigma / sigma_peak * len(_SHADES))
        )
        return _SHADES[level]

    label_width = len(f"T{max(timelines) + 1}") if timelines else 2
    lines: List[str] = [
        f"policy={result.policy}  makespan={makespan:.6g}s  "
        f"(shade ∝ #procs, max={sigma_peak}; X=failure, R=redistribution)"
    ]
    shown = sorted(timelines)[:max_tasks]
    for task in shown:
        timeline = timelines[task]
        row = []
        for b in range(width):
            t_mid = (b + 0.5) * bucket
            row.append(shade(timeline.sigma_at(t_mid)))
        if show_markers:
            for t_re in timeline.redistribution_times:
                col = min(width - 1, int(t_re / bucket))
                row[col] = _REDISTRIBUTION_MARK
            for t_f in timeline.failure_times:
                col = min(width - 1, int(t_f / bucket))
                row[col] = _FAILURE_MARK
        label = f"T{task + 1}".rjust(label_width)
        lines.append(f"{label} │{''.join(row)}│")
    if len(timelines) > len(shown):
        lines.append(f"... {len(timelines) - len(shown)} more tasks not shown")
    axis = f"{'':>{label_width}} └{'─' * width}┘"
    lines.append(axis)
    lines.append(
        f"{'':>{label_width}}  0{f'{makespan:.4g}s'.rjust(width - 1)}"
    )
    return "\n".join(lines)
