"""repro — Resilient application co-scheduling with processor redistribution.

A full Python reproduction of Benoit, Pottier and Robert, *"Resilient
application co-scheduling with processor redistribution"* (ICPP 2016;
Inria research report RR-8795): the malleable-task/fault/checkpoint model,
the optimal no-redistribution algorithm, the four redistribution
heuristics, the NP-completeness reduction, the fault-injection
discrete-event simulator, and a harness regenerating every figure of the
evaluation section.

Quickstart::

    from repro import Cluster, simulate, uniform_pack

    pack = uniform_pack(10, m_inf=15_000, m_sup=25_000, seed=1)
    cluster = Cluster.with_mtbf_years(processors=64, mtbf_years=2.0)
    result = simulate(pack, cluster, "ig-el", seed=1)
    print(result.summary())

See ``examples/`` for richer scenarios and ``repro.experiments`` for the
paper's figures.
"""

from __future__ import annotations

__version__ = "1.0.0"

from .cluster import Cluster, ProcessorMap
from .core import (
    POLICIES,
    EndGreedy,
    EndLocal,
    IteratedGreedy,
    Policy,
    ShortestTasksFirst,
    TaskRuntime,
    get_policy,
    optimal_schedule,
    redistribution_cost,
    redistribution_rounds,
)
from .exceptions import (
    CapacityError,
    ConfigurationError,
    ReproError,
    SimulationError,
)
from .engine import (
    PersistentPoolExecutor,
    PoolExecutor,
    RunRequest,
    SerialExecutor,
    create_executor,
)
from .experiments import (
    FIGURES,
    ScenarioConfig,
    list_figures,
    run_figure,
    run_scenario,
)
from .batch import OnlineBatchScheduler, poisson_stream, run_replicated_campaigns
from .packing import (
    MultiPackScheduler,
    PackCostOracle,
    Partition,
)
from .resilience import (
    ExpectedTimeModel,
    ExponentialFaults,
    FaultInjector,
    ReplicatedExpectedTimeModel,
    ResilienceModel,
    SilentErrorConfig,
    SilentErrorModel,
    YoungStrategy,
)
from .simulation import SimulationResult, Simulator, simulate
from .theory.online import competitive_report, fault_free_lower_bound
from .validation import validate_expected_time
from .tasks import (
    Pack,
    PaperSyntheticProfile,
    SpeedupProfile,
    TaskSpec,
    WorkloadGenerator,
    homogeneous_pack,
    uniform_pack,
)

__all__ = [
    "__version__",
    "Cluster",
    "ProcessorMap",
    "POLICIES",
    "EndGreedy",
    "EndLocal",
    "IteratedGreedy",
    "Policy",
    "ShortestTasksFirst",
    "TaskRuntime",
    "get_policy",
    "optimal_schedule",
    "redistribution_cost",
    "redistribution_rounds",
    "CapacityError",
    "ConfigurationError",
    "ReproError",
    "SimulationError",
    "FIGURES",
    "ScenarioConfig",
    "list_figures",
    "run_figure",
    "run_scenario",
    "RunRequest",
    "SerialExecutor",
    "PoolExecutor",
    "PersistentPoolExecutor",
    "create_executor",
    "run_replicated_campaigns",
    "ExpectedTimeModel",
    "ExponentialFaults",
    "FaultInjector",
    "MultiPackScheduler",
    "OnlineBatchScheduler",
    "PackCostOracle",
    "Partition",
    "poisson_stream",
    "ReplicatedExpectedTimeModel",
    "ResilienceModel",
    "SilentErrorConfig",
    "SilentErrorModel",
    "YoungStrategy",
    "competitive_report",
    "fault_free_lower_bound",
    "validate_expected_time",
    "SimulationResult",
    "Simulator",
    "simulate",
    "Pack",
    "PaperSyntheticProfile",
    "SpeedupProfile",
    "TaskSpec",
    "WorkloadGenerator",
    "homogeneous_pack",
    "uniform_pack",
]
