"""Task specifications and packs.

A *pack* (Section 3) is a set of ``n`` independent malleable tasks
``{T_1, ..., T_n}`` started simultaneously on ``p`` processors.  Each task
carries its problem size ``m_i`` (number of data items, which also drives
the redistribution volume of Eq. (7)/(9)), its sequential checkpoint cost
``C_i`` (Section 3.1: ``C_{i,j} = C_i / j``), and a speedup profile giving
its fault-free time ``t_{i,j}``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence, Union

import numpy as np

from ..exceptions import ConfigurationError
from .speedup import PaperSyntheticProfile, SpeedupProfile

__all__ = ["TaskSpec", "Pack"]

ArrayLike = Union[int, float, np.ndarray]


@dataclass(frozen=True)
class TaskSpec:
    """Immutable description of one malleable task.

    Attributes
    ----------
    index:
        Position of the task inside its pack (0-based).  Used as the key
        everywhere (allocations, runtimes, traces).
    size:
        Problem size ``m_i`` — doubles as the redistribution data volume.
    checkpoint_cost:
        Sequential checkpoint time ``C_i`` (seconds); the per-processor
        cost on ``j`` processors is ``C_i / j``.  The paper sets
        ``C_i = c * m_i`` with ``c = 1`` by default.
    profile:
        Speedup profile supplying ``t(m_i, q)``.
    name:
        Optional human-readable label.
    """

    index: int
    size: float
    checkpoint_cost: float
    profile: SpeedupProfile = field(default_factory=PaperSyntheticProfile)
    name: str = ""

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ConfigurationError(f"task index must be >= 0, got {self.index}")
        if self.size <= 0:
            raise ConfigurationError(f"task size must be positive, got {self.size}")
        if self.checkpoint_cost < 0:
            raise ConfigurationError(
                f"checkpoint cost must be non-negative, got {self.checkpoint_cost}"
            )
        if not self.name:
            object.__setattr__(self, "name", f"T{self.index + 1}")

    def fault_free_time(self, q: ArrayLike) -> ArrayLike:
        """``t_{i,q}`` — fault-free time on ``q`` processors (Eq. 10)."""
        return self.profile.time(self.size, q)

    def sequential_time(self) -> float:
        """``t_{i,1}``."""
        return self.profile.sequential_time(self.size)

    def checkpoint_cost_on(self, q: int) -> float:
        """``C_{i,q} = C_i / q`` (Section 3.1)."""
        if q < 1:
            raise ConfigurationError("q must be >= 1")
        return self.checkpoint_cost / q


class Pack(Sequence[TaskSpec]):
    """An ordered collection of tasks co-scheduled as a single pack.

    The pack validates that task indices are exactly ``0..n-1`` so that
    array-based bookkeeping in the scheduler and simulator is safe.
    """

    def __init__(self, tasks: Sequence[TaskSpec]):
        tasks = list(tasks)
        if not tasks:
            raise ConfigurationError("a pack must contain at least one task")
        for position, task in enumerate(tasks):
            if task.index != position:
                raise ConfigurationError(
                    f"task at position {position} has index {task.index}; "
                    "pack tasks must be indexed 0..n-1 in order"
                )
        self._tasks: tuple[TaskSpec, ...] = tuple(tasks)

    # -- Sequence protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self._tasks)

    def __getitem__(self, item):  # type: ignore[override]
        return self._tasks[item]

    def __iter__(self) -> Iterator[TaskSpec]:
        return iter(self._tasks)

    # -- convenience -------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of tasks in the pack."""
        return len(self._tasks)

    @property
    def sizes(self) -> np.ndarray:
        """Vector of problem sizes ``m_i``."""
        return np.array([t.size for t in self._tasks], dtype=float)

    @property
    def checkpoint_costs(self) -> np.ndarray:
        """Vector of sequential checkpoint costs ``C_i``."""
        return np.array([t.checkpoint_cost for t in self._tasks], dtype=float)

    def fault_free_times(self, q: int) -> np.ndarray:
        """Vector of ``t_{i,q}`` for every task at a common ``q``."""
        return np.array([t.fault_free_time(q) for t in self._tasks], dtype=float)

    def total_sequential_work(self) -> float:
        """Sum of sequential times — a crude lower-bound scale for makespan."""
        return float(sum(t.sequential_time() for t in self._tasks))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Pack(n={self.n})"
