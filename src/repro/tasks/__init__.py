"""Task model substrate: speedup profiles, task specs, workload generation."""

from .speedup import (
    AmdahlProfile,
    GustafsonProfile,
    PaperSyntheticProfile,
    PowerLawProfile,
    PROFILE_REGISTRY,
    SpeedupProfile,
    check_non_decreasing_work,
    check_non_increasing_time,
    get_profile,
)
from .miniapps import MINIAPPS, MiniAppProfile, miniapp_names, miniapp_pack
from .task import Pack, TaskSpec
from .workload import (
    PAPER_M_INF,
    PAPER_M_INF_HETEROGENEOUS,
    PAPER_M_SUP,
    WorkloadGenerator,
    homogeneous_pack,
    uniform_pack,
)

__all__ = [
    "AmdahlProfile",
    "GustafsonProfile",
    "PaperSyntheticProfile",
    "PowerLawProfile",
    "PROFILE_REGISTRY",
    "SpeedupProfile",
    "check_non_decreasing_work",
    "check_non_increasing_time",
    "get_profile",
    "MINIAPPS",
    "MiniAppProfile",
    "miniapp_names",
    "miniapp_pack",
    "Pack",
    "TaskSpec",
    "PAPER_M_INF",
    "PAPER_M_INF_HETEROGENEOUS",
    "PAPER_M_SUP",
    "WorkloadGenerator",
    "homogeneous_pack",
    "uniform_pack",
]
