"""Parallel speedup profiles ``t(m, q)``.

The paper assumes the speedup profile of every application is known before
execution (Section 1) and evaluates everything on the synthetic profile of
Section 6.1, Eq. (10):

.. math::

    t(m, 1) = 2\\,m \\log_2 m,\\qquad
    t(m, q) = f\\,t(m,1) + (1-f)\\,\\frac{t(m,1)}{q}
              + \\frac{m}{q}\\,\\log_2 m,

where ``f`` is the sequential fraction (default ``0.08``) and the last term
models communication/synchronisation overhead.

This module implements that profile (:class:`PaperSyntheticProfile`) plus
the classical alternatives the related-work section situates it against
(Amdahl, Gustafson, power-law), all behind a common :class:`SpeedupProfile`
interface so the scheduler and simulator are profile-agnostic.  Profiles
must be *non-increasing in q* and have *non-decreasing work* ``q * t(m,q)``
(the two standard assumptions of Section 3.2); helpers are provided to
check both on a grid.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Union

import numpy as np

from ..exceptions import ConfigurationError

__all__ = [
    "SpeedupProfile",
    "PaperSyntheticProfile",
    "AmdahlProfile",
    "GustafsonProfile",
    "PowerLawProfile",
    "PROFILE_REGISTRY",
    "get_profile",
    "check_non_increasing_time",
    "check_non_decreasing_work",
]

ArrayLike = Union[int, float, np.ndarray]


class SpeedupProfile(ABC):
    """Abstract parallel execution-time profile ``t(m, q)``.

    ``m`` is the problem size (number of data items) and ``q >= 1`` the
    number of processors.  Implementations must be vectorised over ``q``:
    passing a NumPy integer array returns the element-wise times.
    """

    #: short identifier used by :data:`PROFILE_REGISTRY` and the CLI
    name: str = "abstract"

    @abstractmethod
    def time(self, m: float, q: ArrayLike) -> ArrayLike:
        """Fault-free execution time of a size-``m`` task on ``q`` procs."""

    def sequential_time(self, m: float) -> float:
        """``t(m, 1)`` — convenience wrapper."""
        return float(self.time(m, 1))

    def work(self, m: float, q: ArrayLike) -> ArrayLike:
        """Total work ``q * t(m, q)`` (processor-seconds)."""
        q_arr = np.asarray(q, dtype=float)
        return q_arr * self.time(m, q)

    def speedup(self, m: float, q: ArrayLike) -> ArrayLike:
        """Speedup ``t(m,1) / t(m,q)``."""
        return self.sequential_time(m) / self.time(m, q)

    @staticmethod
    def _validate_inputs(m: float, q: ArrayLike) -> np.ndarray:
        if m <= 0:
            raise ConfigurationError(f"problem size must be positive, got {m}")
        q_arr = np.asarray(q, dtype=float)
        if np.any(q_arr < 1):
            raise ConfigurationError("processor count q must be >= 1")
        return q_arr

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class PaperSyntheticProfile(SpeedupProfile):
    """The synthetic profile of Section 6.1, Eq. (10).

    Parameters
    ----------
    seq_fraction:
        The sequential fraction ``f`` of Eq. (10).  The paper fixes
        ``f = 0.08`` for all experiments except Fig. 14 where it sweeps
        ``f`` in ``[0, 0.5]``.
    comm_factor:
        Multiplier on the ``(m/q) log2 m`` communication term.  The paper
        uses 1; exposed so ablations can weaken/strengthen the overhead.
    """

    name = "paper"

    def __init__(self, seq_fraction: float = 0.08, comm_factor: float = 1.0):
        if not 0.0 <= seq_fraction <= 1.0:
            raise ConfigurationError(
                f"sequential fraction must be in [0, 1], got {seq_fraction}"
            )
        if comm_factor < 0:
            raise ConfigurationError("comm_factor must be non-negative")
        self.seq_fraction = float(seq_fraction)
        self.comm_factor = float(comm_factor)

    def time(self, m: float, q: ArrayLike) -> ArrayLike:
        q_arr = self._validate_inputs(m, q)
        log_m = math.log2(m) if m > 1 else 0.0
        t1 = 2.0 * m * log_m
        f = self.seq_fraction
        result = f * t1 + (1.0 - f) * t1 / q_arr
        result = result + self.comm_factor * (m / q_arr) * log_m
        if np.ndim(q) == 0:
            return float(result)
        return result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PaperSyntheticProfile(seq_fraction={self.seq_fraction}, "
            f"comm_factor={self.comm_factor})"
        )


class AmdahlProfile(SpeedupProfile):
    """Amdahl's law: ``t(m,q) = t(m,1) * (f + (1-f)/q)``.

    The sequential time defaults to the paper's ``2 m log2 m`` so the two
    profiles are directly comparable at ``q = 1``.
    """

    name = "amdahl"

    def __init__(self, seq_fraction: float = 0.08):
        if not 0.0 <= seq_fraction <= 1.0:
            raise ConfigurationError(
                f"sequential fraction must be in [0, 1], got {seq_fraction}"
            )
        self.seq_fraction = float(seq_fraction)

    def time(self, m: float, q: ArrayLike) -> ArrayLike:
        q_arr = self._validate_inputs(m, q)
        log_m = math.log2(m) if m > 1 else 0.0
        t1 = 2.0 * m * log_m
        f = self.seq_fraction
        result = t1 * (f + (1.0 - f) / q_arr)
        if np.ndim(q) == 0:
            return float(result)
        return result


class GustafsonProfile(SpeedupProfile):
    """Gustafson-style profile with scaled speedup ``f + (1-f)*q``.

    Execution time on ``q`` processors is ``t(m,1) / (f + (1-f) q)``; work
    grows mildly with ``q`` through a linear overhead term ``beta * q`` so
    the non-decreasing-work assumption holds strictly.
    """

    name = "gustafson"

    def __init__(self, seq_fraction: float = 0.08, beta: float = 0.0):
        if not 0.0 <= seq_fraction <= 1.0:
            raise ConfigurationError(
                f"sequential fraction must be in [0, 1], got {seq_fraction}"
            )
        if beta < 0:
            raise ConfigurationError("beta must be non-negative")
        self.seq_fraction = float(seq_fraction)
        self.beta = float(beta)

    def time(self, m: float, q: ArrayLike) -> ArrayLike:
        q_arr = self._validate_inputs(m, q)
        log_m = math.log2(m) if m > 1 else 0.0
        t1 = 2.0 * m * log_m
        f = self.seq_fraction
        result = t1 / (f + (1.0 - f) * q_arr) + self.beta * q_arr
        if np.ndim(q) == 0:
            return float(result)
        return result


class PowerLawProfile(SpeedupProfile):
    """Power-law profile ``t(m,q) = t(m,1) / q**sigma`` with ``0 < sigma <= 1``.

    ``sigma = 1`` is perfect parallelism; smaller values model
    communication-bound codes.  Common in co-scheduling studies (e.g. the
    speedup-aware co-schedules of Shantharam et al. cited as [2]).
    """

    name = "powerlaw"

    def __init__(self, sigma: float = 0.9):
        if not 0.0 < sigma <= 1.0:
            raise ConfigurationError(f"sigma must be in (0, 1], got {sigma}")
        self.sigma = float(sigma)

    def time(self, m: float, q: ArrayLike) -> ArrayLike:
        q_arr = self._validate_inputs(m, q)
        log_m = math.log2(m) if m > 1 else 0.0
        t1 = 2.0 * m * log_m
        result = t1 / q_arr**self.sigma
        if np.ndim(q) == 0:
            return float(result)
        return result


#: Registry of profile factories keyed by ``SpeedupProfile.name``.
PROFILE_REGISTRY: dict[str, type[SpeedupProfile]] = {
    cls.name: cls
    for cls in (
        PaperSyntheticProfile,
        AmdahlProfile,
        GustafsonProfile,
        PowerLawProfile,
    )
}


def get_profile(name: str, **kwargs: float) -> SpeedupProfile:
    """Instantiate a registered profile by name.

    >>> get_profile("paper", seq_fraction=0.1).seq_fraction
    0.1
    """
    try:
        cls = PROFILE_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(PROFILE_REGISTRY))
        raise ConfigurationError(
            f"unknown speedup profile {name!r}; known profiles: {known}"
        ) from None
    return cls(**kwargs)


def check_non_increasing_time(
    profile: SpeedupProfile, m: float, max_q: int
) -> bool:
    """True iff ``t(m, q)`` is non-increasing for ``q in 1..max_q``."""
    q = np.arange(1, max_q + 1)
    t = np.asarray(profile.time(m, q))
    return bool(np.all(np.diff(t) <= 1e-9 * t[:-1]))


def check_non_decreasing_work(
    profile: SpeedupProfile, m: float, max_q: int
) -> bool:
    """True iff ``q * t(m, q)`` is non-decreasing for ``q in 1..max_q``."""
    q = np.arange(1, max_q + 1)
    w = np.asarray(profile.work(m, q))
    return bool(np.all(np.diff(w) >= -1e-9 * w[:-1]))
