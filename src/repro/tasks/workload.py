"""Synthetic workload generation (Section 6.1).

The paper assigns each task a random size ``m_i ~ U[m_inf, m_sup]``.  With
``m_inf = 1_500_000`` close to ``m_sup = 2_500_000`` the pack is fairly
*homogeneous*; dropping ``m_inf`` to ``1500`` makes it strongly
*heterogeneous* (Figs. 5b, 6b).  Checkpoint costs are proportional to the
memory footprint: ``C_i = c * m_i`` with unit cost ``c`` (default 1,
swept in Figs. 12-13).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence

import numpy as np

from ..exceptions import ConfigurationError
from ..rng import derive_rng
from .speedup import PaperSyntheticProfile, SpeedupProfile
from .task import Pack, TaskSpec

__all__ = [
    "WorkloadGenerator",
    "uniform_pack",
    "homogeneous_pack",
    "PAPER_M_INF",
    "PAPER_M_SUP",
    "PAPER_M_INF_HETEROGENEOUS",
]

#: Defaults of Section 6.1.
PAPER_M_INF: float = 1_500_000.0
PAPER_M_SUP: float = 2_500_000.0
#: Heterogeneous variant used in Figs. 5b and 6b.
PAPER_M_INF_HETEROGENEOUS: float = 1500.0


@dataclass(frozen=True)
class WorkloadGenerator:
    """Draws packs of tasks with uniformly distributed sizes.

    Parameters mirror Section 6.1; every field has the paper's default.

    Attributes
    ----------
    m_inf, m_sup:
        Bounds of the uniform size distribution.
    checkpoint_unit_cost:
        The constant ``c`` in ``C_i = c * m_i`` (time to checkpoint one
        data unit).
    profile:
        Speedup profile shared by all generated tasks.
    """

    m_inf: float = PAPER_M_INF
    m_sup: float = PAPER_M_SUP
    checkpoint_unit_cost: float = 1.0
    profile: SpeedupProfile = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.profile is None:
            object.__setattr__(self, "profile", PaperSyntheticProfile())
        if self.m_inf <= 0 or self.m_sup <= 0:
            raise ConfigurationError("size bounds must be positive")
        if self.m_inf > self.m_sup:
            raise ConfigurationError(
                f"m_inf ({self.m_inf}) must not exceed m_sup ({self.m_sup})"
            )
        if self.checkpoint_unit_cost < 0:
            raise ConfigurationError("checkpoint unit cost must be >= 0")

    def with_unit_cost(self, c: float) -> "WorkloadGenerator":
        """Copy of this generator with a different checkpoint unit cost."""
        return replace(self, checkpoint_unit_cost=c)

    def with_profile(self, profile: SpeedupProfile) -> "WorkloadGenerator":
        """Copy of this generator with a different speedup profile."""
        return replace(self, profile=profile)

    def generate(
        self, n: int, rng: Optional[np.random.Generator] = None, seed: int = 0
    ) -> Pack:
        """Draw a pack of ``n`` tasks.

        Either pass an explicit ``rng`` or a ``seed`` (keyed under
        ``"workload"`` so it never collides with fault-injection streams).
        """
        if n < 1:
            raise ConfigurationError(f"pack size must be >= 1, got {n}")
        if rng is None:
            rng = derive_rng(seed, "workload")
        sizes = rng.uniform(self.m_inf, self.m_sup, size=n)
        return self.from_sizes(sizes)

    def from_sizes(self, sizes: Sequence[float]) -> Pack:
        """Build a pack from explicit sizes (deterministic workloads)."""
        tasks = [
            TaskSpec(
                index=i,
                size=float(m),
                checkpoint_cost=self.checkpoint_unit_cost * float(m),
                profile=self.profile,
            )
            for i, m in enumerate(sizes)
        ]
        return Pack(tasks)


def uniform_pack(
    n: int,
    *,
    m_inf: float = PAPER_M_INF,
    m_sup: float = PAPER_M_SUP,
    checkpoint_unit_cost: float = 1.0,
    profile: Optional[SpeedupProfile] = None,
    seed: int = 0,
) -> Pack:
    """One-shot helper: draw a pack with the paper's uniform-size model."""
    generator = WorkloadGenerator(
        m_inf=m_inf,
        m_sup=m_sup,
        checkpoint_unit_cost=checkpoint_unit_cost,
        profile=profile,  # type: ignore[arg-type]
    )
    return generator.generate(n, seed=seed)


def homogeneous_pack(
    n: int,
    size: float,
    *,
    checkpoint_unit_cost: float = 1.0,
    profile: Optional[SpeedupProfile] = None,
) -> Pack:
    """Pack of ``n`` identical tasks (useful for analytical sanity checks)."""
    generator = WorkloadGenerator(
        m_inf=size,
        m_sup=size,
        checkpoint_unit_cost=checkpoint_unit_cost,
        profile=profile,  # type: ignore[arg-type]
    )
    return generator.from_sizes([size] * n)
