"""Named application profiles inspired by the mini-app suite.

The paper motivates known speedup profiles with the Mantevo mini-apps
executed on up to 256 cores ([1], Heroux et al.); its evaluation then
uses the synthetic Eq. (10) with a single sequential fraction for every
task.  This module provides a small registry of *named* profiles with
heterogeneous parallelism characteristics so examples and studies can
exercise mixed-behaviour packs — closer to the motivating workload —
while staying on the paper's Eq. (10) functional form.

The parameters are **synthetic approximations**, not measurements: each
entry picks a sequential fraction and communication factor qualitatively
matching the application class it names (see each entry's comment).
DESIGN.md records this substitution: the original 256-core measurement
tables from [1] are not public, and the paper's own experiments never
use them directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..exceptions import ConfigurationError
from ..rng import derive_rng
from .speedup import PaperSyntheticProfile
from .task import Pack, TaskSpec

__all__ = ["MiniAppProfile", "MINIAPPS", "miniapp_names", "miniapp_pack"]


@dataclass(frozen=True)
class MiniAppProfile:
    """A named application class mapped onto Eq. (10) parameters.

    Attributes
    ----------
    name:
        Registry key.
    seq_fraction:
        Eq. (10) ``f`` — how much of the code is inherently serial.
    comm_factor:
        Multiplier on the ``(m/q) log2 m`` communication term.
    description:
        What the class models (and why the parameters are plausible).
    """

    name: str
    seq_fraction: float
    comm_factor: float
    description: str

    def build(self) -> PaperSyntheticProfile:
        """Instantiate the speedup profile."""
        return PaperSyntheticProfile(
            seq_fraction=self.seq_fraction, comm_factor=self.comm_factor
        )


#: Synthetic approximations of common HPC mini-app classes.
MINIAPPS: Dict[str, MiniAppProfile] = {
    profile.name: profile
    for profile in (
        MiniAppProfile(
            "stencil",
            seq_fraction=0.02,
            comm_factor=0.5,
            description=(
                "structured-grid stencil (miniGhost-like): almost fully "
                "parallel, halo exchanges keep communication light"
            ),
        ),
        MiniAppProfile(
            "fem",
            seq_fraction=0.08,
            comm_factor=1.0,
            description=(
                "implicit finite elements (miniFE-like): the paper's own "
                "default — assembly scales, the solve synchronises"
            ),
        ),
        MiniAppProfile(
            "molecular-dynamics",
            seq_fraction=0.05,
            comm_factor=0.8,
            description=(
                "short-range MD (miniMD-like): neighbour exchanges, "
                "mostly parallel force computation"
            ),
        ),
        MiniAppProfile(
            "graph",
            seq_fraction=0.15,
            comm_factor=2.0,
            description=(
                "irregular graph analytics: load imbalance shows up as a "
                "larger serial share and heavy communication"
            ),
        ),
        MiniAppProfile(
            "io-bound",
            seq_fraction=0.30,
            comm_factor=1.5,
            description=(
                "checkpoint/analysis-dominated codes: a large serial "
                "fraction caps the useful parallelism early"
            ),
        ),
    )
}


def miniapp_names() -> List[str]:
    """Registered mini-app class names."""
    return sorted(MINIAPPS)


def miniapp_pack(
    apps: Sequence[str],
    *,
    m_inf: float = 1_500_000.0,
    m_sup: float = 2_500_000.0,
    checkpoint_unit_cost: float = 1.0,
    seed: int = 0,
    sizes: Optional[Sequence[float]] = None,
) -> Pack:
    """Build a mixed pack from named application classes.

    Parameters
    ----------
    apps:
        One registry name per task (repeats allowed).
    m_inf, m_sup:
        Uniform size bounds when ``sizes`` is not given.
    sizes:
        Explicit per-task sizes (must match ``apps`` in length).
    seed:
        Size-draw seed (ignored with explicit ``sizes``).

    >>> pack = miniapp_pack(["stencil", "graph"], sizes=[1000.0, 2000.0])
    >>> pack[0].profile.seq_fraction
    0.02
    """
    if not apps:
        raise ConfigurationError("at least one application is required")
    unknown = [name for name in apps if name not in MINIAPPS]
    if unknown:
        raise ConfigurationError(
            f"unknown mini-app classes {unknown}; known: {miniapp_names()}"
        )
    if sizes is not None:
        if len(sizes) != len(apps):
            raise ConfigurationError(
                f"sizes length {len(sizes)} does not match apps {len(apps)}"
            )
        drawn = [float(size) for size in sizes]
    else:
        if m_inf <= 0 or m_inf > m_sup:
            raise ConfigurationError("need 0 < m_inf <= m_sup")
        rng = derive_rng(seed, "miniapps")
        drawn = rng.uniform(m_inf, m_sup, size=len(apps)).tolist()
    tasks = [
        TaskSpec(
            index=i,
            size=drawn[i],
            checkpoint_cost=checkpoint_unit_cost * drawn[i],
            profile=MINIAPPS[name].build(),
            name=f"{name}-{i}",
        )
        for i, name in enumerate(apps)
    ]
    return Pack(tasks)
