"""Deterministic consistency checks between model and simulator.

Two invariants must hold by construction and are cheap to verify on any
scenario, so they double as a user-facing diagnostic (the CLI exposes
them through ``repro-cosched validate``):

* **fault-free projection** — with fault injection disabled and no
  redistribution, every task must complete exactly at its analytic
  projection ``alpha t_{i,j} + N^ff C_{i,j}`` from the initial schedule;
* **envelope assumptions** — the Eq. (6) envelope must be non-increasing
  in ``j`` (assumption (5)) and the associated work ``j t^R_{i,j}``
  non-decreasing *below the task's threshold* (Section 3.2 restricts the
  work assumption to the useful range; past the threshold the envelope
  is flat so work grows trivially).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..cluster import Cluster
from ..core.progress import projected_finish
from ..exceptions import ConfigurationError
from ..resilience.expected_time import ExpectedTimeModel
from ..simulation import Simulator
from ..tasks import Pack

__all__ = [
    "ConsistencyReport",
    "check_fault_free_projection",
    "check_envelope_assumptions",
]


@dataclass
class ConsistencyReport:
    """Outcome of one consistency check."""

    name: str
    passed: bool
    checks: int
    failures: List[str] = field(default_factory=list)

    def describe(self) -> str:
        """One-line digest plus the first few failures if any."""
        status = "OK" if self.passed else "FAILED"
        text = f"{self.name}: {status} ({self.checks} checks)"
        for failure in self.failures[:5]:
            text += f"\n  - {failure}"
        if len(self.failures) > 5:
            text += f"\n  ... {len(self.failures) - 5} more"
        return text


def check_fault_free_projection(
    pack: Pack,
    cluster: Cluster,
    *,
    seed: int = 0,
    rel_tol: float = 1e-9,
) -> ConsistencyReport:
    """Fault-free, no-redistribution runs land on the analytic projection.

    Runs the simulator with ``inject_faults=False`` under the
    ``no-redistribution`` policy and compares every task's completion
    time against ``projected_finish`` evaluated on the initial schedule.
    """
    model = ExpectedTimeModel(pack, cluster)
    simulator = Simulator(
        pack,
        cluster,
        "no-redistribution",
        seed=seed,
        inject_faults=False,
        model=model,
    )
    result = simulator.run()
    failures: List[str] = []
    for i, sigma in result.initial_sigma.items():
        grid = model.grid(i)
        slot = grid.slot(sigma)
        expected = projected_finish(
            0.0,
            1.0,
            float(grid.t_ff[slot]),
            float(grid.tau[slot]),
            float(grid.cost[slot]),
        )
        actual = float(result.completion_times[i])
        if not np.isclose(actual, expected, rtol=rel_tol, atol=1e-6):
            failures.append(
                f"task {i}: completed at {actual:.9g}s, "
                f"projection says {expected:.9g}s"
            )
    return ConsistencyReport(
        name="fault-free projection",
        passed=not failures,
        checks=len(result.initial_sigma),
        failures=failures,
    )


def check_envelope_assumptions(
    pack: Pack,
    cluster: Cluster,
    *,
    alphas: Optional[List[float]] = None,
    max_procs: Optional[int] = None,
) -> ConsistencyReport:
    """Envelope monotonicity (Eq. 6) and pre-threshold work monotonicity.

    Checks every task at each requested ``alpha`` (default
    ``[0.25, 0.5, 1.0]``).
    """
    alphas = alphas if alphas is not None else [0.25, 0.5, 1.0]
    if not alphas:
        raise ConfigurationError("at least one alpha is required")
    model = ExpectedTimeModel(pack, cluster, max_procs=max_procs)
    failures: List[str] = []
    checks = 0
    j_grid = model.j_grid
    for i in range(len(pack)):
        for alpha in alphas:
            checks += 1
            envelope = model.profile(i, alpha)
            diffs = np.diff(envelope)
            if np.any(diffs > 1e-9 * np.abs(envelope[:-1])):
                failures.append(
                    f"task {i} alpha={alpha}: envelope increases in j"
                )
            threshold = model.threshold(i, alpha)
            below = j_grid <= threshold
            work = j_grid[below] * envelope[below]
            work_diffs = np.diff(work)
            if np.any(work_diffs < -1e-9 * np.abs(work[:-1])):
                failures.append(
                    f"task {i} alpha={alpha}: work decreases below the "
                    f"threshold j={threshold}"
                )
    return ConsistencyReport(
        name="envelope assumptions",
        passed=not failures,
        checks=checks,
        failures=failures,
    )
