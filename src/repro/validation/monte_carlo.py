"""Monte-Carlo validation of Eq. (4).

The expected time to execute one checkpointing period is derived in the
paper (following [16]) for this exact renewal process:

* an attempt of length ``T`` starts right after a checkpoint (no recovery
  on the first attempt);
* an exponential failure (rate ``lambda j``) during the attempt costs the
  elapsed time plus a failure-immune downtime ``D``; every retry is
  prefixed by a recovery ``R`` during which failures *can* strike;
* success means surviving a full attempt.

Its closed form is ``e^{lambda j R}(1/(lambda j) + D)(e^{lambda j T}-1)``
— the exact factor of Eq. (4).  :func:`sample_period_time` simulates one
period of that process, :func:`sample_completion_time` chains the
``N^ff`` full periods plus the ``tau_last`` partial period of Eqs. (2)-(3),
and :func:`validate_expected_time` compares the empirical mean against
the model prediction with a z-test.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

from ..exceptions import ConfigurationError
from ..resilience.expected_time import (
    ExpectedTimeModel,
    checkpoint_count,
    last_period,
)
from ..rng import derive_rng, derive_seed

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..engine import Executor

__all__ = [
    "ValidationReport",
    "sample_period_time",
    "sample_period_times",
    "sample_completion_time",
    "sample_completion_times",
    "validate_expected_time",
]

#: Samples per engine dispatch unit.  Fixed — *never* derived from the
#: worker count — so the drawn values depend only on ``(seed, i, j,
#: alpha, samples)`` and serial/pool/persistent execution return
#: byte-identical z-tests.
DEFAULT_CHUNK_SAMPLES = 128


def sample_period_time(
    rng: np.random.Generator,
    lam: float,
    attempt: float,
    downtime: float,
    recovery: float,
) -> float:
    """One sample of the time to complete an ``attempt``-long period.

    Matches the renewal process behind Eq. (4) exactly (see module
    docstring); in particular the first attempt pays no recovery and
    failures strike during retries' recovery segments.
    """
    if attempt <= 0:
        raise ConfigurationError("attempt length must be positive")
    if lam <= 0:
        return attempt
    elapsed = 0.0
    length = attempt  # first attempt: no recovery prefix
    while True:
        arrival = rng.exponential(1.0 / lam)
        if arrival >= length:
            return elapsed + length
        elapsed += arrival + downtime
        length = recovery + attempt


def _truncated_exponential(
    rng: np.random.Generator, lam: float, bound: float, count: int
) -> np.ndarray:
    """``count`` draws of ``Exp(lam)`` conditioned on being ``< bound``."""
    # F(x)/F(bound) = u  =>  x = -log(1 - u F(bound)) / lam
    return -np.log1p(rng.random(count) * np.expm1(-lam * bound)) / lam


def sample_period_times(
    rng: np.random.Generator,
    lam: float,
    attempt: float,
    downtime: float,
    recovery: float,
    count: int,
) -> np.ndarray:
    """``count`` vectorised draws of :func:`sample_period_time`'s law.

    Same renewal process, sampled by structure instead of by event: a
    period is the final (successful) try plus one ``arrival + downtime``
    term per failed try, where the failure count of the retries is
    geometric and each failure instant is a truncated exponential.  The
    distribution is exactly :func:`sample_period_time`'s; only the
    draw *order* differs, so a vectorised batch is not stream-compatible
    with a scalar loop — use one or the other for a given seed.
    """
    if attempt <= 0:
        raise ConfigurationError("attempt length must be positive")
    if count < 0:
        raise ConfigurationError(f"count must be >= 0, got {count}")
    if lam <= 0:
        return np.full(count, float(attempt))
    retry = recovery + attempt
    times = np.full(count, float(attempt))
    # First attempt fails when the arrival lands inside [0, attempt).
    failed = np.flatnonzero(rng.random(count) < -np.expm1(-lam * attempt))
    if failed.size:
        first = _truncated_exponential(rng, lam, attempt, failed.size)
        # Additional failures: retries until success, success prob e^{-lam*retry}.
        extra = rng.geometric(math.exp(-lam * retry), failed.size) - 1
        retry_sum = np.zeros(failed.size)
        total_extra = int(extra.sum())
        if total_extra:
            draws = _truncated_exponential(rng, lam, retry, total_extra)
            segments = np.repeat(np.arange(failed.size), extra)
            np.add.at(retry_sum, segments, draws)
        # Failed periods end with a full retry (recovery + attempt), and
        # every failure — first or retry — costs its arrival + downtime.
        times[failed] = (
            first + retry_sum + downtime * (1.0 + extra) + retry
        )
    return times


def sample_completion_time(
    model: ExpectedTimeModel,
    i: int,
    j: int,
    alpha: float = 1.0,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """One sample of ``t^R_{i,j}(alpha)``'s underlying random variable.

    Chains ``N^ff`` full periods of length ``tau`` and the final partial
    period ``tau_last`` (Eqs. 2-3), each sampled independently — the
    failure process is memoryless, so periods are independent renewals.
    """
    if rng is None:
        rng = np.random.default_rng()
    if alpha < 0.0 or alpha > 1.0 + 1e-12:
        raise ConfigurationError(f"alpha must be in [0, 1], got {alpha}")
    if alpha == 0.0:
        return 0.0
    grid = model.grid(i)
    slot = grid.slot(j)
    t_ff = float(grid.t_ff[slot])
    tau = float(grid.tau[slot])
    cost = float(grid.cost[slot])
    lam = float(grid.lam[slot])
    # Eqs. (2)-(3) via the shared period-split helpers of the model.
    n_full = checkpoint_count(alpha, t_ff, tau, cost)
    tau_last = last_period(alpha, t_ff, tau, cost)
    total = 0.0
    for _ in range(n_full):
        total += sample_period_time(rng, lam, tau, model.downtime, cost)
    if tau_last > 0:
        total += sample_period_time(rng, lam, tau_last, model.downtime, cost)
    return total


def sample_completion_times(
    model: ExpectedTimeModel,
    i: int,
    j: int,
    alpha: float = 1.0,
    rng: Optional[np.random.Generator] = None,
    count: int = 1,
) -> np.ndarray:
    """``count`` vectorised draws of :func:`sample_completion_time`'s law.

    All ``count x N^ff`` full periods are drawn in one
    :func:`sample_period_times` batch (periods are independent renewals,
    so the grouping is immaterial), plus one batch for the partial
    ``tau_last`` periods.  Used by the engine-parallel path of
    :func:`validate_expected_time`.
    """
    if rng is None:
        rng = np.random.default_rng()
    if count < 0:
        raise ConfigurationError(f"count must be >= 0, got {count}")
    if alpha < 0.0 or alpha > 1.0 + 1e-12:
        raise ConfigurationError(f"alpha must be in [0, 1], got {alpha}")
    if alpha == 0.0:
        return np.zeros(count)
    grid = model.grid(i)
    slot = grid.slot(j)
    t_ff = float(grid.t_ff[slot])
    tau = float(grid.tau[slot])
    cost = float(grid.cost[slot])
    lam = float(grid.lam[slot])
    # Eqs. (2)-(3) via the shared period-split helpers of the model.
    n_full = checkpoint_count(alpha, t_ff, tau, cost)
    tau_last = last_period(alpha, t_ff, tau, cost)
    totals = np.zeros(count)
    if n_full:
        periods = sample_period_times(
            rng, lam, tau, model.downtime, cost, count * n_full
        )
        totals += periods.reshape(count, n_full).sum(axis=1)
    if tau_last > 0:
        totals += sample_period_times(
            rng, lam, tau_last, model.downtime, cost, count
        )
    return totals


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of one Monte-Carlo validation run."""

    predicted: float
    empirical_mean: float
    empirical_std: float
    samples: int
    z_score: float
    relative_error: float
    sigma_tolerance: float
    relative_floor: float = 1e-2

    @property
    def passed(self) -> bool:
        """True when the empirical mean is within the tolerance band.

        Either criterion suffices: a z-score within ``sigma_tolerance``,
        or a relative error below ``relative_floor``.  The floor covers
        near-deterministic regimes (reliable platforms draw no failures
        at modest sample counts, collapsing the variance and blowing up
        the z-score on a physically negligible gap — the closed form's
        expected failure cost that the sample never realised).
        """
        return (
            abs(self.z_score) <= self.sigma_tolerance
            or self.relative_error <= self.relative_floor
        )

    def describe(self) -> str:
        """One-line digest."""
        status = "OK" if self.passed else "MISMATCH"
        return (
            f"{status}: predicted={self.predicted:.6g}s "
            f"empirical={self.empirical_mean:.6g}s "
            f"(z={self.z_score:+.2f}, rel.err={self.relative_error:.2%}, "
            f"{self.samples} samples)"
        )


def _chunk_seed(base_seed: int, i: int, j: int, chunk: int) -> int:
    """Stable derived seed for one sampling chunk."""
    return derive_seed(base_seed, "validation", i, j, "chunk", chunk)


def _sample_validation_chunk(
    model: ExpectedTimeModel,
    i: int,
    j: int,
    alpha: float,
    count: int,
    *,
    seed: int,
) -> np.ndarray:
    """Engine runner: one vectorised chunk of completion-time samples."""
    rng = derive_rng(seed, "mc-samples")
    return sample_completion_times(model, i, j, alpha, rng, count)


def validate_expected_time(
    model: ExpectedTimeModel,
    i: int,
    j: int,
    *,
    alpha: float = 1.0,
    samples: int = 400,
    seed: int = 0,
    sigma_tolerance: float = 5.0,
    relative_floor: float = 1e-2,
    workers: Optional[int] = None,
    chunk_samples: Optional[int] = None,
    engine: Optional[str] = None,
    executor: Optional["Executor"] = None,
) -> ValidationReport:
    """Compare Eq. (4) against the empirical mean of the sampled process.

    Note the comparison uses the **raw** Eq. (4) value, not the Eq. (6)
    envelope: the envelope deliberately replaces ``t^R_{i,j}`` by a
    better ``j' < j`` when over-parallelised, which the physical process
    at exactly ``j`` processors does not do.

    A 5-sigma default keeps the check decisive yet essentially free of
    false alarms at a few hundred samples.

    With any engine knob set (``workers`` > 1, ``engine``, ``executor``
    or ``chunk_samples``) sampling goes through the unified execution
    engine: the sample budget splits into fixed-size vectorised chunks
    of ``chunk_samples`` (default 128), each an independent
    :class:`~repro.engine.RunRequest` seeded by ``(seed, i, j, chunk)``.
    The chunk layout depends only on the arguments — never on the worker
    count — so serial, pool and persistent execution return
    byte-identical reports.  (The engine path draws its randomness
    differently from the legacy sequential path, so the two produce
    different — equally valid — sample sets for the same seed.)
    """
    if samples < 2:
        raise ConfigurationError("at least 2 samples are required")
    grid = model.grid(i)
    predicted = float(model.raw_profile(i, alpha, grid)[grid.slot(j)])
    engine_requested = (
        executor is not None
        or engine is not None
        or chunk_samples is not None
        or (workers is not None and workers > 1)
    )
    if engine_requested:
        draws = _sample_through_engine(
            model, i, j, alpha, samples, seed,
            workers=workers,
            chunk_samples=chunk_samples,
            engine=engine,
            executor=executor,
        )
    else:
        rng = derive_rng(seed, "validation", i, j)
        draws = np.array(
            [
                sample_completion_time(model, i, j, alpha, rng)
                for _ in range(samples)
            ]
        )
    mean = float(draws.mean())
    std = float(draws.std(ddof=1))
    stderr = std / math.sqrt(samples)
    z_score = (mean - predicted) / stderr if stderr > 0 else 0.0
    relative = abs(mean - predicted) / predicted if predicted > 0 else 0.0
    return ValidationReport(
        predicted=predicted,
        empirical_mean=mean,
        empirical_std=std,
        samples=samples,
        z_score=z_score,
        relative_error=relative,
        sigma_tolerance=sigma_tolerance,
        relative_floor=relative_floor,
    )


def _sample_through_engine(
    model: ExpectedTimeModel,
    i: int,
    j: int,
    alpha: float,
    samples: int,
    seed: int,
    *,
    workers: Optional[int] = None,
    chunk_samples: Optional[int] = None,
    engine: Optional[str] = None,
    executor: Optional["Executor"] = None,
) -> np.ndarray:
    """Draw ``samples`` completion times via engine-dispatched chunks."""
    from ..engine import RunRequest, ensure_executor

    size = DEFAULT_CHUNK_SAMPLES if chunk_samples is None else int(chunk_samples)
    if size < 1:
        raise ConfigurationError(f"chunk_samples must be >= 1, got {size}")
    counts = [
        min(size, samples - start) for start in range(0, samples, size)
    ]
    requests = [
        RunRequest(
            fn=_sample_validation_chunk,
            payload=(model, i, j, alpha, count),
            seed=_chunk_seed(seed, i, j, chunk),
            tag=chunk,
        )
        for chunk, count in enumerate(counts)
    ]
    with ensure_executor(executor, engine=engine, workers=workers) as active:
        return np.concatenate(active.map(requests))
