"""Monte-Carlo validation of Eq. (4).

The expected time to execute one checkpointing period is derived in the
paper (following [16]) for this exact renewal process:

* an attempt of length ``T`` starts right after a checkpoint (no recovery
  on the first attempt);
* an exponential failure (rate ``lambda j``) during the attempt costs the
  elapsed time plus a failure-immune downtime ``D``; every retry is
  prefixed by a recovery ``R`` during which failures *can* strike;
* success means surviving a full attempt.

Its closed form is ``e^{lambda j R}(1/(lambda j) + D)(e^{lambda j T}-1)``
— the exact factor of Eq. (4).  :func:`sample_period_time` simulates one
period of that process, :func:`sample_completion_time` chains the
``N^ff`` full periods plus the ``tau_last`` partial period of Eqs. (2)-(3),
and :func:`validate_expected_time` compares the empirical mean against
the model prediction with a z-test.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..exceptions import ConfigurationError
from ..resilience.expected_time import ExpectedTimeModel
from ..rng import derive_rng

__all__ = [
    "ValidationReport",
    "sample_period_time",
    "sample_completion_time",
    "validate_expected_time",
]


def sample_period_time(
    rng: np.random.Generator,
    lam: float,
    attempt: float,
    downtime: float,
    recovery: float,
) -> float:
    """One sample of the time to complete an ``attempt``-long period.

    Matches the renewal process behind Eq. (4) exactly (see module
    docstring); in particular the first attempt pays no recovery and
    failures strike during retries' recovery segments.
    """
    if attempt <= 0:
        raise ConfigurationError("attempt length must be positive")
    if lam <= 0:
        return attempt
    elapsed = 0.0
    length = attempt  # first attempt: no recovery prefix
    while True:
        arrival = rng.exponential(1.0 / lam)
        if arrival >= length:
            return elapsed + length
        elapsed += arrival + downtime
        length = recovery + attempt


def sample_completion_time(
    model: ExpectedTimeModel,
    i: int,
    j: int,
    alpha: float = 1.0,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """One sample of ``t^R_{i,j}(alpha)``'s underlying random variable.

    Chains ``N^ff`` full periods of length ``tau`` and the final partial
    period ``tau_last`` (Eqs. 2-3), each sampled independently — the
    failure process is memoryless, so periods are independent renewals.
    """
    if rng is None:
        rng = np.random.default_rng()
    if alpha < 0.0 or alpha > 1.0 + 1e-12:
        raise ConfigurationError(f"alpha must be in [0, 1], got {alpha}")
    if alpha == 0.0:
        return 0.0
    grid = model.grid(i)
    slot = grid.slot(j)
    t_ff = float(grid.t_ff[slot])
    tau = float(grid.tau[slot])
    cost = float(grid.cost[slot])
    lam = float(grid.lam[slot])
    work = alpha * t_ff
    n_full = int(math.floor(work / (tau - cost)))
    tau_last = work - n_full * (tau - cost)
    total = 0.0
    for _ in range(n_full):
        total += sample_period_time(rng, lam, tau, model.downtime, cost)
    if tau_last > 0:
        total += sample_period_time(rng, lam, tau_last, model.downtime, cost)
    return total


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of one Monte-Carlo validation run."""

    predicted: float
    empirical_mean: float
    empirical_std: float
    samples: int
    z_score: float
    relative_error: float
    sigma_tolerance: float
    relative_floor: float = 1e-2

    @property
    def passed(self) -> bool:
        """True when the empirical mean is within the tolerance band.

        Either criterion suffices: a z-score within ``sigma_tolerance``,
        or a relative error below ``relative_floor``.  The floor covers
        near-deterministic regimes (reliable platforms draw no failures
        at modest sample counts, collapsing the variance and blowing up
        the z-score on a physically negligible gap — the closed form's
        expected failure cost that the sample never realised).
        """
        return (
            abs(self.z_score) <= self.sigma_tolerance
            or self.relative_error <= self.relative_floor
        )

    def describe(self) -> str:
        """One-line digest."""
        status = "OK" if self.passed else "MISMATCH"
        return (
            f"{status}: predicted={self.predicted:.6g}s "
            f"empirical={self.empirical_mean:.6g}s "
            f"(z={self.z_score:+.2f}, rel.err={self.relative_error:.2%}, "
            f"{self.samples} samples)"
        )


def validate_expected_time(
    model: ExpectedTimeModel,
    i: int,
    j: int,
    *,
    alpha: float = 1.0,
    samples: int = 400,
    seed: int = 0,
    sigma_tolerance: float = 5.0,
    relative_floor: float = 1e-2,
) -> ValidationReport:
    """Compare Eq. (4) against the empirical mean of the sampled process.

    Note the comparison uses the **raw** Eq. (4) value, not the Eq. (6)
    envelope: the envelope deliberately replaces ``t^R_{i,j}`` by a
    better ``j' < j`` when over-parallelised, which the physical process
    at exactly ``j`` processors does not do.

    A 5-sigma default keeps the check decisive yet essentially free of
    false alarms at a few hundred samples.
    """
    if samples < 2:
        raise ConfigurationError("at least 2 samples are required")
    grid = model.grid(i)
    predicted = float(model.raw_profile(i, alpha, grid)[grid.slot(j)])
    rng = derive_rng(seed, "validation", i, j)
    draws = np.array(
        [
            sample_completion_time(model, i, j, alpha, rng)
            for _ in range(samples)
        ]
    )
    mean = float(draws.mean())
    std = float(draws.std(ddof=1))
    stderr = std / math.sqrt(samples)
    z_score = (mean - predicted) / stderr if stderr > 0 else 0.0
    relative = abs(mean - predicted) / predicted if predicted > 0 else 0.0
    return ValidationReport(
        predicted=predicted,
        empirical_mean=mean,
        empirical_std=std,
        samples=samples,
        z_score=z_score,
        relative_error=relative,
        sigma_tolerance=sigma_tolerance,
        relative_floor=relative_floor,
    )
