"""Validation of the analytic expected-time machinery.

Eq. (4) is the load-bearing formula of the whole library — every
scheduling decision ranks allocations by it.  This package checks it
against ground truth:

* :mod:`repro.validation.monte_carlo` — an independent event-level
  sampler of the exact renewal process Eq. (4) models (periods, failures,
  downtime, recovery), with statistical comparison of the empirical mean
  against the closed form;
* :mod:`repro.validation.consistency` — deterministic cross-checks:
  fault-free simulations must land exactly on the analytic projection,
  and model envelopes must satisfy the Section 3.2 assumptions.

Both are usable as a library (returning structured reports) and are
exercised by the test suite.
"""

from __future__ import annotations

from .consistency import (
    ConsistencyReport,
    check_envelope_assumptions,
    check_fault_free_projection,
)
from .monte_carlo import (
    ValidationReport,
    sample_completion_time,
    sample_completion_times,
    sample_period_time,
    sample_period_times,
    validate_expected_time,
)

__all__ = [
    "ValidationReport",
    "sample_period_time",
    "sample_period_times",
    "sample_completion_time",
    "sample_completion_times",
    "validate_expected_time",
    "ConsistencyReport",
    "check_fault_free_projection",
    "check_envelope_assumptions",
]
