"""Sequential execution of a partition's packs.

Packs run back-to-back on the full platform: pack ``q+1`` starts when the
last task of pack ``q`` completes (the batch model of the co-scheduling
literature the paper builds on).  Each pack execution is one full
fault-injection simulation; failure streams are re-drawn per pack from a
derived seed, since wall-clock offsets between packs carry no information
under the exponential (memoryless) fault law.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace as dc_replace
from typing import List, Optional, Sequence

import numpy as np

from ..cluster import Cluster
from ..core.policy import Policy
from ..exceptions import ConfigurationError
from ..resilience.checkpoint import ResilienceModel
from ..rng import derive_seed_sequence
from ..simulation import SimulationResult, Simulator
from ..tasks import Pack, TaskSpec
from .partition import Partition

__all__ = ["PackRunResult", "MultiPackResult", "MultiPackScheduler"]


def subpack(pack: Pack, group: Sequence[int]) -> Pack:
    """Extract a reindexed sub-pack; original names are preserved.

    The :class:`~repro.tasks.task.Pack` container requires indices
    ``0..g-1``, so members are renumbered; the task ``name`` keeps the
    original label (``T7`` stays ``T7``) for traceability.
    """
    members: List[TaskSpec] = []
    for position, original in enumerate(group):
        task = pack[original]
        members.append(dc_replace(task, index=position, name=task.name))
    return Pack(members)


@dataclass
class PackRunResult:
    """Outcome of one pack inside a multi-pack execution."""

    position: int
    group: tuple[int, ...]
    start: float
    result: SimulationResult

    @property
    def makespan(self) -> float:
        """Duration of this pack (local time)."""
        return self.result.makespan

    @property
    def end(self) -> float:
        """Absolute completion instant of this pack."""
        return self.start + self.result.makespan


@dataclass
class MultiPackResult:
    """Aggregate outcome of a partition's sequential execution."""

    partition: Partition
    policy: str
    packs: List[PackRunResult] = field(default_factory=list)

    @property
    def total_makespan(self) -> float:
        """Completion time of the last pack (= sum of pack makespans)."""
        return self.packs[-1].end if self.packs else 0.0

    @property
    def failures_effective(self) -> int:
        """Total effective failures across all packs."""
        return sum(p.result.failures_effective for p in self.packs)

    @property
    def redistributions(self) -> int:
        """Total redistributions across all packs."""
        return sum(p.result.redistributions for p in self.packs)

    def completion_times(self, n: int) -> np.ndarray:
        """Absolute completion time of every original task."""
        times = np.full(n, np.nan)
        for pack_run in self.packs:
            for position, original in enumerate(pack_run.group):
                times[original] = (
                    pack_run.start + pack_run.result.completion_times[position]
                )
        return times

    def summary(self) -> str:
        """One-line digest."""
        sizes = ",".join(str(len(p.group)) for p in self.packs)
        return (
            f"{self.partition.algorithm}/{self.policy}: "
            f"total={self.total_makespan:.6g}s over {len(self.packs)} packs "
            f"[{sizes}] ({self.failures_effective} failures, "
            f"{self.redistributions} redistributions)"
        )


class MultiPackScheduler:
    """Runs each pack of a partition through the simulator in sequence.

    Parameters
    ----------
    pack:
        The full task set (the partition indexes into it).
    cluster:
        Platform shared by every pack.
    policy:
        Redistribution policy applied inside each pack.
    partition:
        The pack split to execute; validated for completeness/capacity.
    seed:
        Base seed; pack ``q`` derives its fault/workload streams from
        ``(seed, "pack", q)`` so pack outcomes are independent but
        reproducible.
    inject_faults:
        ``False`` turns every pack into a fault-free run.
    """

    def __init__(
        self,
        pack: Pack,
        cluster: Cluster,
        policy: Policy | str,
        partition: Partition,
        *,
        seed: int = 0,
        inject_faults: bool = True,
        resilience: Optional[ResilienceModel] = None,
        record_trace: bool = False,
    ):
        partition.validate_complete(len(pack))
        partition.validate_capacity(cluster.processors)
        self.pack = pack
        self.cluster = cluster
        self.policy = policy
        self.partition = partition
        self.seed = int(seed)
        self.inject_faults = bool(inject_faults)
        self.resilience = resilience
        self.record_trace = bool(record_trace)

    def _pack_seed(self, position: int) -> int:
        sequence = derive_seed_sequence(self.seed, "pack", position)
        return int(sequence.generate_state(1, np.uint32)[0])

    def run(self) -> MultiPackResult:
        """Execute all packs sequentially and aggregate the outcome."""
        policy_name = (
            self.policy if isinstance(self.policy, str) else self.policy.name
        )
        outcome = MultiPackResult(partition=self.partition, policy=policy_name)
        clock = 0.0
        for position, group in enumerate(self.partition.groups):
            simulator = Simulator(
                subpack(self.pack, group),
                self.cluster,
                self.policy,
                seed=self._pack_seed(position),
                inject_faults=self.inject_faults,
                resilience=self.resilience,
                record_trace=self.record_trace,
            )
            result = simulator.run()
            outcome.packs.append(
                PackRunResult(
                    position=position,
                    group=tuple(group),
                    start=clock,
                    result=result,
                )
            )
            clock += result.makespan
        if not outcome.packs:  # pragma: no cover - Partition forbids this
            raise ConfigurationError("partition produced no packs")
        return outcome
