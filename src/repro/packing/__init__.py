"""Multi-pack partitioning and sequential pack execution.

The paper schedules a *single* pack and explicitly leaves "partitioning
the tasks into several consecutive packs" as future work (Section 7); its
companion co-scheduling papers (Aupy et al. [3]) study exactly that
partitioning in a fault-free setting.  This package closes the loop:

* :mod:`repro.packing.cost` — a memoised cost oracle pricing a candidate
  pack with Algorithm 1 (the optimal no-redistribution allocation) on the
  resilient expected times ``t^R``;
* :mod:`repro.packing.partition` — partitioning algorithms: the one-pack
  baseline, capacity-driven first-fit-decreasing, k-way LPT balancing, a
  contiguous dynamic program and exhaustive search for tiny instances;
* :mod:`repro.packing.scheduler` — :class:`MultiPackScheduler`, which
  runs the packs of a partition back-to-back through the fault-injection
  simulator and aggregates the total makespan.

The partitioning problem inherits the NP-completeness of Theorem 2, so
everything beyond the exhaustive baseline is heuristic.
"""

from __future__ import annotations

from .cost import PackCostOracle
from .partition import (
    Partition,
    dp_contiguous,
    exhaustive_optimal,
    first_fit_capacity,
    fixed_k_lpt,
    one_pack,
)
from .scheduler import MultiPackResult, MultiPackScheduler, PackRunResult

__all__ = [
    "PackCostOracle",
    "Partition",
    "one_pack",
    "first_fit_capacity",
    "fixed_k_lpt",
    "dp_contiguous",
    "exhaustive_optimal",
    "MultiPackScheduler",
    "MultiPackResult",
    "PackRunResult",
]
