"""Pack-partitioning algorithms.

A :class:`Partition` splits the task indices ``0..n-1`` into ordered
groups; each group becomes one pack, and packs run sequentially.  The
objective is the total expected makespan — the sum of per-pack Algorithm 1
makespans priced by :class:`~repro.packing.cost.PackCostOracle`.

The problem is NP-hard (it contains the single-pack allocation problem of
Theorem 2, and k-way partitioning of sequential loads is already
3-Partition), hence a ladder of algorithms:

========================  =========================================
:func:`one_pack`          everything together (the paper's setting)
:func:`first_fit_capacity`  fewest packs that satisfy ``2n <= p``
:func:`fixed_k_lpt`       k-way LPT balancing on a surrogate load
:func:`dp_contiguous`     optimal contiguous split of the size-sorted
                          order (O(n^2 k) oracle calls)
:func:`exhaustive_optimal`  true optimum by set-partition enumeration
                          (tiny n only)
========================  =========================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from ..exceptions import CapacityError, ConfigurationError
from .cost import PackCostOracle

__all__ = [
    "Partition",
    "one_pack",
    "first_fit_capacity",
    "fixed_k_lpt",
    "dp_contiguous",
    "exhaustive_optimal",
]

#: Safety cap for :func:`exhaustive_optimal` (Bell(10) = 115 975 partitions).
MAX_EXHAUSTIVE_TASKS = 10


@dataclass(frozen=True)
class Partition:
    """An ordered split of task indices into packs.

    Attributes
    ----------
    groups:
        Tuple of task-index tuples; packs execute in this order.
    algorithm:
        Name of the producing algorithm (for tables and traces).
    estimated_costs:
        Per-pack expected makespans from the pricing oracle (empty if the
        partition was built without one).
    """

    groups: Tuple[Tuple[int, ...], ...]
    algorithm: str = "manual"
    estimated_costs: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if not self.groups:
            raise ConfigurationError("a partition needs at least one group")
        seen: set[int] = set()
        for group in self.groups:
            if not group:
                raise ConfigurationError("partition groups must be non-empty")
            for index in group:
                if index in seen:
                    raise ConfigurationError(
                        f"task {index} appears in multiple groups"
                    )
                seen.add(index)
        if self.estimated_costs and len(self.estimated_costs) != len(self.groups):
            raise ConfigurationError(
                "estimated_costs length must match the group count"
            )

    @property
    def k(self) -> int:
        """Number of packs."""
        return len(self.groups)

    @property
    def n(self) -> int:
        """Number of tasks covered."""
        return sum(len(group) for group in self.groups)

    @property
    def estimated_total(self) -> float:
        """Sum of the per-pack cost estimates."""
        if not self.estimated_costs:
            raise ConfigurationError("partition carries no cost estimates")
        return float(sum(self.estimated_costs))

    def validate_complete(self, n: int) -> None:
        """Check the partition covers exactly the indices ``0..n-1``."""
        covered = {index for group in self.groups for index in group}
        expected = set(range(n))
        if covered != expected:
            missing = sorted(expected - covered)
            extra = sorted(covered - expected)
            raise ConfigurationError(
                f"partition does not cover 0..{n - 1}: "
                f"missing={missing}, extra={extra}"
            )

    def validate_capacity(self, p: int) -> None:
        """Check every pack fits on ``p`` processors (buddy pairs)."""
        for position, group in enumerate(self.groups):
            if 2 * len(group) > p:
                raise CapacityError(
                    f"pack {position} holds {len(group)} tasks but p={p} "
                    f"supports at most {p // 2}"
                )

    def describe(self) -> str:
        """Compact human-readable digest."""
        sizes = ",".join(str(len(group)) for group in self.groups)
        text = f"{self.algorithm}: k={self.k} sizes=[{sizes}]"
        if self.estimated_costs:
            text += f" est_total={self.estimated_total:.6g}s"
        return text


def _with_costs(
    groups: Sequence[Sequence[int]], oracle: PackCostOracle, algorithm: str
) -> Partition:
    ordered = tuple(tuple(sorted(group)) for group in groups)
    costs = tuple(oracle.cost(group) for group in ordered)
    return Partition(groups=ordered, algorithm=algorithm, estimated_costs=costs)


# ---------------------------------------------------------------------------
# baselines

def one_pack(oracle: PackCostOracle) -> Partition:
    """Everything in a single pack (the paper's operating point).

    Raises :class:`CapacityError` when ``2n > p``.
    """
    return _with_costs([list(range(oracle.n))], oracle, "one-pack")


def first_fit_capacity(
    oracle: PackCostOracle, max_group_size: Optional[int] = None
) -> Partition:
    """First-fit decreasing on the surrogate load, capacity-bounded.

    Tasks are taken in non-increasing sequential time; each goes to the
    first pack with spare capacity.  Produces the minimum number of packs
    ``ceil(n / (p // 2))`` and is the natural fallback when the task set
    simply does not fit in one pack.
    """
    capacity = oracle.max_group_size if max_group_size is None else int(max_group_size)
    if capacity < 1:
        raise ConfigurationError("max_group_size must be >= 1")
    order = sorted(
        range(oracle.n), key=lambda i: (-oracle.sequential_time(i), i)
    )
    groups: List[List[int]] = []
    for index in order:
        for group in groups:
            if len(group) < capacity:
                group.append(index)
                break
        else:
            groups.append([index])
    return _with_costs(groups, oracle, "first-fit")


def fixed_k_lpt(oracle: PackCostOracle, k: int) -> Partition:
    """k-way LPT: longest task first, to the least-loaded feasible pack.

    The load is the surrogate (sum of sequential times), so assignment is
    O(n log n + n k); only the final partition is priced exactly.
    """
    if k < 1:
        raise ConfigurationError(f"pack count k must be >= 1, got {k}")
    if k > oracle.n:
        raise ConfigurationError(
            f"cannot split {oracle.n} tasks into {k} non-empty packs"
        )
    capacity = oracle.max_group_size
    if oracle.n > k * capacity:
        raise CapacityError(
            f"{oracle.n} tasks cannot fit in {k} packs of at most "
            f"{capacity} tasks"
        )
    order = sorted(
        range(oracle.n), key=lambda i: (-oracle.sequential_time(i), i)
    )
    groups: List[List[int]] = [[] for _ in range(k)]
    loads = [0.0] * k
    for index in order:
        feasible = [g for g in range(k) if len(groups[g]) < capacity]
        # prefer an empty feasible pack while some are empty (k non-empty
        # packs are required), otherwise the least-loaded feasible pack
        empty = [g for g in feasible if not groups[g]]
        remaining = sum(1 for g in range(k) if not groups[g])
        unassigned = oracle.n - sum(len(g) for g in groups)
        if empty and remaining >= unassigned:
            target = empty[0]
        else:
            target = min(feasible, key=lambda g: (loads[g], g))
        groups[target].append(index)
        loads[target] += oracle.sequential_time(index)
    return _with_costs(groups, oracle, f"lpt-k{k}")


# ---------------------------------------------------------------------------
# contiguous dynamic program

def dp_contiguous(oracle: PackCostOracle, k: int) -> Partition:
    """Optimal split of the size-sorted order into at most ``k`` segments.

    Restricting packs to be contiguous in non-increasing sequential-time
    order turns the search into a classical interval dynamic program:
    ``best[j][m]`` is the cheapest cost of packing the first ``j`` sorted
    tasks into ``m`` packs.  The restriction loses generality (the true
    optimum may interleave sizes) but keeps the oracle-call count at
    O(n^2 k) and is a strong heuristic when pack cost grows with the
    longest member — which Algorithm 1 guarantees here.
    """
    if k < 1:
        raise ConfigurationError(f"pack count k must be >= 1, got {k}")
    n = oracle.n
    k = min(k, n)
    order = sorted(range(n), key=lambda i: (-oracle.sequential_time(i), i))
    capacity = oracle.max_group_size
    if n > k * capacity:
        raise CapacityError(
            f"{n} tasks cannot fit in {k} packs of at most {capacity} tasks"
        )

    segment_cost: dict[tuple[int, int], float] = {}

    def cost(start: int, end: int) -> float:
        """Price the segment ``order[start:end]`` (memoised)."""
        key = (start, end)
        value = segment_cost.get(key)
        if value is None:
            value = oracle.cost(order[start:end])
            segment_cost[key] = value
        return value

    infinity = float("inf")
    best = [[infinity] * (k + 1) for _ in range(n + 1)]
    choice = [[-1] * (k + 1) for _ in range(n + 1)]
    best[0][0] = 0.0
    for j in range(1, n + 1):
        for m in range(1, min(k, j) + 1):
            lo = max(m - 1, j - capacity)
            for split in range(lo, j):
                if best[split][m - 1] == infinity:
                    continue
                candidate = best[split][m - 1] + cost(split, j)
                if candidate < best[j][m]:
                    best[j][m] = candidate
                    choice[j][m] = split
    m_best = min(range(1, k + 1), key=lambda m: best[n][m])
    if best[n][m_best] == infinity:  # pragma: no cover - guarded above
        raise CapacityError("no feasible contiguous partition")

    groups: List[List[int]] = []
    j, m = n, m_best
    while m > 0:
        split = choice[j][m]
        groups.append(order[split:j])
        j, m = split, m - 1
    groups.reverse()
    return _with_costs(groups, oracle, f"dp-k{k}")


# ---------------------------------------------------------------------------
# exhaustive search (tiny n)

def _set_partitions(n: int) -> Iterator[List[List[int]]]:
    """All set partitions of ``range(n)`` via restricted growth strings."""
    codes = [0] * n
    maxima = [0] * n
    while True:
        groups: List[List[int]] = [[] for _ in range(max(codes) + 1)]
        for index, code in enumerate(codes):
            groups[code].append(index)
        yield groups
        # next restricted growth string
        position = n - 1
        while position > 0 and codes[position] > maxima[position - 1]:
            position -= 1
        if position == 0:
            return
        codes[position] += 1
        maxima[position] = max(maxima[position - 1], codes[position])
        for rest in range(position + 1, n):
            codes[rest] = 0
            maxima[rest] = maxima[position]


def exhaustive_optimal(
    oracle: PackCostOracle, k_max: Optional[int] = None
) -> Partition:
    """True optimal partition by enumeration (``n <= 10``).

    Enumerates every set partition (optionally with at most ``k_max``
    groups), pricing each group once thanks to the oracle's memoisation
    (at most ``2^n`` distinct groups exist).
    """
    n = oracle.n
    if n > MAX_EXHAUSTIVE_TASKS:
        raise ConfigurationError(
            f"exhaustive search is capped at {MAX_EXHAUSTIVE_TASKS} tasks "
            f"(got {n}); use dp_contiguous or fixed_k_lpt instead"
        )
    capacity = oracle.max_group_size
    best_groups: Optional[List[List[int]]] = None
    best_cost = float("inf")
    for groups in _set_partitions(n):
        if k_max is not None and len(groups) > k_max:
            continue
        if any(len(group) > capacity for group in groups):
            continue
        total = 0.0
        feasible = True
        for group in groups:
            total += oracle.cost(group)
            if total >= best_cost:
                feasible = False
                break
        if feasible and total < best_cost:
            best_cost = total
            best_groups = [list(group) for group in groups]
    if best_groups is None:
        raise CapacityError(
            "no feasible partition exists under the capacity constraint"
        )
    return _with_costs(best_groups, oracle, "exhaustive")
