"""Pack cost oracle for the partitioning algorithms.

The cost of executing a group of tasks as one pack on ``p`` processors is
the expected makespan of Algorithm 1's optimal no-redistribution schedule
restricted to that group — the same objective the paper's Theorem 1
minimises for a single pack.  The oracle reuses one
:class:`~repro.resilience.expected_time.ExpectedTimeModel` for the whole
task set (Algorithm 1 accepts a task subset), and memoises per group
because partitioning algorithms re-price the same groups repeatedly (the
dynamic program prices every contiguous segment, the exhaustive search
every subset).

A cheap *surrogate* load — the sum of sequential times — is also exposed;
the list-scheduling heuristics use it to steer assignment before the
exact oracle prices the final partition.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Sequence

from ..cluster import Cluster
from ..core.optimal import expected_makespan, optimal_schedule
from ..exceptions import CapacityError, ConfigurationError
from ..resilience.checkpoint import ResilienceModel
from ..resilience.expected_time import ExpectedTimeModel
from ..tasks import Pack

__all__ = ["PackCostOracle"]


class PackCostOracle:
    """Prices candidate packs of a fixed task set on a fixed platform.

    Parameters
    ----------
    pack:
        The full task set being partitioned (groups refer to its indices).
    cluster:
        The platform every pack will run on (all ``p`` processors are
        available to each pack because packs execute sequentially).
    resilience:
        Optional checkpoint-strategy override (defaults to Young).
    model:
        Optional pre-built expected-time model to share with a simulator.
    """

    def __init__(
        self,
        pack: Pack,
        cluster: Cluster,
        resilience: Optional[ResilienceModel] = None,
        model: Optional[ExpectedTimeModel] = None,
    ):
        self.pack = pack
        self.cluster = cluster
        self.model = (
            model
            if model is not None
            else ExpectedTimeModel(pack, cluster, resilience=resilience)
        )
        self._cost_cache: Dict[FrozenSet[int], float] = {}
        self._sequential = [task.sequential_time() for task in pack]

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of tasks in the underlying set."""
        return len(self.pack)

    @property
    def max_group_size(self) -> int:
        """Largest group one pack can hold: each task needs a buddy pair."""
        return self.cluster.processors // 2

    def _validate_group(self, group: Sequence[int]) -> FrozenSet[int]:
        key = frozenset(group)
        if not key:
            raise ConfigurationError("a pack group must be non-empty")
        if len(key) != len(group):
            raise ConfigurationError(f"duplicate task indices in group {group}")
        for i in key:
            if not 0 <= i < self.n:
                raise ConfigurationError(
                    f"task index {i} out of range for a {self.n}-task set"
                )
        if len(key) > self.max_group_size:
            raise CapacityError(
                f"group of {len(key)} tasks exceeds the platform capacity "
                f"({self.max_group_size} buddy pairs)"
            )
        return key

    # ------------------------------------------------------------------
    def cost(self, group: Sequence[int]) -> float:
        """Expected pack makespan of ``group`` under Algorithm 1."""
        key = self._validate_group(group)
        cached = self._cost_cache.get(key)
        if cached is not None:
            return cached
        sigma = optimal_schedule(
            self.model, self.cluster.processors, indices=sorted(key)
        )
        value = expected_makespan(self.model, sigma)
        self._cost_cache[key] = value
        return value

    def total_cost(self, groups: Sequence[Sequence[int]]) -> float:
        """Sum of pack costs — packs execute sequentially."""
        return sum(self.cost(group) for group in groups)

    def sequential_load(self, group: Sequence[int]) -> float:
        """Surrogate load: total sequential time of the group."""
        return sum(self._sequential[i] for i in group)

    def sequential_time(self, i: int) -> float:
        """Sequential time of one task (sorting key for the heuristics)."""
        return self._sequential[i]

    def cache_info(self) -> Dict[str, int]:
        """Oracle memoisation statistics (diagnostics)."""
        return {"entries": len(self._cost_cache)}
