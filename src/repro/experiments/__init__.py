"""Experiment harness: scenarios, figure registry, runner, tables."""

from .comparison import PolicyComparison, compare_policies
from .config import SCALES, Scale, ScenarioConfig, get_scale
from .figures import (
    FIGURES,
    FigureResult,
    FigureSpec,
    TraceFigureResult,
    list_figures,
    run_figure,
)
from .parallel import run_scenario_parallel
from .runner import (
    FAULT_FREE_SERIES,
    FAULT_SERIES,
    ScenarioResult,
    Series,
    run_scenario,
    scenario_requests,
)
from .tables import render_figure, render_table, render_trace_figure

__all__ = [
    "SCALES",
    "Scale",
    "ScenarioConfig",
    "get_scale",
    "FIGURES",
    "FigureResult",
    "FigureSpec",
    "TraceFigureResult",
    "list_figures",
    "run_figure",
    "FAULT_FREE_SERIES",
    "FAULT_SERIES",
    "ScenarioResult",
    "Series",
    "run_scenario",
    "scenario_requests",
    "run_scenario_parallel",
    "render_figure",
    "render_table",
    "render_trace_figure",
    "PolicyComparison",
    "compare_policies",
]
