"""Replicated scenario execution and normalisation (Section 6.2).

The paper's protocol: run each heuristic ``x = 50`` times, average the
makespans, and normalise by the makespan in a fault context without
redistribution (the expected worst case).  Replicates are *paired*: for a
given replicate index every series sees the same workload draw and the
same per-processor failure times (common random numbers), which is what
makes per-point comparisons meaningful at modest replicate counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..engine import Executor, RunRequest, ensure_executor
from ..engine.cache import shared_cache
from ..exceptions import ConfigurationError
from ..resilience.expected_time import ExpectedTimeModel
from ..rng import derive_seed
from ..simulation import SimulationResult, Simulator
from ..tasks import Pack
from .config import ScenarioConfig

__all__ = [
    "Series",
    "ScenarioResult",
    "run_scenario",
    "scenario_requests",
    "FAULT_SERIES",
    "FAULT_FREE_SERIES",
]


@dataclass(frozen=True)
class Series:
    """One curve of a figure: a policy in a fault or fault-free context."""

    key: str
    label: str
    policy: str
    faults: bool = True

    def __post_init__(self) -> None:
        if not self.key:
            raise ConfigurationError("series key must be non-empty")


#: The six curves of Figs. 7, 8, 10-14.
FAULT_SERIES: tuple[Series, ...] = (
    Series("no-rc", "Fault context without RC", "no-redistribution", True),
    Series("ig-eg", "IteratedGreedy-EndGreedy", "ig-eg", True),
    Series("ig-el", "IteratedGreedy-EndLocal", "ig-el", True),
    Series("stf-eg", "ShortestTasksFirst-EndGreedy", "stf-eg", True),
    Series("stf-el", "ShortestTasksFirst-EndLocal", "stf-el", True),
    Series("ff-rc", "Fault-free context with RC (local)", "end-local", False),
)

#: The three curves of Figs. 5 and 6 (fault-free study).
FAULT_FREE_SERIES: tuple[Series, ...] = (
    Series("no-rc", "Without RC", "no-redistribution", False),
    Series("rc-greedy", "With RC (greedy)", "end-greedy", False),
    Series("rc-local", "With RC (local decisions)", "end-local", False),
)


@dataclass
class ScenarioResult:
    """All replicate makespans of one scenario, per series."""

    config: ScenarioConfig
    makespans: Dict[str, np.ndarray]
    results: Dict[str, List[SimulationResult]] = field(default_factory=dict)
    baseline_key: str = "no-rc"

    def mean(self, key: str) -> float:
        """Mean makespan of a series (seconds)."""
        return float(self.makespans[key].mean())

    def normalized(self, key: str) -> float:
        """Mean makespan divided by the baseline's mean makespan."""
        return self.mean(key) / self.mean(self.baseline_key)

    def normalized_row(self) -> Dict[str, float]:
        """Normalised value for every series."""
        return {key: self.normalized(key) for key in self.makespans}


def _replicate_seed(base_seed: int, replicate: int) -> int:
    """Stable derived seed for one replicate."""
    return derive_seed(base_seed, "replicate", replicate)


def _validate_series(series: Sequence[Series], baseline_key: str) -> List[str]:
    """Check key uniqueness and baseline membership; return the keys."""
    keys = [s.key for s in series]
    if len(set(keys)) != len(keys):
        raise ConfigurationError(f"duplicate series keys: {keys}")
    if baseline_key not in keys:
        raise ConfigurationError(
            f"baseline series {baseline_key!r} missing from {keys}"
        )
    return keys


def _replicate_workload(
    config: ScenarioConfig, rep_seed: int
) -> Tuple[Pack, ExpectedTimeModel]:
    """Memoised ``(pack, model)`` for one replicate draw.

    The draw is a pure function of ``(config, rep_seed)`` and the
    model's profile ring is history-independent, so sharing a cached
    workload across identical requests (the same scenario at several
    sweep points, repeated figures of one campaign) cannot change any
    result — see the determinism contract in :mod:`repro.engine`.
    """

    def build() -> Tuple[Pack, ExpectedTimeModel]:
        cluster = config.build_cluster()
        pack = config.build_pack(rep_seed)
        return pack, ExpectedTimeModel(pack, cluster)

    return shared_cache.get_or_build((config, rep_seed), build)


def _run_replicate(
    config: ScenarioConfig,
    series: Tuple[Series, ...],
    keep_results: bool,
    simulator_options: Optional[Dict[str, Any]] = None,
    *,
    seed: int,
) -> Tuple[Dict[str, float], Dict[str, SimulationResult]]:
    """Engine runner: one paired replicate — every series on one draw.

    One pack is drawn and one :class:`ExpectedTimeModel` built per
    replicate, then shared by all series (its profile cache is keyed by
    ``(task, quantised alpha)``, which is safe across policies).  Fault
    times depend only on the replicate seed, not on the policy.
    ``simulator_options`` are extra :class:`Simulator` knobs
    (``decision_kernel``, ``event_queue``) — implementation modes, all
    bit-identical by contract.
    """
    pack, model = _replicate_workload(config, seed)
    makespans: Dict[str, float] = {}
    results: Dict[str, SimulationResult] = {}
    for spec in series:
        result = Simulator(
            pack,
            model.cluster,
            spec.policy,
            seed=seed,
            inject_faults=spec.faults,
            model=model,
            **(simulator_options or {}),
        ).run()
        makespans[spec.key] = result.makespan
        if keep_results:
            results[spec.key] = result
    return makespans, results


def scenario_requests(
    config: ScenarioConfig,
    series: Sequence[Series],
    *,
    seed: int = 0,
    keep_results: bool = False,
    simulator_options: Optional[Dict[str, Any]] = None,
) -> List[RunRequest]:
    """The engine requests of one scenario: one per paired replicate."""
    series = tuple(series)
    return [
        RunRequest(
            fn=_run_replicate,
            payload=(config, series, keep_results, simulator_options),
            seed=_replicate_seed(seed, replicate),
            tag=replicate,
        )
        for replicate in range(config.replicates)
    ]


def run_scenario(
    config: ScenarioConfig,
    series: Sequence[Series] = FAULT_SERIES,
    *,
    seed: int = 0,
    baseline_key: str = "no-rc",
    keep_results: bool = False,
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    engine: Optional[str] = None,
    executor: Optional[Executor] = None,
    journal: Optional[Any] = None,
    simulator_options: Optional[Dict[str, Any]] = None,
    progress: Optional[Callable[[int, int], None]] = None,
) -> ScenarioResult:
    """Run every series of a scenario over paired replicates.

    Execution goes through the unified engine (:mod:`repro.engine`):
    each replicate becomes one :class:`~repro.engine.RunRequest` and
    the chosen executor maps them.  ``executor`` submits to a
    caller-owned executor (left open for further dispatches, e.g. the
    next sweep point); otherwise ``engine`` — or, failing that,
    ``workers`` — picks one: serial by default, a process pool when
    ``workers`` > 1.  The per-replicate seed derivation, replicate
    pairing and baseline normalisation are preserved exactly under
    every engine, so the returned makespan arrays are byte-identical
    to a serial run.  ``chunk_size`` bounds how many contiguous
    replicates one worker dispatch carries (default: ~4 chunks per
    worker).

    ``simulator_options`` forwards implementation knobs
    (``decision_kernel``, ``event_queue``) to every replicate's
    :class:`~repro.simulation.Simulator`.  ``progress`` switches the
    dispatch to :meth:`~repro.engine.Executor.map_stream` and is called
    as ``progress(done, total)`` after each completed chunk — the
    reassembled results stay byte-identical to a plain ``map``.

    ``journal`` (a :class:`~repro.engine.ResultJournal` or directory
    path) makes the run crash-resumable: chunks a previous campaign
    already finished are served from the journal instead of
    recomputed.  It only applies when this call creates the executor —
    a caller-owned ``executor`` carries its own journal.
    """
    keys = _validate_series(series, baseline_key)
    requests = scenario_requests(
        config,
        series,
        seed=seed,
        keep_results=keep_results,
        simulator_options=simulator_options,
    )
    with ensure_executor(
        executor,
        engine=engine,
        workers=workers,
        chunk_size=chunk_size,
        journal=journal,
    ) as active:
        if progress is None:
            outputs = active.map(requests)
        else:
            outputs: List[Any] = [None] * len(requests)
            done = 0
            for start, chunk_results in active.map_stream(requests):
                outputs[start:start + len(chunk_results)] = chunk_results
                done += len(chunk_results)
                progress(done, len(requests))

    makespans: Dict[str, List[float]] = {key: [] for key in keys}
    kept: Dict[str, List[SimulationResult]] = {key: [] for key in keys}
    for rep_makespans, rep_results in outputs:
        for key, value in rep_makespans.items():
            makespans[key].append(value)
        if keep_results:
            for key, value in rep_results.items():
                kept[key].append(value)

    return ScenarioResult(
        config=config,
        makespans={key: np.asarray(values) for key, values in makespans.items()},
        results=kept if keep_results else {},
        baseline_key=baseline_key,
    )
