"""Replicated scenario execution and normalisation (Section 6.2).

The paper's protocol: run each heuristic ``x = 50`` times, average the
makespans, and normalise by the makespan in a fault context without
redistribution (the expected worst case).  Replicates are *paired*: for a
given replicate index every series sees the same workload draw and the
same per-processor failure times (common random numbers), which is what
makes per-point comparisons meaningful at modest replicate counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..exceptions import ConfigurationError
from ..resilience.expected_time import ExpectedTimeModel
from ..rng import derive_seed_sequence
from ..simulation import SimulationResult, Simulator
from .config import ScenarioConfig

__all__ = [
    "Series",
    "ScenarioResult",
    "run_scenario",
    "FAULT_SERIES",
    "FAULT_FREE_SERIES",
]


@dataclass(frozen=True)
class Series:
    """One curve of a figure: a policy in a fault or fault-free context."""

    key: str
    label: str
    policy: str
    faults: bool = True

    def __post_init__(self) -> None:
        if not self.key:
            raise ConfigurationError("series key must be non-empty")


#: The six curves of Figs. 7, 8, 10-14.
FAULT_SERIES: tuple[Series, ...] = (
    Series("no-rc", "Fault context without RC", "no-redistribution", True),
    Series("ig-eg", "IteratedGreedy-EndGreedy", "ig-eg", True),
    Series("ig-el", "IteratedGreedy-EndLocal", "ig-el", True),
    Series("stf-eg", "ShortestTasksFirst-EndGreedy", "stf-eg", True),
    Series("stf-el", "ShortestTasksFirst-EndLocal", "stf-el", True),
    Series("ff-rc", "Fault-free context with RC (local)", "end-local", False),
)

#: The three curves of Figs. 5 and 6 (fault-free study).
FAULT_FREE_SERIES: tuple[Series, ...] = (
    Series("no-rc", "Without RC", "no-redistribution", False),
    Series("rc-greedy", "With RC (greedy)", "end-greedy", False),
    Series("rc-local", "With RC (local decisions)", "end-local", False),
)


@dataclass
class ScenarioResult:
    """All replicate makespans of one scenario, per series."""

    config: ScenarioConfig
    makespans: Dict[str, np.ndarray]
    results: Dict[str, List[SimulationResult]] = field(default_factory=dict)
    baseline_key: str = "no-rc"

    def mean(self, key: str) -> float:
        """Mean makespan of a series (seconds)."""
        return float(self.makespans[key].mean())

    def normalized(self, key: str) -> float:
        """Mean makespan divided by the baseline's mean makespan."""
        return self.mean(key) / self.mean(self.baseline_key)

    def normalized_row(self) -> Dict[str, float]:
        """Normalised value for every series."""
        return {key: self.normalized(key) for key in self.makespans}


def _replicate_seed(base_seed: int, replicate: int) -> int:
    """Stable derived seed for one replicate."""
    sequence = derive_seed_sequence(base_seed, "replicate", replicate)
    return int(sequence.generate_state(1, np.uint32)[0])


def _validate_series(series: Sequence[Series], baseline_key: str) -> List[str]:
    """Check key uniqueness and baseline membership; return the keys."""
    keys = [s.key for s in series]
    if len(set(keys)) != len(keys):
        raise ConfigurationError(f"duplicate series keys: {keys}")
    if baseline_key not in keys:
        raise ConfigurationError(
            f"baseline series {baseline_key!r} missing from {keys}"
        )
    return keys


def run_scenario(
    config: ScenarioConfig,
    series: Sequence[Series] = FAULT_SERIES,
    *,
    seed: int = 0,
    baseline_key: str = "no-rc",
    keep_results: bool = False,
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
) -> ScenarioResult:
    """Run every series of a scenario over paired replicates.

    For each replicate one pack is drawn and one
    :class:`ExpectedTimeModel` is built, then shared by all series (its
    profile cache is keyed by ``(task, quantised alpha)``, which is safe
    across policies).  Fault times depend only on the replicate seed,
    not on the policy.

    ``workers`` > 1 fans replicates out across a process pool (see
    :mod:`repro.experiments.parallel`); the per-replicate seed
    derivation, replicate pairing and baseline normalisation are
    preserved exactly, so the returned makespan arrays are byte-identical
    to a serial run.  ``chunk_size`` bounds how many contiguous
    replicates one worker dispatch carries (default: ~4 chunks per
    worker).
    """
    if workers is not None and workers > 1 and config.replicates > 1:
        from .parallel import run_scenario_parallel

        return run_scenario_parallel(
            config,
            series,
            seed=seed,
            baseline_key=baseline_key,
            keep_results=keep_results,
            workers=workers,
            chunk_size=chunk_size,
        )
    keys = _validate_series(series, baseline_key)
    makespans: Dict[str, List[float]] = {key: [] for key in keys}
    kept: Dict[str, List[SimulationResult]] = {key: [] for key in keys}
    cluster = config.build_cluster()

    for replicate in range(config.replicates):
        rep_seed = _replicate_seed(seed, replicate)
        pack = config.build_pack(rep_seed)
        model = ExpectedTimeModel(pack, cluster)
        for spec in series:
            simulator = Simulator(
                pack,
                cluster,
                spec.policy,
                seed=rep_seed,
                inject_faults=spec.faults,
                model=model,
            )
            result = simulator.run()
            makespans[spec.key].append(result.makespan)
            if keep_results:
                kept[spec.key].append(result)

    return ScenarioResult(
        config=config,
        makespans={key: np.asarray(values) for key, values in makespans.items()},
        results=kept if keep_results else {},
        baseline_key=baseline_key,
    )
