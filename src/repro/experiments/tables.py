"""ASCII / markdown rendering of figure data.

The paper's figures are line plots; in a text environment we print the
underlying series as tables — one row per sweep point, one column per
curve, values normalised by the no-redistribution fault-context makespan
exactly as in the paper.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from .figures import FigureResult, TraceFigureResult

__all__ = ["render_figure", "render_trace_figure", "render_table"]


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[str]],
) -> str:
    """Simple fixed-width table with a header rule."""
    columns = [list(column) for column in zip(headers, *rows)]
    widths = [max(len(cell) for cell in column) for column in columns]
    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))
    lines = [fmt(headers), fmt(["-" * width for width in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def render_figure(result: FigureResult, precision: int = 3) -> str:
    """Render a sweep figure as a normalised table (paper presentation)."""
    keys = result.series_keys()
    headers = [result.x_name] + [result.labels[key] for key in keys]
    rows: List[List[str]] = []
    for index, x in enumerate(result.x_values):
        row = [f"{x:g}"]
        row.extend(
            f"{result.normalized[key][index]:.{precision}f}" for key in keys
        )
        rows.append(row)
    header = f"{result.figure}: {result.title}\n"
    if result.descriptions:
        header += f"  [{result.descriptions[0]}" + (
            " ...]" if len(result.descriptions) > 1 else "]"
        ) + "\n"
    note = "\n(values normalised by the first series' mean makespan)"
    return header + render_table(headers, rows) + note


def render_trace_figure(result: TraceFigureResult, precision: int = 4) -> str:
    """Render Fig. 9: per-policy failure-time snapshots."""
    blocks = [f"{result.figure}: {result.title}"]
    if result.descriptions:
        blocks.append(f"  [{result.descriptions[0]}]")
    for key, label in result.labels.items():
        data = result.series[key]
        times = data["failure_times"]
        makespan = data["makespan"]
        std = data["sigma_std"]
        headers = ["failure date (s)", "makespan (s)", "stddev #procs"]
        rows = [
            [f"{t:.6g}", f"{m:.6g}", f"{s:.{precision}g}"]
            for t, m, s in zip(times, makespan, std)
        ]
        final = result.final_makespans[key]
        blocks.append(
            f"\n{label} (final makespan {final:.6g} s, "
            f"{len(times)} failures handled)\n"
            + (render_table(headers, rows) if rows else "  (no failures)")
        )
    return "\n".join(blocks)
