"""One-call policy comparisons on a fixed scenario.

The evaluation protocol of Section 6.2 — paired replicates, ratio
normalisation by the no-redistribution baseline — is needed by anyone
who wants to answer *"which policy should I run here?"*.  This module
packages it:

>>> from repro.experiments import compare_policies  # doctest: +SKIP
>>> outcome = compare_policies(config, policies=["ig-el", "stf-el"])

returns per-policy normalised means, bootstrap confidence intervals and
exact sign-test significance against the baseline, with a rendered
table.  Replicates are paired exactly as in
:func:`repro.experiments.runner.run_scenario`: every policy sees the
same workloads and the same failure times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..engine import Executor

from ..analysis import PairedComparison, paired_comparison
from ..core.policy import PAPER_POLICY_LABELS, POLICIES
from ..exceptions import ConfigurationError
from .config import ScenarioConfig
from .runner import Series, run_scenario
from .tables import render_table

__all__ = ["PolicyComparison", "compare_policies"]

#: The heuristic combinations of Section 6.2.
DEFAULT_POLICIES = ("ig-eg", "ig-el", "stf-eg", "stf-el")


@dataclass
class PolicyComparison:
    """Paired-replicate comparison of several policies vs a baseline."""

    config: ScenarioConfig
    baseline: str
    makespans: Dict[str, np.ndarray]
    comparisons: Dict[str, PairedComparison] = field(default_factory=dict)

    @property
    def policies(self) -> List[str]:
        """Compared policies (baseline excluded)."""
        return list(self.comparisons)

    def best_policy(self) -> str:
        """Policy with the smallest mean ratio vs the baseline."""
        return min(
            self.comparisons,
            key=lambda name: self.comparisons[name].mean_ratio,
        )

    def render(self) -> str:
        """Paper-style table: normalised mean, CI, wins, significance."""
        headers = ["policy", "ratio vs baseline", "95% CI", "wins", "sign-test p"]
        rows: List[List[str]] = [
            [self.baseline, "1.0000", "-", "-", "-"]
        ]
        for name, cmp in self.comparisons.items():
            rows.append(
                [
                    name,
                    f"{cmp.mean_ratio:.4f}",
                    f"[{cmp.ci_low:.4f}, {cmp.ci_high:.4f}]",
                    f"{cmp.wins}/{cmp.n}",
                    f"{cmp.p_value:.3g}" + (" *" if cmp.significant else ""),
                ]
            )
        title = (
            f"policy comparison vs {self.baseline!r} "
            f"({self.config.replicates} paired replicates; "
            f"{self.config.describe()})"
        )
        return title + "\n" + render_table(headers, rows)


def compare_policies(
    config: ScenarioConfig,
    *,
    policies: Sequence[str] = DEFAULT_POLICIES,
    baseline: str = "no-redistribution",
    faults: bool = True,
    seed: int = 0,
    bootstrap_seed: int = 0,
    workers: Optional[int] = None,
    engine: Optional[str] = None,
    executor: Optional["Executor"] = None,
) -> PolicyComparison:
    """Run a paired comparison of ``policies`` against ``baseline``.

    Parameters
    ----------
    config:
        The scenario (its ``replicates`` field sets the pairing depth;
        use at least ~5 for meaningful sign tests).
    policies:
        Candidate policy names (must be registered; baseline excluded
        automatically if listed).
    faults:
        ``False`` compares in the fault-free context.
    seed:
        Replicate seed (workloads + failure draws).
    workers, engine, executor:
        Execution engine selection, forwarded to
        :func:`~repro.experiments.runner.run_scenario`; the pairing and
        the resulting statistics are unchanged under every engine
        (byte-identical arrays).
    """
    candidates = [name for name in policies if name != baseline]
    if not candidates:
        raise ConfigurationError("at least one non-baseline policy is needed")
    for name in list(candidates) + [baseline]:
        if name not in POLICIES:
            known = ", ".join(sorted(POLICIES))
            raise ConfigurationError(
                f"unknown policy {name!r}; known policies: {known}"
            )
    series = [Series("baseline", baseline, baseline, faults)] + [
        Series(name, PAPER_POLICY_LABELS.get(name, name), name, faults)
        for name in candidates
    ]
    outcome = run_scenario(
        config,
        series,
        seed=seed,
        baseline_key="baseline",
        workers=workers,
        engine=engine,
        executor=executor,
    )
    baseline_makespans = outcome.makespans["baseline"]
    comparisons = {
        name: paired_comparison(
            outcome.makespans[name], baseline_makespans, seed=bootstrap_seed
        )
        for name in candidates
    }
    makespans = {baseline: baseline_makespans}
    makespans.update({name: outcome.makespans[name] for name in candidates})
    return PolicyComparison(
        config=config,
        baseline=baseline,
        makespans=makespans,
        comparisons=comparisons,
    )
