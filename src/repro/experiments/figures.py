"""Registry of the paper's evaluation figures (Section 6.2).

Every figure of the evaluation maps to a :class:`FigureSpec` that knows
its parameter sweep, its curves, and its normalisation baseline.
``run_figure("fig7", scale="small")`` reproduces the figure's data at any
scaling preset and returns a :class:`FigureResult` whose rows can be
rendered with :mod:`repro.experiments.tables`.

Figure 9 is special (a single traced run rather than an averaged sweep)
and returns a :class:`TraceFigureResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..engine import Executor

from ..exceptions import ConfigurationError
from ..resilience.expected_time import ExpectedTimeModel
from ..simulation import Simulator
from ..tasks import PAPER_M_INF_HETEROGENEOUS
from .config import ScenarioConfig, Scale, get_scale
from .runner import (
    FAULT_FREE_SERIES,
    FAULT_SERIES,
    ScenarioResult,
    Series,
    run_scenario,
    _replicate_seed,
)

__all__ = [
    "FigureSpec",
    "FigureResult",
    "TraceFigureResult",
    "FIGURES",
    "run_figure",
    "list_figures",
]

MTBF_SWEEP_YEARS: tuple[float, ...] = (5, 15, 25, 35, 45, 55, 65, 75, 85, 95, 105, 115, 125)


@dataclass
class FigureResult:
    """Data behind one sweep figure."""

    figure: str
    title: str
    x_name: str
    x_values: List[float]
    labels: Dict[str, str]
    normalized: Dict[str, List[float]]
    means: Dict[str, List[float]]
    descriptions: List[str] = field(default_factory=list)

    def series_keys(self) -> List[str]:
        return list(self.normalized)

    def row(self, index: int) -> Dict[str, float]:
        """Normalised values of every series at one sweep point."""
        return {key: self.normalized[key][index] for key in self.normalized}


@dataclass
class TraceFigureResult:
    """Data behind Fig. 9: per-policy single-run failure snapshots."""

    figure: str
    title: str
    labels: Dict[str, str]
    #: per series: arrays "failure_times", "makespan", "sigma_std"
    series: Dict[str, Dict[str, np.ndarray]]
    final_makespans: Dict[str, float]
    descriptions: List[str] = field(default_factory=list)


@dataclass(frozen=True)
class FigureSpec:
    """Declarative description of one paper figure."""

    name: str
    title: str
    x_name: str
    base: ScenarioConfig
    sweep: Tuple[float, ...]
    #: applies one sweep value to the base config
    vary: Callable[[ScenarioConfig, float], ScenarioConfig]
    series: Tuple[Series, ...] = FAULT_SERIES
    #: reads the displayed x back from the *scaled* config; None keeps the
    #: nominal sweep value (used for MTBF / cost / fraction sweeps)
    x_from_config: Optional[Callable[[ScenarioConfig], float]] = None
    kind: str = "sweep"  #: "sweep" or "trace"

    def points(self, scale: Scale) -> List[Tuple[float, ScenarioConfig]]:
        """(x, scaled config) pairs for this figure at ``scale``."""
        values = scale.subsample(list(self.sweep))
        points = []
        for value in values:
            config = scale.apply(self.vary(self.base, value))
            x = value if self.x_from_config is None else self.x_from_config(config)
            points.append((float(x), config))
        return points


# ---------------------------------------------------------------------------
# sweep helpers

def _vary_p(config: ScenarioConfig, p: float) -> ScenarioConfig:
    return replace(config, p=int(p))


def _vary_n(config: ScenarioConfig, n: float) -> ScenarioConfig:
    return replace(config, n=int(n))


def _vary_mtbf(config: ScenarioConfig, years: float) -> ScenarioConfig:
    return replace(config, mtbf_years=float(years))


def _vary_cost(config: ScenarioConfig, c: float) -> ScenarioConfig:
    return replace(config, checkpoint_unit_cost=float(c))


def _vary_seq_fraction(config: ScenarioConfig, f: float) -> ScenarioConfig:
    return replace(config, seq_fraction=float(f))


def _mtbf_figure(name: str, title: str, p: int, cost: float = 1.0) -> FigureSpec:
    return FigureSpec(
        name=name,
        title=title,
        x_name="MTBF (years)",
        base=ScenarioConfig(n=100, p=p, checkpoint_unit_cost=cost),
        sweep=MTBF_SWEEP_YEARS,
        vary=_vary_mtbf,
    )


def _build_registry() -> Dict[str, FigureSpec]:
    homogeneous = ScenarioConfig(n=100, p=1000)
    heterogeneous = replace(homogeneous, m_inf=PAPER_M_INF_HETEROGENEOUS)
    figures = [
        FigureSpec(
            name="fig5a",
            title="Fault-free redistribution, n=100, homogeneous sizes",
            x_name="#procs",
            base=homogeneous,
            sweep=tuple(range(200, 2001, 200)),
            vary=_vary_p,
            series=FAULT_FREE_SERIES,
            x_from_config=lambda cfg: cfg.p,
        ),
        FigureSpec(
            name="fig5b",
            title="Fault-free redistribution, n=100, heterogeneous sizes",
            x_name="#procs",
            base=heterogeneous,
            sweep=tuple(range(200, 2001, 200)),
            vary=_vary_p,
            series=FAULT_FREE_SERIES,
            x_from_config=lambda cfg: cfg.p,
        ),
        FigureSpec(
            name="fig6a",
            title="Fault-free redistribution, n=1000, homogeneous sizes",
            x_name="#procs",
            base=replace(homogeneous, n=1000, p=2000),
            sweep=tuple(range(2000, 5001, 500)),
            vary=_vary_p,
            series=FAULT_FREE_SERIES,
            x_from_config=lambda cfg: cfg.p,
        ),
        FigureSpec(
            name="fig6b",
            title="Fault-free redistribution, n=1000, heterogeneous sizes",
            x_name="#procs",
            base=replace(heterogeneous, n=1000, p=2000),
            sweep=tuple(range(2000, 5001, 500)),
            vary=_vary_p,
            series=FAULT_FREE_SERIES,
            x_from_config=lambda cfg: cfg.p,
        ),
        FigureSpec(
            name="fig7",
            title="Impact of the number of tasks n (p=5000)",
            x_name="#tasks",
            base=replace(homogeneous, p=5000),
            sweep=tuple(range(100, 1001, 100)),
            vary=_vary_n,
            x_from_config=lambda cfg: cfg.n,
        ),
        FigureSpec(
            name="fig8",
            title="Impact of the number of processors p (n=100)",
            x_name="#procs",
            base=homogeneous,
            sweep=(200,) + tuple(range(500, 5001, 500)),
            vary=_vary_p,
            x_from_config=lambda cfg: cfg.p,
        ),
        FigureSpec(
            name="fig9",
            title="Single-run heuristic behaviour (n=100, p=1000, MTBF 50y)",
            x_name="failure date (s)",
            base=replace(homogeneous, mtbf_years=50.0, replicates=1),
            sweep=(),
            vary=lambda cfg, _: cfg,
            kind="trace",
        ),
        _mtbf_figure("fig10", "Impact of MTBF (n=100, p=1000)", p=1000),
        _mtbf_figure("fig11", "Impact of MTBF (n=100, p=5000)", p=5000),
        FigureSpec(
            name="fig12",
            title="Impact of the checkpointing cost (n=100, p=1000)",
            x_name="checkpoint unit cost c",
            base=homogeneous,
            sweep=(0.01, 0.03, 0.1, 0.3, 1.0),
            vary=_vary_cost,
        ),
        _mtbf_figure(
            "fig13a", "MTBF sweep at checkpoint cost c=1", p=1000, cost=1.0
        ),
        _mtbf_figure(
            "fig13b", "MTBF sweep at checkpoint cost c=0.1", p=1000, cost=0.1
        ),
        _mtbf_figure(
            "fig13c", "MTBF sweep at checkpoint cost c=0.01", p=1000, cost=0.01
        ),
        FigureSpec(
            name="fig14",
            title="Impact of the sequential fraction f (n=100, p=1000)",
            x_name="sequential fraction f",
            base=homogeneous,
            sweep=(0.0, 0.1, 0.2, 0.3, 0.4, 0.5),
            vary=_vary_seq_fraction,
        ),
    ]
    return {spec.name: spec for spec in figures}


#: All reproducible figures, keyed by name ("fig5a" ... "fig14").
FIGURES: Dict[str, FigureSpec] = _build_registry()


def list_figures() -> List[str]:
    """Names of every registered figure."""
    return sorted(FIGURES)


def run_figure(
    name: str,
    scale: str | Scale = "small",
    *,
    seed: int = 0,
    workers: Optional[int] = None,
    engine: Optional[str] = None,
    executor: Optional["Executor"] = None,
    simulator_options: Optional[Dict[str, Any]] = None,
    progress: Optional[Callable[[str, float, int, int], None]] = None,
) -> FigureResult | TraceFigureResult:
    """Reproduce one figure's data at the requested scale.

    Sweep points submit through one executor for the whole figure
    (:mod:`repro.engine`): ``executor`` uses a caller-owned one (left
    open, so a campaign can run many figures on the same warm pool);
    otherwise ``engine`` picks one, defaulting to ``"persistent"`` when
    ``workers`` > 1 so pool start-up is paid once per figure, not once
    per sweep point.  Every engine produces byte-identical series to a
    serial run.  ``simulator_options`` forwards implementation knobs
    (``decision_kernel``, ``event_queue``) to every simulation.
    ``progress`` streams the sweep: it is called as ``progress(figure,
    x, done, total)`` while a point's replicates complete (the CLI
    wires it under ``--verbose``).  Trace figures (Fig. 9) are a single
    replicate and ignore the engine and progress knobs.
    """
    try:
        spec = FIGURES[name]
    except KeyError:
        known = ", ".join(list_figures())
        raise ConfigurationError(
            f"unknown figure {name!r}; known figures: {known}"
        ) from None
    scale_obj = get_scale(scale) if isinstance(scale, str) else scale
    if spec.kind == "trace":
        return _run_trace_figure(spec, scale_obj, seed, simulator_options)
    return _run_sweep_figure(
        spec, scale_obj, seed, workers, engine, executor,
        simulator_options, progress,
    )


def _run_sweep_figure(
    spec: FigureSpec,
    scale: Scale,
    seed: int,
    workers: Optional[int] = None,
    engine: Optional[str] = None,
    executor: Optional["Executor"] = None,
    simulator_options: Optional[Dict[str, Any]] = None,
    progress: Optional[Callable[[str, float, int, int], None]] = None,
) -> FigureResult:
    from ..engine import ensure_executor

    labels = {s.key: s.label for s in spec.series}
    x_values: List[float] = []
    normalized: Dict[str, List[float]] = {s.key: [] for s in spec.series}
    means: Dict[str, List[float]] = {s.key: [] for s in spec.series}
    descriptions: List[str] = []
    with ensure_executor(
        executor, engine=engine, workers=workers, pooled_default="persistent"
    ) as active:
        for x, config in spec.points(scale):
            point_progress = None
            if progress is not None:
                def point_progress(
                    done: int, total: int, _x: float = x
                ) -> None:
                    progress(spec.name, _x, done, total)

            outcome = run_scenario(
                config,
                spec.series,
                seed=seed,
                executor=active,
                simulator_options=simulator_options,
                progress=point_progress,
            )
            x_values.append(x)
            descriptions.append(config.describe())
            for key in normalized:
                normalized[key].append(outcome.normalized(key))
                means[key].append(outcome.mean(key))
    return FigureResult(
        figure=spec.name,
        title=spec.title,
        x_name=spec.x_name,
        x_values=x_values,
        labels=labels,
        normalized=normalized,
        means=means,
        descriptions=descriptions,
    )


#: The three single-run curves of Fig. 9 (paper uses the EndLocal variants).
TRACE_SERIES: tuple[Series, ...] = (
    Series("no-rc", "No redistribution", "no-redistribution", True),
    Series("ig", "Iterated greedy", "ig-el", True),
    Series("stf", "Shortest tasks first", "stf-el", True),
)


def _run_trace_figure(
    spec: FigureSpec,
    scale: Scale,
    seed: int,
    simulator_options: Optional[Dict[str, Any]] = None,
) -> TraceFigureResult:
    config = scale.apply(spec.base)
    cluster = config.build_cluster()
    rep_seed = _replicate_seed(seed, 0)
    pack = config.build_pack(rep_seed)
    model = ExpectedTimeModel(pack, cluster)
    series_data: Dict[str, Dict[str, np.ndarray]] = {}
    finals: Dict[str, float] = {}
    for s in TRACE_SERIES:
        simulator = Simulator(
            pack,
            cluster,
            s.policy,
            seed=rep_seed,
            inject_faults=True,
            model=model,
            record_trace=True,
            **(simulator_options or {}),
        )
        result = simulator.run()
        assert result.trace is not None
        series_data[s.key] = result.trace.as_arrays()
        finals[s.key] = result.makespan
    return TraceFigureResult(
        figure=spec.name,
        title=spec.title,
        labels={s.key: s.label for s in TRACE_SERIES},
        series=series_data,
        final_makespans=finals,
        descriptions=[config.describe()],
    )
