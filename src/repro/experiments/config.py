"""Experiment scenarios and scaling presets.

A :class:`ScenarioConfig` captures every knob of Section 6.1 with the
paper's defaults.  Because the paper's full-scale runs (up to n=1000,
p=5000, 50 replicates) take minutes in pure Python, a :class:`Scale`
preset can shrink a scenario while preserving its *shape*: task count,
processor count and problem sizes shrink together, and the MTBF shrinks
proportionally to task duration and platform size so the expected number
of failures per run is preserved.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from ..cluster import Cluster, DEFAULT_DOWNTIME
from ..exceptions import ConfigurationError
from ..tasks import (
    PAPER_M_INF,
    PAPER_M_SUP,
    Pack,
    PaperSyntheticProfile,
    WorkloadGenerator,
)

__all__ = ["ScenarioConfig", "Scale", "SCALES", "get_scale"]


@dataclass(frozen=True)
class ScenarioConfig:
    """One simulation scenario (Section 6.1 parameters).

    Attributes
    ----------
    n, p:
        Pack size and platform size.
    m_inf, m_sup:
        Uniform task-size bounds.
    checkpoint_unit_cost:
        ``c`` in ``C_i = c * m_i`` (Figs. 12-13 sweep it).
    seq_fraction:
        ``f`` of Eq. (10) (Fig. 14 sweeps it).
    mtbf_years:
        Per-processor MTBF (Figs. 10, 11, 13 sweep it).
    downtime:
        Platform downtime ``D`` in seconds.
    replicates:
        Runs averaged per data point (paper: 50).
    """

    n: int = 100
    p: int = 1000
    m_inf: float = PAPER_M_INF
    m_sup: float = PAPER_M_SUP
    checkpoint_unit_cost: float = 1.0
    seq_fraction: float = 0.08
    mtbf_years: float = 100.0
    downtime: float = DEFAULT_DOWNTIME
    replicates: int = 50

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ConfigurationError(f"n must be >= 1, got {self.n}")
        if self.p < 2 * self.n:
            raise ConfigurationError(
                f"p must be >= 2n (buddy pairs): n={self.n}, p={self.p}"
            )
        if self.replicates < 1:
            raise ConfigurationError("replicates must be >= 1")
        if not 0.0 <= self.seq_fraction <= 1.0:
            raise ConfigurationError("seq_fraction must be in [0, 1]")
        if self.mtbf_years <= 0:
            raise ConfigurationError("mtbf_years must be positive")

    # -- builders -----------------------------------------------------------
    def build_cluster(self) -> Cluster:
        """The platform for this scenario."""
        return Cluster.with_mtbf_years(self.p, self.mtbf_years, self.downtime)

    def build_pack(self, seed: int) -> Pack:
        """Draw the workload for one replicate."""
        generator = WorkloadGenerator(
            m_inf=self.m_inf,
            m_sup=self.m_sup,
            checkpoint_unit_cost=self.checkpoint_unit_cost,
            profile=PaperSyntheticProfile(seq_fraction=self.seq_fraction),
        )
        return generator.generate(self.n, seed=seed)

    def describe(self) -> str:
        """Compact parameter string for tables and logs."""
        return (
            f"n={self.n} p={self.p} m=[{self.m_inf:g},{self.m_sup:g}] "
            f"c={self.checkpoint_unit_cost:g} f={self.seq_fraction:g} "
            f"mtbf={self.mtbf_years:g}y reps={self.replicates}"
        )


def _even(value: float, minimum: int = 2) -> int:
    """Round to the nearest even integer >= minimum."""
    candidate = max(minimum, int(round(value / 2.0)) * 2)
    return candidate


@dataclass(frozen=True)
class Scale:
    """Shrinks a paper-scale scenario while preserving its shape.

    ``size_factor`` scales the problem sizes; the MTBF is rescaled by
    ``(duration ratio) * (processor ratio)`` so the expected failure count
    per run stays comparable to the paper's (see DESIGN.md).
    """

    name: str
    task_factor: float = 1.0
    proc_factor: float = 1.0
    size_factor: float = 1.0
    replicates: int = 50
    sweep_points: Optional[int] = None

    def apply(self, config: ScenarioConfig) -> ScenarioConfig:
        """Scaled copy of ``config``."""
        if self.name == "paper":
            return replace(config, replicates=self.replicates)
        n = max(3, int(round(config.n * self.task_factor)))
        p = _even(config.p * self.proc_factor, minimum=2 * n + 2)
        m_inf = max(64.0, config.m_inf * self.size_factor)
        m_sup = max(m_inf, config.m_sup * self.size_factor)
        duration_ratio = (m_sup * math.log2(m_sup)) / (
            config.m_sup * math.log2(config.m_sup)
        )
        # Use the preset's nominal processor factor — NOT the per-config
        # ratio — so that sweeps over p keep the paper's "more processors,
        # more failures" physics while the absolute failure count per run
        # stays comparable to the paper's.
        mtbf_years = config.mtbf_years * duration_ratio * self.proc_factor
        return replace(
            config,
            n=n,
            p=p,
            m_inf=m_inf,
            m_sup=m_sup,
            mtbf_years=mtbf_years,
            replicates=self.replicates,
        )

    def subsample(self, values: list) -> list:
        """Keep at most ``sweep_points`` evenly spaced sweep values."""
        if self.sweep_points is None or len(values) <= self.sweep_points:
            return list(values)
        if self.sweep_points == 1:
            return [values[-1]]
        step = (len(values) - 1) / (self.sweep_points - 1)
        picked = [values[int(round(i * step))] for i in range(self.sweep_points)]
        seen: list = []
        for value in picked:
            if value not in seen:
                seen.append(value)
        return seen


#: Built-in scaling presets.
SCALES: Dict[str, Scale] = {
    "paper": Scale("paper", replicates=50),
    "small": Scale(
        "small",
        task_factor=0.2,
        proc_factor=0.2,
        size_factor=0.01,
        replicates=5,
        sweep_points=5,
    ),
    "tiny": Scale(
        "tiny",
        task_factor=0.08,
        proc_factor=0.08,
        size_factor=0.004,
        replicates=2,
        sweep_points=3,
    ),
}


def get_scale(name: str) -> Scale:
    """Look up a scaling preset by name."""
    try:
        return SCALES[name]
    except KeyError:
        known = ", ".join(sorted(SCALES))
        raise ConfigurationError(
            f"unknown scale {name!r}; known scales: {known}"
        ) from None
