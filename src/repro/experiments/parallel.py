"""Deprecated: the process-pool replicate engine moved to :mod:`repro.engine`.

PR 1 introduced this module as a bespoke replicate fan-out for
:func:`repro.experiments.runner.run_scenario`.  The fan-out now lives in
the unified execution engine — :class:`repro.engine.PoolExecutor` for
the one-shot pool, :class:`repro.engine.PersistentPoolExecutor` for
campaign-lifetime pools — and every public name here is a thin shim kept
so external callers keep working:

* :func:`run_scenario_parallel` forwards to
  ``run_scenario(..., engine="pool")`` (byte-identical results);
* :func:`default_chunk_size` re-exports
  :func:`repro.engine.default_chunk_size`.

Both emit a :class:`DeprecationWarning`; migrate to
``run_scenario(..., engine=...)`` or to :mod:`repro.engine` directly.
"""

from __future__ import annotations

import warnings
from typing import Optional, Sequence

from ..engine import default_chunk_size as _engine_default_chunk_size
from ..exceptions import ConfigurationError
from .config import ScenarioConfig
from .runner import ScenarioResult, Series, run_scenario

__all__ = ["run_scenario_parallel", "default_chunk_size"]


def default_chunk_size(replicates: int, workers: int) -> int:
    """Deprecated alias of :func:`repro.engine.default_chunk_size`."""
    warnings.warn(
        "repro.experiments.parallel.default_chunk_size moved to "
        "repro.engine.default_chunk_size",
        DeprecationWarning,
        stacklevel=2,
    )
    return _engine_default_chunk_size(replicates, workers)


def run_scenario_parallel(
    config: ScenarioConfig,
    series: Sequence[Series],
    *,
    seed: int = 0,
    baseline_key: str = "no-rc",
    keep_results: bool = False,
    workers: int = 2,
    chunk_size: Optional[int] = None,
) -> ScenarioResult:
    """Deprecated alias of ``run_scenario(..., engine="pool")``.

    Produces byte-identical makespan arrays to the serial runner for the
    same ``(config, series, seed)`` — the guarantee is now the engine's
    RunRequest determinism contract (see :mod:`repro.engine`).
    """
    warnings.warn(
        "repro.experiments.parallel.run_scenario_parallel is deprecated; "
        'use repro.experiments.run_scenario(..., engine="pool", workers=N) '
        "or submit RunRequests to a repro.engine executor",
        DeprecationWarning,
        stacklevel=2,
    )
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    return run_scenario(
        config,
        series,
        seed=seed,
        baseline_key=baseline_key,
        keep_results=keep_results,
        workers=workers,
        chunk_size=chunk_size,
        engine="pool",
    )
