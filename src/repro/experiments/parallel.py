"""Process-pool scenario engine: replicate fan-out across workers.

``run_scenario(..., workers=N)`` delegates here.  The paper's protocol
(Section 6.2) averages 50 paired replicates per data point; replicates
are mutually independent — only the *pairing* (every series of one
replicate shares a workload draw and the same failure times) must be
preserved.  The engine therefore fans replicates out across a process
pool in contiguous chunks while keeping the serial runner's semantics
exactly:

* per-replicate seeds derive from the master seed with the same
  ``derive_seed_sequence(seed, "replicate", r)`` recipe, independent of
  which worker executes the replicate;
* each replicate draws one pack and builds one
  :class:`~repro.resilience.expected_time.ExpectedTimeModel`, shared by
  every series of that replicate (common random numbers, warm profile
  cache) — exactly as in the serial loop;
* each worker builds the cluster once per chunk and reuses it across
  the chunk's replicates;
* results are re-assembled in replicate order, so the makespan arrays —
  and hence every normalised figure series — are byte-identical to a
  serial run.

Chunked dispatch bounds the pickling overhead: with ``R`` replicates and
``N`` workers the default chunk size is ``ceil(R / (4 N))``, giving each
worker ~4 chunks to smooth out load imbalance between replicates.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ConfigurationError
from ..resilience.expected_time import ExpectedTimeModel
from ..simulation import SimulationResult, Simulator
from .config import ScenarioConfig
from .runner import ScenarioResult, Series, _replicate_seed, _validate_series

__all__ = ["run_scenario_parallel", "default_chunk_size"]

#: One unit of worker input: (replicate index, derived replicate seed).
_ReplicateJob = Tuple[int, int]


def default_chunk_size(replicates: int, workers: int) -> int:
    """Contiguous replicates per dispatch unit (~4 chunks per worker)."""
    return max(1, math.ceil(replicates / (4 * workers)))


def _run_chunk(
    config: ScenarioConfig,
    series: Tuple[Series, ...],
    chunk: Tuple[_ReplicateJob, ...],
    keep_results: bool,
) -> List[Tuple[int, Dict[str, float], Dict[str, SimulationResult]]]:
    """Execute one chunk of replicates (runs inside a worker process).

    Must stay module-level so it pickles under every multiprocessing
    start method.
    """
    cluster = config.build_cluster()
    out = []
    for replicate, rep_seed in chunk:
        pack = config.build_pack(rep_seed)
        model = ExpectedTimeModel(pack, cluster)
        makespans: Dict[str, float] = {}
        results: Dict[str, SimulationResult] = {}
        for spec in series:
            result = Simulator(
                pack,
                cluster,
                spec.policy,
                seed=rep_seed,
                inject_faults=spec.faults,
                model=model,
            ).run()
            makespans[spec.key] = result.makespan
            if keep_results:
                results[spec.key] = result
        out.append((replicate, makespans, results))
    return out


def run_scenario_parallel(
    config: ScenarioConfig,
    series: Sequence[Series],
    *,
    seed: int = 0,
    baseline_key: str = "no-rc",
    keep_results: bool = False,
    workers: int = 2,
    chunk_size: Optional[int] = None,
) -> ScenarioResult:
    """Parallel drop-in for :func:`repro.experiments.runner.run_scenario`.

    Produces byte-identical makespan arrays to the serial runner for the
    same ``(config, series, seed)`` — see the module docstring for why.
    """
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    _validate_series(series, baseline_key)
    series = tuple(series)
    jobs: List[_ReplicateJob] = [
        (replicate, _replicate_seed(seed, replicate))
        for replicate in range(config.replicates)
    ]
    size = (
        default_chunk_size(len(jobs), workers)
        if chunk_size is None
        else max(1, int(chunk_size))
    )
    chunks = [
        tuple(jobs[start:start + size]) for start in range(0, len(jobs), size)
    ]

    if workers == 1 or len(chunks) == 1:
        # Nothing to fan out; skip the pool (and its fork cost) entirely.
        chunk_outputs = [
            _run_chunk(config, series, chunk, keep_results)
            for chunk in chunks
        ]
    else:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=workers) as pool:
            chunk_outputs = list(
                pool.map(
                    _run_chunk,
                    (config,) * len(chunks),
                    (series,) * len(chunks),
                    chunks,
                    (keep_results,) * len(chunks),
                )
            )

    by_replicate = sorted(
        (item for chunk in chunk_outputs for item in chunk),
        key=lambda item: item[0],
    )
    makespans: Dict[str, List[float]] = {spec.key: [] for spec in series}
    kept: Dict[str, List[SimulationResult]] = {spec.key: [] for spec in series}
    for _, rep_makespans, rep_results in by_replicate:
        for key, value in rep_makespans.items():
            makespans[key].append(value)
        if keep_results:
            for key, value in rep_results.items():
                kept[key].append(value)

    return ScenarioResult(
        config=config,
        makespans={key: np.asarray(values) for key, values in makespans.items()},
        results=kept if keep_results else {},
        baseline_key=baseline_key,
    )
