"""Exception hierarchy for :mod:`repro`.

All library errors derive from :class:`ReproError` so downstream users can
catch a single base class.  Errors raised during input validation use
:class:`ConfigurationError`; violations of platform capacity (more
processors requested than exist, odd allocations, ...) use
:class:`CapacityError`; inconsistencies detected while a simulation is
running use :class:`SimulationError`.

Run-fabric failures (:mod:`repro.engine`) carry a structured taxonomy
under :class:`EngineError` that the retry layer dispatches on:

* :class:`TransientEngineError` — the attempt failed but a retry may
  succeed (broker I/O hiccup, worker crash, truncated result payload).
  ``OSError`` raised by broker operations is treated the same way.
* :class:`PermanentEngineError` — retrying cannot help (payload version
  mismatch, misconfigured fabric); raised to the caller immediately.
* :class:`PoisonChunkError` — a chunk exhausted its
  :class:`~repro.engine.retry.RetryPolicy` attempts; in the queue
  engine the chunk moves to the broker's dead-letter spool and the
  error (with every remote traceback) is raised only after the rest of
  the dispatch completed.
"""

from __future__ import annotations

from typing import Sequence, Tuple

__all__ = [
    "ReproError",
    "ConfigurationError",
    "CapacityError",
    "SimulationError",
    "EngineError",
    "TransientEngineError",
    "PermanentEngineError",
    "PoisonChunkError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError, ValueError):
    """Invalid user-supplied parameter (negative sizes, bad sweeps, ...)."""


class CapacityError(ReproError, ValueError):
    """A processor-allocation invariant was violated.

    The paper requires every running task to hold an even number of
    processors (buddy checkpointing, Section 3.1), at least two, and the
    pack-wide total to stay within the platform size ``p``.
    """


class SimulationError(ReproError, RuntimeError):
    """Internal inconsistency detected by the discrete-event simulator."""


class EngineError(ReproError, RuntimeError):
    """Base class for run-fabric (:mod:`repro.engine`) failures."""


class TransientEngineError(EngineError):
    """A retryable fabric failure: the same work may succeed if re-run.

    Raised for broker I/O hiccups, corrupted/truncated result payloads
    and injected chaos faults; runner functions may also raise it to
    request a retry of their request.  The retry layer
    (:mod:`repro.engine.retry`) classifies plain ``OSError`` the same
    way, so spool-level failures need no wrapping.
    """


class PermanentEngineError(EngineError):
    """A fabric failure no retry can fix (version skew, bad payloads)."""


class PoisonChunkError(EngineError):
    """A chunk kept failing until its retry budget ran out.

    Attributes
    ----------
    chunks:
        ``(task_id, attempts, traceback_text)`` triples, one per
        dead-lettered chunk (empty for in-process executors, which
        raise on the first exhausted chunk instead of quarantining).
    """

    def __init__(
        self,
        message: str,
        chunks: Sequence[Tuple[str, int, str]] = (),
    ) -> None:
        super().__init__(message)
        self.chunks: Tuple[Tuple[str, int, str], ...] = tuple(chunks)

    def __reduce__(self):
        return (type(self), (self.args[0], self.chunks))
