"""Exception hierarchy for :mod:`repro`.

All library errors derive from :class:`ReproError` so downstream users can
catch a single base class.  Errors raised during input validation use
:class:`ConfigurationError`; violations of platform capacity (more
processors requested than exist, odd allocations, ...) use
:class:`CapacityError`; inconsistencies detected while a simulation is
running use :class:`SimulationError`.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "CapacityError",
    "SimulationError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError, ValueError):
    """Invalid user-supplied parameter (negative sizes, bad sweeps, ...)."""


class CapacityError(ReproError, ValueError):
    """A processor-allocation invariant was violated.

    The paper requires every running task to hold an even number of
    processors (buddy checkpointing, Section 3.1), at least two, and the
    pack-wide total to stay within the platform size ``p``.
    """


class SimulationError(ReproError, RuntimeError):
    """Internal inconsistency detected by the discrete-event simulator."""
