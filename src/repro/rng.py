"""Deterministic random-number stream management.

Experiments need *paired* randomness: for one replicate, every policy must
see the same workload draw and the same per-processor failure times
(common random numbers), while different replicates must be independent.
We derive independent :class:`numpy.random.Generator` streams from a master
seed plus a tuple of string/int keys using :class:`numpy.random.SeedSequence`
entropy composition, which gives stable, collision-resistant substreams.
"""

from __future__ import annotations

from typing import Iterable, Union

import numpy as np

__all__ = ["derive_seed_sequence", "derive_seed", "derive_rng", "spawn_rngs"]

Key = Union[int, str]


def _key_to_ints(key: Key) -> tuple[int, ...]:
    """Map a key to a tuple of uint32-sized integers for SeedSequence."""
    if isinstance(key, bool):  # bool is an int subclass; reject explicitly
        raise TypeError("boolean keys are ambiguous; use int or str")
    if isinstance(key, int):
        if key < 0:
            # SeedSequence entropy must be non-negative; fold the sign in.
            return (1, abs(key))
        return (0, key)
    if isinstance(key, str):
        # Stable (non-PYTHONHASHSEED) digest of the string.
        digest = np.frombuffer(
            key.encode("utf-8").ljust(4, b"\0"), dtype=np.uint8
        )
        acc = 2166136261
        for byte in digest:
            acc = ((acc ^ int(byte)) * 16777619) % (2**32)
        return (2, acc, len(key))
    raise TypeError(f"unsupported RNG key type: {type(key)!r}")


def derive_seed_sequence(seed: int, *keys: Key) -> np.random.SeedSequence:
    """Build a :class:`~numpy.random.SeedSequence` for ``seed`` and ``keys``.

    The same ``(seed, keys)`` pair always yields the same stream; any
    change to any component yields a statistically independent stream.
    """
    entropy: list[int] = [int(seed)]
    for key in keys:
        entropy.extend(_key_to_ints(key))
    return np.random.SeedSequence(entropy)


def derive_seed(seed: int, *keys: Key) -> int:
    """Collapse ``(seed, keys)`` to one stable uint32-ranged integer seed.

    The standard recipe for handing a derived substream to a component
    that takes a plain integer seed (replicates, campaign fault draws,
    sampling chunks): stable across processes and platforms.
    """
    sequence = derive_seed_sequence(seed, *keys)
    return int(sequence.generate_state(1, np.uint32)[0])


def derive_rng(seed: int, *keys: Key) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` keyed by ``(seed, *keys)``."""
    return np.random.default_rng(derive_seed_sequence(seed, *keys))


def spawn_rngs(seed: int, count: int, *keys: Key) -> list[np.random.Generator]:
    """Spawn ``count`` independent generators below ``(seed, *keys)``."""
    if count < 0:
        raise ValueError("count must be non-negative")
    parent = derive_seed_sequence(seed, *keys)
    return [np.random.default_rng(child) for child in parent.spawn(count)]
