"""Rolling-horizon co-scheduling engine (the service's decision core).

The batch simulator executes one immutable pack.  The online regime
instead sees a *stream* of jobs; the timeline becomes a sequence of
**segments** separated by **epochs**:

* an **epoch** fires on every arrival that can be admitted, every
  cancellation of a running job, and every completion that lets a
  queued job in.  At an epoch at time ``t`` the engine (1) closes the
  current segment, (2) reads the residual workload off the live
  simulator state (:func:`repro.core.progress.residual_workload` — the
  "remaining fractions" of the paper's ``alpha^t_i``), (3) re-runs
  Algorithm 1 over the residual fractions
  (:func:`repro.core.optimal.optimal_schedule` with per-task
  ``alphas``) and (4) commits the new allocation: a task whose count
  moved pays the paper's Eq. 4 redistribution cost plus a fresh
  checkpoint (exactly :func:`repro.core.heuristics.base.apply_move`'s
  arithmetic), a task whose count is unchanged carries its exact
  ``(alpha, t_last)`` state so its execution continues bit-identically;
* a **segment** between epochs is a plain
  :class:`~repro.simulation.simulator.Simulator` run — failures are
  struck, rolled back and rebalanced by the policy's completion/failure
  heuristics precisely as in batch mode (failure epochs are handled
  *inside* the segment by the paper's own machinery).  One
  :class:`~repro.resilience.faults.FaultInjector` is shared across all
  segments, so the failure realisation is continuous and independent of
  where the epoch boundaries fall.

Determinism: the engine never reads a wall clock.  Given the same
(arrival trace, configuration) it produces the same epochs, the same
allocations and the same per-job completion times — the property the
arrival-replay harness (:mod:`repro.service.replay`) pins byte for
byte.  A trace with a single arrival at ``t=0`` degenerates to one
segment whose prologue and event loop are exactly ``Simulator.run``.

Warm state reused across epochs: :class:`ExpectedTimeModel` instances
are memoised in a :class:`~repro.engine.cache.WorkloadCache` keyed by
the active job multiset, and each model's
:class:`~repro.core.kernels.DecisionCache` is kept and
:meth:`~repro.core.kernels.DecisionCache.reset` for the next segment
instead of reallocating its matrix blocks.
"""

from __future__ import annotations

import time
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

from ..cluster import Cluster
from ..core.kernels import DecisionCache
from ..core.optimal import optimal_schedule
from ..core.policy import Policy, get_policy
from ..core.progress import residual_workload
from ..core.redistribution import redistribution_cost
from ..engine.cache import WorkloadCache
from ..exceptions import ConfigurationError
from ..resilience.checkpoint import ResilienceModel
from ..resilience.distributions import ExponentialFaults, FaultDistribution
from ..resilience.expected_time import ExpectedTimeModel
from ..resilience.faults import FaultInjector, NullFaultInjector
from ..rng import derive_rng
from ..simulation.simulator import Simulator
from ..tasks import Pack, TaskSpec
from ..tasks.speedup import PaperSyntheticProfile, SpeedupProfile

__all__ = ["JobState", "OnlineEngine"]

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
COMPLETED = "completed"
CANCELLED = "cancelled"


@dataclass
class JobState:
    """Mutable service-side record of one submitted job."""

    job_id: str
    size: float
    checkpoint_cost: float
    arrival: float
    status: str = QUEUED
    admitted_at: Optional[float] = None
    completion_time: Optional[float] = None
    #: Remaining work fraction last banked at a segment boundary (live
    #: jobs mid-segment are fresher than this; see ``OnlineEngine.jobs``).
    alpha_remaining: float = 1.0
    #: Redistribution count: epoch re-pack moves + in-segment heuristic
    #: moves, folded in at segment close.
    redistributions: int = 0
    failures: int = 0
    segments: int = 0

    def describe(self) -> Dict[str, object]:
        """JSON-safe view of this job."""
        return {
            "job_id": self.job_id,
            "size": self.size,
            "checkpoint_cost": self.checkpoint_cost,
            "arrival": self.arrival,
            "status": self.status,
            "admitted_at": self.admitted_at,
            "completion_time": self.completion_time,
            "alpha_remaining": self.alpha_remaining,
            "redistributions": self.redistributions,
            "failures": self.failures,
            "segments": self.segments,
        }


@dataclass
class _EngineCounters:
    """Aggregate event bookkeeping folded over closed segments."""

    events: int = 0
    failures_effective: int = 0
    failures_idle: int = 0
    failures_masked: int = 0
    #: Failures that fell into a window with no running pack at all.
    failures_idle_window: int = 0
    epochs: int = 0
    segments_closed: int = 0
    repack_moves: int = 0
    rc_paid: float = 0.0
    models_built: int = 0
    models_reused: int = 0
    decision_caches_built: int = 0
    decision_caches_reused: int = 0
    completions: int = 0
    cancellations: int = 0
    submissions: int = 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "events": self.events,
            "failures_effective": self.failures_effective,
            "failures_idle": self.failures_idle,
            "failures_masked": self.failures_masked,
            "failures_idle_window": self.failures_idle_window,
            "epochs": self.epochs,
            "segments_closed": self.segments_closed,
            "repack_moves": self.repack_moves,
            "rc_paid": self.rc_paid,
            "models_built": self.models_built,
            "models_reused": self.models_reused,
            "decision_caches_built": self.decision_caches_built,
            "decision_caches_reused": self.decision_caches_reused,
            "completions": self.completions,
            "cancellations": self.cancellations,
            "submissions": self.submissions,
        }


class OnlineEngine:
    """Rolling-horizon scheduler over a stream of jobs.

    Parameters mirror the batch :class:`Simulator` where they overlap;
    the engine owns the fault injector (one continuous per-processor
    stream derived from ``(seed, "faults")``, shared by every segment)
    and a :class:`~repro.engine.cache.WorkloadCache` of expected-time
    models keyed by the active job multiset.

    The engine is single-threaded by design — the session layer
    (:class:`repro.service.session.ServiceSession`) serialises access.
    """

    def __init__(
        self,
        cluster: Cluster,
        policy: Policy | str = "ig-el",
        *,
        seed: int = 0,
        inject_faults: bool = True,
        fault_distribution: Optional[FaultDistribution] = None,
        resilience: Optional[ResilienceModel] = None,
        profile: Optional[SpeedupProfile] = None,
        checkpoint_unit_cost: float = 1.0,
        event_queue: str = "heap",
        decision_kernel: str = "array",
        decision_state: str = "incremental",
        profile_backend: Optional[str] = None,
        workload_cache: Optional[WorkloadCache] = None,
        latency_window: int = 1024,
    ):
        self.cluster = cluster
        self.policy = get_policy(policy) if isinstance(policy, str) else policy
        self.seed = int(seed)
        self.inject_faults = bool(inject_faults)
        self._distribution = (
            fault_distribution
            if fault_distribution is not None
            else ExponentialFaults(cluster.mtbf)
        )
        self._resilience = resilience
        self._profile = profile if profile is not None else PaperSyntheticProfile()
        if checkpoint_unit_cost < 0:
            raise ConfigurationError("checkpoint unit cost must be >= 0")
        self.checkpoint_unit_cost = float(checkpoint_unit_cost)
        self._event_queue = event_queue
        self._decision_kernel = decision_kernel
        self._decision_state = decision_state
        self._profile_backend = profile_backend
        self._models = (
            workload_cache if workload_cache is not None else WorkloadCache()
        )
        # One decision cache per memoised model, reset()-reused across
        # segments (bounded alongside the model memo).
        self._dcaches: "OrderedDict[tuple, DecisionCache]" = OrderedDict()
        if self.inject_faults:
            self._injector: FaultInjector | NullFaultInjector = FaultInjector(
                cluster.processors,
                self._distribution,
                derive_rng(self.seed, "faults"),
            )
        else:
            self._injector = NullFaultInjector()

        self._now = 0.0
        self._sim: Optional[Simulator] = None
        self._order: List[str] = []      #: job ids at pack indices 0..n-1
        self._queue: List[str] = []      #: admission FIFO (job ids)
        self.jobs: Dict[str, JobState] = {}
        self.epochs: List[Dict[str, object]] = []
        self.counters = _EngineCounters()
        #: Wall-clock decision latencies (telemetry only — never part of
        #: the canonical replay output, which must be clock-free).
        self.decision_latencies: Deque[float] = deque(maxlen=int(latency_window))

    # -- read-side -----------------------------------------------------------
    @property
    def now(self) -> float:
        """The engine's current (virtual) time."""
        return self._now

    @property
    def active_jobs(self) -> List[str]:
        """Job ids currently running, in pack order."""
        return [
            jid for jid in self._order if self.jobs[jid].status == RUNNING
        ]

    @property
    def queued_jobs(self) -> List[str]:
        """Job ids waiting for admission, FIFO."""
        return list(self._queue)

    @property
    def idle(self) -> bool:
        """True when no job is running or queued."""
        return self._sim is None and not self._queue

    def job_view(self, job: JobState) -> Dict[str, object]:
        """``job.describe()`` refreshed with live in-segment state."""
        doc = job.describe()
        if job.status == RUNNING and self._sim is not None:
            try:
                idx = self._order.index(job.job_id)
            except ValueError:  # pragma: no cover - defensive
                return doc
            rt = self._sim.runtimes[idx]
            doc["sigma"] = rt.sigma
            doc["redistributions"] = job.redistributions + rt.redistributions
            doc["failures"] = job.failures + rt.failures
            doc["alpha_remaining"] = rt.alpha
        return doc

    def schedule_view(self) -> Dict[str, object]:
        """The live allocation: ``{job_id: processor count}`` plus queue."""
        sigma: Dict[str, int] = {}
        if self._sim is not None:
            for idx, jid in enumerate(self._order):
                rt = self._sim.runtimes[idx]
                if not rt.completed:
                    sigma[jid] = rt.sigma
        return {
            "now": self._now,
            "sigma": sigma,
            "queued": list(self._queue),
            "epoch_count": self.counters.epochs,
            "last_epoch": self.epochs[-1] if self.epochs else None,
        }

    def makespan(self) -> float:
        """Latest completion time seen so far (0 when none)."""
        times = [
            job.completion_time
            for job in self.jobs.values()
            if job.completion_time is not None
        ]
        return max(times) if times else 0.0

    # -- write-side ----------------------------------------------------------
    def submit(
        self,
        job_id: str,
        size: float,
        checkpoint_cost: Optional[float] = None,
        *,
        now: Optional[float] = None,
    ) -> JobState:
        """Accept a job at time ``now``; admit it if capacity allows.

        An admissible arrival triggers an epoch: the whole residual
        workload (existing actives at their remaining fractions, the
        newcomer at fraction 1) is re-packed.  When the platform is full
        (``2 (n_active + 1) > p``) the job waits in FIFO order and the
        running pack is left untouched.
        """
        if job_id in self.jobs:
            raise ConfigurationError(f"duplicate job id {job_id!r}")
        if size <= 0:
            raise ConfigurationError(f"job size must be positive, got {size}")
        t = self._now if now is None else float(now)
        self.advance_to(t)
        ckpt = (
            self.checkpoint_unit_cost * float(size)
            if checkpoint_cost is None
            else float(checkpoint_cost)
        )
        if ckpt < 0:
            raise ConfigurationError("checkpoint cost must be >= 0")
        job = JobState(
            job_id=job_id, size=float(size), checkpoint_cost=ckpt, arrival=t
        )
        self.jobs[job_id] = job
        self._queue.append(job_id)
        self.counters.submissions += 1
        n_active = len(self.active_jobs)
        if 2 * (n_active + 1) <= self.cluster.processors:
            self._repack(t, "arrival")
        else:
            self._record_epoch(t, "arrival", admitted=[], rc_paid=0.0, moves=0)
        return job

    def cancel(self, job_id: str, *, now: Optional[float] = None) -> bool:
        """Withdraw a job; returns False when it is not queued/running.

        Cancelling a *running* job is a departure epoch: its processors
        free up and the survivors (plus any admissible queued jobs) are
        re-packed over their residual fractions.
        """
        t = self._now if now is None else float(now)
        self.advance_to(t)
        job = self.jobs.get(job_id)
        if job is None or job.status in (COMPLETED, CANCELLED):
            return False
        if job.status == QUEUED:
            self._queue.remove(job_id)
            job.status = CANCELLED
            self.counters.cancellations += 1
            self._record_epoch(t, "cancel", admitted=[], rc_paid=0.0, moves=0)
            return True
        job.status = CANCELLED
        self.counters.cancellations += 1
        self._repack(t, "cancel")
        return True

    def advance_to(self, t: float) -> None:
        """Process every event up to time ``t`` (the service's pump).

        Completions that free capacity while jobs wait trigger admission
        epochs; failures are consumed inside the running segment by the
        policy heuristics.  Monotone: ``t`` may not precede the engine's
        current time.
        """
        t = float(t)
        if t < self._now:
            raise ConfigurationError(
                f"engine time cannot move backwards: {t} < {self._now}"
            )
        while self._sim is not None:
            t_next = self._sim.next_event_time()
            if t_next > t:
                break
            event = self._sim.step()
            if event is None:  # pragma: no cover - defensive
                break
            ev_t, kind, idx = event
            if kind != "completion":
                continue
            jid = self._order[idx]
            job = self.jobs[jid]
            job.status = COMPLETED
            job.completion_time = ev_t
            job.alpha_remaining = 0.0
            self.counters.completions += 1
            if self._sim.tasks_remaining == 0:
                self._close_segment()
                self._sim = None
                self._order = []
                if self._queue:
                    self._repack(ev_t, "completion")
            elif self._queue:
                self._repack(ev_t, "completion")
        if self._sim is None:
            self._drain_idle_failures(t)
        self._now = t

    def drain(self) -> float:
        """Run every accepted job to completion; returns the final time.

        The graceful-shutdown path: no new submissions are assumed, the
        queue empties through completion-admission epochs, and the last
        segment runs dry.
        """
        while self._sim is not None:
            t_next = self._sim.next_event_time()
            self.advance_to(t_next)
        return self._now

    # -- internals -----------------------------------------------------------
    def _drain_idle_failures(self, t: float) -> None:
        """Consume failures striking an empty platform (all idle)."""
        t_fail, _ = self._injector.peek()
        while t_fail < t:
            self._injector.pop()
            self.counters.failures_idle_window += 1
            t_fail, _ = self._injector.peek()

    def _close_segment(self) -> None:
        """Fold the live segment's per-task and event counters."""
        sim = self._sim
        if sim is None:
            return
        for idx, rt in enumerate(sim.runtimes):
            job = self.jobs[self._order[idx]]
            job.redistributions += rt.redistributions
            job.failures += rt.failures
            job.segments += 1
            if not rt.completed and job.status == RUNNING:
                job.alpha_remaining = rt.alpha
        seg = sim._counters
        self.counters.events += seg["events"]
        self.counters.failures_effective += seg["effective"]
        self.counters.failures_idle += seg["idle"]
        self.counters.failures_masked += seg["masked"]
        self.counters.segments_closed += 1

    def _model_key(self, pack: Pack) -> tuple:
        return (
            "service-model",
            tuple((spec.size, spec.checkpoint_cost) for spec in pack),
            self.cluster.processors,
            self.cluster.mtbf,
            self.cluster.downtime,
        )

    def _model_for(self, pack: Pack) -> ExpectedTimeModel:
        key = self._model_key(pack)
        before = self._models.snapshot()

        def build() -> ExpectedTimeModel:
            return ExpectedTimeModel(
                pack,
                self.cluster,
                resilience=self._resilience,
                profile_backend=(
                    "fused"
                    if self._profile_backend is None
                    else self._profile_backend
                ),
            )

        model = self._models.get_or_build(key, build)
        hits, misses = self._models.snapshot()
        self.counters.models_built += misses - before[1]
        self.counters.models_reused += hits - before[0]
        return model

    def _decision_cache_for(
        self, key: tuple, model: ExpectedTimeModel
    ) -> Optional[DecisionCache]:
        if (
            self._decision_kernel != "array"
            or self._decision_state != "incremental"
        ):
            return None
        cache = self._dcaches.get(key)
        if cache is not None and cache.model is model:
            self._dcaches.move_to_end(key)
            cache.reset()
            self.counters.decision_caches_reused += 1
            return cache
        cache = DecisionCache(model)
        self._dcaches[key] = cache
        self.counters.decision_caches_built += 1
        while len(self._dcaches) > self._models.capacity:
            self._dcaches.popitem(last=False)
        return cache

    def _repack(self, t: float, trigger: str) -> None:
        """Epoch: close the segment, re-pack residuals, resume."""
        started = time.perf_counter()
        p = self.cluster.processors
        residuals: Dict[str, object] = {}
        carried: Dict[str, tuple] = {}
        if self._sim is not None:
            runtimes = self._sim.runtimes
            for idx, res in residual_workload(
                self._sim.model, runtimes, t
            ).items():
                jid = self._order[idx]
                residuals[jid] = res
                carried[jid] = (runtimes[idx].alpha, runtimes[idx].t_last)
            self._close_segment()
            self._sim = None
        else:
            self._drain_idle_failures(t)

        active = [
            jid for jid in self._order if self.jobs[jid].status == RUNNING
        ]
        admitted: List[str] = []
        while self._queue and 2 * (len(active) + len(admitted) + 1) <= p:
            admitted.append(self._queue.pop(0))
        order = active + admitted
        if not order:
            self._order = []
            self._record_epoch(
                t, trigger, admitted=admitted, rc_paid=0.0, moves=0
            )
            self.decision_latencies.append(time.perf_counter() - started)
            return

        specs = [
            TaskSpec(
                index=i,
                size=self.jobs[jid].size,
                checkpoint_cost=self.jobs[jid].checkpoint_cost,
                profile=self._profile,
                name=jid,
            )
            for i, jid in enumerate(order)
        ]
        pack = Pack(specs)
        model = self._model_for(pack)
        alphas_dec = [
            residuals[jid].alpha if jid in residuals else 1.0 for jid in order
        ]
        sigma = optimal_schedule(
            model, p, alphas=alphas_dec, kernel=self._decision_kernel
        )

        alphas0: List[float] = []
        t_last0: List[float] = []
        rc_paid = 0.0
        moves = 0
        for i, jid in enumerate(order):
            job = self.jobs[jid]
            if jid in residuals:
                res = residuals[jid]
                if sigma[i] == res.sigma:
                    # Unchanged allocation: the task continues its
                    # periodic pattern bit-exactly.
                    alpha0, tl0 = carried[jid]
                    alphas0.append(alpha0)
                    t_last0.append(tl0)
                else:
                    # Moved allocation: Eq. 4 redistribution cost plus a
                    # fresh checkpoint, after any unserved blackout —
                    # apply_move's arithmetic at the epoch boundary.
                    rc = model.rc_factor * redistribution_cost(
                        specs[i].size, res.sigma, sigma[i]
                    )
                    alphas0.append(res.alpha)
                    t_last0.append(
                        t + res.stall + rc + model.checkpoint_cost(i, sigma[i])
                    )
                    rc_paid += rc
                    moves += 1
                    job.redistributions += 1
            else:
                job.status = RUNNING
                job.admitted_at = t
                alphas0.append(1.0)
                t_last0.append(t)

        sim = Simulator(
            pack,
            self.cluster,
            self.policy,
            seed=self.seed,
            inject_faults=self.inject_faults,
            fault_distribution=self._distribution,
            model=model,
            event_queue=self._event_queue,
            decision_kernel=self._decision_kernel,
            decision_state=self._decision_state,
        )
        cache = self._decision_cache_for(self._model_key(pack), model)
        if cache is not None:
            sim._make_decision_cache = lambda: cache  # type: ignore[method-assign]
        sim.start(
            t0=t,
            sigma0=sigma,
            alphas=alphas0,
            t_last=t_last0,
            injector=self._injector,
        )
        self._sim = sim
        self._order = order
        self.counters.repack_moves += moves
        self.counters.rc_paid += rc_paid
        self._record_epoch(
            t,
            trigger,
            admitted=admitted,
            rc_paid=rc_paid,
            moves=moves,
            order=order,
            sigma={jid: sigma[i] for i, jid in enumerate(order)},
            alphas={jid: alphas_dec[i] for i, jid in enumerate(order)},
            t_last={jid: t_last0[i] for i, jid in enumerate(order)},
        )
        self.decision_latencies.append(time.perf_counter() - started)

    def _record_epoch(
        self,
        t: float,
        trigger: str,
        *,
        admitted: List[str],
        rc_paid: float,
        moves: int,
        order: Optional[List[str]] = None,
        sigma: Optional[Dict[str, int]] = None,
        alphas: Optional[Dict[str, float]] = None,
        t_last: Optional[Dict[str, float]] = None,
    ) -> None:
        """Append one canonical epoch record (the replay pin's unit)."""
        if sigma is None:
            sigma = {}
            if self._sim is not None:
                for idx, jid in enumerate(self._order):
                    rt = self._sim.runtimes[idx]
                    if not rt.completed:
                        sigma[jid] = rt.sigma
        self.counters.epochs += 1
        self.epochs.append(
            {
                "t": t,
                "trigger": trigger,
                "order": list(order) if order is not None else None,
                "admitted": list(admitted),
                "sigma": sigma,
                "alphas": alphas,
                "t_last": t_last,
                "rc_paid": rc_paid,
                "moves": moves,
                "queued": list(self._queue),
            }
        )

    # -- telemetry -----------------------------------------------------------
    def metrics(self) -> Dict[str, object]:
        """Engine-level counters for ``/metrics`` (JSON-safe)."""
        by_status = {QUEUED: 0, RUNNING: 0, COMPLETED: 0, CANCELLED: 0}
        for job in self.jobs.values():
            by_status[job.status] += 1
        doc: Dict[str, object] = {
            "now": self._now,
            "jobs_total": len(self.jobs),
            "jobs_by_status": by_status,
            "queue_depth": len(self._queue),
            "active_pack_size": len(self.active_jobs),
            "makespan": self.makespan(),
            "model_cache": self._models.cache_info(),
        }
        doc.update(self.counters.as_dict())
        return doc
