"""``python -m repro.service`` — the scheduling daemon entrypoint."""

from .server import main

if __name__ == "__main__":
    raise SystemExit(main())
