"""Thread-safe session facade over the rolling-horizon engine.

The HTTP handler threads, the drain signal handler and the verbose
reporter all touch one :class:`~repro.service.horizon.OnlineEngine`,
which is single-threaded by design.  :class:`ServiceSession` is the
serialisation point: one re-entrant lock, and a *pump* that advances
the engine to the injected clock's current time before every
operation — so the service's state is always "as of now" without any
background ticker thread (and with a :class:`VirtualClock` the pump is
a no-op unless the harness moved time, keeping tests deterministic).
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

from ..exceptions import ConfigurationError
from .horizon import OnlineEngine

__all__ = ["ServiceSession"]


class ServiceSession:
    """Job registry + lifecycle gate in front of an engine.

    ``clock`` is any object with a ``now() -> float`` method
    (:class:`~repro.service.clock.VirtualClock` or
    :class:`~repro.service.clock.WallClock`).  ``draining`` flips once
    on shutdown: submissions are refused while queued work still runs
    to completion — the zero-lost-jobs guarantee of the e2e smoke test.
    """

    def __init__(self, engine: OnlineEngine, clock):
        self.engine = engine
        self.clock = clock
        self._lock = threading.RLock()
        self._auto_id = 0
        self._draining = False

    # -- internals -----------------------------------------------------------
    def _pump(self) -> float:
        now = float(self.clock.now())
        if now > self.engine.now:
            self.engine.advance_to(now)
        return self.engine.now

    def _next_job_id(self) -> str:
        self._auto_id += 1
        return f"job-{self._auto_id:04d}"

    # -- operations ----------------------------------------------------------
    @property
    def draining(self) -> bool:
        return self._draining

    def submit(
        self,
        size: float,
        checkpoint_cost: Optional[float] = None,
        job_id: Optional[str] = None,
    ) -> Dict[str, object]:
        """Accept one job; returns its registry view."""
        with self._lock:
            if self._draining:
                raise ConfigurationError(
                    "service is draining; new submissions are refused"
                )
            self._pump()
            if job_id is None:
                job_id = self._next_job_id()
            job = self.engine.submit(job_id, size, checkpoint_cost)
            return self.engine.job_view(job)

    def cancel(self, job_id: str) -> Dict[str, object]:
        """Withdraw a job; idempotent on unknown/terminal jobs."""
        with self._lock:
            self._pump()
            cancelled = self.engine.cancel(job_id)
            job = self.engine.jobs.get(job_id)
            return {
                "job_id": job_id,
                "cancelled": cancelled,
                "status": job.status if job is not None else None,
            }

    def jobs(self) -> List[Dict[str, object]]:
        """Every known job, in submission order."""
        with self._lock:
            self._pump()
            return [
                self.engine.job_view(job) for job in self.engine.jobs.values()
            ]

    def schedule(self) -> Dict[str, object]:
        """The live allocation plus the full epoch history."""
        with self._lock:
            self._pump()
            doc = self.engine.schedule_view()
            doc["epochs"] = list(self.engine.epochs)
            return doc

    def metrics(self) -> Dict[str, object]:
        """Telemetry document (see :mod:`repro.service.telemetry`)."""
        from .telemetry import service_metrics

        with self._lock:
            self._pump()
            return service_metrics(self)

    def drain(self) -> Dict[str, object]:
        """Refuse new work and run everything accepted to completion."""
        with self._lock:
            self._draining = True
            self._pump()
            final_time = self.engine.drain()
            jobs = [
                self.engine.job_view(job) for job in self.engine.jobs.values()
            ]
            terminal = ("completed", "cancelled")
            lost = [j["job_id"] for j in jobs if j["status"] not in terminal]
            return {
                "drained_at": final_time,
                "jobs": jobs,
                "completed": sum(
                    1 for j in jobs if j["status"] == "completed"
                ),
                "cancelled": sum(
                    1 for j in jobs if j["status"] == "cancelled"
                ),
                "lost": lost,
            }
