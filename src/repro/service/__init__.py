"""Online scheduling service (rolling-horizon co-scheduling daemon).

The paper evaluates its algorithms batch-style — one pack, one
``Simulator.run`` — but the regime it targets is a platform where
applications arrive and depart continuously and redistribution
decisions are made *online*.  This package is that service layer:

* :mod:`~repro.service.clock` — the time seam.  ``VirtualClock`` makes
  the whole service deterministic (no wall clock anywhere in the
  decision path); ``WallClock`` paces a real daemon.
* :mod:`~repro.service.horizon` — :class:`OnlineEngine`, the
  rolling-horizon scheduler: each arrival/departure epoch re-packs the
  *residual* workload (remaining fractions read off the live simulator
  via :func:`repro.core.progress.residual_workload`) with Algorithm 1
  over per-task fractions, pays Eq. 4 redistribution costs for moved
  tasks, and resumes a fresh simulator segment that carries unchanged
  tasks bit-exactly.  Failures inside a segment are handled by the
  paper's policy heuristics, exactly as in batch runs.
* :mod:`~repro.service.session` — job registry + thread-safe session
  facade pumping the engine to the clock on every call.
* :mod:`~repro.service.server` — the token-authenticated stdlib
  HTTP/JSON transport (``POST /api/submit``, ``/api/cancel``,
  ``GET /api/jobs``, ``/api/schedule``, ``/metrics``) and the
  ``python -m repro.service`` daemon entrypoint with graceful SIGTERM
  drain.
* :mod:`~repro.service.telemetry` — ``/metrics`` assembly
  (:class:`repro.engine.EngineStats` + per-job progress + queue depths
  + decision latency percentiles) and the import-guarded psutil host
  sampler.
* :mod:`~repro.service.replay` — the deterministic arrival-replay
  harness: a seeded trace driven through the live service (virtual
  clock, in-process transport) must be byte-identical to the offline
  reference re-simulation — the service-layer analogue of the
  fig7/fig10 pins.
"""

from .clock import VirtualClock, WallClock
from .horizon import JobState, OnlineEngine
from .replay import (
    ReplayConfig,
    ReplayResult,
    TraceEvent,
    canonical_bytes,
    generate_trace,
    replay_reference,
    replay_service,
)
from .server import SCHEMA_VERSION, ServiceAPI, ServiceServer
from .session import ServiceSession
from .telemetry import HostSampler, latency_percentiles, service_engine_stats

__all__ = [
    "VirtualClock",
    "WallClock",
    "OnlineEngine",
    "JobState",
    "ServiceSession",
    "ServiceAPI",
    "ServiceServer",
    "SCHEMA_VERSION",
    "TraceEvent",
    "ReplayConfig",
    "ReplayResult",
    "generate_trace",
    "replay_reference",
    "replay_service",
    "canonical_bytes",
    "HostSampler",
    "latency_percentiles",
    "service_engine_stats",
]
