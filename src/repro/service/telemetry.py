"""``/metrics`` assembly: engine stats, job progress, host sampling.

Three layers of telemetry, all JSON-safe:

* **engine counters** — the rolling-horizon engine's own epoch/segment
  bookkeeping plus an :class:`repro.engine.EngineStats` assembled from
  the process-wide profile/decision counters
  (:func:`repro.resilience.expected_time.ExpectedTimeModel.
  process_cache_snapshot`, :func:`repro.core.kernels.
  process_decision_snapshot`) — the same counters the distributed
  executors report, so service and campaign dashboards read alike;
* **decision latency** — p50/p99 over the engine's recent re-pack
  latencies (wall-clock, telemetry only — the canonical replay output
  never contains them);
* **host sampler** — optional psutil-backed process/host gauges,
  import-guarded: without psutil the section reports
  ``{"available": false}`` and everything else still works (the
  container this repo targets does not ship psutil).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Sequence

from ..core.kernels import process_decision_snapshot
from ..engine.executors import EngineStats
from ..resilience.expected_time import ExpectedTimeModel

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from .session import ServiceSession

try:  # pragma: no cover - exercised only where psutil exists
    import psutil  # type: ignore[import-not-found]
except ImportError:  # pragma: no cover - the expected path here
    psutil = None

__all__ = [
    "HostSampler",
    "latency_percentiles",
    "service_engine_stats",
    "service_metrics",
]


def latency_percentiles(
    latencies: Sequence[float],
) -> Dict[str, float]:
    """p50/p99/max/count over a latency window (seconds).

    Nearest-rank percentiles on the sorted sample — no interpolation,
    so tiny windows (a handful of epochs) still report honest values.
    """
    values = sorted(float(v) for v in latencies)
    if not values:
        return {"count": 0, "p50": 0.0, "p99": 0.0, "max": 0.0}
    n = len(values)

    def rank(q: float) -> float:
        idx = min(n - 1, max(0, int(q * n + 0.5) - 1))
        return values[idx]

    return {
        "count": n,
        "p50": rank(0.50),
        "p99": rank(0.99),
        "max": values[-1],
    }


def service_engine_stats(engine) -> EngineStats:
    """An :class:`EngineStats` for the service's in-process engine.

    The distributed executors fold worker snapshots into these fields;
    the service runs in-process, so the process-wide counters *are* its
    totals: profile hits/misses from the expected-time models, decision
    patch/reuse counters from the kernels, workload build/reuse from
    the engine's model memo.
    """
    stats = EngineStats()
    hits, misses = ExpectedTimeModel.process_cache_snapshot()
    stats.profile_hits = hits
    stats.profile_misses = misses
    patched, reused, allocs, env_reused, tau_patched = (
        process_decision_snapshot()
    )
    stats.decision_rows_patched = patched
    stats.decision_rows_reused = reused
    stats.decision_scratch_allocs = allocs
    stats.decision_profile_env_reused = env_reused
    stats.decision_profile_tau_patched = tau_patched
    stats.workloads_built = engine.counters.models_built
    stats.workloads_reused = engine.counters.models_reused
    stats.tasks_submitted = engine.counters.submissions
    stats.dispatches = engine.counters.epochs
    return stats


class HostSampler:
    """Optional psutil host/process gauges (Elasecutor-style resMon).

    Degrades gracefully: when psutil is not importable every sample is
    ``{"available": False}``.  A fresh process handle per sampler keeps
    ``cpu_percent`` deltas meaningful across calls.
    """

    def __init__(self) -> None:
        self.available = psutil is not None
        self._proc = psutil.Process() if self.available else None

    def sample(self) -> Dict[str, object]:
        if not self.available:  # pragma: no branch - container default
            return {"available": False}
        vm = psutil.virtual_memory()  # pragma: no cover - psutil-only
        with self._proc.oneshot():  # pragma: no cover - psutil-only
            return {
                "available": True,
                "cpu_percent": self._proc.cpu_percent(interval=None),
                "rss_bytes": self._proc.memory_info().rss,
                "num_threads": self._proc.num_threads(),
                "host_cpu_percent": psutil.cpu_percent(interval=None),
                "host_memory_percent": vm.percent,
                "host_memory_available": vm.available,
            }


def service_metrics(
    session: "ServiceSession",
    sampler: Optional[HostSampler] = None,
) -> Dict[str, object]:
    """The full ``/metrics`` document for one session.

    Caller holds the session lock (``ServiceSession.metrics`` does).
    """
    engine = session.engine
    doc: Dict[str, object] = {"service": engine.metrics()}
    doc["engine_stats"] = service_engine_stats(engine).cache_info()
    doc["decision_latency"] = latency_percentiles(engine.decision_latencies)
    doc["jobs"] = {
        job_id: {
            "status": view["status"],
            "alpha_remaining": view["alpha_remaining"],
            "redistributions": view["redistributions"],
            "failures": view["failures"],
        }
        for job_id, view in (
            (job.job_id, engine.job_view(job))
            for job in engine.jobs.values()
        )
    }
    doc["draining"] = session.draining
    host = sampler if sampler is not None else _default_sampler()
    doc["host"] = host.sample()
    return doc


_SAMPLER: Optional[HostSampler] = None


def _default_sampler() -> HostSampler:
    global _SAMPLER
    if _SAMPLER is None:
        _SAMPLER = HostSampler()
    return _SAMPLER
