"""The scheduling daemon: HTTP/JSON transport around a service session.

::

    python -m repro.service --port 8643 --token s3cret --processors 40

Layering mirrors :mod:`repro.engine.broker_server` deliberately:

* :class:`ServiceAPI` — ``handle(op, data)`` dispatch over decoded JSON
  documents.  This *is* the in-process transport seam: the replay
  harness and the unit tests drive the exact objects the HTTP handler
  does, so socket tests pin only framing/auth, not scheduling.
* ``_Handler`` — stdlib HTTP framing: ``POST /api/submit``,
  ``POST /api/cancel``, ``GET /api/jobs``, ``GET /api/schedule``,
  ``GET /metrics``, ``GET /status``; bearer token compared in constant
  time.
* :class:`ServiceServer` — in-process start/shutdown for tests plus the
  blocking ``serve_forever`` used by ``main``.
* :func:`main` — the daemon entrypoint.  SIGTERM/SIGINT flip a drain
  flag: the listener refuses new submissions, every accepted job runs
  to completion (fast-forwarding the virtual timeline — the engine
  needs no wall time to finish), a drain summary is printed, exit 0.
"""

from __future__ import annotations

import argparse
import hmac
import json
import os
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Sequence

from ..cluster import Cluster
from ..exceptions import ConfigurationError, ReproError
from .clock import VirtualClock, WallClock
from .horizon import OnlineEngine
from .session import ServiceSession

__all__ = ["SCHEMA_VERSION", "ServiceAPI", "ServiceServer", "main"]

#: Version of the service operation set.  Bump on incompatible changes.
SCHEMA_VERSION = 1

#: Request bodies are tiny job documents; cap hard.
MAX_BODY_BYTES = 1024 * 1024


class ServiceAPI:
    """Operation dispatch over one :class:`ServiceSession`.

    Every operation takes and returns plain JSON-safe dicts; transport
    concerns (HTTP framing, auth, sockets) stay in the handler class.
    ``handle`` raises ``LookupError`` for unknown operations and
    :class:`~repro.exceptions.ReproError` subclasses for bad requests —
    the HTTP layer maps those to 404/400.
    """

    def __init__(self, session: ServiceSession):
        self.session = session

    def handle(self, op: str, data: Dict) -> Dict:
        handler = getattr(self, f"_op_{op}", None)
        if handler is None or not op.islower() or op.startswith("_"):
            raise LookupError(op)
        return handler(data)

    # -- operations ----------------------------------------------------------
    def _op_submit(self, data: Dict) -> Dict:
        try:
            size = float(data["size"])
        except (KeyError, TypeError, ValueError):
            raise ConfigurationError(
                "submit requires a numeric 'size' field"
            ) from None
        checkpoint_cost = data.get("checkpoint_cost")
        if checkpoint_cost is not None:
            checkpoint_cost = float(checkpoint_cost)
        job_id = data.get("job_id")
        if job_id is not None and not isinstance(job_id, str):
            raise ConfigurationError("job_id must be a string")
        return {"job": self.session.submit(size, checkpoint_cost, job_id)}

    def _op_cancel(self, data: Dict) -> Dict:
        job_id = data.get("job_id")
        if not isinstance(job_id, str):
            raise ConfigurationError("cancel requires a string 'job_id'")
        return self.session.cancel(job_id)

    def _op_jobs(self, data: Dict) -> Dict:
        return {"jobs": self.session.jobs()}

    def _op_schedule(self, data: Dict) -> Dict:
        return self.session.schedule()

    def _op_metrics(self, data: Dict) -> Dict:
        return self.session.metrics()

    def _op_status(self, data: Dict) -> Dict:
        engine = self.session.engine
        return {
            "schema_version": SCHEMA_VERSION,
            "policy": engine.policy.name,
            "processors": engine.cluster.processors,
            "seed": engine.seed,
            "draining": self.session.draining,
            "now": engine.now,
            "jobs_total": len(engine.jobs),
            "queue_depth": len(engine.queued_jobs),
        }

    def _op_drain(self, data: Dict) -> Dict:
        return self.session.drain()


#: GET routes -> operations (POST uses /api/<op> directly).
_GET_ROUTES = {
    "/api/jobs": "jobs",
    "/api/schedule": "schedule",
    "/metrics": "metrics",
    "/api/metrics": "metrics",
    "/status": "status",
    "/api/status": "status",
}

#: Operations reachable over POST.
_POST_OPS = frozenset({"submit", "cancel", "drain"})


class _Handler(BaseHTTPRequestHandler):
    """JSON framing around a :class:`ServiceAPI`."""

    server_version = "repro-service/1"
    protocol_version = "HTTP/1.1"

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if not self.server.check_auth(self.headers.get("Authorization")):
            self._reply(401, {"error": "unauthorized"})
            return
        if not self.path.startswith("/api/"):
            self._reply(404, {"error": f"unknown path {self.path!r}"})
            return
        op = self.path[len("/api/"):]
        if op not in _POST_OPS:
            self._reply(404, {"error": f"unknown operation {op!r}"})
            return
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            self._reply(400, {"error": "bad Content-Length"})
            return
        if length > MAX_BODY_BYTES:
            self._reply(413, {"error": "request body too large"})
            return
        raw = self.rfile.read(length) if length else b""
        try:
            data = json.loads(raw) if raw else {}
        except ValueError:
            self._reply(400, {"error": "request body is not JSON"})
            return
        self._dispatch(op, data)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if not self.server.check_auth(self.headers.get("Authorization")):
            self._reply(401, {"error": "unauthorized"})
            return
        op = _GET_ROUTES.get(self.path)
        if op is None:
            self._reply(404, {"error": f"unknown path {self.path!r}"})
            return
        self._dispatch(op, {})

    def _dispatch(self, op: str, data: Dict) -> None:
        try:
            body = self.server.api.handle(op, data)
        except LookupError:
            self._reply(404, {"error": f"unknown operation {op!r}"})
        except ReproError as exc:
            self._reply(400, {"error": str(exc)})
        except (KeyError, TypeError, ValueError) as exc:
            self._reply(400, {"error": f"bad request: {exc!r}"})
        else:
            self._reply(200, body)

    def _reply(self, status: int, body: Dict) -> None:
        payload = json.dumps(body).encode("utf-8")
        try:
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            pass  # the client hung up mid-response; nothing to salvage

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):  # pragma: no cover
            BaseHTTPRequestHandler.log_message(self, format, *args)


class ServiceServer:
    """One scheduling daemon: engine + session + threaded HTTP listener."""

    def __init__(
        self,
        session: ServiceSession,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        token: Optional[str] = None,
        verbose: bool = False,
    ):
        self.session = session
        self.api = ServiceAPI(session)
        self.host = host
        self.token = token
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.api = self.api
        self._httpd.verbose = verbose

        def check_auth(header: Optional[str]) -> bool:
            if not token:
                return True
            return header is not None and hmac.compare_digest(
                header, f"Bearer {token}"
            )

        self._httpd.check_auth = check_auth
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        """The bound TCP port (useful with ``port=0`` auto-assignment)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """The base URL clients should connect to."""
        return f"http://{self.host}:{self.port}"

    def start(self) -> str:
        """Serve on a daemon thread; returns the base URL."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            daemon=True,
        )
        self._thread.start()
        return self.url

    def serve_forever(self) -> None:
        """Serve on the calling thread (the ``__main__`` path)."""
        self._httpd.serve_forever(poll_interval=0.2)

    def interrupt(self) -> None:
        """Make a blocking :meth:`serve_forever` return (signal-safe)."""
        threading.Thread(target=self._httpd.shutdown, daemon=True).start()

    def shutdown(self) -> None:
        """Stop a :meth:`start`-ed server and release the socket."""
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join(timeout=5.0)
            self._thread = None
        self._httpd.server_close()

    def close_socket(self) -> None:
        """Release the listening socket (after ``serve_forever`` returns)."""
        self._httpd.server_close()


def build_session(args: argparse.Namespace) -> ServiceSession:
    """Session from parsed daemon arguments (shared with ``repro serve``)."""
    cluster = Cluster.with_mtbf_years(
        args.processors, args.mtbf_years, downtime=args.downtime
    )
    engine = OnlineEngine(
        cluster,
        args.policy,
        seed=args.seed,
        inject_faults=not args.no_faults,
    )
    if args.virtual_clock:
        clock = VirtualClock()
    else:
        clock = WallClock(time_scale=args.time_scale)
    return ServiceSession(engine, clock)


def add_service_arguments(parser: argparse.ArgumentParser) -> None:
    """The daemon's knobs (shared by ``__main__`` and ``repro serve``)."""
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address (default 127.0.0.1)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=8643,
        help="TCP port (default 8643; 0 picks a free one)",
    )
    parser.add_argument(
        "--token",
        default=None,
        help=(
            "bearer token clients must present "
            "(default: $REPRO_SERVICE_TOKEN; empty = unauthenticated)"
        ),
    )
    parser.add_argument(
        "--processors",
        "-p",
        type=int,
        default=40,
        help="platform width p (default 40)",
    )
    parser.add_argument(
        "--mtbf-years",
        type=float,
        default=10.0,
        help="per-processor MTBF in years (default 10)",
    )
    parser.add_argument(
        "--downtime",
        type=float,
        default=60.0,
        help="downtime D in seconds (default 60)",
    )
    parser.add_argument(
        "--policy",
        default="ig-el",
        help="redistribution policy (default ig-el)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="failure-stream seed (default 0)",
    )
    parser.add_argument(
        "--no-faults",
        action="store_true",
        help="fault-free platform (checkpoint overhead kept)",
    )
    parser.add_argument(
        "--time-scale",
        type=float,
        default=1.0e6,
        help=(
            "simulated seconds per wall second (default 1e6 — the "
            "paper's 1e6-second packs progress in real time)"
        ),
    )
    parser.add_argument(
        "--virtual-clock",
        action="store_true",
        help=(
            "freeze time (moves only on drain); for harnesses driving "
            "the daemon deterministically"
        ),
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="log requests and print /metrics on drain",
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entrypoint: ``python -m repro.service``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description=(
            "Rolling-horizon co-scheduling daemon: submit jobs over "
            "token-authenticated HTTP/JSON, watch them re-packed and "
            "redistributed online; SIGTERM drains gracefully."
        ),
    )
    add_service_arguments(parser)
    return run_service(parser.parse_args(argv))


def run_service(args: argparse.Namespace) -> int:
    """Serve until SIGTERM/SIGINT, then drain (shared with ``repro serve``)."""
    token = (
        args.token
        if args.token is not None
        else os.environ.get("REPRO_SERVICE_TOKEN")
    )
    session = build_session(args)
    server = ServiceServer(
        session,
        host=args.host,
        port=args.port,
        token=token,
        verbose=args.verbose,
    )

    stop = {"signal": None}

    def _on_signal(signum, frame):  # pragma: no cover - signal path
        stop["signal"] = signum
        server.interrupt()

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)

    print(
        f"scheduling service on {server.url} "
        f"(p={args.processors}, policy={args.policy}, "
        f"auth: {'token' if token else 'open'})",
        flush=True,
    )
    server.serve_forever()

    # Drain: refuse new work, run everything accepted to completion.
    summary = session.drain()
    if args.verbose:
        print(json.dumps(session.metrics(), indent=2, sort_keys=True))
    print(
        "service drained: "
        f"{summary['completed']} completed, "
        f"{summary['cancelled']} cancelled, "
        f"{len(summary['lost'])} lost "
        f"(t={summary['drained_at']:.6g})",
        flush=True,
    )
    server.close_socket()
    return 0 if not summary["lost"] else 1


if __name__ == "__main__":  # pragma: no cover - subprocess entrypoint
    raise SystemExit(main())
