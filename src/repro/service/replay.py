"""Deterministic arrival-replay harness — the service-layer pin.

The repo's reliability story is built on reference modes pinned
bit-identical to fast paths (fig7/fig10, scan-vs-heap, scalar-vs-array
kernels).  The service layer gets the same treatment: a seeded arrival
trace is driven twice —

* **reference**: straight into an :class:`~repro.service.horizon.
  OnlineEngine`, no clock, no transport, no session;
* **service**: through the live stack — :class:`VirtualClock`,
  :class:`ServiceSession`, :class:`ServiceAPI` — with every request and
  response round-tripped through ``json.dumps``/``json.loads`` exactly
  as the HTTP handler frames them;

and the two :class:`ReplayResult`\\ s must serialise to *byte-identical*
canonical JSON (:func:`canonical_bytes`).  Any wall-clock read, any
float drifting through the transport, any session-layer reordering
breaks the bytes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..cluster import Cluster
from ..exceptions import ConfigurationError
from ..rng import derive_rng

__all__ = [
    "TraceEvent",
    "ReplayConfig",
    "ReplayResult",
    "generate_trace",
    "replay_reference",
    "replay_service",
    "canonical_bytes",
]


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped service request in an arrival trace."""

    time: float
    kind: str              #: ``"submit"`` or ``"cancel"``
    job_id: str
    size: float = 0.0
    checkpoint_cost: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in ("submit", "cancel"):
            raise ConfigurationError(f"unknown trace event kind {self.kind!r}")
        if self.time < 0:
            raise ConfigurationError("trace event times must be >= 0")


@dataclass(frozen=True)
class ReplayConfig:
    """Everything the engine needs, hashable and JSON-safe."""

    processors: int = 20
    mtbf_years: float = 10.0
    downtime: float = 60.0
    policy: str = "ig-el"
    seed: int = 0
    inject_faults: bool = True
    event_queue: str = "heap"
    decision_kernel: str = "array"
    decision_state: str = "incremental"

    def cluster(self) -> Cluster:
        return Cluster.with_mtbf_years(
            self.processors, self.mtbf_years, downtime=self.downtime
        )

    def engine(self):
        """A fresh :class:`OnlineEngine` configured from this replay."""
        from .horizon import OnlineEngine

        return OnlineEngine(
            self.cluster(),
            self.policy,
            seed=self.seed,
            inject_faults=self.inject_faults,
            event_queue=self.event_queue,
            decision_kernel=self.decision_kernel,
            decision_state=self.decision_state,
        )


@dataclass
class ReplayResult:
    """Epoch-by-epoch decisions plus final per-job outcomes."""

    epochs: List[Dict[str, object]] = field(default_factory=list)
    jobs: Dict[str, Dict[str, object]] = field(default_factory=dict)
    makespan: float = 0.0
    counters: Dict[str, object] = field(default_factory=dict)
    #: Wall-clock re-pack latencies (telemetry only — NOT canonical).
    decision_latencies: List[float] = field(default_factory=list)

    def canonical(self) -> Dict[str, object]:
        """The content under byte-identity (no wall-clock material)."""
        return {
            "epochs": self.epochs,
            "jobs": self.jobs,
            "makespan": self.makespan,
            "counters": self.counters,
        }


def canonical_bytes(result: ReplayResult) -> bytes:
    """Sorted-keys, compact-separator JSON encoding of a replay.

    Two runs agree on these bytes iff they agreed on every epoch time,
    trigger, allocation, residual fraction, RC payment, queue snapshot
    and per-job outcome — float formatting included (``json`` emits
    ``repr``-shortest doubles, which round-trip exactly).
    """
    return json.dumps(
        result.canonical(), sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def generate_trace(
    seed: int,
    *,
    n_jobs: int = 12,
    mean_gap: float = 40_000.0,
    m_inf: float = 6_000.0,
    m_sup: float = 10_000.0,
    checkpoint_unit_cost: float = 1.0,
    cancel_every: int = 0,
    cancel_delay: float = 5_000.0,
) -> List[TraceEvent]:
    """A seeded arrival trace: exponential gaps, uniform sizes.

    Derived from ``(seed, "arrivals")`` so it never collides with the
    engine's fault stream.  ``cancel_every=k`` (k > 0) also cancels
    every k-th job ``cancel_delay`` after its arrival — cancels of jobs
    that already finished are no-ops, exercised on purpose.  Events are
    returned sorted by (time, job id): the exact order both replay
    paths must consume them in.
    """
    if n_jobs < 1:
        raise ConfigurationError(f"n_jobs must be >= 1, got {n_jobs}")
    rng = derive_rng(seed, "arrivals")
    events: List[TraceEvent] = []
    t = 0.0
    for k in range(n_jobs):
        if k > 0:
            t += float(rng.exponential(mean_gap))
        size = float(rng.uniform(m_inf, m_sup))
        job_id = f"job-{k + 1:04d}"
        events.append(
            TraceEvent(
                time=t,
                kind="submit",
                job_id=job_id,
                size=size,
                checkpoint_cost=checkpoint_unit_cost * size,
            )
        )
        if cancel_every > 0 and (k + 1) % cancel_every == 0:
            events.append(
                TraceEvent(
                    time=t + cancel_delay, kind="cancel", job_id=job_id
                )
            )
    events.sort(key=lambda ev: (ev.time, ev.job_id, ev.kind))
    return events


def _result_from_engine(engine) -> ReplayResult:
    """Collapse a drained engine into the canonical replay document."""
    jobs = {
        job_id: job.describe() for job_id, job in engine.jobs.items()
    }
    return ReplayResult(
        epochs=list(engine.epochs),
        jobs=jobs,
        makespan=engine.makespan(),
        counters=engine.counters.as_dict(),
        decision_latencies=list(engine.decision_latencies),
    )


def replay_reference(
    trace: List[TraceEvent], config: ReplayConfig
) -> ReplayResult:
    """Offline re-simulation: the trace fed straight into an engine."""
    engine = config.engine()
    for event in trace:
        engine.advance_to(event.time)
        if event.kind == "submit":
            engine.submit(
                event.job_id,
                event.size,
                event.checkpoint_cost,
                now=event.time,
            )
        else:
            engine.cancel(event.job_id, now=event.time)
    engine.drain()
    return _result_from_engine(engine)


def _wire(document: Dict) -> Dict:
    """One JSON round-trip — exactly what the HTTP framing does."""
    return json.loads(json.dumps(document))


def replay_service(
    trace: List[TraceEvent], config: ReplayConfig
) -> Tuple[ReplayResult, List[Dict]]:
    """The same trace through the live service stack (virtual clock).

    Every request and response crosses the in-process transport seam
    (:class:`~repro.service.server.ServiceAPI`) with a full JSON
    round-trip, mimicking the HTTP framing byte for byte.  Returns the
    replay result plus the raw wire responses (for harness inspection).
    """
    from .clock import VirtualClock
    from .server import ServiceAPI
    from .session import ServiceSession

    clock = VirtualClock()
    session = ServiceSession(config.engine(), clock)
    api = ServiceAPI(session)
    responses: List[Dict] = []
    for event in trace:
        clock.set(event.time)
        if event.kind == "submit":
            request = _wire(
                {
                    "job_id": event.job_id,
                    "size": event.size,
                    "checkpoint_cost": event.checkpoint_cost,
                }
            )
            responses.append(_wire(api.handle("submit", request)))
        else:
            request = _wire({"job_id": event.job_id})
            responses.append(_wire(api.handle("cancel", request)))
    responses.append(_wire(api.handle("drain", {})))
    return _result_from_engine(session.engine), responses
