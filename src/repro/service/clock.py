"""The service's time seam.

Every timestamp the scheduling daemon acts on comes from one injected
clock object.  ``VirtualClock`` is the test anchor: time moves only
when the harness says so, which makes the whole service — admission
order, epoch boundaries, drain behaviour — a pure function of the
submitted trace.  ``WallClock`` paces a real daemon against the
monotonic wall clock, optionally scaled (the paper's workloads span
:math:`10^6`-second horizons; a demo daemon maps them onto seconds).

The contract shared by both: ``now()`` is non-decreasing and starts at
``0.0`` for a fresh clock.
"""

from __future__ import annotations

import time

from ..exceptions import ConfigurationError

__all__ = ["VirtualClock", "WallClock"]


class VirtualClock:
    """Deterministic, manually driven time source.

    ``now()`` returns exactly what the harness last installed — no
    wall-clock reads, no drift.  ``set`` enforces monotonicity so a
    replayed trace cannot silently run time backwards.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, dt: float) -> float:
        """Move time forward by ``dt`` seconds; returns the new time."""
        if dt < 0:
            raise ConfigurationError(f"cannot advance by {dt} (< 0)")
        self._now += float(dt)
        return self._now

    def set(self, t: float) -> float:
        """Jump to absolute time ``t`` (must not move backwards)."""
        t = float(t)
        if t < self._now:
            raise ConfigurationError(
                f"virtual clock cannot move backwards: {t} < {self._now}"
            )
        self._now = t
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"VirtualClock(now={self._now!r})"


class WallClock:
    """Monotonic wall time, scaled into simulation seconds.

    ``time_scale`` simulation seconds elapse per wall second.  The
    paper's packs run for ~:math:`10^6`–:math:`10^7` simulated seconds,
    so the daemon defaults to a large scale: jobs progress visibly
    between two curl calls instead of over weeks.  ``time_scale=1``
    gives true real-time pacing.
    """

    def __init__(self, time_scale: float = 1.0e6):
        if time_scale <= 0:
            raise ConfigurationError(
                f"time_scale must be positive, got {time_scale}"
            )
        self.time_scale = float(time_scale)
        self._origin = time.monotonic()

    def now(self) -> float:
        return (time.monotonic() - self._origin) * self.time_scale

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"WallClock(time_scale={self.time_scale!r})"
