"""Time-unit helpers.

The paper mixes units: task lengths are reported in seconds and days
(Fig. 9), processor MTBFs in years (5 to 125 years).  Internally the whole
library works in **seconds**; these helpers perform the conversions at the
API boundary.
"""

from __future__ import annotations

__all__ = [
    "SECONDS_PER_HOUR",
    "SECONDS_PER_DAY",
    "SECONDS_PER_YEAR",
    "years",
    "days",
    "hours",
    "to_years",
    "to_days",
]

SECONDS_PER_HOUR: float = 3600.0
SECONDS_PER_DAY: float = 24.0 * SECONDS_PER_HOUR
#: Julian-ish year used throughout the resilience literature (365 days).
SECONDS_PER_YEAR: float = 365.0 * SECONDS_PER_DAY


def years(value: float) -> float:
    """Convert a duration expressed in years to seconds."""
    return value * SECONDS_PER_YEAR


def days(value: float) -> float:
    """Convert a duration expressed in days to seconds."""
    return value * SECONDS_PER_DAY


def hours(value: float) -> float:
    """Convert a duration expressed in hours to seconds."""
    return value * SECONDS_PER_HOUR


def to_years(seconds: float) -> float:
    """Convert a duration expressed in seconds to years."""
    return seconds / SECONDS_PER_YEAR


def to_days(seconds: float) -> float:
    """Convert a duration expressed in seconds to days."""
    return seconds / SECONDS_PER_DAY
