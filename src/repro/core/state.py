"""Mutable per-task scheduling state.

One :class:`TaskRuntime` per task tracks the paper's bookkeeping triple —
the remaining work fraction ``alpha_i`` (measured at ``tlastR_i``), the
time ``tlastR_i`` when the current periodic pattern (re)started, and the
expected finish ``tU_i`` — plus the current allocation ``sigma(i)`` and
simulation counters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..exceptions import CapacityError, SimulationError
from ..tasks import TaskSpec

__all__ = ["TaskRuntime"]


@dataclass(slots=True)
class TaskRuntime:
    """Scheduling state of one task (see Table 1 of the paper).

    Attributes
    ----------
    spec:
        The immutable task description.
    sigma:
        Current processor count ``sigma(i)`` (even, >= 2 while running,
        0 once completed).
    alpha:
        Remaining work fraction **as of** ``t_last``; only updated at
        events that touch this task.
    t_last:
        ``tlastR_i`` — when the task last (re)started its periodic
        pattern (initially 0; after a failure ``t + D + R``; after a
        redistribution ``t + RC + C``).
    t_expected:
        ``tU_i`` — current expected finish time (drives heuristic order).
    """

    spec: TaskSpec
    sigma: int = 0
    alpha: float = 1.0
    t_last: float = 0.0
    t_expected: float = math.inf
    completed: bool = False
    completion_time: float = math.nan
    failures: int = 0
    redistributions: int = 0
    checkpoint_time: float = 0.0  #: cumulated checkpoint overhead (diagnostics)
    rework: float = 0.0  #: cumulated lost-work fractions (diagnostics)

    @property
    def index(self) -> int:
        """Pack index of the task."""
        return self.spec.index

    def assign(self, sigma: int) -> None:
        """Set the allocation, enforcing the even/minimum invariants."""
        if sigma != 0 and (sigma < 2 or sigma % 2 != 0):
            raise CapacityError(
                f"task {self.index}: allocation must be 0 or an even count >= 2,"
                f" got {sigma}"
            )
        self.sigma = sigma

    def mark_completed(self, t: float) -> None:
        """Finalise the task at time ``t``."""
        if self.completed:
            raise SimulationError(f"task {self.index} completed twice")
        self.completed = True
        self.completion_time = t
        self.alpha = 0.0
        self.sigma = 0

    def busy_at(self, t: float) -> bool:
        """True while the task is recovering/redistributing (Alg. 2 line 15)."""
        return t <= self.t_last and not self.completed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        status = "done" if self.completed else f"sigma={self.sigma}"
        return (
            f"TaskRuntime(T{self.index + 1}, {status}, alpha={self.alpha:.3f},"
            f" tU={self.t_expected:.3g})"
        )
