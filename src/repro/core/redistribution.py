"""Redistribution cost model (Section 3.3).

Moving a task from ``j`` to ``k`` processors repartitions its ``m_i`` data
items.  The exchange is organised in *rounds*: each round is a perfect
parallel dispatch, i.e. a matching in the bipartite transfer graph, and by
König's theorem the minimum number of rounds equals the maximum degree of
that graph (Section 3.3.1, Fig. 3).

* Growing (``k > j``): every old processor sends to every one of the
  ``q = k - j`` newcomers, so the graph is ``K_{j,q}`` and the round count
  is ``max(j, k - j)`` (Eq. 7).
* General (grow or shrink, Eq. 9): ``max(min(j, k), |k - j|)``.

Each transfer carries ``1/(k j)`` of the data per edge; one round therefore
costs ``m_i / (k j)`` and the total redistribution cost is

.. math:: RC_i^{j \\to k} = \\max(\\min(j,k), |k-j|) \\cdot
          \\frac{1}{k} \\cdot \\frac{m_i}{j}.

All functions are vectorised over ``k`` so the heuristics can score every
candidate allocation in one shot.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from ..exceptions import CapacityError

__all__ = [
    "redistribution_rounds",
    "redistribution_cost",
    "redistribution_cost_vector",
    "redistribution_cost_matrix",
    "transfer_volume_per_round",
]

ArrayLike = Union[int, float, np.ndarray]


def _validate_counts(j: int, k: ArrayLike) -> np.ndarray:
    if j < 1:
        raise CapacityError(f"source processor count must be >= 1, got {j}")
    k_arr = np.asarray(k)
    if np.any(k_arr < 1):
        raise CapacityError("target processor count must be >= 1")
    return k_arr.astype(float)


def redistribution_rounds(j: int, k: ArrayLike) -> ArrayLike:
    """Number of communication rounds ``max(min(j,k), |k-j|)`` (Eqs. 7/9).

    For a pure growth this equals the edge-chromatic number
    ``chi'(K_{j, k-j}) = max(j, k-j)`` of the transfer graph; the general
    form also covers shrinking, and is 0 when ``k == j`` (nothing moves).
    """
    k_arr = _validate_counts(j, k)
    rounds = np.where(
        k_arr == j, 0.0, np.maximum(np.minimum(j, k_arr), np.abs(k_arr - j))
    )
    if np.ndim(k) == 0:
        return int(rounds)
    return rounds.astype(int)


def transfer_volume_per_round(m: float, j: int, k: ArrayLike) -> ArrayLike:
    """Data moved by one processor in one round: ``m / (k j)``."""
    k_arr = _validate_counts(j, k)
    result = m / (k_arr * j)
    return float(result) if np.ndim(k) == 0 else result


def redistribution_cost(m: float, j: int, k: int) -> float:
    """``RC_i^{j->k}`` for a task with ``m`` data items (scalar form).

    Returns 0 when ``k == j`` (the paper only charges actual moves).
    The operations mirror :func:`redistribution_cost_vector` term for
    term so scalar and vectorised scores agree bit for bit.
    """
    if j < 1:
        raise CapacityError(f"source processor count must be >= 1, got {j}")
    if k < 1:
        raise CapacityError("target processor count must be >= 1")
    if k == j:
        return 0.0
    rounds = float(max(min(j, k), abs(k - j)))
    return rounds * (m / j) / k


def redistribution_cost_vector(m: float, j: int, k: np.ndarray) -> np.ndarray:
    """``RC_i^{j->k}`` for every target count in ``k`` (vectorised)."""
    k_arr = _validate_counts(j, k)
    rounds = np.where(
        k_arr == j, 0.0, np.maximum(np.minimum(j, k_arr), np.abs(k_arr - j))
    )
    return rounds * (m / j) / k_arr


def redistribution_cost_matrix(
    m: np.ndarray, j: np.ndarray, k: np.ndarray
) -> np.ndarray:
    """``RC_i^{j_i -> k}`` for several source tasks over one target grid.

    Row ``i`` describes a task with ``m[i]`` data items currently on
    ``j[i]`` processors; columns sweep the candidate counts ``k``.  The
    operations mirror :func:`redistribution_cost_vector` term for term,
    so row ``i`` equals ``redistribution_cost_vector(m[i], j[i], k)``
    bit for bit — the decision kernels (:mod:`repro.core.kernels`) rely
    on that to stay byte-identical to the scalar scan loops.
    """
    m_arr = np.asarray(m, dtype=float)
    j_arr = np.asarray(j, dtype=float)
    if np.any(j_arr < 1):
        raise CapacityError("source processor count must be >= 1")
    k_arr = np.asarray(k)
    if np.any(k_arr < 1):
        raise CapacityError("target processor count must be >= 1")
    k_arr = k_arr.astype(float)
    j_col = j_arr[:, None]
    rounds = np.where(
        k_arr == j_col,
        0.0,
        np.maximum(np.minimum(j_col, k_arr), np.abs(k_arr - j_col)),
    )
    return rounds * (m_arr / j_arr)[:, None] / k_arr
