"""Deterministic progress accounting between events (Section 3.3.2).

Between two scheduler events, a task on ``j`` processors alternates
``tau - C`` of useful work with a checkpoint of length ``C``.  The paper
measures elapsed progress in two ways:

* **elapsed** (task still running at ``t``): the work fraction is
  ``(t - tlastR - N C) / t_ff`` with ``N = floor((t - tlastR)/tau)``
  completed checkpoints — clock time minus checkpoint overhead;
* **checkpointed** (a failure at ``t`` rolls back to the last
  checkpoint): only the ``N`` full periods survive, giving
  ``N (tau - C) / t_ff``.

The third quantity is the *projected finish*: the deterministic
fault-free completion ``tlastR + alpha t_ff + N^ff(alpha) C`` used by the
simulator as the completion event time.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..resilience.expected_time import ExpectedTimeModel, checkpoint_count

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from .state import TaskRuntime

__all__ = [
    "Residual",
    "elapsed_work_fraction",
    "checkpointed_work_fraction",
    "projected_finish",
    "remaining_after_elapsed",
    "remaining_after_failure",
    "remaining_after_failure_from_values",
    "remaining_at_batch",
    "remaining_from_arrays",
    "residual_workload",
]


def elapsed_work_fraction(
    t: float, t_last: float, t_ff: float, tau: float, cost: float
) -> float:
    """Work fraction accomplished between ``t_last`` and ``t`` (no failure).

    Clamped below at 0 (``t`` may precede ``t_last`` while a task is busy
    recovering or redistributing).
    """
    elapsed = t - t_last
    if elapsed <= 0.0:
        return 0.0
    n_ckpt = math.floor(elapsed / tau)
    useful = elapsed - n_ckpt * cost
    return max(0.0, useful / t_ff)


def checkpointed_work_fraction(
    t: float, t_last: float, t_ff: float, tau: float, cost: float
) -> float:
    """Work fraction surviving a failure at ``t`` (last checkpoint wins)."""
    elapsed = t - t_last
    if elapsed <= 0.0:
        return 0.0
    n_ckpt = math.floor(elapsed / tau)
    return max(0.0, n_ckpt * (tau - cost) / t_ff)


def projected_finish(
    t_last: float, alpha: float, t_ff: float, tau: float, cost: float
) -> float:
    """Deterministic fault-free completion time of the remaining work.

    ``t_last + alpha t_ff + N^ff(alpha) C`` — the remaining work plus the
    checkpoints interleaved with it (Eq. 2).  When the remaining work is an
    exact multiple of the period the trailing checkpoint is not needed and
    is elided.
    """
    if alpha <= 0.0:
        return t_last
    work = alpha * t_ff
    n_ff = checkpoint_count(alpha, t_ff, tau, cost)
    # Exact multiple: the final checkpoint after the last period is useless.
    if n_ff > 0 and math.isclose(work, n_ff * (tau - cost), rel_tol=0.0, abs_tol=1e-9):
        n_ff -= 1
    return t_last + work + n_ff * cost


def remaining_after_elapsed(
    model: ExpectedTimeModel, i: int, j: int, alpha: float, t: float, t_last: float
) -> float:
    """New remaining fraction of task ``i`` after running until ``t``.

    Uses the per-(task, j) grid of ``model`` for ``t_ff``/``tau``/``C``;
    the result is clamped to ``[0, alpha]``.
    """
    grid = model.grid(i)
    slot = grid.slot(j)
    done = elapsed_work_fraction(
        t, t_last, float(grid.t_ff[slot]), float(grid.tau[slot]), float(grid.cost[slot])
    )
    # The paper's fraction formula treats an in-progress checkpoint as work
    # (it only subtracts *completed* checkpoints), so near the task's end
    # `done` may overshoot `alpha` by up to C/t_ff.  Clamp, as the paper
    # implicitly does.
    return min(alpha, max(0.0, alpha - done))


def remaining_at_batch(
    model: ExpectedTimeModel,
    runtimes: Sequence["TaskRuntime"],
    t: float,
) -> np.ndarray:
    """``alpha^t_i`` of every runtime at once (vectorised Alg. 3 line 8).

    The batched form of the heuristics' ``remaining_at``: one fused
    elapsed-work pass over all active tasks instead of a scalar
    :func:`remaining_after_elapsed` call per task.  Entry ``r`` equals
    ``remaining_after_elapsed(model, rt.index, rt.sigma, rt.alpha, t,
    rt.t_last)`` bit for bit — the decision kernels
    (:mod:`repro.core.kernels`) rely on that equality.
    """
    n = len(runtimes)
    t_ff = np.empty(n)
    tau = np.empty(n)
    cost = np.empty(n)
    alpha = np.empty(n)
    t_last = np.empty(n)
    for row, rt in enumerate(runtimes):
        grid = model.grid(rt.index)
        slot = grid.slot(rt.sigma)
        t_ff[row] = grid.t_ff[slot]
        tau[row] = grid.tau[slot]
        cost[row] = grid.cost[slot]
        alpha[row] = rt.alpha
        t_last[row] = rt.t_last
    return remaining_from_arrays(alpha, t_last, t_ff, tau, cost, t)


def remaining_from_arrays(
    alpha: np.ndarray,
    t_last: np.ndarray,
    t_ff: np.ndarray,
    tau: np.ndarray,
    cost: np.ndarray,
    t: float,
) -> np.ndarray:
    """The vectorised core of :func:`remaining_at_batch`, pre-gathered.

    Row-level entry point for callers that already hold the per-task
    ``t_ff``/``tau``/``C`` values at the current allocation (the
    decision-state engine mirrors them across events and fancy-indexes
    the active subset).  Every operation is elementwise, so a call over
    any row subset is bit-identical to the same rows of a full
    :func:`remaining_at_batch` pass.
    """
    elapsed = t - t_last
    n_ckpt = np.floor(elapsed / tau)
    useful = elapsed - n_ckpt * cost
    done = np.maximum(0.0, useful / t_ff)
    done[elapsed <= 0.0] = 0.0
    return np.minimum(alpha, np.maximum(0.0, alpha - done))


class Residual:
    """Frozen snapshot of one live task at a re-pack probe time.

    ``alpha`` is the remaining work fraction at the probe; ``stall`` the
    blackout time still to serve (a busy task — recovering,
    redistributing or checkpointing — cannot restart its pattern before
    ``t + stall``); ``sigma`` the current allocation (the ``j_init`` of
    any Eq. 4 redistribution the re-pack decides); ``t_last`` the
    absolute pattern-restart time the task carries, so an allocation
    left unchanged resumes bit-identically.
    """

    __slots__ = ("alpha", "stall", "sigma", "t_last")

    def __init__(self, alpha: float, stall: float, sigma: int, t_last: float):
        object.__setattr__(self, "alpha", alpha)
        object.__setattr__(self, "stall", stall)
        object.__setattr__(self, "sigma", sigma)
        object.__setattr__(self, "t_last", t_last)

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("Residual is immutable")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Residual(alpha={self.alpha!r}, stall={self.stall!r}, "
            f"sigma={self.sigma}, t_last={self.t_last!r})"
        )


def residual_workload(
    model: ExpectedTimeModel,
    runtimes: Sequence["TaskRuntime"],
    t: float,
) -> "dict[int, Residual]":
    """Residual workload of every uncompleted runtime at time ``t``.

    The rolling-horizon extraction: at an epoch boundary the online
    service reads the remaining fraction of each live task off the
    simulator state and re-co-schedules the residuals as a fresh pack.
    A task still inside a blackout window (``t < t_last``) has already
    banked its post-rollback ``alpha`` — it carries that fraction plus
    the unserved stall; a running task subtracts the useful work done
    since its pattern restart (:func:`remaining_after_elapsed`, the same
    arithmetic as the in-run heuristics' ``alpha^t_i``).
    """
    residuals = {}
    for rt in runtimes:
        if rt.completed:
            continue
        i = rt.index
        if t < rt.t_last:
            residuals[i] = Residual(
                rt.alpha, rt.t_last - t, rt.sigma, rt.t_last
            )
        else:
            alpha_t = remaining_after_elapsed(
                model, i, rt.sigma, rt.alpha, t, rt.t_last
            )
            residuals[i] = Residual(alpha_t, 0.0, rt.sigma, rt.t_last)
    return residuals


def remaining_after_failure(
    model: ExpectedTimeModel, i: int, j: int, alpha: float, t: float, t_last: float
) -> float:
    """New remaining fraction of task ``i`` after a failure at ``t``.

    Only work up to the last completed checkpoint survives (Alg. 2 line 24).
    """
    grid = model.grid(i)
    slot = grid.slot(j)
    return remaining_after_failure_from_values(
        alpha, t, t_last,
        float(grid.t_ff[slot]), float(grid.tau[slot]), float(grid.cost[slot]),
    )


def remaining_after_failure_from_values(
    alpha: float, t: float, t_last: float,
    t_ff: float, tau: float, cost: float,
) -> float:
    """:func:`remaining_after_failure` with the grid values pre-gathered.

    Scalar entry point for callers that mirror ``t_ff``/``tau``/``C`` at
    the current allocation across events (the simulator's per-failure
    rollback) — bit-identical to the model-resolving form over the same
    values, since both run the exact same operations.
    """
    done = checkpointed_work_fraction(t, t_last, t_ff, tau, cost)
    return min(alpha, max(0.0, alpha - done))
