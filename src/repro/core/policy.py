"""Scheduling policies: (completion heuristic, failure heuristic) pairs.

Section 6.2 evaluates four combinations — ``IteratedGreedy-EndGreedy``,
``IteratedGreedy-EndLocal``, ``ShortestTasksFirst-EndGreedy`` and
``ShortestTasksFirst-EndLocal`` — plus the no-redistribution baseline and,
in the fault-free figures (5-6), the two end-of-task heuristics alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..exceptions import ConfigurationError
from .heuristics.base import CompletionHeuristic, FailureHeuristic
from .heuristics.end_local import EndLocal
from .heuristics.iterated_greedy import EndGreedy, IteratedGreedy
from .heuristics.stf import ShortestTasksFirst

__all__ = ["Policy", "POLICIES", "get_policy", "PAPER_POLICY_LABELS"]


@dataclass(frozen=True)
class Policy:
    """A named pair of redistribution heuristics.

    Either member may be ``None`` (no redistribution at that event kind).
    """

    name: str
    completion: Optional[CompletionHeuristic] = None
    failure: Optional[FailureHeuristic] = None

    @property
    def redistributes(self) -> bool:
        """True if the policy performs any redistribution at all."""
        return self.completion is not None or self.failure is not None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        comp = self.completion.name if self.completion else "none"
        fail = self.failure.name if self.failure else "none"
        return f"Policy({self.name!r}, end={comp}, failure={fail})"


def _build_policies() -> Dict[str, Policy]:
    return {
        "no-redistribution": Policy("no-redistribution"),
        "ig-eg": Policy("ig-eg", EndGreedy(), IteratedGreedy()),
        "ig-el": Policy("ig-el", EndLocal(), IteratedGreedy()),
        "stf-eg": Policy("stf-eg", EndGreedy(), ShortestTasksFirst()),
        "stf-el": Policy("stf-el", EndLocal(), ShortestTasksFirst()),
        "end-local": Policy("end-local", EndLocal(), None),
        "end-greedy": Policy("end-greedy", EndGreedy(), None),
    }


#: All built-in policies, keyed by short name.
POLICIES: Dict[str, Policy] = _build_policies()

#: Mapping from short names to the labels used in the paper's figures.
PAPER_POLICY_LABELS: Dict[str, str] = {
    "no-redistribution": "Without RC",
    "ig-eg": "IteratedGreedy-EndGreedy",
    "ig-el": "IteratedGreedy-EndLocal",
    "stf-eg": "ShortestTasksFirst-EndGreedy",
    "stf-el": "ShortestTasksFirst-EndLocal",
    "end-local": "With RC (local decisions)",
    "end-greedy": "With RC (greedy)",
}


def get_policy(name: str) -> Policy:
    """Look up a policy by its short name.

    >>> get_policy("ig-el").failure.name
    'iterated-greedy'
    """
    try:
        return POLICIES[name]
    except KeyError:
        known = ", ".join(sorted(POLICIES))
        raise ConfigurationError(
            f"unknown policy {name!r}; known policies: {known}"
        ) from None
