"""Optimal schedule without redistribution (Section 4.1, Algorithm 1).

Greedy pair-wise allocation: start every task at 2 processors and, while
processors remain, give one buddy pair to the task with the largest
expected execution time ``t^R_{i,sigma(i)}(1)`` — but only if even granting
it *all* remaining processors would strictly improve it (Algorithm 1,
line 9).  Otherwise the remaining processors are deliberately kept free
for later redistribution.  Theorem 1 proves this minimises the expected
makespan when no redistribution is allowed; the complexity is
``O(p log n)``.

Both decision kernels are offered (see :mod:`repro.core.kernels`): the
``"array"`` default scores the whole growth loop against the one
:meth:`~repro.resilience.expected_time.ExpectedTimeModel.profile_batch`
block — pure index arithmetic, zero model calls inside the loop — while
``"scalar"`` keeps the per-probe accessor calls as the bit-identical
reference.
"""

from __future__ import annotations

import heapq
from typing import Dict, Optional, Sequence

from ..exceptions import CapacityError
from ..resilience.expected_time import ExpectedTimeModel
from .kernels import ensure_kernel

__all__ = ["optimal_schedule", "expected_makespan"]


def optimal_schedule(
    model: ExpectedTimeModel,
    p: int,
    indices: Optional[Sequence[int]] = None,
    alpha: float = 1.0,
    kernel: str = "array",
    alphas: Optional[Sequence[float]] = None,
) -> Dict[int, int]:
    """Algorithm 1: optimal no-redistribution allocation.

    Parameters
    ----------
    model:
        Expected-time model for the pack (supplies ``t^R_{i,j}(alpha)``).
    p:
        Processors available to this pack.
    indices:
        Task subset to schedule (defaults to the whole pack).
    alpha:
        Remaining work fraction used for every task (1 at pack start).
    kernel:
        ``"array"`` (default) runs the growth loop as index arithmetic
        over the batched envelope block; ``"scalar"`` keeps the
        per-probe model calls.  Both produce identical allocations.
    alphas:
        Per-task remaining fractions, one per entry of ``indices``
        (overrides ``alpha``).  This is the rolling-horizon form: the
        online service re-packs *residual* workloads, so each task is
        scored at its own remaining fraction.  The growth loop is
        unchanged — only the envelope rows differ (one
        :meth:`~repro.resilience.expected_time.ExpectedTimeModel.
        profile_matrix` evaluation instead of ``profile_batch``).

    Returns
    -------
    dict mapping task index to its (even) processor count.

    Raises
    ------
    CapacityError
        If ``p < 2 n`` — the buddy scheme needs one pair per task.
    """
    ensure_kernel(kernel)
    if indices is None:
        indices = range(len(model.pack))
    indices = list(indices)
    n = len(indices)
    if p < 2 * n:
        raise CapacityError(
            f"Algorithm 1 needs p >= 2n: p={p}, n={n} "
            "(each task requires one buddy pair)"
        )
    if alphas is not None and len(alphas) != n:
        raise CapacityError(
            f"alphas must match indices: {len(alphas)} != {n}"
        )
    sigma: Dict[int, int] = {i: 2 for i in indices}
    available = p - 2 * n

    # Max-heap on expected time; ties broken by task index for determinism.
    # One batched profile evaluation scores every task at j=2 (slot 0); the
    # array kernel keeps reading the block, the scalar kernel re-reads the
    # (now warm) profile cache through the scalar accessors.
    if alphas is None:
        block = model.profile_batch(indices, alpha)
    else:
        block = model.profile_matrix(indices, alphas)
    heap = [(-float(block[pos, 0]), i) for pos, i in enumerate(indices)]
    heapq.heapify(heap)

    if kernel == "scalar":
        alpha_of = (
            {i: alpha for i in indices}
            if alphas is None
            else {i: float(alphas[pos]) for pos, i in enumerate(indices)}
        )
        while available >= 2 and heap:
            neg_current, i = heapq.heappop(heap)
            current = -neg_current
            p_max = sigma[i] + available
            # Line 9: can the longest task still be improved at all?
            if current > model.expected_time(i, p_max, alpha_of[i]):
                sigma[i] += 2
                available -= 2
                heapq.heappush(
                    heap, (-model.expected_time(i, sigma[i], alpha_of[i]), i)
                )
            else:
                # No task can improve the makespan further: keep the rest
                # free.
                available = 0
        return sigma

    pos_of = {i: pos for pos, i in enumerate(indices)}
    width = block.shape[1]
    while available >= 2 and heap:
        neg_current, i = heapq.heappop(heap)
        row = block[pos_of[i]]
        p_max = sigma[i] + available
        slot_max = (p_max >> 1) - 1
        if (p_max & 1) or slot_max >= width:
            # Out-of-grid probe: raise the scalar path's CapacityError.
            model.grid(i).slot(p_max)
        # Line 9: can the longest task still be improved at all?
        if -neg_current > float(row[slot_max]):
            sigma[i] += 2
            available -= 2
            heapq.heappush(heap, (-float(row[(sigma[i] >> 1) - 1]), i))
        else:
            # No task can improve the makespan further: keep the rest free.
            available = 0
    return sigma


def expected_makespan(
    model: ExpectedTimeModel, sigma: Dict[int, int], alpha: float = 1.0
) -> float:
    """Expected makespan ``max_i t^R_{i,sigma(i)}(alpha)`` of an allocation.

    One :meth:`~repro.resilience.expected_time.ExpectedTimeModel.
    profile_batch` evaluation scores every task; only the (memoised)
    slot arithmetic stays per-task.
    """
    indices = list(sigma)
    block = model.profile_batch(indices, alpha)
    return max(
        float(block[pos, model.grid(i).slot(sigma[i])])
        for pos, i in enumerate(indices)
    )
