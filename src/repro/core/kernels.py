"""Array-based decision kernels: the per-event scheduling hot path.

Every simulated failure or completion re-runs one of the paper's
scheduling algorithms (Algorithm 1 at pack start, Algorithms 3-5 at
redistribution points).  Their growth/scan loops score *candidate*
allocations with the Section 3.3 finish-time formula

.. math::

    t_E(k) = t + \\text{stall}_i + RC_i^{\\sigma_{init}(i) \\to k}
             + C_{i,k} + t^R_{i,k}(\\alpha^t_i),

and the seed evaluated that formula through scalar model calls inside
the loops.  This module precomputes the full candidate finish matrix
``t_E[i, k]`` for a decision point in one fused pass, so the loops
become pure index arithmetic with **zero model calls**.

The alpha-fixed-per-decision invariant
--------------------------------------
Within one decision point (a rebuild at time ``t``) every quantity the
algorithms score candidates with is *fixed per task*:

* ``alpha^t_i`` — the remaining work, measured exactly once at ``t``
  (Alg. 3 line 8 / Alg. 4-5 line 4); later iterations of the same
  decision reuse that measurement, they never re-measure;
* ``stall_i`` — ``D + R`` for the task struck by the failure, 0 for
  everyone else; constant for the whole decision;
* ``sigma_init(i)`` — the allocation the redistribution cost is charged
  *from*; Algorithms 3-5 always charge from the allocation held when
  the event fired, even after several buddy pairs moved.

Only the candidate target ``k`` varies.  The matrix ``t_E[i, k]`` is
therefore a pure function of the decision point and can be built once —
one batched remaining-work pass (:func:`~repro.core.progress.
remaining_at_batch`), one fused profile evaluation with per-task alphas
(:meth:`~repro.resilience.expected_time.ExpectedTimeModel.
profile_matrix`), one redistribution-cost matrix
(:func:`~repro.core.redistribution.redistribution_cost_matrix`) and one
checkpoint-cost gather — and then consulted by the loops.

Every entry is bit-identical to the scalar helpers
(:func:`~repro.core.heuristics.base.candidate_finish_time` /
``candidate_finish_times``), operation for operation, so the
``decision_kernel="array"`` executions match ``"scalar"`` byte for byte
(pinned by ``tests/test_decision_kernels.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..exceptions import ConfigurationError, SimulationError
from ..resilience.expected_time import ExpectedTimeModel
from .progress import remaining_at_batch
from .redistribution import (
    redistribution_cost_matrix,
    redistribution_cost_vector,
)
from .state import TaskRuntime

__all__ = [
    "KERNELS",
    "ensure_kernel",
    "faulty_stall",
    "DecisionMatrix",
    "decision_matrix",
]

#: Decision-kernel modes: ``"array"`` is the batched fast path,
#: ``"scalar"`` the seed-style reference (mirroring ``event_queue``).
KERNELS = ("array", "scalar")

_EMPTY = np.empty(0)


def ensure_kernel(kernel: str) -> str:
    """Validate a ``decision_kernel`` mode name."""
    if kernel not in KERNELS:
        raise ConfigurationError(
            f"decision_kernel must be one of {KERNELS}, got {kernel!r}"
        )
    return kernel


def faulty_stall(rt: TaskRuntime, t: float) -> float:
    """``D + R`` already charged to the struck task by the skeleton.

    The skeleton sets ``t_last = t + D + R`` before calling the failure
    heuristic, so the stall is recovered as ``t_last - t`` (robust to any
    configured downtime/recovery values).
    """
    stall = rt.t_last - t
    if stall < 0:
        raise SimulationError(
            f"faulty task {rt.index} has t_last in the past; "
            "skeleton did not roll it back"
        )
    return stall


@dataclass
class DecisionMatrix:
    """Precomputed candidate finishes ``t_E[row, slot]`` of one decision.

    Column ``slot`` corresponds to the even count ``k = 2 (slot + 1)``
    (the model's processor grid).  ``finishes[row, slot]`` holds the
    Section 3.3 value ``(t + stall) + rc_factor * RC^{j_init -> k} +
    (C_{i,k} + t^R_{i,k}(alpha_t))`` with exactly the scalar helpers'
    operation order, so reads off this matrix are bit-identical to
    ``candidate_finish_time(s)``.

    Rows are either all materialised up front (one fused pass — right
    for Algorithm 5, which scores every task) or on first touch
    (``lazy`` — right for Algorithms 3-4, which only ever consult a
    sparse task subset).  Lazy and eager rows are bit-identical.
    """

    model: ExpectedTimeModel
    t: float
    indices: List[int]
    j_init: np.ndarray      #: (n,) source allocation per row
    alpha_t: np.ndarray     #: (n,) remaining work at the decision time
    stall: np.ndarray       #: (n,) D + R for the struck task, else 0
    finishes: np.ndarray    #: (n, grid) candidate finish matrix
    #: unchanged-allocation finishes (Alg. 5 lines 16/23), when built
    keep: Optional[np.ndarray] = None
    #: per-row materialisation flags; ``None`` when eagerly built
    pending: Optional[np.ndarray] = None
    _row_of: Dict[int, int] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._row_of = {i: row for row, i in enumerate(self.indices)}

    def _row(self, i: int) -> int:
        """Row of task ``i``, materialised on first touch in lazy mode."""
        row = self._row_of[i]
        if self.pending is not None and self.pending[row]:
            model = self.model
            grid = model.grid(i)
            profile = model.profile(i, float(self.alpha_t[row]))
            rc = model.rc_factor * redistribution_cost_vector(
                model.pack[i].size, int(self.j_init[row]), grid.j
            )
            self.finishes[row] = (
                (self.t + float(self.stall[row])) + rc
                + (grid.cost + profile)
            )
            self.pending[row] = False
        return row

    # -- per-task decision inputs -----------------------------------------
    def init_of(self, i: int) -> int:
        """``sigma_init(i)`` — the allocation the RC is charged from."""
        return int(self.j_init[self._row_of[i]])

    def alpha_of(self, i: int) -> float:
        """``alpha^t_i`` measured at the decision time."""
        return float(self.alpha_t[self._row_of[i]])

    def stall_of(self, i: int) -> float:
        """``D + R`` for the struck task, 0 otherwise."""
        return float(self.stall[self._row_of[i]])

    # -- candidate reads ---------------------------------------------------
    def _slot(self, k: int) -> int:
        slot = (k >> 1) - 1
        if k < 2 or (k & 1) or slot >= self.finishes.shape[1]:
            raise SimulationError(
                f"candidate count {int(k)} exceeds the platform grid"
            )
        return slot

    def finish(self, i: int, k: int) -> float:
        """``t_E(k)`` — the ``candidate_finish_time`` value, by index."""
        return float(self.finishes[self._row(i), self._slot(k)])

    def finish_range(self, i: int, lo: int, hi: int) -> np.ndarray:
        """``t_E`` over the even candidates ``lo, lo+2, ..., <= hi``.

        The ``candidate_finish_times`` vector for
        ``targets = arange(lo, hi + 1, 2)`` (``lo`` even, >= 2), as a
        view into the matrix — callers must not write through it; empty
        when ``lo > hi``.
        """
        if hi < lo:
            return _EMPTY
        if lo < 2 or (lo & 1):
            raise SimulationError(
                f"candidate range must start at an even count >= 2, "
                f"got {int(lo)}"
            )
        lo_slot = (lo >> 1) - 1
        hi_slot = (hi >> 1) - 1  # slot of the largest even count <= hi
        if hi_slot >= self.finishes.shape[1]:
            raise SimulationError(
                f"candidate count {int(hi_slot + 1) << 1} exceeds the "
                "platform grid"
            )
        return self.finishes[self._row(i), lo_slot:hi_slot + 1]

    # -- Algorithm 5's keep-running special case ---------------------------
    def _keep_column(self) -> np.ndarray:
        if self.keep is None:
            raise ConfigurationError(
                "this DecisionMatrix was built without with_keep=True; "
                "the keep-running finishes are not available"
            )
        return self.keep

    def keep_finish(self, i: int) -> float:
        """Finish if ``i`` keeps its allocation (no cost, old bookkeeping)."""
        return float(self._keep_column()[self._row_of[i]])

    def rebuild_finish(self, i: int, k: int) -> float:
        """Algorithm 5's finish: unchanged allocation keeps running."""
        if k == int(self.j_init[self._row_of[i]]):
            return self.keep_finish(i)
        return self.finish(i, k)

    def rebuild_range(self, i: int, lo: int, hi: int) -> np.ndarray:
        """:meth:`finish_range` with the keep-running candidate patched."""
        fin = self.finish_range(i, lo, hi)
        j_init = int(self.j_init[self._row_of[i]])
        if fin.size and lo <= j_init <= hi:
            fin = fin.copy()
            fin[(j_init - lo) >> 1] = self._keep_column()[self._row_of[i]]
        return fin


def decision_matrix(
    model: ExpectedTimeModel,
    t: float,
    tasks: Sequence[TaskRuntime],
    faulty: Optional[int] = None,
    *,
    with_keep: bool = False,
    lazy: bool = False,
) -> DecisionMatrix:
    """Build the full candidate matrix for one decision point.

    ``tasks`` must be non-empty; ``faulty`` marks the struck task (its
    ``alpha`` was already rolled back by the simulator skeleton and its
    stall is recovered from ``t_last``).  ``with_keep`` additionally
    evaluates the unchanged-allocation finishes Algorithm 5 patches in
    (one extra batched profile gather at the tasks' *live* alphas).
    ``lazy`` defers each row's materialisation to its first touch —
    right when the algorithm only consults a sparse task subset
    (Algorithm 4 touches the faulty task plus a few donors); the
    decision inputs (``alpha_t``/``stall``/``j_init``) are still
    measured up front, preserving the alpha-fixed-per-decision
    invariant.
    """
    indices = [rt.index for rt in tasks]
    n = len(indices)
    j_init = np.fromiter((rt.sigma for rt in tasks), dtype=np.int64, count=n)
    alpha_t = remaining_at_batch(model, tasks, t)
    stall = np.zeros(n)
    if faulty is not None:
        row = indices.index(faulty)
        rt_f = tasks[row]
        alpha_t[row] = rt_f.alpha  # already rolled back by the skeleton
        stall[row] = faulty_stall(rt_f, t)
    width = model.j_grid.size
    if lazy:
        finishes = np.empty((n, width))
        pending: Optional[np.ndarray] = np.ones(n, dtype=bool)
    else:
        profiles = model.profile_matrix(indices, alpha_t)
        cost = np.stack([model.grid(i).cost for i in indices])
        sizes = np.fromiter(
            (model.pack[i].size for i in indices), dtype=float, count=n
        )
        rc = model.rc_factor * redistribution_cost_matrix(
            sizes, j_init, model.j_grid
        )
        finishes = (t + stall)[:, None] + rc + (cost + profiles)
        pending = None
    keep = None
    if with_keep:
        alpha_live = np.fromiter(
            (rt.alpha for rt in tasks), dtype=float, count=n
        )
        live = model.profile_matrix(indices, alpha_live)
        t_last = np.fromiter(
            (rt.t_last for rt in tasks), dtype=float, count=n
        )
        keep = t_last + live[np.arange(n), (j_init >> 1) - 1]
    return DecisionMatrix(
        model=model,
        t=t,
        indices=indices,
        j_init=j_init,
        alpha_t=alpha_t,
        stall=stall,
        finishes=finishes,
        keep=keep,
        pending=pending,
    )
