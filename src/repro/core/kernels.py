"""Array-based decision kernels: the per-event scheduling hot path.

Every simulated failure or completion re-runs one of the paper's
scheduling algorithms (Algorithm 1 at pack start, Algorithms 3-5 at
redistribution points).  Their growth/scan loops score *candidate*
allocations with the Section 3.3 finish-time formula

.. math::

    t_E(k) = t + \\text{stall}_i + RC_i^{\\sigma_{init}(i) \\to k}
             + C_{i,k} + t^R_{i,k}(\\alpha^t_i),

and the seed evaluated that formula through scalar model calls inside
the loops.  This module precomputes the full candidate finish matrix
``t_E[i, k]`` for a decision point in one fused pass, so the loops
become pure index arithmetic with **zero model calls**.

The alpha-fixed-per-decision invariant
--------------------------------------
Within one decision point (a rebuild at time ``t``) every quantity the
algorithms score candidates with is *fixed per task*:

* ``alpha^t_i`` — the remaining work, measured exactly once at ``t``
  (Alg. 3 line 8 / Alg. 4-5 line 4); later iterations of the same
  decision reuse that measurement, they never re-measure;
* ``stall_i`` — ``D + R`` for the task struck by the failure, 0 for
  everyone else; constant for the whole decision;
* ``sigma_init(i)`` — the allocation the redistribution cost is charged
  *from*; Algorithms 3-5 always charge from the allocation held when
  the event fired, even after several buddy pairs moved.

Only the candidate target ``k`` varies.  The matrix ``t_E[i, k]`` is
therefore a pure function of the decision point and can be built once —
one batched remaining-work pass (:func:`~repro.core.progress.
remaining_at_batch`), one fused profile evaluation with per-task alphas
(:meth:`~repro.resilience.expected_time.ExpectedTimeModel.
profile_matrix`), one redistribution-cost matrix
(:func:`~repro.core.redistribution.redistribution_cost_matrix`) and one
checkpoint-cost gather — and then consulted by the loops.

Every entry is bit-identical to the scalar helpers
(:func:`~repro.core.heuristics.base.candidate_finish_time` /
``candidate_finish_times``), operation for operation, so the
``decision_kernel="array"`` executions match ``"scalar"`` byte for byte
(pinned by ``tests/test_decision_kernels.py``).

The decision-state layer: delta-patching across events
------------------------------------------------------
A single simulated event changes at most one task's remaining work
(the struck task's rollback) and a handful of allocations (the moves
the heuristic grants), yet the fresh build above re-runs every batched
pass for every task at every decision point.  :class:`DecisionCache`
is the persistent layer on top: one cache lives for the whole
``Simulator.run`` and keeps, per task,

* the checkpoint-cost row ``C_{i,k}`` (constant for the run),
* the redistribution-cost row ``RC^{sigma(i) -> k}`` (valid until
  ``sigma(i)`` changes),
* the Algorithm-5 keep-running finish (valid until ``alpha``/
  ``tlastR``/``sigma`` change),
* and the mirrors of ``alpha``/``tlastR``/``sigma`` plus the grid
  values at the current allocation that the remaining-work pass needs,

and delta-patches only the stale rows of the persistent candidate
finish matrix at each decision point.  The invariants this rests on
(recorded here because every patch rule derives from them):

1. **Dirty bits are the only mutation channel.**  The simulator marks a
   task dirty exactly when its ``alpha``/``t_last``/``sigma`` change —
   the failure rollback (remaining work re-measured, stall applied) and
   the post-heuristic commit (``sigma_init`` changed, checkpoint
   taken).  A clean task's mirrors therefore equal its live runtime
   fields, so rows rebuilt from mirrors are bit-identical to rows
   rebuilt from the runtimes.
2. **Row value = pure function of (task state, t, stall).**  A finish
   row is stale iff its task is dirty, the decision time moved, or its
   stall changed; otherwise the row from the previous decision is
   reused verbatim — this is what lets the consecutive sub-decisions
   of one event (the early-release pass followed by the failure
   rebuild at the same ``t``) share one patched matrix.
3. **Patches are operation-identical to the fresh build.**  Stale rows
   are recombined with exactly the fresh build's operation order
   (``((t + stall) + RC) + (C + profile)``), the profile rows come
   from :meth:`~repro.resilience.expected_time.ExpectedTimeModel.
   profile_rows_into` (bit-identical to ``profile_matrix``), and the
   remaining-work pass is :func:`~repro.core.progress.
   remaining_from_arrays` over mirror subsets (bit-identical to
   ``remaining_at_batch``).  Hence ``decision_state="incremental"``
   executions match the fresh-build ``"rebuild"`` reference byte for
   byte, mirroring the ``decision_kernel`` / ``event_queue`` pairs.

All scratch blocks (finish matrix, combine buffers, rebuild blocks)
are preallocated once per cache and reused for every decision;
:func:`process_decision_snapshot` exposes the patched/reused row and
scratch-allocation counts that :class:`repro.engine.EngineStats`
aggregates across worker processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..exceptions import ConfigurationError, SimulationError
from ..resilience.expected_time import _ALPHA_SCALE, ExpectedTimeModel
from .progress import remaining_at_batch, remaining_from_arrays
from .redistribution import (
    redistribution_cost_matrix,
    redistribution_cost_vector,
)
from .state import TaskRuntime

__all__ = [
    "KERNELS",
    "DECISION_STATES",
    "ensure_kernel",
    "ensure_decision_state",
    "faulty_stall",
    "DecisionMatrix",
    "decision_matrix",
    "DecisionCache",
    "process_decision_snapshot",
]

#: Decision-kernel modes: ``"array"`` is the batched fast path,
#: ``"scalar"`` the seed-style reference (mirroring ``event_queue``).
KERNELS = ("array", "scalar")

#: Decision-state modes: ``"incremental"`` delta-patches one persistent
#: :class:`DecisionCache` across the events of a run, ``"rebuild"``
#: keeps the PR-3 fresh build per decision point as the reference
#: (mirroring ``decision_kernel="scalar"`` / ``event_queue="scan"``).
DECISION_STATES = ("incremental", "rebuild")

_EMPTY = np.empty(0)

#: Process-wide decision-state counters ``[rows_patched, rows_reused,
#: scratch_allocations, profile_env_reused, profile_tau_patched]``,
#: summed over every cache this process ever built (same list-cell
#: pattern as the profile counters — monotone, so the engine can delta
#: them around a work chunk).
_PROCESS_DECISION_COUNTERS = [0, 0, 0, 0, 0]


def process_decision_snapshot() -> tuple[int, int, int, int, int]:
    """Process-wide ``(rows_patched, rows_reused, scratch_allocations,
    profile_env_reused, profile_tau_patched)``.

    ``rows_patched`` counts candidate-matrix rows recomputed by the
    incremental engine; ``rows_reused`` component rows served from the
    previous decisions without recomputation — finish rows at an
    unchanged ``t``, redistribution-cost rows with an unchanged
    ``sigma``, keep-running entries for untouched tasks;
    ``scratch_allocations`` ndarray blocks preallocated by caches;
    ``profile_env_reused`` profile rows copied from a cache's per-task
    envelope state (quantised alpha unchanged since the last
    evaluation); ``profile_tau_patched`` profile rows recombined via
    the ``tau_last``-only patch (``N^ff`` row unchanged, so only the
    ``expm1`` term was recomputed).  Aggregated across worker processes
    into :class:`repro.engine.EngineStats`.
    """
    return tuple(_PROCESS_DECISION_COUNTERS)


def ensure_kernel(kernel: str) -> str:
    """Validate a ``decision_kernel`` mode name."""
    if kernel not in KERNELS:
        raise ConfigurationError(
            f"decision_kernel must be one of {KERNELS}, got {kernel!r}"
        )
    return kernel


def ensure_decision_state(state: str) -> str:
    """Validate a ``decision_state`` mode name."""
    if state not in DECISION_STATES:
        raise ConfigurationError(
            f"decision_state must be one of {DECISION_STATES}, got {state!r}"
        )
    return state


def faulty_stall(rt: TaskRuntime, t: float) -> float:
    """``D + R`` already charged to the struck task by the skeleton.

    The skeleton sets ``t_last = t + D + R`` before calling the failure
    heuristic, so the stall is recovered as ``t_last - t`` (robust to any
    configured downtime/recovery values).
    """
    stall = rt.t_last - t
    if stall < 0:
        raise SimulationError(
            f"faulty task {rt.index} has t_last in the past; "
            "skeleton did not roll it back"
        )
    return stall


@dataclass
class DecisionMatrix:
    """Precomputed candidate finishes ``t_E[row, slot]`` of one decision.

    Column ``slot`` corresponds to the even count ``k = 2 (slot + 1)``
    (the model's processor grid).  ``finishes[row, slot]`` holds the
    Section 3.3 value ``(t + stall) + rc_factor * RC^{j_init -> k} +
    (C_{i,k} + t^R_{i,k}(alpha_t))`` with exactly the scalar helpers'
    operation order, so reads off this matrix are bit-identical to
    ``candidate_finish_time(s)``.

    Rows are either all materialised up front (one fused pass — right
    for Algorithm 5, which scores every task) or on first touch
    (``lazy`` — right for Algorithms 3-4, which only ever consult a
    sparse task subset).  Lazy and eager rows are bit-identical.
    """

    model: ExpectedTimeModel
    t: float
    indices: List[int]
    j_init: np.ndarray      #: (n,) source allocation per row
    alpha_t: np.ndarray     #: (n,) remaining work at the decision time
    stall: np.ndarray       #: (n,) D + R for the struck task, else 0
    finishes: np.ndarray    #: (n, grid) candidate finish matrix
    #: unchanged-allocation finishes (Alg. 5 lines 16/23), when built
    keep: Optional[np.ndarray] = None
    #: per-row materialisation flags; ``None`` when eagerly built
    pending: Optional[np.ndarray] = None
    #: task-index -> row override (the cache's full-pack layout uses
    #: ``row == task index``); ``None`` derives rows from ``indices``
    row_map: Optional[Dict[int, int]] = None
    _row_of: Dict[int, int] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._row_of = (
            self.row_map
            if self.row_map is not None
            else {i: row for row, i in enumerate(self.indices)}
        )

    def _row(self, i: int) -> int:
        """Row of task ``i``, materialised on first touch in lazy mode."""
        row = self._row_of[i]
        if self.pending is not None and self.pending[row]:
            model = self.model
            grid = model.grid(i)
            profile = model.profile(i, float(self.alpha_t[row]))
            rc = model.rc_factor * redistribution_cost_vector(
                model.pack[i].size, int(self.j_init[row]), grid.j
            )
            self.finishes[row] = (
                (self.t + float(self.stall[row])) + rc
                + (grid.cost + profile)
            )
            self.pending[row] = False
        return row

    # -- per-task decision inputs -----------------------------------------
    def init_of(self, i: int) -> int:
        """``sigma_init(i)`` — the allocation the RC is charged from."""
        return int(self.j_init[self._row_of[i]])

    def alpha_of(self, i: int) -> float:
        """``alpha^t_i`` measured at the decision time."""
        return float(self.alpha_t[self._row_of[i]])

    def stall_of(self, i: int) -> float:
        """``D + R`` for the struck task, 0 otherwise."""
        return float(self.stall[self._row_of[i]])

    # -- candidate reads ---------------------------------------------------
    def _slot(self, k: int) -> int:
        slot = (k >> 1) - 1
        if k < 2 or (k & 1) or slot >= self.finishes.shape[1]:
            raise SimulationError(
                f"candidate count {int(k)} exceeds the platform grid"
            )
        return slot

    def finish(self, i: int, k: int) -> float:
        """``t_E(k)`` — the ``candidate_finish_time`` value, by index."""
        return float(self.finishes[self._row(i), self._slot(k)])

    def finish_range(self, i: int, lo: int, hi: int) -> np.ndarray:
        """``t_E`` over the even candidates ``lo, lo+2, ..., <= hi``.

        The ``candidate_finish_times`` vector for
        ``targets = arange(lo, hi + 1, 2)`` (``lo`` even, >= 2), as a
        view into the matrix — callers must not write through it; empty
        when ``lo > hi``.
        """
        if hi < lo:
            return _EMPTY
        if lo < 2 or (lo & 1):
            raise SimulationError(
                f"candidate range must start at an even count >= 2, "
                f"got {int(lo)}"
            )
        lo_slot = (lo >> 1) - 1
        hi_slot = (hi >> 1) - 1  # slot of the largest even count <= hi
        if hi_slot >= self.finishes.shape[1]:
            raise SimulationError(
                f"candidate count {int(hi_slot + 1) << 1} exceeds the "
                "platform grid"
            )
        return self.finishes[self._row(i), lo_slot:hi_slot + 1]

    # -- Algorithm 5's keep-running special case ---------------------------
    def _keep_column(self) -> np.ndarray:
        if self.keep is None:
            raise ConfigurationError(
                "this DecisionMatrix was built without with_keep=True; "
                "the keep-running finishes are not available"
            )
        return self.keep

    def keep_finish(self, i: int) -> float:
        """Finish if ``i`` keeps its allocation (no cost, old bookkeeping)."""
        return float(self._keep_column()[self._row_of[i]])

    def rebuild_finish(self, i: int, k: int) -> float:
        """Algorithm 5's finish: unchanged allocation keeps running."""
        if k == int(self.j_init[self._row_of[i]]):
            return self.keep_finish(i)
        return self.finish(i, k)

    def rebuild_range(self, i: int, lo: int, hi: int) -> np.ndarray:
        """:meth:`finish_range` with the keep-running candidate patched."""
        fin = self.finish_range(i, lo, hi)
        j_init = int(self.j_init[self._row_of[i]])
        if fin.size and lo <= j_init <= hi:
            fin = fin.copy()
            fin[(j_init - lo) >> 1] = self._keep_column()[self._row_of[i]]
        return fin


def decision_matrix(
    model: ExpectedTimeModel,
    t: float,
    tasks: Sequence[TaskRuntime],
    faulty: Optional[int] = None,
    *,
    with_keep: bool = False,
    lazy: bool = False,
) -> DecisionMatrix:
    """Build the full candidate matrix for one decision point.

    ``tasks`` must be non-empty; ``faulty`` marks the struck task (its
    ``alpha`` was already rolled back by the simulator skeleton and its
    stall is recovered from ``t_last``).  ``with_keep`` additionally
    evaluates the unchanged-allocation finishes Algorithm 5 patches in
    (one extra batched profile gather at the tasks' *live* alphas).
    ``lazy`` defers each row's materialisation to its first touch —
    right when the algorithm only consults a sparse task subset
    (Algorithm 4 touches the faulty task plus a few donors); the
    decision inputs (``alpha_t``/``stall``/``j_init``) are still
    measured up front, preserving the alpha-fixed-per-decision
    invariant.
    """
    indices = [rt.index for rt in tasks]
    n = len(indices)
    j_init = np.fromiter((rt.sigma for rt in tasks), dtype=np.int64, count=n)
    alpha_t = remaining_at_batch(model, tasks, t)
    stall = np.zeros(n)
    if faulty is not None:
        row = indices.index(faulty)
        rt_f = tasks[row]
        alpha_t[row] = rt_f.alpha  # already rolled back by the skeleton
        stall[row] = faulty_stall(rt_f, t)
    width = model.j_grid.size
    if lazy:
        finishes = np.empty((n, width))
        pending: Optional[np.ndarray] = np.ones(n, dtype=bool)
    else:
        profiles = model.profile_matrix(indices, alpha_t)
        cost = np.stack([model.grid(i).cost for i in indices])
        sizes = np.fromiter(
            (model.pack[i].size for i in indices), dtype=float, count=n
        )
        rc = model.rc_factor * redistribution_cost_matrix(
            sizes, j_init, model.j_grid
        )
        finishes = (t + stall)[:, None] + rc + (cost + profiles)
        pending = None
    keep = None
    if with_keep:
        alpha_live = np.fromiter(
            (rt.alpha for rt in tasks), dtype=float, count=n
        )
        live = model.profile_matrix(indices, alpha_live)
        t_last = np.fromiter(
            (rt.t_last for rt in tasks), dtype=float, count=n
        )
        keep = t_last + live[np.arange(n), (j_init >> 1) - 1]
    return DecisionMatrix(
        model=model,
        t=t,
        indices=indices,
        j_init=j_init,
        alpha_t=alpha_t,
        stall=stall,
        finishes=finishes,
        keep=keep,
        pending=pending,
    )


@dataclass
class _CacheMatrix(DecisionMatrix):
    """A :class:`DecisionMatrix` whose rows live in a :class:`DecisionCache`.

    Rows are full-pack indexed (``row == task index``) views into the
    cache's persistent arrays; lazy rows materialise through the cache
    so the patch is recorded and reused by later decisions at the same
    ``t``.  Valid until the owning cache serves its next matrix.
    """

    cache: Optional["DecisionCache"] = None

    def _row(self, i: int) -> int:
        row = self._row_of[i]
        if self.pending is not None and self.pending[row]:
            self.cache._patch_row(row, self.t)
            self.pending[row] = False
        return row


class DecisionCache:
    """Persistent decision state, delta-patched across a run's events.

    One cache serves every decision point of one ``Simulator.run``:
    :meth:`matrix` returns the same candidate finish matrix as
    :func:`decision_matrix` — bit-identical by the invariants in the
    module docstring — but recomputes only the rows invalidated since
    the previous decision.  The simulator owns the dirty bits: it calls
    :meth:`invalidate` whenever a task's ``alpha``/``t_last``/``sigma``
    change (failure rollback, redistribution commit) and
    :meth:`note_budget` with the live free-processor count before each
    decision.  All scratch is preallocated here and reused per
    decision; `cache_info()` reports the patch/reuse/allocation
    counters (also aggregated process-wide for
    :class:`repro.engine.EngineStats`).
    """

    def __init__(self, model: ExpectedTimeModel):
        self.model = model
        n = len(model.pack)
        width = model.j_grid.size
        self._n = n
        self._width = width
        # -- per-task persistent rows -----------------------------------
        self._fin = np.empty((n, width))        #: candidate finish matrix
        self._rc = np.empty((n, width))         #: rc_factor * RC rows
        self._cost_rows = np.empty((n, width))  #: checkpoint-cost rows
        self._keep = np.empty(n)                #: Alg. 5 keep-running finishes
        # -- per-task mirrors and validity ------------------------------
        self._sigma = np.full(n, -1, dtype=np.int64)
        self._rc_sigma = np.full(n, -2, dtype=np.int64)
        self._alpha = np.empty(n)
        self._t_last = np.empty(n)
        self._t_expected = np.empty(n)
        self._tff_s = np.empty(n)   #: grid t_ff at the current sigma
        self._tau_s = np.empty(n)   #: grid tau at the current sigma
        self._cost_s = np.empty(n)  #: grid C at the current sigma
        self._alpha_t = np.empty(n)
        self._stall = np.zeros(n)
        self._row_t = np.full(n, np.nan)    #: t each finish row was patched at
        self._row_stall = np.zeros(n)       #: stall each row was patched with
        self._dirty = np.ones(n, dtype=bool)
        self._keep_valid = np.zeros(n, dtype=bool)
        self._pending = np.zeros(n, dtype=bool)
        # -- per-task profile-delta state (see _profile_rows) -----------
        self._env_key = np.full(n, -1, dtype=np.int64)  #: alpha key of row
        self._prof_pos = np.full(n, -1, dtype=np.int64)  #: row pos in _prof
        self._nff = np.empty((n, width))       #: last N^ff row
        self._nff_base = np.empty((n, width))  #: N^ff * exp_period
        self._nff_valid = np.zeros(n, dtype=bool)
        # -- per-decision scratch (reused, never reallocated) -----------
        self._prof = np.empty((n, width))
        self._left = np.empty((n, width))
        self._right = np.empty((n, width))
        self._vals = np.empty((n, width))
        self._sufrev = np.empty((n, width))
        self._pb = np.empty((n, width))
        self._pc = np.empty((n, width))
        self._pd = np.empty((n, width))
        for i in range(n):
            self._cost_rows[i] = model.grid(i).cost
        self._sizes = np.fromiter(
            (model.pack[i].size for i in range(n)), dtype=float, count=n
        )
        self.budget: Optional[int] = None  #: last free-processor count seen
        self.rows_patched = 0
        self.rows_reused = 0
        self.profile_env_reused = 0
        self.profile_tau_patched = 0
        self.profile_rows_full = 0
        self.matrices_served = 0
        #: Preallocated ndarray blocks per cache (counted off the live
        #: attributes for the EngineStats allocation report, so adding
        #: or dropping a scratch field cannot desync the diagnostic).
        self.scratch_allocations = sum(
            1 for value in vars(self).values() if isinstance(value, np.ndarray)
        )
        _PROCESS_DECISION_COUNTERS[2] += self.scratch_allocations

    # -- simulator hooks ---------------------------------------------------
    def invalidate(self, i: int) -> None:
        """Mark task ``i`` dirty: its ``alpha``/``t_last``/``sigma`` changed."""
        self._dirty[i] = True

    def note_budget(self, free: int) -> None:
        """Record the live free-processor count ahead of a decision."""
        self.budget = int(free)

    def reset(self) -> None:
        """Return the cache to its just-constructed validity state.

        The rolling-horizon service (:mod:`repro.service`) keeps one
        cache per model and re-injects it into every segment whose pack
        shares that model.  Between segments all runtimes are rebuilt,
        so every mirror is stale — but the persistent rows and scratch
        blocks are gated behind the validity bits, so clearing the bits
        (and the mirrors they guard) restores the exact
        post-construction state with zero reallocation.  The cumulative
        patch/reuse counters survive: they feed the service telemetry.
        """
        self._sigma.fill(-1)
        self._rc_sigma.fill(-2)
        self._stall.fill(0.0)
        self._row_t.fill(np.nan)
        self._row_stall.fill(0.0)
        self._dirty.fill(True)
        self._keep_valid.fill(False)
        self._pending.fill(False)
        self._env_key.fill(-1)
        self._prof_pos.fill(-1)
        self._nff_valid.fill(False)
        self.budget = None

    # -- internal patching -------------------------------------------------
    def _refresh(self, rt: TaskRuntime) -> None:
        """Resync one dirty task's mirrors from its live runtime."""
        i = rt.index
        sigma = rt.sigma
        if sigma != self._sigma[i]:
            grid = self.model.grid(i)
            slot = grid.slot(sigma)
            self._tff_s[i] = grid.t_ff[slot]
            self._tau_s[i] = grid.tau[slot]
            self._cost_s[i] = grid.cost[slot]
            self._sigma[i] = sigma
            # the rc row is now for the wrong source: _rc_sigma mismatch
        self._alpha[i] = rt.alpha
        self._t_last[i] = rt.t_last
        self._t_expected[i] = rt.t_expected
        self._keep_valid[i] = False
        self._row_t[i] = np.nan
        self._dirty[i] = False

    def _rc_row(self, i: int) -> np.ndarray:
        """The cached ``rc_factor * RC^{sigma(i) -> k}`` row, repatched
        only when ``sigma(i)`` moved since it was last computed."""
        if self._rc_sigma[i] != self._sigma[i]:
            self._rc[i] = self.model.rc_factor * redistribution_cost_vector(
                float(self._sizes[i]), int(self._sigma[i]), self.model.j_grid
            )
            self._rc_sigma[i] = self._sigma[i]
        else:
            self.rows_reused += 1
            _PROCESS_DECISION_COUNTERS[1] += 1
        return self._rc[i]

    def _patch_row(self, i: int, t: float) -> None:
        """Materialise one lazy row (operation-identical to the fresh
        :meth:`DecisionMatrix._row`, but reusing the cached rc row)."""
        model = self.model
        grid = model.grid(i)
        alpha = float(self._alpha_t[i])
        profile = model.profile(i, alpha)
        rc = self._rc_row(i)
        self._fin[i] = (
            (t + float(self._stall[i])) + rc + (grid.cost + profile)
        )
        self._row_t[i] = t
        self._row_stall[i] = self._stall[i]
        self.rows_patched += 1
        _PROCESS_DECISION_COUNTERS[0] += 1

    def envelope_value(self, i: int, alpha: float, k: int) -> float:
        """``model.profile(i, alpha)[slot(k)]`` off the envelope state.

        Serves the commit-time scalar read — ``apply_move``'s
        expected-finish refresh at the decision's ``alpha^t`` — from the
        envelope row the decision just evaluated in the ``_prof``
        workspace, skipping the model ring entirely.  Bit-identical by
        construction: the row is addressed through ``_prof_pos`` (valid
        only for rows written by the *latest* ``_profile_rows`` pass)
        and its alpha key, and the envelope is a pure function of
        ``(task, quantised alpha)`` — a stale-but-matching row holds the
        same bits a fresh evaluation would.  A cold, repurposed or
        key-mismatched row falls back to the model (a ring hit whenever
        the row was lazily materialised this decision).  ``k`` must be
        an on-grid even count, which every heuristic's granted
        allocation is.
        """
        pos = self._prof_pos[i]
        if pos >= 0 and self._env_key[i] == int(round(alpha * _ALPHA_SCALE)):
            self.profile_env_reused += 1
            _PROCESS_DECISION_COUNTERS[3] += 1
            return float(self._prof[pos, (k >> 1) - 1])
        return float(self.model.profile(i, alpha)[(k >> 1) - 1])

    # -- the decision-point entry point ------------------------------------
    def matrix(
        self,
        t: float,
        tasks: Sequence[TaskRuntime],
        faulty: Optional[int] = None,
        *,
        with_keep: bool = False,
        lazy: bool = False,
    ) -> DecisionMatrix:
        """The delta-patched :func:`decision_matrix` of this decision point.

        Bit-identical to a fresh build over the same ``tasks`` — only
        rows whose task is dirty, whose stall changed, or whose last
        patch was at a different ``t`` are recomputed (``lazy`` defers
        those recomputations to first touch).  The returned matrix
        aliases the cache's persistent arrays and is valid until the
        next :meth:`matrix` call.
        """
        model = self.model
        n_act = len(tasks)
        rows = np.fromiter(
            (rt.index for rt in tasks), dtype=np.int64, count=n_act
        )
        indices = rows.tolist()
        dirty_pos = np.nonzero(self._dirty[rows])[0]
        for pos in dirty_pos:
            self._refresh(tasks[pos])
        stall = np.zeros(n_act)
        if faulty is not None:
            pos_f = indices.index(faulty)
            stall[pos_f] = faulty_stall(tasks[pos_f], t)
        # alpha^t over every active row from the mirrors: bit-identical
        # to remaining_at_batch (elementwise over the same values).
        alpha_t = remaining_from_arrays(
            self._alpha[rows], self._t_last[rows], self._tff_s[rows],
            self._tau_s[rows], self._cost_s[rows], t,
        )
        if faulty is not None:
            alpha_t[pos_f] = tasks[pos_f].alpha  # already rolled back
        self._alpha_t[rows] = alpha_t
        self._stall[rows] = stall
        stale = (self._row_t[rows] != t) | (self._row_stall[rows] != stall)
        sub = rows[stale]
        self.rows_reused += n_act - sub.size
        _PROCESS_DECISION_COUNTERS[1] += n_act - sub.size
        pending: Optional[np.ndarray] = None
        if lazy:
            self._pending[:] = False
            self._pending[sub] = True
            pending = self._pending
        elif sub.size:
            self._patch_rows(sub, t)
        if with_keep:
            self._patch_keep(rows)
        self.matrices_served += 1
        return _CacheMatrix(
            model=model,
            t=t,
            indices=indices,
            j_init=self._sigma,
            alpha_t=self._alpha_t,
            stall=self._stall,
            finishes=self._fin,
            keep=self._keep if with_keep else None,
            pending=pending,
            # Rows == task indices, but map only the decision's active
            # tasks so an out-of-set lookup raises KeyError exactly like
            # the fresh build (never a silently stale row).
            row_map={i: i for i in indices},
            cache=self,
        )

    def _profile_rows(self, sub: np.ndarray, k: int) -> np.ndarray:
        """Envelope rows of the stale tasks, delta-patched per task.

        Replaces the model-ring lookup (:meth:`~repro.resilience.
        expected_time.ExpectedTimeModel.profile_rows_into`) on the
        per-decision hot path with cache-local per-task profile state —
        no per-row key tuples, dict probes, ring insertions or result
        copies (the pass evaluates straight into the ``_prof``
        workspace).  Two tiers per row:

        * **tau_last patch** — a task whose fresh ``N^ff`` row equals
          the cached one reuses the cached ``N^ff * exp_period`` base
          and recomputes only the ``expm1(lam * tau_last)`` term.  The
          common case: between two nearby decision times the remaining
          work moves a little, but ``floor(work / wpp)`` is piecewise
          constant and rarely steps;
        * **full evaluation** — everything else runs the complete fused
          Eq. (4) pass and refreshes the cached ``N^ff`` state (with a
          fast path when *every* row stepped: the bases are then
          computed in one block multiply, skipping the cached-base
          gather).

        Both tiers are bit-identical to ``profile_matrix`` /
        ``profile_rows_into`` by construction: the same float64 values
        flow through the same elementwise operations in the same order
        (``N^ff`` equality is exact float comparison, and the cached
        base holds the exact ``N^ff * exp_period`` product the fresh
        pass would recompute).  Bypassing the model ring is value-safe
        — profiles are pure functions of ``(task, quantised alpha)``,
        never of cache history.  ``_prof_pos``/``_env_key`` record
        which task owns each workspace row and at which alpha key, so
        :meth:`envelope_value` can serve the commit-time scalar reads
        of the same decision.
        """
        out = self._prof[:k]
        # Rows written below supersede any earlier workspace layout.
        self._prof_pos[:] = -1
        keys = np.rint(self._alpha_t[sub] * _ALPHA_SCALE).astype(np.int64)
        # Evaluate at the quantised alphas, like every profile path
        # (np.rint rounds half to even, matching the scalar
        # ``int(round(alpha * SCALE))`` key bit for bit).
        alpha_q = keys / _ALPHA_SCALE
        blocks = self.model._stacked_grids()
        b = self._pb[:k]
        c = self._pc[:k]
        d = self._pd[:k]
        np.take(blocks["t_ff"], sub, axis=0, out=b)
        np.multiply(alpha_q[:, None], b, out=c)   # c = work
        np.take(blocks["wpp"], sub, axis=0, out=b)
        np.divide(c, b, out=d)
        np.floor(d, out=d)                        # d = N^ff
        np.multiply(d, b, out=b)
        np.subtract(c, b, out=c)                  # c = tau_last
        same = self._nff_valid[sub] & np.all(d == self._nff[sub], axis=1)
        full_pos = np.nonzero(~same)[0]
        n_full = int(full_pos.size)
        if n_full == k:
            # Every row stepped: refresh the caches and turn d into the
            # bases in place — one block multiply, no cached-base gather
            # (bit-identical: same N^ff and exp_period operands).
            self._nff[sub] = d
            np.take(blocks["exp_period"], sub, axis=0, out=b)
            np.multiply(d, b, out=d)              # d = N^ff * exp_period
            self._nff_base[sub] = d
            self._nff_valid[sub] = True
        else:
            if n_full:
                full = sub[full_pos]
                nff_rows = d[full_pos]
                self._nff[full] = nff_rows
                self._nff_base[full] = nff_rows * blocks["exp_period"][full]
                self._nff_valid[full] = True
            np.take(self._nff_base, sub, axis=0, out=d)
        n_tau = k - n_full
        self.profile_tau_patched += n_tau
        _PROCESS_DECISION_COUNTERS[4] += n_tau
        self.profile_rows_full += n_full
        np.take(blocks["lam"], sub, axis=0, out=b)
        with np.errstate(over="ignore"):
            np.multiply(b, c, out=c)
            np.expm1(c, out=c)                    # c = expm1(lam tau_last)
            np.add(d, c, out=c)                   # c = base + expm1 term
            np.take(blocks["prefactor"], sub, axis=0, out=b)
            np.multiply(b, c, out=out)            # raw Eq. (4) rows
        zero = alpha_q <= 0.0
        if bool(np.any(zero)):
            out[zero] = 0.0
        np.minimum.accumulate(out, axis=1, out=out)  # Eq. (6) envelope
        self._env_key[sub] = keys
        self._prof_pos[sub] = np.arange(k)
        return out

    def _patch_rows(self, sub: np.ndarray, t: float) -> None:
        """Recombine the stale rows in one fused pass over the scratch.

        Operation order is exactly the fresh build's
        ``((t + stall)[:, None] + rc) + (cost + profiles)``.
        """
        need = sub[self._rc_sigma[sub] != self._sigma[sub]]
        if need.size:
            self._rc[need] = self.model.rc_factor * redistribution_cost_matrix(
                self._sizes[need], self._sigma[need], self.model.j_grid
            )
            self._rc_sigma[need] = self._sigma[need]
        k = sub.size
        self.rows_reused += k - need.size  # RC rows with an unchanged sigma
        _PROCESS_DECISION_COUNTERS[1] += k - need.size
        prof = self._profile_rows(sub, k)
        left = self._left[:k]
        np.take(self._rc, sub, axis=0, out=left)
        ts = t + self._stall[sub]
        np.add(ts[:, None], left, out=left)
        right = self._right[:k]
        np.take(self._cost_rows, sub, axis=0, out=right)
        np.add(right, prof, out=right)
        np.add(left, right, out=left)
        self._fin[sub] = left
        self._row_t[sub] = t
        self._row_stall[sub] = self._stall[sub]
        self.rows_patched += k
        _PROCESS_DECISION_COUNTERS[0] += k

    def _patch_keep(self, rows: np.ndarray) -> None:
        """Refresh the keep-running finishes of the rows touched since
        they were last computed (the column does not depend on ``t``).

        The keep-running finish ``tlastR_i + t^R_{i,sigma(i)}(alpha_i)``
        is exactly the expected finish ``tU_i`` that every writer of the
        live bookkeeping maintains — the pack-start assignment, the
        failure rollback, ``apply_move`` and the rebuild's own
        keep-restore all write that very expression — so the mirror of
        ``t_expected`` (taken while the task was clean) *is* the keep
        value, bit for bit, with no profile evaluation at all.  The
        checking cache in ``tests/test_decision_kernels.py`` pins this
        against the fresh build's explicit profile gather on randomised
        runs.
        """
        need = rows[~self._keep_valid[rows]]
        self.rows_reused += rows.size - need.size  # keep rows still valid
        _PROCESS_DECISION_COUNTERS[1] += rows.size - need.size
        if not need.size:
            return
        self._keep[need] = self._t_expected[need]
        self._keep_valid[need] = True

    # -- the incremental-heap rebuild block ---------------------------------
    def rebuild_block(
        self, dm: DecisionMatrix
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """Scratch blocks for the Algorithm-5 incremental-heap loop.

        Returns ``(vals, sufrev, width)``: ``vals[pos]`` is task
        ``dm.indices[pos]``'s finish row with the keep-running candidate
        patched in (i.e. ``dm.rebuild_finish`` by slot), ``sufrev`` its
        reversed running minimum, so ``sufrev[pos, width - 1 - s]`` is
        ``min(vals[pos, s:])`` — the O(1) "can this task still improve"
        probe of the grant loop.  Both are cache-owned scratch, valid
        until the next :meth:`matrix` call.
        """
        idx = np.fromiter(dm.indices, dtype=np.int64, count=len(dm.indices))
        k = idx.size
        vals = self._vals[:k]
        np.take(self._fin, idx, axis=0, out=vals)
        slots = (self._sigma[idx] >> 1) - 1
        vals[np.arange(k), slots] = self._keep[idx]
        sufrev = self._sufrev[:k]
        sufrev[:] = vals[:, ::-1]
        np.minimum.accumulate(sufrev, axis=1, out=sufrev)
        return vals, sufrev, self._width

    def cache_info(self) -> Dict[str, int | float]:
        """Patch/reuse counters of this cache (diagnostics)."""
        rows = self.rows_patched + self.rows_reused
        return {
            "matrices_served": self.matrices_served,
            "rows_patched": self.rows_patched,
            "rows_reused": self.rows_reused,
            "reuse_rate": self.rows_reused / rows if rows else 0.0,
            "profile_env_reused": self.profile_env_reused,
            "profile_tau_patched": self.profile_tau_patched,
            "profile_rows_full": self.profile_rows_full,
            "scratch_allocations": self.scratch_allocations,
            "budget": self.budget if self.budget is not None else -1,
        }
