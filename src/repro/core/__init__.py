"""Core contribution: co-scheduling with processor redistribution."""

from .coloring import (
    bipartite_edge_coloring,
    complete_bipartite_coloring,
    transfer_schedule,
    validate_coloring,
)
from .heuristics import (
    CompletionHeuristic,
    EndGreedy,
    EndLocal,
    FailureHeuristic,
    IteratedGreedy,
    ShortestTasksFirst,
    greedy_rebuild,
)
from .kernels import (
    KERNELS,
    DecisionMatrix,
    decision_matrix,
    ensure_kernel,
)
from .optimal import expected_makespan, optimal_schedule
from .policy import PAPER_POLICY_LABELS, POLICIES, Policy, get_policy
from .progress import (
    checkpointed_work_fraction,
    elapsed_work_fraction,
    projected_finish,
    remaining_after_elapsed,
    remaining_after_failure,
    remaining_at_batch,
)
from .redistribution import (
    redistribution_cost,
    redistribution_cost_matrix,
    redistribution_cost_vector,
    redistribution_rounds,
    transfer_volume_per_round,
)
from .state import TaskRuntime

__all__ = [
    "bipartite_edge_coloring",
    "complete_bipartite_coloring",
    "transfer_schedule",
    "validate_coloring",
    "CompletionHeuristic",
    "EndGreedy",
    "EndLocal",
    "FailureHeuristic",
    "IteratedGreedy",
    "ShortestTasksFirst",
    "greedy_rebuild",
    "KERNELS",
    "DecisionMatrix",
    "decision_matrix",
    "ensure_kernel",
    "expected_makespan",
    "optimal_schedule",
    "PAPER_POLICY_LABELS",
    "POLICIES",
    "Policy",
    "get_policy",
    "checkpointed_work_fraction",
    "elapsed_work_fraction",
    "projected_finish",
    "remaining_after_elapsed",
    "remaining_after_failure",
    "remaining_at_batch",
    "redistribution_cost",
    "redistribution_cost_matrix",
    "redistribution_cost_vector",
    "redistribution_rounds",
    "transfer_volume_per_round",
    "TaskRuntime",
]
