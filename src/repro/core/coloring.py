"""Constructive bipartite edge colouring.

Section 3.3.1 reduces redistribution-round counting to edge colouring of
the bipartite transfer graph and invokes König's theorem
(``chi'(G) = Delta(G)`` for bipartite ``G``).  The paper only needs the
*count*; we additionally build an explicit optimal colouring, which

* validates the round formulas of :mod:`repro.core.redistribution` in the
  test suite, and
* yields an actual per-round transfer plan (sender, receiver) that a real
  runtime could execute.

Two constructions are provided: a closed-form Latin-square schedule for
the complete bipartite graphs produced by redistribution, and the general
alternating-path (Vizing-for-bipartite) algorithm for arbitrary bipartite
multidegree-1 graphs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from ..exceptions import ConfigurationError

__all__ = [
    "complete_bipartite_coloring",
    "bipartite_edge_coloring",
    "transfer_schedule",
    "validate_coloring",
]

Edge = Tuple[int, int]


def complete_bipartite_coloring(a: int, b: int) -> List[List[Edge]]:
    """Optimal edge colouring of ``K_{a,b}`` into ``max(a, b)`` rounds.

    Edge ``(s, r)`` with ``s in [0,a)`` and ``r in [0,b)`` goes to round
    ``(s + r) mod max(a, b)``.  Within a round no two edges share an
    endpoint: two edges sharing ``s`` differ in ``r`` (mod ``max >= b``),
    and symmetrically for ``r``.
    """
    if a < 1 or b < 1:
        raise ConfigurationError("both sides of K_{a,b} must be non-empty")
    n_rounds = max(a, b)
    rounds: List[List[Edge]] = [[] for _ in range(n_rounds)]
    for s in range(a):
        for r in range(b):
            rounds[(s + r) % n_rounds].append((s, r))
    return rounds


def bipartite_edge_coloring(
    left: int, right: int, edges: Sequence[Edge]
) -> Dict[Edge, int]:
    """Colour an arbitrary bipartite graph with ``Delta`` colours.

    Classic alternating-path algorithm: insert edges one by one; if the two
    endpoints have no common free colour, flip a two-colour alternating
    path from the right endpoint to make one available.  Runs in
    ``O(E * V)``.

    Parameters
    ----------
    left, right:
        Sizes of the two vertex classes (ids ``0..left-1`` / ``0..right-1``).
    edges:
        Simple edges ``(u, v)`` with ``u`` in the left class, ``v`` right.

    Returns
    -------
    dict mapping each edge to its colour ``0..Delta-1``.
    """
    degree_left = [0] * left
    degree_right = [0] * right
    for u, v in edges:
        if not (0 <= u < left and 0 <= v < right):
            raise ConfigurationError(f"edge {(u, v)} out of range")
        degree_left[u] += 1
        degree_right[v] += 1
    if not edges:
        return {}
    delta = max(max(degree_left, default=0), max(degree_right, default=0))

    # colour_at_left[u][c] = right endpoint of the c-coloured edge at u
    colour_at_left: List[Dict[int, int]] = [dict() for _ in range(left)]
    colour_at_right: List[Dict[int, int]] = [dict() for _ in range(right)]
    colouring: Dict[Edge, int] = {}

    def free_colour(used: Dict[int, int]) -> int:
        for colour in range(delta):
            if colour not in used:
                return colour
        raise AssertionError("no free colour below Delta; algorithm bug")

    for u, v in edges:
        cu = free_colour(colour_at_left[u])
        cv = free_colour(colour_at_right[v])
        if cu != cv:
            # Flip the alternating (cu, cv)-path starting at v so cu
            # becomes free at v.  The path is *traced read-only first*:
            # flipping while walking corrupts the very records the walk
            # reads next (the recoloured edge claims the colour slot the
            # continuation edge still occupies), which can turn the walk
            # into an endless ping-pong between two vertices.
            path: List[Tuple[int, int, int]] = []  # (left, right, colour)
            x, colour, side_right = v, cu, True
            while True:
                table = colour_at_right[x] if side_right else colour_at_left[x]
                if colour not in table:
                    break
                y = table[colour]
                path.append((y, x, colour) if side_right else (x, y, colour))
                x = y
                colour = cv if colour == cu else cu
                side_right = not side_right
            # v has no cv edge, so its (cu, cv)-component is a simple
            # path: every vertex is visited once and the trace terminates.
            for a, b, old in path:
                del colour_at_left[a][old]
                del colour_at_right[b][old]
            for a, b, old in path:
                new = cv if old == cu else cu
                colour_at_left[a][new] = b
                colour_at_right[b][new] = a
                colouring[(a, b)] = new
        colour_at_left[u][cu] = v
        colour_at_right[v][cu] = u
        colouring[(u, v)] = cu
    return colouring


def transfer_schedule(j: int, k: int) -> List[List[Edge]]:
    """Per-round transfer plan for a redistribution from ``j`` to ``k`` procs.

    Growing: old processors ``0..j-1`` each send to the ``k - j``
    newcomers.  Shrinking: the ``j - k`` leavers each send to the ``k``
    stayers.  ``j == k`` yields an empty schedule.  The number of rounds
    always equals :func:`repro.core.redistribution.redistribution_rounds`.
    """
    if j < 1 or k < 1:
        raise ConfigurationError("processor counts must be >= 1")
    if j == k:
        return []
    if k > j:
        return complete_bipartite_coloring(j, k - j)
    return complete_bipartite_coloring(j - k, k)


def validate_coloring(rounds: Iterable[Iterable[Edge]]) -> bool:
    """Check that no endpoint repeats inside any round (proper colouring)."""
    for round_edges in rounds:
        senders: set[int] = set()
        receivers: set[int] = set()
        for s, r in round_edges:
            if s in senders or r in receivers:
                return False
            senders.add(s)
            receivers.add(r)
    return True
