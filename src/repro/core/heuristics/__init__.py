"""The paper's redistribution heuristics (Section 5)."""

from .base import (
    CompletionHeuristic,
    FailureHeuristic,
    apply_move,
    candidate_finish_time,
    candidate_finish_times,
    faulty_stall,
    remaining_at,
)
from .end_local import EndLocal
from .iterated_greedy import EndGreedy, IteratedGreedy, greedy_rebuild
from .stf import ShortestTasksFirst

__all__ = [
    "CompletionHeuristic",
    "FailureHeuristic",
    "apply_move",
    "candidate_finish_time",
    "candidate_finish_times",
    "faulty_stall",
    "remaining_at",
    "EndLocal",
    "EndGreedy",
    "IteratedGreedy",
    "greedy_rebuild",
    "ShortestTasksFirst",
]
