"""``IteratedGreedy`` — Algorithm 5 (Section 5.3) and its task-end variant.

At each rebalancing point the whole schedule is rebuilt from scratch with
the greedy of Algorithm 1, but candidate finish times now charge the
redistribution cost from the task's *current* allocation ``sigma_init`` to
the candidate one — with a special case: if a task ends up exactly at
``sigma_init`` it simply keeps running, so no cost is charged and its
original bookkeeping (``alpha`` at ``tlastR``) is preserved (Algorithm 5,
lines 16 and 23).

``EndGreedy`` (Section 5.2) is the same rebuild triggered at task
terminations, without a faulty task.

The rebuild runs on either decision kernel (:mod:`repro.core.kernels`):
``"array"`` precomputes the whole candidate finish matrix once and walks
it by index, ``"scalar"`` keeps the per-probe model calls as the
bit-identical reference.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence

import numpy as np

from ...exceptions import CapacityError
from ...resilience.expected_time import ExpectedTimeModel
from ..kernels import DecisionCache, decision_matrix, ensure_kernel
from ..state import TaskRuntime
from .base import (
    CompletionHeuristic,
    FailureHeuristic,
    apply_move,
    candidate_finish_time,
    candidate_finish_times,
    faulty_stall,
    remaining_at,
)

__all__ = ["IteratedGreedy", "EndGreedy", "greedy_rebuild"]


def greedy_rebuild(
    model: ExpectedTimeModel,
    t: float,
    tasks: Sequence[TaskRuntime],
    capacity: int,
    faulty: Optional[int] = None,
    kernel: str = "array",
    cache: Optional[DecisionCache] = None,
) -> List[int]:
    """Rebuild the allocation of ``tasks`` over ``capacity`` processors.

    Core of Algorithm 5.  ``capacity`` counts every processor usable by
    the listed tasks (their current holdings plus the free pool).  The
    runtimes are mutated in place; returns the indices whose allocation
    changed.  With a :class:`~repro.core.kernels.DecisionCache` the
    matrix is delta-patched instead of rebuilt and the grant loop runs
    on the incremental heap (bit-identical decisions either way).
    """
    ensure_kernel(kernel)
    if not tasks:
        return []
    n = len(tasks)
    if capacity < 2 * n:
        raise CapacityError(
            f"greedy rebuild needs capacity >= 2n: capacity={capacity}, n={n}"
        )
    if kernel == "array":
        if cache is not None:
            return _greedy_rebuild_cached(model, t, tasks, capacity, faulty, cache)
        return _greedy_rebuild_array(model, t, tasks, capacity, faulty)
    return _greedy_rebuild_scalar(model, t, tasks, capacity, faulty)


def _greedy_rebuild_cached(
    model: ExpectedTimeModel,
    t: float,
    tasks: Sequence[TaskRuntime],
    capacity: int,
    faulty: Optional[int],
    cache: DecisionCache,
) -> List[int]:
    """Cache-fed kernel: delta-patched matrix + incremental heap.

    Decision-for-decision identical to :func:`_greedy_rebuild_array`:
    the candidate values come from the same (delta-patched) matrix and
    every comparison reads the same doubles.  Two loop mechanics differ
    without changing any decision:

    * the "can this task still improve within the remaining budget"
      probe is O(1) — the reversed running minimum answers "improvable
      at all", and the first improving candidate (the next smaller
      element from the current slot) is compared against the window
      bound, exactly equivalent to scanning the windowed slice;
    * a granted task is re-popped inline while it still beats the heap
      top (same ``(-finish, index)`` tuple order as push-then-pop), so
      the heap only sees traffic when the longest task actually
      changes — the entries invalidated by the granted pair.
    """
    dm = cache.matrix(t, tasks, faulty=faulty, with_keep=True)
    vals, sufrev, width = cache.rebuild_block(dm)
    indices = dm.indices
    n = len(indices)
    slots = [0] * n  # every task restarts at sigma = 2 (slot 0)
    # Ties break on the task index; the trailing row position never
    # participates in the ordering (the index is already unique).
    heap = [
        (-float(vals[pos, 0]), i, pos) for pos, i in enumerate(indices)
    ]
    heapq.heapify(heap)
    avail = (capacity - 2 * n) >> 1  # remaining buddy pairs

    while avail >= 1 and heap:
        neg, i, pos = heapq.heappop(heap)
        row = vals[pos]
        suf = sufrev[pos]
        e = -neg
        while True:
            s = slots[pos]
            grow = False
            if s + 1 < width:
                if row.item(s + 1) < e:
                    grow = True  # the very next candidate improves
                elif suf.item(width - 2 - s) < e:
                    # Improvable somewhere: the first improving candidate
                    # is the next smaller element; grant iff it is within
                    # the budget (== any(window < e) on the slice).
                    f = s + 1 + int((row[s + 1:] < e).argmax())
                    grow = f - s <= avail
            if not grow:
                # Algorithm 5 line 30: the longest task cannot improve.
                avail = 0
                break
            s += 1
            slots[pos] = s
            e = row.item(s)
            avail -= 1
            if avail < 1:
                break
            if heap:
                # Inlined ``heap[0] < (-e, i)``: the indices are unique,
                # so the tuple order never reaches the third element.
                top = heap[0]
                neg_e = -e
                if top[0] < neg_e or (top[0] == neg_e and top[1] < i):
                    heapq.heappush(heap, (neg_e, i, pos))
                    break
            # Still the longest task: keep growing without heap traffic.

    # ---- Commit, vectorised over the cache's full-pack rows ----------
    # A _CacheMatrix addresses rows by task index, so the per-task
    # ``init_of``/``keep_finish``/``stall_of`` accessor hops of the
    # fresh-build commit loop collapse into three fancy gathers; the
    # committed values are the same floats read in the same task order.
    idx = np.fromiter(indices, dtype=np.int64, count=n)
    new_sig = (np.asarray(slots, dtype=np.int64) + 1) << 1
    init = dm.j_init[idx]
    keeps = dm.keep[idx].tolist()
    moved = new_sig != init
    changed: List[int] = []
    if bool(moved.any()):
        stall = dm.stall
        alpha_t = dm.alpha_t
        for pos in np.nonzero(moved)[0]:
            pos = int(pos)
            i = indices[pos]
            apply_move(
                model, tasks[pos], t, float(stall[i]), int(init[pos]),
                int(new_sig[pos]), float(alpha_t[i]), cache=cache,
            )
            changed.append(i)
        for pos in np.nonzero(~moved)[0]:
            # Untouched: restore the expected finish from live bookkeeping.
            tasks[pos].t_expected = keeps[pos]
    else:
        for pos, rt in enumerate(tasks):
            rt.t_expected = keeps[pos]
    return changed


def _greedy_rebuild_array(
    model: ExpectedTimeModel,
    t: float,
    tasks: Sequence[TaskRuntime],
    capacity: int,
    faulty: Optional[int],
) -> List[int]:
    """Array kernel: one precomputed matrix, zero model calls in the loop."""
    dm = decision_matrix(model, t, tasks, faulty=faulty, with_keep=True)
    by_index: Dict[int, TaskRuntime] = {rt.index: rt for rt in tasks}
    sigma: Dict[int, int] = {rt.index: 2 for rt in tasks}
    expected: Dict[int, float] = {i: dm.rebuild_finish(i, 2) for i in sigma}
    heap = [(-expected[i], i) for i in sigma]
    heapq.heapify(heap)
    available = capacity - 2 * len(tasks)

    while available >= 2 and heap:
        _, i = heapq.heappop(heap)
        p_max = sigma[i] + available
        finishes = dm.rebuild_range(i, sigma[i] + 2, p_max)
        if finishes.size and bool(np.any(finishes < expected[i])):
            sigma[i] += 2
            expected[i] = dm.rebuild_finish(i, sigma[i])
            heapq.heappush(heap, (-expected[i], i))
            available -= 2
        else:
            # Algorithm 5 line 30: the longest task cannot improve — stop.
            available = 0

    changed: List[int] = []
    for i, rt in by_index.items():
        if sigma[i] != dm.init_of(i):
            apply_move(
                model, rt, t, dm.stall_of(i), dm.init_of(i), sigma[i],
                dm.alpha_of(i),
            )
            changed.append(i)
        else:
            # Untouched: restore the expected finish from live bookkeeping.
            rt.t_expected = dm.keep_finish(i)
    return changed


def _greedy_rebuild_scalar(
    model: ExpectedTimeModel,
    t: float,
    tasks: Sequence[TaskRuntime],
    capacity: int,
    faulty: Optional[int],
) -> List[int]:
    """Scalar kernel: the seed-style per-probe reference path."""
    by_index: Dict[int, TaskRuntime] = {rt.index: rt for rt in tasks}
    sigma_init: Dict[int, int] = {rt.index: rt.sigma for rt in tasks}
    stall: Dict[int, float] = {}
    alpha_t: Dict[int, float] = {}
    for rt in tasks:
        i = rt.index
        if i == faulty:
            # Already rolled back to the last checkpoint by the skeleton.
            alpha_t[i] = rt.alpha
            stall[i] = faulty_stall(rt, t)
        else:
            alpha_t[i] = remaining_at(model, rt, t)
            stall[i] = 0.0

    def finish(i: int, k: int) -> float:
        """Expected finish if task ``i`` ends the rebuild on ``k`` procs."""
        rt = by_index[i]
        if k == sigma_init[i]:
            # Line 16/23: unchanged allocation, the task just keeps going.
            return rt.t_last + model.expected_time(i, k, rt.alpha)
        return candidate_finish_time(
            model, i, sigma_init[i], alpha_t[i], t, stall[i], k
        )

    sigma: Dict[int, int] = {rt.index: 2 for rt in tasks}
    expected: Dict[int, float] = {i: finish(i, 2) for i in sigma}
    heap = [(-expected[i], i) for i in sigma]
    heapq.heapify(heap)
    available = capacity - 2 * len(tasks)

    while available >= 2 and heap:
        _, i = heapq.heappop(heap)
        p_max = sigma[i] + available
        targets = np.arange(sigma[i] + 2, p_max + 1, 2, dtype=int)
        finishes = candidate_finish_times(
            model, i, sigma_init[i], alpha_t[i], t, stall[i], targets
        )
        if targets.size:
            # Patch the no-redistribution candidate if it is in range.
            where_init = np.nonzero(targets == sigma_init[i])[0]
            if where_init.size:
                finishes[where_init[0]] = finish(i, sigma_init[i])
        if finishes.size and bool(np.any(finishes < expected[i])):
            sigma[i] += 2
            expected[i] = finish(i, sigma[i])
            heapq.heappush(heap, (-expected[i], i))
            available -= 2
        else:
            # Algorithm 5 line 30: the longest task cannot improve — stop.
            available = 0

    changed: List[int] = []
    for i, rt in by_index.items():
        if sigma[i] != sigma_init[i]:
            apply_move(
                model, rt, t, stall[i], sigma_init[i], sigma[i], alpha_t[i]
            )
            changed.append(i)
        else:
            # Untouched: restore the expected finish from live bookkeeping.
            rt.t_expected = rt.t_last + model.expected_time(
                i, rt.sigma, rt.alpha
            )
    return changed


class IteratedGreedy(FailureHeuristic):
    """Failure-time full rebuild (Algorithm 5)."""

    name = "iterated-greedy"

    def apply(
        self,
        model: ExpectedTimeModel,
        t: float,
        tasks: Sequence[TaskRuntime],
        free: int,
        faulty: int,
        kernel: str = "array",
        cache: Optional[DecisionCache] = None,
    ) -> List[int]:
        capacity = free + sum(rt.sigma for rt in tasks)
        return greedy_rebuild(
            model, t, tasks, capacity, faulty=faulty, kernel=kernel,
            cache=cache,
        )


class EndGreedy(CompletionHeuristic):
    """Task-end full rebuild (Section 5.2, "EndGreedy")."""

    name = "end-greedy"

    def apply(
        self,
        model: ExpectedTimeModel,
        t: float,
        tasks: Sequence[TaskRuntime],
        free: int,
        kernel: str = "array",
        cache: Optional[DecisionCache] = None,
    ) -> List[int]:
        if not tasks:
            return []
        capacity = free + sum(rt.sigma for rt in tasks)
        return greedy_rebuild(
            model, t, tasks, capacity, faulty=None, kernel=kernel,
            cache=cache,
        )
