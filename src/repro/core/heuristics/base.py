"""Shared infrastructure for the redistribution heuristics (Section 5).

Every heuristic scores *candidate* allocations for a task ``T_i`` that
currently holds ``j_init`` processors.  Moving it to ``k`` processors at
time ``t`` gives the expected finish (Sections 3.3.1-3.3.2)

.. math::

    t_E(k) = t + \\text{stall} + RC_i^{j_{init} \\to k} + C_{i,k}
             + t^R_{i,k}(\\alpha^t_i),

where ``stall = D + R`` for the task struck by the failure (per the
Section 3.3.2 text — see DESIGN.md interpretation 2) and 0 otherwise, and
``alpha^t_i`` is the remaining work at the decision time.  A move is taken
only when ``t_E(k) < tU_i``, i.e. when the redistribution pays for itself.

The scoring is vectorised over all candidate ``k`` at once: the scan
loops of Algorithms 3-5 ("q := 2; while q <= k ...") stop at the first
improving candidate, which is exactly ``targets[mask.argmax()]`` on the
boolean improvement mask.

These helpers are the *scalar* decision kernel — the per-probe
reference.  The default ``"array"`` kernel (:mod:`repro.core.kernels`)
precomputes the same values as one matrix per decision point; the two
agree bit for bit by construction.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Optional, Sequence

import numpy as np

from ...exceptions import CapacityError, SimulationError
from ...resilience.expected_time import ExpectedTimeModel
from ..kernels import DecisionCache, ensure_kernel, faulty_stall
from ..progress import remaining_after_elapsed
from ..redistribution import redistribution_cost, redistribution_cost_vector
from ..state import TaskRuntime

__all__ = [
    "CompletionHeuristic",
    "FailureHeuristic",
    "remaining_at",
    "candidate_finish_times",
    "candidate_finish_time",
    "apply_move",
    "ensure_kernel",
    "faulty_stall",
]


def remaining_at(
    model: ExpectedTimeModel, rt: TaskRuntime, t: float
) -> float:
    """``alpha^t_i``: remaining work of ``rt`` at decision time ``t``.

    Algorithm 3 line 8 / Algorithm 4-5 line 4: subtract the useful work
    performed since ``tlastR_i`` (elapsed time minus checkpoints).
    """
    return remaining_after_elapsed(
        model, rt.index, rt.sigma, rt.alpha, t, rt.t_last
    )


def candidate_finish_times(
    model: ExpectedTimeModel,
    i: int,
    j_init: int,
    alpha_t: float,
    t: float,
    stall: float,
    targets: np.ndarray,
) -> np.ndarray:
    """``t_E(k)`` for every even candidate count in ``targets``.

    One batched profile lookup scores the whole candidate set; the scan
    loops of Algorithms 3-5 never touch a scalar accessor.  The slot
    arithmetic is inlined (``targets`` are even counts >= 2 by
    construction here, so only the grid bound needs checking) — external
    callers wanting full validation should use
    :meth:`~repro.resilience.expected_time.ExpectedTimeModel.
    expected_times` instead.
    """
    if targets.size == 0:
        return np.empty(0)
    grid = model.grid(i)
    slots = (targets >> 1) - 1
    if int(slots.max()) >= grid.j.size:
        raise SimulationError(
            f"candidate count {int(targets.max())} exceeds the platform grid"
        )
    rc = model.rc_factor * redistribution_cost_vector(
        model.pack[i].size, j_init, targets
    )
    profile = model.profile(i, alpha_t)
    return t + stall + rc + (grid.cost[slots] + profile[slots])


def candidate_finish_time(
    model: ExpectedTimeModel,
    i: int,
    j_init: int,
    alpha_t: float,
    t: float,
    stall: float,
    k: int,
) -> float:
    """Scalar ``t_E(k)`` (used when committing a chosen move).

    The arithmetic mirrors :func:`candidate_finish_times` operation for
    operation so scalar and batched scores agree bit for bit (including
    raising :class:`SimulationError` for an out-of-grid ``k``).
    """
    grid = model.grid(i)
    try:
        slot = grid.slot(k)
    except CapacityError:
        raise SimulationError(
            f"candidate count {int(k)} exceeds the platform grid"
        ) from None
    rc = model.rc_factor * redistribution_cost(
        model.pack[i].size, j_init, k
    )
    profile = model.profile(i, alpha_t)
    finish = float(grid.cost[slot] + profile[slot])
    return t + stall + rc + finish


def apply_move(
    model: ExpectedTimeModel,
    rt: TaskRuntime,
    t: float,
    stall: float,
    j_init: int,
    new_sigma: int,
    alpha_t: float,
    cache: Optional["DecisionCache"] = None,
) -> None:
    """Commit a redistribution on ``rt`` (Alg. 3 lines 24-31 and peers).

    Sets ``alpha`` to the remaining work at the decision time, restarts
    the periodic pattern at ``t + stall + RC + C_{i,new}`` (the
    redistribution always ends with a fresh checkpoint, Section 3.3.2),
    and refreshes the expected finish.  When the committing heuristic
    holds a :class:`~repro.core.kernels.DecisionCache`, the expected
    finish is read off the cache's envelope state
    (:meth:`~repro.core.kernels.DecisionCache.envelope_value` —
    bit-identical, no model-ring round trip).
    """
    i = rt.index
    rc = model.rc_factor * redistribution_cost(
        model.pack[i].size, j_init, new_sigma
    )
    rt.assign(new_sigma)
    rt.alpha = alpha_t
    rt.t_last = t + stall + rc + model.checkpoint_cost(i, new_sigma)
    if cache is not None:
        rt.t_expected = rt.t_last + cache.envelope_value(
            i, alpha_t, new_sigma
        )
    else:
        rt.t_expected = rt.t_last + model.expected_time(i, new_sigma, alpha_t)
    rt.redistributions += 1


class CompletionHeuristic(ABC):
    """Redistributes processors released by a finished task (Section 5.2)."""

    name: str = "abstract"

    @abstractmethod
    def apply(
        self,
        model: ExpectedTimeModel,
        t: float,
        tasks: Sequence[TaskRuntime],
        free: int,
        kernel: str = "array",
        cache: Optional[DecisionCache] = None,
    ) -> List[int]:
        """Redistribute ``free`` processors among ``tasks`` at time ``t``.

        Mutates the runtimes in place and returns the indices of the tasks
        whose allocation changed (the simulator re-projects those).
        ``kernel`` picks the decision kernel (:mod:`repro.core.kernels`):
        the batched ``"array"`` matrix or the ``"scalar"`` reference —
        both produce bit-identical decisions.  ``cache`` (array kernel
        only) supplies the run's persistent
        :class:`~repro.core.kernels.DecisionCache`, whose delta-patched
        matrix replaces the per-decision fresh build — also
        bit-identical.
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class FailureHeuristic(ABC):
    """Rebalances after a failure struck the longest task (Section 5.3)."""

    name: str = "abstract"

    @abstractmethod
    def apply(
        self,
        model: ExpectedTimeModel,
        t: float,
        tasks: Sequence[TaskRuntime],
        free: int,
        faulty: int,
        kernel: str = "array",
        cache: Optional[DecisionCache] = None,
    ) -> List[int]:
        """Rebalance around faulty task ``faulty`` at time ``t``.

        ``tasks`` contains the active, non-busy tasks *including* the
        faulty one, whose ``alpha``/``t_last``/``t_expected`` have already
        been rolled back by the simulator skeleton (Alg. 2 lines 23-26).
        Returns the indices of tasks whose allocation changed.  ``kernel``
        picks the decision kernel (:mod:`repro.core.kernels`); ``cache``
        the run's persistent delta-patched decision state (array kernel
        only, bit-identical to the fresh build).
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


