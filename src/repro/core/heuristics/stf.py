"""``ShortestTasksFirst`` — Algorithm 4 (Section 5.3).

Local failure-time rebalancing in two phases:

1. hand any *free* processors to the faulty task while that improves its
   expected finish (first-improving increment ``q_max`` per scan);
2. *steal* buddy pairs from the shortest running tasks (those holding at
   least 4 processors) — a donor gives a pair only if both the faulty
   task improves **and** the donor's new finish stays below the faulty
   task's expected finish, i.e. the donor never becomes the bottleneck.

Deviations from the pseudocode, per DESIGN.md (interpretations 2 and 5):
the faulty task's candidates include its ``D + R`` stall (the Section
3.3.2 text), and the phase-1 loop breaks when no improvement is found
(the literal ``while k >= 2`` would never terminate).  Phase 2 runs even
when phase 1 allocated nothing, matching the prose ("Then, if the faulty
task is still improvable ...").

Both phases run on either decision kernel (:mod:`repro.core.kernels`):
``"array"`` scans slices of one precomputed candidate finish matrix,
``"scalar"`` keeps the per-scan model calls as the bit-identical
reference.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ...resilience.expected_time import ExpectedTimeModel
from ..kernels import DecisionCache, decision_matrix, ensure_kernel
from ..state import TaskRuntime
from .base import (
    FailureHeuristic,
    apply_move,
    candidate_finish_time,
    candidate_finish_times,
    faulty_stall,
    remaining_at,
)

__all__ = ["ShortestTasksFirst"]


class ShortestTasksFirst(FailureHeuristic):
    """Give the faulty task free processors, then steal from short tasks."""

    name = "shortest-tasks-first"

    def apply(
        self,
        model: ExpectedTimeModel,
        t: float,
        tasks: Sequence[TaskRuntime],
        free: int,
        faulty: int,
        kernel: str = "array",
        cache: Optional[DecisionCache] = None,
    ) -> List[int]:
        ensure_kernel(kernel)
        if kernel == "array":
            return self._apply_array(model, t, tasks, free, faulty, cache)
        return self._apply_scalar(model, t, tasks, free, faulty)

    def _apply_array(
        self,
        model: ExpectedTimeModel,
        t: float,
        tasks: Sequence[TaskRuntime],
        free: int,
        faulty: int,
        cache: Optional[DecisionCache] = None,
    ) -> List[int]:
        by_index: Dict[int, TaskRuntime] = {rt.index: rt for rt in tasks}
        rt_f = by_index[faulty]
        # Algorithm 4 only ever consults the faulty task and a few
        # donors: materialise rows on first touch.
        if cache is not None:
            dm = cache.matrix(t, tasks, faulty=faulty, lazy=True)
        else:
            dm = decision_matrix(model, t, tasks, faulty=faulty, lazy=True)
        j_max = int(model.j_grid[-1])

        # ---- Phase 1: absorb free processors (Alg. 4 lines 12-25) --------
        k = free
        while k >= 2:
            top = min(rt_f.sigma + k, j_max)
            lo = rt_f.sigma + 2
            finishes = dm.finish_range(faulty, lo, top)
            if finishes.size == 0:
                break
            mask = finishes < rt_f.t_expected
            if not bool(np.any(mask)):
                break  # not improvable: stop consuming (DESIGN interp. 5)
            first = int(np.argmax(mask))
            q_max = lo + 2 * first - rt_f.sigma
            rt_f.sigma += q_max
            rt_f.t_expected = float(finishes[first])
            k -= q_max

        # ---- Phase 2: steal from the shortest tasks (lines 27-41) --------
        improvable = True
        while improvable:
            donors = [
                rt
                for rt in tasks
                if rt.index != faulty and rt.sigma >= 4
            ]
            if not donors or rt_f.sigma + 2 > j_max:
                break
            rt_s = min(donors, key=lambda rt: (rt.t_expected, rt.index))
            s = rt_s.index
            improvable = False
            # q = 2, 4, ..., rt_s.sigma - 2, clamped so the faulty task
            # stays on the grid — contiguous even targets either way.
            f_top = min(rt_f.sigma + (rt_s.sigma - 2), j_max)
            f_finishes = dm.finish_range(faulty, rt_f.sigma + 2, f_top)
            if f_finishes.size == 0:
                break
            # Donor targets mirror the q values downwards from sigma - 2.
            d_hi = rt_s.sigma - 2
            d_lo = rt_s.sigma - 2 * f_finishes.size
            s_finishes = dm.finish_range(s, d_lo, d_hi)[::-1]
            mask = (f_finishes < rt_f.t_expected) & (
                s_finishes < rt_f.t_expected
            )
            if bool(np.any(mask)):
                improvable = True
                # Move a single pair regardless of the probe (line 36).
                rt_f.sigma += 2
                rt_s.sigma -= 2
                rt_f.t_expected = dm.finish(faulty, rt_f.sigma)
                rt_s.t_expected = dm.finish(s, rt_s.sigma)
                if rt_s.t_expected > rt_f.t_expected:
                    improvable = False  # the donor became the bottleneck

        # ---- Commit (lines 43-48) -----------------------------------------
        changed: List[int] = []
        for i, rt in by_index.items():
            if rt.sigma != dm.init_of(i):
                apply_move(
                    model, rt, t, dm.stall_of(i), dm.init_of(i), rt.sigma,
                    dm.alpha_of(i), cache=cache,
                )
                changed.append(i)
        return changed

    def _apply_scalar(
        self,
        model: ExpectedTimeModel,
        t: float,
        tasks: Sequence[TaskRuntime],
        free: int,
        faulty: int,
    ) -> List[int]:
        by_index: Dict[int, TaskRuntime] = {rt.index: rt for rt in tasks}
        rt_f = by_index[faulty]
        sigma_init: Dict[int, int] = {rt.index: rt.sigma for rt in tasks}
        stall_f = faulty_stall(rt_f, t)
        alpha_t: Dict[int, float] = {}
        for rt in tasks:
            if rt.index == faulty:
                alpha_t[rt.index] = rt.alpha  # already rolled back
            else:
                alpha_t[rt.index] = remaining_at(model, rt, t)

        j_max = int(model.j_grid[-1])

        def faulty_finish(k: int) -> float:
            return candidate_finish_time(
                model, faulty, sigma_init[faulty], alpha_t[faulty], t,
                stall_f, k,
            )

        # ---- Phase 1: absorb free processors (Alg. 4 lines 12-25) --------
        k = free
        while k >= 2:
            top = min(rt_f.sigma + k, j_max)
            targets = np.arange(rt_f.sigma + 2, top + 1, 2, dtype=int)
            if targets.size == 0:
                break
            finishes = candidate_finish_times(
                model, faulty, sigma_init[faulty], alpha_t[faulty], t,
                stall_f, targets,
            )
            mask = finishes < rt_f.t_expected
            if not bool(np.any(mask)):
                break  # not improvable: stop consuming (DESIGN interp. 5)
            first = int(np.argmax(mask))
            q_max = int(targets[first]) - rt_f.sigma
            rt_f.sigma += q_max
            rt_f.t_expected = float(finishes[first])
            k -= q_max

        # ---- Phase 2: steal from the shortest tasks (lines 27-41) --------
        improvable = True
        while improvable:
            donors = [
                rt
                for rt in tasks
                if rt.index != faulty and rt.sigma >= 4
            ]
            if not donors or rt_f.sigma + 2 > j_max:
                break
            rt_s = min(donors, key=lambda rt: (rt.t_expected, rt.index))
            s = rt_s.index
            improvable = False
            q_values = np.arange(2, rt_s.sigma - 1, 2, dtype=int)
            if q_values.size == 0:
                break
            faulty_targets = rt_f.sigma + q_values
            in_range = faulty_targets <= j_max
            q_values = q_values[in_range]
            faulty_targets = faulty_targets[in_range]
            if q_values.size == 0:
                break
            f_finishes = candidate_finish_times(
                model, faulty, sigma_init[faulty], alpha_t[faulty], t,
                stall_f, faulty_targets,
            )
            donor_targets = rt_s.sigma - q_values
            s_finishes = candidate_finish_times(
                model, s, sigma_init[s], alpha_t[s], t, 0.0, donor_targets
            )
            mask = (f_finishes < rt_f.t_expected) & (
                s_finishes < rt_f.t_expected
            )
            if bool(np.any(mask)):
                improvable = True
                # Move a single pair regardless of the probe (line 36).
                rt_f.sigma += 2
                rt_s.sigma -= 2
                rt_f.t_expected = faulty_finish(rt_f.sigma)
                rt_s.t_expected = candidate_finish_time(
                    model, s, sigma_init[s], alpha_t[s], t, 0.0, rt_s.sigma
                )
                if rt_s.t_expected > rt_f.t_expected:
                    improvable = False  # the donor became the bottleneck

        # ---- Commit (lines 43-48) -----------------------------------------
        changed: List[int] = []
        for i, rt in by_index.items():
            if rt.sigma != sigma_init[i]:
                new_sigma = rt.sigma
                stall = stall_f if i == faulty else 0.0
                apply_move(
                    model, rt, t, stall, sigma_init[i], new_sigma, alpha_t[i]
                )
                changed.append(i)
        return changed
