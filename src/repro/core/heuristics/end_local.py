"""``EndLocal`` — Algorithm 3 (Section 5.2).

When a task terminates and releases processors, greedily hand them out in
buddy pairs to the task with the largest expected finish time, as long as
the move pays for its redistribution cost.  Decisions are purely local: a
task found non-improvable is dropped from consideration and its processors
are never reclaimed.

On the ``"array"`` decision kernel (:mod:`repro.core.kernels`) the
greedy loop only slices the decision matrix (rows materialise on first
touch — a completion may consult just a few tasks); ``"scalar"`` keeps
the per-pop model calls as the bit-identical reference.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence

import numpy as np

from ...resilience.expected_time import ExpectedTimeModel
from ..kernels import DecisionCache, decision_matrix, ensure_kernel
from ..state import TaskRuntime
from .base import (
    CompletionHeuristic,
    apply_move,
    candidate_finish_time,
    candidate_finish_times,
    remaining_at,
)

__all__ = ["EndLocal"]


class EndLocal(CompletionHeuristic):
    """Local greedy redistribution of released processors (Algorithm 3)."""

    name = "end-local"

    def apply(
        self,
        model: ExpectedTimeModel,
        t: float,
        tasks: Sequence[TaskRuntime],
        free: int,
        kernel: str = "array",
        cache: Optional[DecisionCache] = None,
    ) -> List[int]:
        ensure_kernel(kernel)
        if free < 2 or not tasks:
            return []
        if kernel == "array":
            return self._apply_array(model, t, tasks, free, cache)
        return self._apply_scalar(model, t, tasks, free)

    def _apply_array(
        self,
        model: ExpectedTimeModel,
        t: float,
        tasks: Sequence[TaskRuntime],
        free: int,
        cache: Optional[DecisionCache] = None,
    ) -> List[int]:
        by_index: Dict[int, TaskRuntime] = {rt.index: rt for rt in tasks}
        if cache is not None:
            dm = cache.matrix(t, tasks, lazy=True)
        else:
            dm = decision_matrix(model, t, tasks, lazy=True)

        # Max-heap on tU (Algorithm 3 keeps L sorted non-increasingly).
        heap = [(-rt.t_expected, rt.index) for rt in tasks]
        heapq.heapify(heap)

        k = free
        while k >= 2 and heap:
            _, i = heapq.heappop(heap)
            rt = by_index[i]
            finishes = dm.finish_range(i, rt.sigma + 2, rt.sigma + k)
            if finishes.size and bool(np.any(finishes < rt.t_expected)):
                # Improvable: grant exactly one pair (line 17) and re-rank.
                rt.sigma += 2
                rt.t_expected = dm.finish(i, rt.sigma)
                heapq.heappush(heap, (-rt.t_expected, i))
                k -= 2
            # Non-improvable tasks stay popped (dropped from L).

        changed: List[int] = []
        for i, rt in by_index.items():
            if rt.sigma != dm.init_of(i):
                new_sigma = rt.sigma
                rt.sigma = dm.init_of(i)  # apply_move re-assigns from scratch
                apply_move(
                    model, rt, t, 0.0, dm.init_of(i), new_sigma,
                    dm.alpha_of(i), cache=cache,
                )
                changed.append(i)
        return changed

    def _apply_scalar(
        self,
        model: ExpectedTimeModel,
        t: float,
        tasks: Sequence[TaskRuntime],
        free: int,
    ) -> List[int]:
        by_index: Dict[int, TaskRuntime] = {rt.index: rt for rt in tasks}
        sigma_init: Dict[int, int] = {rt.index: rt.sigma for rt in tasks}
        alpha_t: Dict[int, float] = {}

        # Max-heap on tU (Algorithm 3 keeps L sorted non-increasingly).
        heap = [(-rt.t_expected, rt.index) for rt in tasks]
        heapq.heapify(heap)

        k = free
        while k >= 2 and heap:
            _, i = heapq.heappop(heap)
            rt = by_index[i]
            j_init = sigma_init[i]
            if i not in alpha_t:
                # Line 8: work done since tlastR, measured at sigma_init.
                alpha_t[i] = remaining_at(model, rt, t)
            a_t = alpha_t[i]
            targets = np.arange(rt.sigma + 2, rt.sigma + k + 1, 2, dtype=int)
            finishes = candidate_finish_times(
                model, i, j_init, a_t, t, 0.0, targets
            )
            if finishes.size and bool(np.any(finishes < rt.t_expected)):
                # Improvable: grant exactly one pair (line 17) and re-rank.
                rt.sigma += 2
                rt.t_expected = candidate_finish_time(
                    model, i, j_init, a_t, t, 0.0, rt.sigma
                )
                heapq.heappush(heap, (-rt.t_expected, i))
                k -= 2
            # Non-improvable tasks stay popped (dropped from L).

        changed: List[int] = []
        for i, rt in by_index.items():
            if rt.sigma != sigma_init[i]:
                new_sigma = rt.sigma
                rt.sigma = sigma_init[i]  # apply_move re-assigns from scratch
                apply_move(
                    model, rt, t, 0.0, sigma_init[i], new_sigma, alpha_t[i]
                )
                changed.append(i)
        return changed
