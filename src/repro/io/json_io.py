"""Lossless JSON round-trips for results and figure data.

Every document carries ``{"format": FORMAT_VERSION, "kind": ...}``; the
loaders check both fields, so mixing artefact kinds or reading an archive
written by an incompatible version raises
:class:`~repro.exceptions.ConfigurationError` instead of producing a
half-parsed object.

NumPy arrays are serialised as plain lists; round-tripped results compare
equal on every field the test suite checks (floats survive exactly thanks
to ``repr``-based JSON float formatting).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, IO, Union

import numpy as np

from ..exceptions import ConfigurationError
from ..experiments.figures import FigureResult
from ..simulation.result import SimulationResult
from ..simulation.trace import EventKind, Trace, TraceEvent

__all__ = [
    "FORMAT_VERSION",
    "result_to_json",
    "result_from_json",
    "save_result",
    "load_result",
    "figure_to_json",
    "figure_from_json",
    "save_figure",
    "load_figure",
]

#: Bumped on any breaking change to the document layouts below.
FORMAT_VERSION: int = 1

PathOrFile = Union[str, Path, IO[str]]


def _check_envelope(document: Dict[str, Any], kind: str) -> None:
    if not isinstance(document, dict):
        raise ConfigurationError(f"expected a JSON object, got {type(document)}")
    version = document.get("format")
    if version != FORMAT_VERSION:
        raise ConfigurationError(
            f"unsupported format version {version!r}; "
            f"this build reads version {FORMAT_VERSION}"
        )
    actual = document.get("kind")
    if actual != kind:
        raise ConfigurationError(
            f"expected a {kind!r} document, found {actual!r}"
        )


# ---------------------------------------------------------------------------
# traces

def _trace_to_dict(trace: Trace) -> Dict[str, Any]:
    return {
        "events": [
            {
                "time": event.time,
                "kind": event.kind.value,
                "task": event.task,
                "detail": event.detail,
            }
            for event in trace.events
        ],
        "failure_times": list(trace.failure_times),
        "makespan_after_failure": list(trace.makespan_after_failure),
        "sigma_std_after_failure": list(trace.sigma_std_after_failure),
    }


def _trace_from_dict(payload: Dict[str, Any]) -> Trace:
    try:
        events = [
            TraceEvent(
                time=float(e["time"]),
                kind=EventKind(e["kind"]),
                task=int(e["task"]),
                detail=str(e.get("detail", "")),
            )
            for e in payload["events"]
        ]
    except (KeyError, ValueError) as exc:
        raise ConfigurationError(f"malformed trace payload: {exc}") from exc
    return Trace(
        events=events,
        failure_times=[float(v) for v in payload.get("failure_times", [])],
        makespan_after_failure=[
            float(v) for v in payload.get("makespan_after_failure", [])
        ],
        sigma_std_after_failure=[
            float(v) for v in payload.get("sigma_std_after_failure", [])
        ],
    )


# ---------------------------------------------------------------------------
# simulation results

def result_to_json(result: SimulationResult) -> str:
    """Serialise a :class:`SimulationResult` (trace included if present)."""
    document: Dict[str, Any] = {
        "format": FORMAT_VERSION,
        "kind": "simulation-result",
        "policy": result.policy,
        "makespan": result.makespan,
        "completion_times": np.asarray(result.completion_times).tolist(),
        "initial_sigma": {str(k): int(v) for k, v in result.initial_sigma.items()},
        "failures_effective": result.failures_effective,
        "failures_idle": result.failures_idle,
        "failures_masked": result.failures_masked,
        "redistributions": result.redistributions,
        "events": result.events,
        "seed": result.seed,
        "trace": _trace_to_dict(result.trace) if result.trace is not None else None,
    }
    return json.dumps(document, indent=2)


def result_from_json(text: str) -> SimulationResult:
    """Parse a document produced by :func:`result_to_json`."""
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"invalid JSON: {exc}") from exc
    _check_envelope(document, "simulation-result")
    try:
        trace_payload = document["trace"]
        return SimulationResult(
            policy=str(document["policy"]),
            makespan=float(document["makespan"]),
            completion_times=np.asarray(
                document["completion_times"], dtype=float
            ),
            initial_sigma={
                int(k): int(v) for k, v in document["initial_sigma"].items()
            },
            failures_effective=int(document["failures_effective"]),
            failures_idle=int(document["failures_idle"]),
            failures_masked=int(document["failures_masked"]),
            redistributions=int(document["redistributions"]),
            events=int(document["events"]),
            seed=int(document["seed"]),
            trace=(
                _trace_from_dict(trace_payload)
                if trace_payload is not None
                else None
            ),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigurationError(
            f"malformed simulation-result document: {exc}"
        ) from exc


# ---------------------------------------------------------------------------
# figure results

def figure_to_json(result: FigureResult) -> str:
    """Serialise a :class:`FigureResult` sweep."""
    document: Dict[str, Any] = {
        "format": FORMAT_VERSION,
        "kind": "figure-result",
        "figure": result.figure,
        "title": result.title,
        "x_name": result.x_name,
        "x_values": list(result.x_values),
        "labels": dict(result.labels),
        "normalized": {k: list(v) for k, v in result.normalized.items()},
        "means": {k: list(v) for k, v in result.means.items()},
        "descriptions": list(result.descriptions),
    }
    return json.dumps(document, indent=2)


def figure_from_json(text: str) -> FigureResult:
    """Parse a document produced by :func:`figure_to_json`."""
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"invalid JSON: {exc}") from exc
    _check_envelope(document, "figure-result")
    try:
        return FigureResult(
            figure=str(document["figure"]),
            title=str(document["title"]),
            x_name=str(document["x_name"]),
            x_values=[float(x) for x in document["x_values"]],
            labels={str(k): str(v) for k, v in document["labels"].items()},
            normalized={
                str(k): [float(x) for x in v]
                for k, v in document["normalized"].items()
            },
            means={
                str(k): [float(x) for x in v]
                for k, v in document["means"].items()
            },
            descriptions=[str(d) for d in document.get("descriptions", [])],
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigurationError(
            f"malformed figure-result document: {exc}"
        ) from exc


# ---------------------------------------------------------------------------
# path/file helpers

def _write(target: PathOrFile, text: str) -> None:
    if hasattr(target, "write"):
        target.write(text)  # type: ignore[union-attr]
    else:
        Path(target).write_text(text)  # type: ignore[arg-type]


def _read(source: PathOrFile) -> str:
    if hasattr(source, "read"):
        return source.read()  # type: ignore[union-attr]
    return Path(source).read_text()  # type: ignore[arg-type]


def save_result(result: SimulationResult, target: PathOrFile) -> None:
    """Write a simulation result to a path or file object."""
    _write(target, result_to_json(result))


def load_result(source: PathOrFile) -> SimulationResult:
    """Read a simulation result from a path or file object."""
    return result_from_json(_read(source))


def save_figure(result: FigureResult, target: PathOrFile) -> None:
    """Write a figure result to a path or file object."""
    _write(target, figure_to_json(result))


def load_figure(source: PathOrFile) -> FigureResult:
    """Read a figure result from a path or file object."""
    return figure_from_json(_read(source))
