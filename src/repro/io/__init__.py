"""Serialisation of simulation and experiment artefacts.

Simulation results, traces and figure data are plain dataclasses; this
package gives them stable on-disk forms so experiments can be archived,
diffed and re-rendered without re-running:

* :mod:`repro.io.json_io` — lossless JSON round-trips for
  :class:`~repro.simulation.result.SimulationResult` (including traces)
  and :class:`~repro.experiments.figures.FigureResult`;
* :mod:`repro.io.csv_io` — flat CSV exports of figure series and trace
  event logs for spreadsheet / pandas consumption.

All writers take either a path or a file-like object; all readers verify
a format version so stale archives fail loudly instead of silently
mis-parsing.
"""

from __future__ import annotations

from .csv_io import (
    figure_to_csv,
    trace_events_to_csv,
    write_figure_csv,
    write_trace_csv,
)
from .json_io import (
    FORMAT_VERSION,
    figure_from_json,
    figure_to_json,
    load_figure,
    load_result,
    result_from_json,
    result_to_json,
    save_figure,
    save_result,
)

__all__ = [
    "FORMAT_VERSION",
    "result_to_json",
    "result_from_json",
    "save_result",
    "load_result",
    "figure_to_json",
    "figure_from_json",
    "save_figure",
    "load_figure",
    "figure_to_csv",
    "write_figure_csv",
    "trace_events_to_csv",
    "write_trace_csv",
]
