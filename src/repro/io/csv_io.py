"""Flat CSV exports for spreadsheets and pandas.

Two layouts:

* **figure CSV** — one row per sweep point; columns are the x variable
  followed by ``<key>_normalized`` and ``<key>_mean`` per series.  This is
  the table a plotting script would consume to redraw a paper figure.
* **trace CSV** — one row per simulator event (``time,kind,task,detail``),
  the long format used for post-hoc event analysis.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import IO, List, Union

from ..exceptions import ConfigurationError
from ..experiments.figures import FigureResult
from ..simulation.trace import Trace

__all__ = [
    "figure_to_csv",
    "write_figure_csv",
    "trace_events_to_csv",
    "write_trace_csv",
]

PathOrFile = Union[str, Path, IO[str]]


def figure_to_csv(result: FigureResult) -> str:
    """Render a figure sweep as CSV text (header + one row per point)."""
    keys = result.series_keys()
    for key in keys:
        if len(result.normalized[key]) != len(result.x_values):
            raise ConfigurationError(
                f"series {key!r} length does not match the sweep"
            )
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    header: List[str] = [result.x_name]
    for key in keys:
        header.append(f"{key}_normalized")
        header.append(f"{key}_mean")
    writer.writerow(header)
    for index, x in enumerate(result.x_values):
        row: List[object] = [x]
        for key in keys:
            row.append(result.normalized[key][index])
            row.append(result.means[key][index])
        writer.writerow(row)
    return buffer.getvalue()


def trace_events_to_csv(trace: Trace) -> str:
    """Render a trace event log as CSV text."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(["time", "kind", "task", "detail"])
    for event in trace.events:
        writer.writerow([event.time, event.kind.value, event.task, event.detail])
    return buffer.getvalue()


def _write(target: PathOrFile, text: str) -> None:
    if hasattr(target, "write"):
        target.write(text)  # type: ignore[union-attr]
    else:
        Path(target).write_text(text)  # type: ignore[arg-type]


def write_figure_csv(result: FigureResult, target: PathOrFile) -> None:
    """Write the figure CSV to a path or file object."""
    _write(target, figure_to_csv(result))


def write_trace_csv(trace: Trace, target: PathOrFile) -> None:
    """Write the trace CSV to a path or file object."""
    _write(target, trace_events_to_csv(trace))
