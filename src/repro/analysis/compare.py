"""Paired policy comparisons with uncertainty.

The paper reports ratio-of-means over 50 paired replicates.  At the
reduced replicate counts this reproduction runs, point estimates need
error bars and significance: this module adds

* :func:`bootstrap_ci` — percentile bootstrap for any statistic;
* :func:`paired_comparison` — everything one needs to claim "policy A
  beats policy B" from paired makespans: per-replicate ratios, win
  fraction, bootstrap CI of the mean ratio, and an exact sign-test
  p-value (distribution-free, honest at small n).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from ..exceptions import ConfigurationError
from ..rng import derive_rng

__all__ = ["bootstrap_ci", "PairedComparison", "paired_comparison"]


def bootstrap_ci(
    values: Sequence[float],
    *,
    statistic: Callable[[np.ndarray], float] = np.mean,
    confidence: float = 0.95,
    resamples: int = 2_000,
    seed: int = 0,
) -> tuple[float, float]:
    """Percentile-bootstrap confidence interval for ``statistic``.

    >>> lo, hi = bootstrap_ci([1.0, 1.1, 0.9, 1.05], seed=1)
    >>> lo < 1.0125 < hi
    True
    """
    data = np.asarray(values, dtype=float)
    if data.size < 2:
        raise ConfigurationError("bootstrap needs at least 2 values")
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError("confidence must be in (0, 1)")
    if resamples < 100:
        raise ConfigurationError("use at least 100 resamples")
    rng = derive_rng(seed, "bootstrap")
    indices = rng.integers(0, data.size, size=(resamples, data.size))
    stats = np.array([statistic(data[row]) for row in indices])
    tail = (1.0 - confidence) / 2.0
    return (
        float(np.quantile(stats, tail)),
        float(np.quantile(stats, 1.0 - tail)),
    )


def _sign_test_p(wins: int, losses: int) -> float:
    """Two-sided exact binomial sign test (ties dropped)."""
    n = wins + losses
    if n == 0:
        return 1.0
    k = min(wins, losses)
    # P(X <= k) + P(X >= n - k) under Binomial(n, 1/2)
    tail = sum(math.comb(n, i) for i in range(0, k + 1)) / 2.0**n
    return min(1.0, 2.0 * tail)


@dataclass(frozen=True)
class PairedComparison:
    """Outcome of comparing candidate vs baseline on paired replicates."""

    ratios: np.ndarray          #: candidate / baseline per replicate
    mean_ratio: float
    ci_low: float
    ci_high: float
    wins: int                   #: replicates where the candidate was faster
    losses: int
    ties: int
    p_value: float              #: exact two-sided sign test

    @property
    def n(self) -> int:
        """Number of paired replicates."""
        return int(self.ratios.size)

    @property
    def win_fraction(self) -> float:
        """Share of decided replicates won by the candidate."""
        decided = self.wins + self.losses
        return self.wins / decided if decided else 0.5

    @property
    def significant(self) -> bool:
        """Sign test at the 5% level."""
        return self.p_value < 0.05

    def describe(self) -> str:
        """One-line digest."""
        return (
            f"ratio={self.mean_ratio:.4f} "
            f"[{self.ci_low:.4f}, {self.ci_high:.4f}] "
            f"wins={self.wins}/{self.wins + self.losses + self.ties} "
            f"p={self.p_value:.3g}"
            + (" *" if self.significant else "")
        )


def paired_comparison(
    candidate: Sequence[float],
    baseline: Sequence[float],
    *,
    confidence: float = 0.95,
    resamples: int = 2_000,
    seed: int = 0,
    tie_tolerance: float = 1e-12,
) -> PairedComparison:
    """Compare paired makespans: ``candidate[i]`` vs ``baseline[i]``.

    Ratios below 1 favour the candidate.  The CI is a bootstrap over the
    per-replicate ratios; the p-value is the exact sign test on wins vs
    losses (ties within ``tie_tolerance`` relative difference dropped).
    """
    cand = np.asarray(candidate, dtype=float)
    base = np.asarray(baseline, dtype=float)
    if cand.shape != base.shape:
        raise ConfigurationError(
            f"paired series must match: {cand.shape} vs {base.shape}"
        )
    if cand.size < 2:
        raise ConfigurationError("at least 2 paired replicates are required")
    if np.any(base <= 0) or np.any(cand <= 0):
        raise ConfigurationError("makespans must be positive")
    ratios = cand / base
    relative = np.abs(cand - base) / base
    ties = int(np.count_nonzero(relative <= tie_tolerance))
    wins = int(np.count_nonzero((cand < base) & (relative > tie_tolerance)))
    losses = int(np.count_nonzero((cand > base) & (relative > tie_tolerance)))
    ci_low, ci_high = bootstrap_ci(
        ratios, confidence=confidence, resamples=resamples, seed=seed
    )
    return PairedComparison(
        ratios=ratios,
        mean_ratio=float(ratios.mean()),
        ci_low=ci_low,
        ci_high=ci_high,
        wins=wins,
        losses=losses,
        ties=ties,
        p_value=_sign_test_p(wins, losses),
    )
