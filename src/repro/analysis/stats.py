"""Statistics over replicated simulations."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..exceptions import ConfigurationError

__all__ = ["SeriesStats", "describe", "normalize_by", "paired_gain"]


@dataclass(frozen=True)
class SeriesStats:
    """Summary statistics of one series of makespans."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    ci_half_width: float  #: ~95% normal-approximation half width

    def ci(self) -> tuple[float, float]:
        """95% confidence interval for the mean."""
        return (self.mean - self.ci_half_width, self.mean + self.ci_half_width)


def describe(values: Sequence[float]) -> SeriesStats:
    """Summary statistics with a normal-approximation 95% CI."""
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        raise ConfigurationError("cannot describe an empty series")
    std = float(array.std(ddof=1)) if array.size > 1 else 0.0
    half = 1.96 * std / math.sqrt(array.size) if array.size > 1 else 0.0
    return SeriesStats(
        count=int(array.size),
        mean=float(array.mean()),
        std=std,
        minimum=float(array.min()),
        maximum=float(array.max()),
        ci_half_width=half,
    )


def normalize_by(
    values: Sequence[float], baseline: Sequence[float]
) -> float:
    """Paper normalisation: ratio of mean makespans (Section 6.2)."""
    baseline_mean = float(np.asarray(baseline, dtype=float).mean())
    if baseline_mean <= 0:
        raise ConfigurationError("baseline mean must be positive")
    return float(np.asarray(values, dtype=float).mean()) / baseline_mean


def paired_gain(
    values: Sequence[float], baseline: Sequence[float]
) -> SeriesStats:
    """Statistics of the per-replicate ratios (paired design).

    Complements the paper's ratio-of-means with a distribution over the
    paired ratios, exposing run-to-run variability.
    """
    v = np.asarray(values, dtype=float)
    b = np.asarray(baseline, dtype=float)
    if v.shape != b.shape:
        raise ConfigurationError(
            f"paired series must have equal lengths: {v.shape} vs {b.shape}"
        )
    if np.any(b <= 0):
        raise ConfigurationError("baseline values must be positive")
    return describe(v / b)
