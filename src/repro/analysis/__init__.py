"""Analysis utilities: replicate statistics and paired comparisons."""

from .compare import PairedComparison, bootstrap_ci, paired_comparison
from .stats import SeriesStats, describe, normalize_by, paired_gain

__all__ = [
    "SeriesStats",
    "describe",
    "normalize_by",
    "paired_gain",
    "PairedComparison",
    "bootstrap_ci",
    "paired_comparison",
]
