"""Extension bench: silent errors with verification (future work, §7).

Prices one task under the verified-checkpointing pattern as the silent
error rate grows, and validates the closed form against the Monte-Carlo
sampler at one hostile operating point.

Expected shape: higher silent rates shorten the optimal pattern, raise
the verification overhead, and inflate the expected completion time;
the analytic pattern model agrees with simulation.
"""

from __future__ import annotations

import numpy as np

from repro import Cluster, uniform_pack
from repro.resilience import (
    SilentErrorConfig,
    SilentErrorModel,
    simulate_silent_execution,
)
from repro.units import years

from _common import RESULTS_DIR, BENCH_SEED

SILENT_MTBF_YEARS = (10.0, 1.0, 0.1, 0.02)


def run_study() -> dict:
    pack = uniform_pack(1, m_inf=50_000, m_sup=50_000, seed=BENCH_SEED)
    cluster = Cluster.with_mtbf_years(16, mtbf_years=0.1)
    j = 8
    outcome: dict = {"work": {}, "overhead": {}, "expected": {}}
    for mtbf in SILENT_MTBF_YEARS:
        model = SilentErrorModel(
            pack,
            cluster,
            SilentErrorConfig(
                silent_rate=1.0 / years(mtbf), verification_unit_cost=0.1
            ),
        )
        outcome["work"][mtbf] = model.optimal_work(0, j)
        outcome["overhead"][mtbf] = model.verification_overhead(0, j)
        outcome["expected"][mtbf] = model.expected_time(0, j, 1.0)

    # Monte-Carlo agreement at the most hostile point
    hostile = SilentErrorModel(
        pack,
        cluster,
        SilentErrorConfig(
            silent_rate=1.0 / years(SILENT_MTBF_YEARS[-1]),
            verification_unit_cost=0.1,
        ),
    )
    rng = np.random.default_rng(BENCH_SEED)
    samples = np.array(
        [simulate_silent_execution(hostile, 0, j, rng=rng) for _ in range(120)]
    )
    outcome["mc_mean"] = float(samples.mean())
    outcome["mc_stderr"] = float(samples.std(ddof=1) / np.sqrt(samples.size))
    outcome["mc_predicted"] = hostile.expected_time(0, j, 1.0)
    return outcome


def test_silent_error_study(benchmark):
    outcome = benchmark.pedantic(run_study, iterations=1, rounds=1)

    RESULTS_DIR.mkdir(exist_ok=True)
    lines = [
        f"silent mtbf={mtbf:g}y: w*={outcome['work'][mtbf]:.6g}s "
        f"verify-overhead={outcome['overhead'][mtbf]:.3%} "
        f"E[time]={outcome['expected'][mtbf]:.6g}s"
        for mtbf in SILENT_MTBF_YEARS
    ]
    lines.append(
        f"monte-carlo: mean={outcome['mc_mean']:.6g}s "
        f"predicted={outcome['mc_predicted']:.6g}s "
        f"(stderr {outcome['mc_stderr']:.3g}s)"
    )
    (RESULTS_DIR / "silent_errors.txt").write_text("\n".join(lines) + "\n")

    mtbfs = SILENT_MTBF_YEARS
    # more silent errors => shorter patterns, more verification, more time
    for a, b in zip(mtbfs, mtbfs[1:]):  # a more reliable than b
        assert outcome["work"][a] >= outcome["work"][b]
        assert outcome["overhead"][a] <= outcome["overhead"][b]
        assert outcome["expected"][a] <= outcome["expected"][b]
    # closed form within 5 sigma + 5% of the sampled mean
    tolerance = 5 * outcome["mc_stderr"] + 0.05 * outcome["mc_predicted"]
    assert abs(outcome["mc_mean"] - outcome["mc_predicted"]) < tolerance
