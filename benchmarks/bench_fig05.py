"""Figure 5: fault-free redistribution gain, n=100, p=200..2000.

Paper claims (Section 6.2): both end-of-task heuristics gain >= 20% at
low processor counts; the gain shrinks as p grows; the heterogeneous
variant (b) gains more than the homogeneous one (a).
"""

from _common import bench_figure, series_mean


def test_fig5a_homogeneous(benchmark):
    result = bench_figure(benchmark, "fig5a")
    # Baseline normalises to 1; heuristics never lose in fault-free mode.
    assert all(v == 1.0 for v in result.normalized["no-rc"])
    assert series_mean(result, "rc-greedy") <= 1.0 + 1e-9
    assert series_mean(result, "rc-local") <= 1.0 + 1e-9
    # The gain shrinks (or at worst stagnates) as p grows.
    local = result.normalized["rc-local"]
    assert local[0] <= local[-1] + 0.05


def test_fig5b_heterogeneous(benchmark):
    result = bench_figure(benchmark, "fig5b")
    assert series_mean(result, "rc-local") <= 1.0 + 1e-9
    assert series_mean(result, "rc-greedy") <= 1.0 + 1e-9
