"""Figure 12: impact of the checkpointing cost (n=100, p=1000).

Paper claims: as the unit checkpoint cost c decreases, overall
performance improves and the gap between the fault context and the
fault-free context narrows.
"""

from _common import bench_figure


def test_fig12_checkpoint_cost_sweep(benchmark):
    result = bench_figure(benchmark, "fig12")
    ig = result.normalized["ig-el"]
    ff = result.normalized["ff-rc"]
    # Gap between the fault-context heuristic and the fault-free best
    # case narrows as c decreases (first sweep point = cheapest).
    cheap_gap = ig[0] - ff[0]
    costly_gap = ig[-1] - ff[-1]
    assert cheap_gap <= costly_gap + 0.05
    # Redistribution wins at every cost level.
    assert all(v < 1.05 for v in ig)
