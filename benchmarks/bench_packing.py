"""Extension bench: multi-pack partitioning (future work of Section 7).

A campaign larger than the platform's buddy capacity must be split into
consecutive packs.  This bench compares the partitioning algorithms'
simulated total makespans and checks the pricing oracle's choice is
competitive.

Expected shape: the DP split is at least as good as first-fit on the
oracle's estimate; all algorithms' simulated totals are within a modest
factor of the best; the oracle's preferred partition simulates within a
few percent of the simulated best.
"""

from __future__ import annotations

import numpy as np

from repro import Cluster, uniform_pack
from repro.packing import (
    MultiPackScheduler,
    PackCostOracle,
    dp_contiguous,
    first_fit_capacity,
    fixed_k_lpt,
)

from _common import RESULTS_DIR, BENCH_SEED

REPLICATES = 4


def run_comparison() -> dict:
    pack = uniform_pack(14, m_inf=5_000, m_sup=40_000, seed=BENCH_SEED)
    cluster = Cluster.with_mtbf_years(12, mtbf_years=0.5)
    oracle = PackCostOracle(pack, cluster)
    partitions = {
        "first-fit": first_fit_capacity(oracle),
        "lpt-k3": fixed_k_lpt(oracle, 3),
        "dp-k3": dp_contiguous(oracle, 3),
        "dp-k4": dp_contiguous(oracle, 4),
    }
    outcome: dict = {"estimated": {}, "simulated": {}}
    for name, partition in partitions.items():
        outcome["estimated"][name] = partition.estimated_total
        totals = [
            MultiPackScheduler(
                pack, cluster, "ig-el", partition, seed=BENCH_SEED + seed
            ).run().total_makespan
            for seed in range(REPLICATES)
        ]
        outcome["simulated"][name] = float(np.mean(totals))
    return outcome


def test_packing_algorithms(benchmark):
    outcome = benchmark.pedantic(run_comparison, iterations=1, rounds=1)
    estimated, simulated = outcome["estimated"], outcome["simulated"]

    RESULTS_DIR.mkdir(exist_ok=True)
    lines = [
        f"{name}: estimated={estimated[name]:.6g}s "
        f"simulated={simulated[name]:.6g}s"
        for name in estimated
    ]
    (RESULTS_DIR / "packing_comparison.txt").write_text("\n".join(lines) + "\n")

    # the k=3 DP optimises exactly what the oracle measures, over a
    # superset of first-fit's contiguous candidates at equal pack count
    assert estimated["dp-k3"] <= estimated["first-fit"] + 1e-6
    # more packs allowed => DP estimate can only improve
    assert estimated["dp-k4"] <= estimated["dp-k3"] + 1e-6
    # every heuristic lands in the same ballpark under simulation
    best = min(simulated.values())
    assert all(value <= 1.35 * best for value in simulated.values())
    # the oracle's pick is competitive when executed
    oracle_pick = min(estimated, key=estimated.get)
    assert simulated[oracle_pick] <= 1.15 * best
