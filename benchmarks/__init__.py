"""Benchmark suite (paper figures, micro-benchmarks, regression gate).

Packaged so the tooling entry points run as modules from the repo root::

    PYTHONPATH=src python -m benchmarks.bench_hotpath --write
    PYTHONPATH=src python -m benchmarks.check_regression

The pytest benchmarks (``bench_*.py``) still run through
``python -m pytest benchmarks/`` and honour the ``REPRO_BENCH_SCALE``
(``tiny``/``small``/``paper``) and ``REPRO_BENCH_SEED`` environment
variables — see ``_common.py``.
"""
