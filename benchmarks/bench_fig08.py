"""Figure 8: impact of the number of processors p (n=100).

Paper claims: the gain *shrinks* as p grows (tasks become
over-provisioned) but stays around >= 10% over most of the range;
IteratedGreedy averages ~25% vs ~15% for ShortestTasksFirst.
"""

from _common import bench_figure


def test_fig8_impact_of_p(benchmark):
    result = bench_figure(benchmark, "fig8")
    ig = result.normalized["ig-el"]
    # Gain shrinks with p: the tightest platform benefits the most.
    assert ig[0] <= ig[-1] + 1e-9
    # At the tightest point redistribution is clearly winning.
    assert ig[0] < 0.95
    # Fault-free envelope below the fault-context baseline everywhere.
    for idx in range(len(result.x_values)):
        assert result.normalized["ff-rc"][idx] <= 1.0 + 1e-9
