"""Extension bench: competitive ratios of the online heuristics.

Section 7 asks about the competitiveness of the online redistribution
algorithms.  This bench measures upper bounds on the empirical ratios:
simulated makespan over a certified per-run lower bound (area +
critical-path + failure surcharge), across paired replicates.

Expected shape: every ratio is >= 1 (the bound is sound); redistribution
policies achieve smaller ratios than no-redistribution; all ratios stay
within small constant factors (the heuristics are near-optimal in this
regime, not pathological).
"""

from __future__ import annotations

import numpy as np

from repro import Cluster, simulate, uniform_pack
from repro.theory.online import competitive_report

from _common import RESULTS_DIR, BENCH_SEED

POLICIES = ("no-redistribution", "ig-eg", "ig-el", "stf-eg", "stf-el")
REPLICATES = 6


def run_ratios() -> dict[str, list[float]]:
    cluster = Cluster.with_mtbf_years(24, mtbf_years=0.1)
    ratios: dict[str, list[float]] = {name: [] for name in POLICIES}
    for replicate in range(REPLICATES):
        pack = uniform_pack(
            8, m_inf=8_000, m_sup=30_000, seed=BENCH_SEED + replicate
        )
        results = [
            simulate(pack, cluster, name, seed=replicate) for name in POLICIES
        ]
        report = competitive_report(pack, cluster, results)
        for name in POLICIES:
            ratios[name].append(report.ratios[name])
    return ratios


def test_competitive_ratios(benchmark):
    ratios = benchmark.pedantic(run_ratios, iterations=1, rounds=1)
    means = {name: float(np.mean(values)) for name, values in ratios.items()}

    RESULTS_DIR.mkdir(exist_ok=True)
    lines = [
        f"{name}: mean ratio {means[name]:.4f} "
        f"(min {min(ratios[name]):.4f}, max {max(ratios[name]):.4f})"
        for name in POLICIES
    ]
    (RESULTS_DIR / "competitive_ratios.txt").write_text("\n".join(lines) + "\n")

    # soundness: no run beats its certified lower bound
    assert all(r >= 1.0 for values in ratios.values() for r in values)
    # redistribution improves the empirical competitiveness
    for name in ("ig-eg", "ig-el", "stf-eg", "stf-el"):
        assert means[name] <= means["no-redistribution"] + 1e-9
    # nothing pathological: single-digit constants in this regime
    assert all(mean < 5.0 for mean in means.values())
