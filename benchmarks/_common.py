"""Shared benchmark infrastructure.

Every ``bench_figXX.py`` regenerates the data behind one figure of the
paper's evaluation section and records the series table under
``benchmarks/results/`` so reported numbers can be checked against real
artefacts (the runbook is ``docs/BENCHMARKS.md``).  Shape assertions
encode the paper's qualitative claims; the benchmark timing itself
measures the full experiment pipeline.

Scale selection: set ``REPRO_BENCH_SCALE`` to ``tiny`` (default, seconds
per figure), ``small`` (minutes) or ``paper`` (hours, the full-size
sweeps of Section 6).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Callable

from repro.experiments import (
    FigureResult,
    TraceFigureResult,
    render_figure,
    render_trace_figure,
    run_figure,
)

#: Directory where bench tables are written.
RESULTS_DIR = Path(__file__).parent / "results"

BENCH_SCALE = os.environ.get("REPRO_BENCH_SCALE", "tiny")
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "1"))


def run_and_record(name: str) -> FigureResult | TraceFigureResult:
    """Run one figure at the bench scale and persist its table."""
    result = run_figure(name, scale=BENCH_SCALE, seed=BENCH_SEED)
    RESULTS_DIR.mkdir(exist_ok=True)
    if isinstance(result, TraceFigureResult):
        text = render_trace_figure(result)
    else:
        text = render_figure(result)
    path = RESULTS_DIR / f"{name}_{BENCH_SCALE}.txt"
    path.write_text(text + "\n")
    return result


def bench_figure(benchmark, name: str) -> FigureResult | TraceFigureResult:
    """Benchmark one full figure regeneration (single round)."""
    return benchmark.pedantic(
        run_and_record, args=(name,), iterations=1, rounds=1
    )


def series_mean(result: FigureResult, key: str) -> float:
    """Average normalised value of a series across the sweep."""
    values = result.normalized[key]
    return sum(values) / len(values)
