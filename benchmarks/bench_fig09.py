"""Figure 9: single-run behaviour (n=100, p=1000, MTBF 50 years).

Paper claims: (a) IteratedGreedy reaches lower makespans than
ShortestTasksFirst; (b) IteratedGreedy produces a *larger* standard
deviation of per-task processor counts (it aggressively concentrates
processors on the longest task).

Scale note: at bench scale the platform is over-provisioned relative to
the paper's single-run setting (Fig. 8's regime where redistribution
gains vanish), so "both heuristics beat no-redistribution" is not
guaranteed per draw; the IG-vs-STF ordering and the deviation claim are
the scale-invariant parts, and both heuristics must stay within a small
envelope of the baseline.
"""

import numpy as np

from _common import bench_figure


def test_fig9_single_run_behaviour(benchmark):
    result = bench_figure(benchmark, "fig9")
    finals = result.final_makespans
    # (a) IteratedGreedy reaches a lower final makespan than STF.
    assert finals["ig"] <= finals["stf"] * 1.001
    # Neither heuristic degrades the baseline by more than a few percent
    # even in the over-provisioned regime.
    assert finals["ig"] <= finals["no-rc"] * 1.10
    assert finals["stf"] <= finals["no-rc"] * 1.10
    # (b) processor-count deviation: no-RC never redistributes, so its
    # stddev trace reflects only completions; the heuristics actively
    # skew allocations.  Compare average stddev where both saw failures.
    ig_std = result.series["ig"]["sigma_std"]
    stf_std = result.series["stf"]["sigma_std"]
    if ig_std.size and stf_std.size:
        assert float(np.mean(ig_std)) >= float(np.mean(stf_std)) * 0.5
    # Failure snapshots are chronological.
    for key in result.series:
        times = result.series[key]["failure_times"]
        assert np.all(np.diff(times) >= 0)
