"""Engine benchmark: sweep wall-clock across all five executors.

The persistent executor exists to amortise process-pool start-up across
the points of a sweep (and whole multi-figure campaigns).  This
benchmark measures exactly that claim on a >= 4-point MTBF sweep of the
fig10 scenario: the same requests dispatched

* ``serial``     — in-process reference;
* ``pool``       — a fresh process pool spawned at every sweep point
  (the PR-1 behaviour);
* ``persistent`` — one pool launched at the first point and reused;
* ``async``      — a persistent pool driven by an asyncio event loop
  (dispatch overlapped with reassembly);
* ``queue``      — chunks serialised through a local FileBroker spool
  to worker subprocesses (``python -m repro.engine.worker``).

Results are recorded into the committed ``BENCH_engine.json`` with::

    PYTHONPATH=src python -m benchmarks.bench_engine --write

and the derived ``persistent_speedup`` (pool seconds over persistent
seconds) is the acceptance number: it must stay above 1.0, i.e. the
persistent pool must beat per-point pool spawn.  The async and queue
engines are measured and recorded for visibility (the queue transport
pays pickling plus spool round-trips by design — it buys multi-host
reach, not single-host speed), but only the persistent gate is
enforced.  ``REPRO_BENCH_SCALE`` (``tiny``/``small``) sizes the
sweep's scenarios.  The executors are byte-identical by contract, and
the benchmark asserts it on the produced series of every engine.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path
from typing import Dict, Optional, Sequence

from repro.engine import ENGINES, create_executor
from repro.experiments import FAULT_SERIES, run_scenario
from repro.experiments.config import ScenarioConfig, get_scale

try:  # pytest / sys.path import (benchmarks/ on the path)
    from ._common import BENCH_SCALE, BENCH_SEED
except ImportError:  # pragma: no cover - direct execution fallback
    from _common import BENCH_SCALE, BENCH_SEED

#: Committed baseline location (repo root).
DEFAULT_BASELINE = Path(__file__).resolve().parent.parent / "BENCH_engine.json"

#: MTBF sweep (years) of the benchmark scenario — >= 4 points, so the
#: per-point pool pays >= 4 spawns where the persistent pool pays one.
SWEEP_MTBF_YEARS = (5.0, 35.0, 65.0, 95.0, 125.0)

WORKERS = 2


def sweep_configs() -> list:
    """The sweep's scaled scenario configs (fig10 shape)."""
    scale = get_scale(BENCH_SCALE if BENCH_SCALE != "paper" else "small")
    base = ScenarioConfig(n=100, p=1000)
    return [
        scale.apply(
            ScenarioConfig(
                n=base.n, p=base.p, mtbf_years=float(years)
            )
        )
        for years in SWEEP_MTBF_YEARS
    ]


def run_sweep(engine: str, repeats: int = 2) -> Dict[str, object]:
    """Best-of-``repeats`` wall-clock of one full sweep.

    The process-wide workload cache is cleared before every repeat so no
    engine inherits workloads another engine (or an earlier repeat)
    built — forked pool workers copy the parent's cache, which would
    otherwise gift the serial run's constructions to the pools and blur
    the comparison.  Min-of-repeats keeps the number stable on loaded
    machines (same policy as ``bench_hotpath.measure``).
    """
    from repro.engine.cache import shared_cache

    configs = sweep_configs()
    best = float("inf")
    for _ in range(repeats):
        shared_cache.clear()
        series_digest = []
        start = time.perf_counter()
        with create_executor(engine, workers=WORKERS) as executor:
            for config in configs:
                outcome = run_scenario(
                    config, FAULT_SERIES, seed=BENCH_SEED, executor=executor
                )
                series_digest.append(outcome.normalized_row())
            stats = executor.stats().cache_info()
        best = min(best, time.perf_counter() - start)
    return {
        "seconds": best,
        "points": len(configs),
        "stats": stats,
        "digest": series_digest,
    }


def run_all(engines: Sequence[str] = ENGINES) -> Dict[str, Dict[str, object]]:
    """Measure every engine on the same sweep; assert equivalence."""
    results = {engine: run_sweep(engine) for engine in engines}
    reference = results["serial"]["digest"]
    for engine in engines:
        assert results[engine]["digest"] == reference, (
            f"{engine} series diverged from the serial reference"
        )
    return results


def persistent_speedup(results: Dict[str, Dict[str, object]]) -> float:
    """Per-point pool seconds over persistent-pool seconds."""
    return results["pool"]["seconds"] / results["persistent"]["seconds"]


def payload_from(results: Dict[str, Dict[str, object]]) -> Dict[str, object]:
    benchmarks = {
        engine: {
            "seconds": data["seconds"],
            "points": data["points"],
            "stats": data["stats"],
        }
        for engine, data in results.items()
    }
    return {
        "schema": 1,
        "scale": BENCH_SCALE,
        "workers": WORKERS,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "benchmarks": benchmarks,
        "derived": {"persistent_speedup": persistent_speedup(results)},
    }


def write_baseline(path: Path = DEFAULT_BASELINE) -> Dict[str, object]:
    """Measure everything and record the committed baseline JSON."""
    payload = payload_from(run_all())
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


# -- pytest entry points -----------------------------------------------------

def test_persistent_beats_pool_spawn():
    """Acceptance gate: pool start-up amortisation is a real win.

    One retry at a higher repeat count before failing: the margin is
    real but the measurement is ~seconds of wall-clock, and shared CI
    runners can invert a single noisy sample.
    """
    results = run_all()
    assert results["pool"]["points"] >= 4
    if persistent_speedup(results) <= 1.0:  # pragma: no cover - noisy host
        results = {
            engine: run_sweep(engine, repeats=3)
            for engine in ("serial", "pool", "persistent")
        }
    speedup = persistent_speedup(results)
    assert speedup > 1.0, (
        f"persistent pool ({results['persistent']['seconds']:.2f}s) did not "
        f"beat per-point pools ({results['pool']['seconds']:.2f}s)"
    )


def test_persistent_launches_one_pool():
    result = run_sweep("persistent")
    assert result["stats"]["pool_launches"] == 1
    assert result["stats"]["pool_reuses"] == result["stats"]["dispatches"] - 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Measure pool vs persistent-pool sweep wall-clock."
    )
    parser.add_argument(
        "--write",
        action="store_true",
        help=f"record the baseline to {DEFAULT_BASELINE.name}",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=DEFAULT_BASELINE,
        help="baseline path (with --write)",
    )
    args = parser.parse_args(argv)
    if args.write:
        payload = write_baseline(args.output)
    else:
        payload = payload_from(run_all())
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
