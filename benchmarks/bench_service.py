"""Service-layer benchmark: replay throughput and decision latency.

Drives a seeded arrival trace through both replay paths of
:mod:`repro.service.replay` —

* **reference** — the trace straight into an
  :class:`~repro.service.OnlineEngine` (no clock, no transport);
* **service** — the live stack (:class:`~repro.service.VirtualClock`,
  :class:`~repro.service.ServiceSession`,
  :class:`~repro.service.ServiceAPI`) with every request and response
  JSON round-tripped exactly as the HTTP framing does —

asserts the two canonical documents are byte-identical (the service
acceptance gate), that no job was lost or double-counted, and records

* end-to-end **throughput** (jobs/s and requests/s through the service
  stack), and
* the re-pack **decision latency** distribution (p50/p99/max over every
  epoch's ``optimal_schedule`` + residual-extraction + restart cost —
  the pause an arriving job inflicts on the daemon).

Results land in the committed ``BENCH_service.json`` with::

    PYTHONPATH=src python -m benchmarks.bench_service --write

``REPRO_BENCH_SCALE`` (``tiny``/``small``/``paper``) sizes the trace;
``benchmarks.check_regression`` gates the recorded p99 decision latency
(``--max-decision-latency``) and the absolute seconds on a matching
host.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path
from typing import Dict, Optional, Sequence

from repro.service import (
    ReplayConfig,
    canonical_bytes,
    generate_trace,
    latency_percentiles,
    replay_reference,
    replay_service,
)

try:  # pytest / sys.path import (benchmarks/ on the path)
    from ._common import BENCH_SCALE, BENCH_SEED
except ImportError:  # pragma: no cover - direct execution fallback
    from _common import BENCH_SCALE, BENCH_SEED

#: Committed baseline location (repo root).
DEFAULT_BASELINE = Path(__file__).resolve().parent.parent / "BENCH_service.json"

#: Trace size per scale: enough arrivals to overlap (queueing, repacks,
#: cancels) without turning the bench into a soak.
PRESETS = {
    "tiny": {"n_jobs": 10, "mean_gap": 20_000.0},
    "small": {"n_jobs": 40, "mean_gap": 12_000.0},
    "paper": {"n_jobs": 120, "mean_gap": 8_000.0},
}

#: Short-MTBF platform so failure epochs land inside the trace.
CONFIG = ReplayConfig(processors=40, mtbf_years=0.5, seed=BENCH_SEED)

#: Maximum tolerated p99 re-pack decision latency (seconds).  A sanity
#: ceiling, not a perf target: one epoch is one ``optimal_schedule``
#: over at most ``p/2`` jobs plus residual extraction — milliseconds.
MAX_DECISION_LATENCY = 0.25


def _trace():
    preset = PRESETS.get(BENCH_SCALE, PRESETS["tiny"])
    return generate_trace(
        BENCH_SEED,
        n_jobs=preset["n_jobs"],
        mean_gap=preset["mean_gap"],
        m_inf=6_000.0,
        m_sup=10_000.0,
        cancel_every=5,
    )


def run_bench() -> Dict[str, object]:
    """Both replay paths, timed, plus the identity and accounting gates."""
    trace = _trace()
    submitted = sum(1 for event in trace if event.kind == "submit")

    start = time.perf_counter()
    reference = replay_reference(trace, CONFIG)
    reference_seconds = time.perf_counter() - start

    start = time.perf_counter()
    served, responses = replay_service(trace, CONFIG)
    service_seconds = time.perf_counter() - start

    assert canonical_bytes(reference) == canonical_bytes(served), (
        "service replay diverged from the offline reference"
    )
    statuses = [job["status"] for job in served.jobs.values()]
    completed = statuses.count("completed")
    cancelled = statuses.count("cancelled")
    assert len(statuses) == submitted, (
        f"{submitted} jobs submitted but {len(statuses)} accounted for"
    )
    assert completed + cancelled == submitted, (
        f"lost jobs: {submitted} submitted, {completed} completed, "
        f"{cancelled} cancelled"
    )

    latency = latency_percentiles(served.decision_latencies)
    return {
        "trace": {
            "jobs": submitted,
            "requests": len(responses),
            "epochs": len(served.epochs),
            "makespan": served.makespan,
        },
        "reference": {"seconds": reference_seconds},
        "service": {"seconds": service_seconds},
        "decision_latency": latency,
        "completed": completed,
        "cancelled": cancelled,
    }


def decision_latency_p99(results: Dict[str, object]) -> float:
    """The gated quantity: p99 re-pack latency through the service stack."""
    return float(results["decision_latency"]["p99"])


def throughput_jobs_per_s(results: Dict[str, object]) -> float:
    """Jobs fully scheduled-to-completion per wall second of replay."""
    return results["trace"]["jobs"] / results["service"]["seconds"]


def payload_from(results: Dict[str, object]) -> Dict[str, object]:
    return {
        "schema": 1,
        "scale": BENCH_SCALE,
        "seed": BENCH_SEED,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "config": {
            "processors": CONFIG.processors,
            "mtbf_years": CONFIG.mtbf_years,
            "policy": CONFIG.policy,
        },
        "trace": results["trace"],
        "benchmarks": {
            "service_replay": {"seconds": results["service"]["seconds"]},
            "reference_replay": {"seconds": results["reference"]["seconds"]},
        },
        "derived": {
            "service_decision_latency_p50": results["decision_latency"]["p50"],
            "service_decision_latency_p99": decision_latency_p99(results),
            "service_decision_latency_max": results["decision_latency"]["max"],
            "service_throughput_jobs_per_s": throughput_jobs_per_s(results),
        },
    }


def write_baseline(path: Path = DEFAULT_BASELINE) -> Dict[str, object]:
    """Measure and record the committed baseline JSON."""
    payload = payload_from(run_bench())
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


# -- pytest entry points -----------------------------------------------------

def test_service_replay_is_byte_identical_and_loses_nothing():
    """Acceptance gate: transport invisible, every job accounted for."""
    results = run_bench()
    assert results["trace"]["epochs"] >= results["trace"]["jobs"]
    assert results["completed"] >= 1


def test_decision_latency_within_sanity_ceiling():
    """One re-pack must stay interactive (p99 under the ceiling)."""
    results = run_bench()
    assert decision_latency_p99(results) <= MAX_DECISION_LATENCY, (
        f"p99 decision latency {decision_latency_p99(results):.4f}s over "
        f"the {MAX_DECISION_LATENCY}s ceiling"
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description=(
            "Benchmark the scheduling service's replay throughput and "
            "decision latency."
        )
    )
    parser.add_argument(
        "--write",
        action="store_true",
        help=f"record the baseline to {DEFAULT_BASELINE.name}",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=DEFAULT_BASELINE,
        help="baseline path (with --write)",
    )
    args = parser.parse_args(argv)
    if args.write:
        payload = write_baseline(args.output)
    else:
        payload = payload_from(run_bench())
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":  # pragma: no cover - manual invocation
    raise SystemExit(main())
