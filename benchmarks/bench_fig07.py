"""Figure 7: impact of the number of tasks n (p=5000).

Paper claims: the redistribution gain *grows* with n (>= 40% at n=1000);
IteratedGreedy beats ShortestTasksFirst; EndGreedy helps STF but not IG;
the fault-free RC line is the lower envelope.
"""

from _common import bench_figure, series_mean


def test_fig7_impact_of_n(benchmark):
    result = bench_figure(benchmark, "fig7")
    heuristics = ("ig-eg", "ig-el", "stf-eg", "stf-el")
    # The gain grows with n: the last sweep point beats the first for the
    # best heuristic.
    best_first = min(result.normalized[k][0] for k in heuristics)
    best_last = min(result.normalized[k][-1] for k in heuristics)
    assert best_last <= best_first + 1e-9
    # At the largest n every heuristic improves on the no-RC baseline.
    for key in heuristics:
        assert result.normalized[key][-1] < 1.0
    # The fault-free envelope is the minimum of every row.
    for idx in range(len(result.x_values)):
        row = result.row(idx)
        assert row["ff-rc"] == min(row.values())
