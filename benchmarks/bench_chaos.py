"""Chaos soak: a queue-executor sweep under deterministic fault injection.

The resilience layer's acceptance invariant is that faults change
wall-clock and counters, never results: for *any*
:class:`~repro.engine.FaultPlan` seed, a queue campaign with
``inline_fallback`` enabled produces series byte-identical to the
fault-free serial run.  This benchmark soaks exactly that on a
fig10-shaped MTBF sweep — every broker operation, worker claim and
runner call rolled against a fixed-seed plan that mixes worker crashes
(both sides of the claim), stalled heartbeats, spool I/O errors,
corrupted result payloads, slow workers and transient runner faults —
then asserts

* the chaotic series equals the serial reference byte-for-byte, and
* the plan actually fired (a chaos run where nothing was injected and
  nothing was retried would be vacuous).

Results are recorded into the committed ``BENCH_chaos.json`` with::

    PYTHONPATH=src python -m benchmarks.bench_chaos --write

including the injected-fault schedule (itself reproducible: same plan
seed, same sites) and the resilience counters, plus the derived
``chaos_overhead`` (chaotic seconds over fault-free queue seconds) for
visibility — overhead is expected and unbounded by design (recovery
costs heartbeat horizons), so only the identity gate is enforced.

A second leg (``run_http_soak``) drives the same sweep through the
remote transport: an :class:`~repro.engine.HTTPBroker` submitter whose
wire rides a seeded :class:`~repro.engine.ChaosHTTPTransport` (resets,
5xx, timeouts, truncated bodies) against an in-process broker server —
the partition-tolerance soak for ``python -m
repro.engine.broker_server`` fleets.

A third leg (``run_shard_soak``) soaks the **sharded fabric**: the
sweep runs through a three-shard :class:`~repro.engine.ShardRouter`
while a seeded ``shard_down`` fault blackholes exactly one shard
mid-campaign (a :class:`~repro.engine.ChaosShardBroker` per shard, the
victim chosen by the plan seed).  The router's breaker must open, the
stranded chunks must fail over to the survivors, and the series must
still equal the serial reference byte-for-byte.
``REPRO_BENCH_SCALE`` (``tiny``/``small``) sizes the sweep's scenarios;
``REPRO_CHAOS_SEED`` picks the plan seed (default 2026).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from pathlib import Path
from typing import Dict, Optional, Sequence

from repro.engine import FaultPlan, QueueExecutor, connect_broker, create_executor
from repro.experiments import FAULT_SERIES, run_scenario
from repro.experiments.config import ScenarioConfig, get_scale

try:  # pytest / sys.path import (benchmarks/ on the path)
    from ._common import BENCH_SCALE, BENCH_SEED
except ImportError:  # pragma: no cover - direct execution fallback
    from _common import BENCH_SCALE, BENCH_SEED

#: Committed baseline location (repo root).
DEFAULT_BASELINE = Path(__file__).resolve().parent.parent / "BENCH_chaos.json"

#: MTBF sweep (years) — shorter than bench_engine's: the soak pays
#: recovery stalls per point, and three points already exercise every
#: injection site many times over.
SWEEP_MTBF_YEARS = (5.0, 65.0, 125.0)

WORKERS = 2

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "2026"))

#: A little of everything, at rates high enough that a three-point
#: sweep fires every fault class (pinned by the vacuity assertion).
SOAK_PLAN = FaultPlan(
    seed=CHAOS_SEED,
    crash_before_claim=0.5,
    crash_after_claim=0.2,
    stalled_heartbeat=0.2,
    broker_io_error=0.3,
    corrupt_result=0.3,
    slow_worker=0.3,
    runner_fault=0.2,
    stall_duration=0.6,
    slow_delay=0.01,
)

#: The HTTP-transport leg's plan: wire faults only, injected under the
#: submitter's HTTPBroker while a clean in-process worker serves the
#: same broker server (a partition soak, not a worker-crash soak).
WIRE_PLAN = FaultPlan(
    seed=CHAOS_SEED,
    wire_reset=0.3,
    wire_5xx=0.3,
    wire_timeout=0.15,
    wire_truncate=0.25,
)


def sweep_configs() -> list:
    """The sweep's scaled scenario configs (fig10 shape)."""
    scale = get_scale(BENCH_SCALE if BENCH_SCALE != "paper" else "small")
    base = ScenarioConfig(n=100, p=1000)
    return [
        scale.apply(
            ScenarioConfig(n=base.n, p=base.p, mtbf_years=float(years))
        )
        for years in SWEEP_MTBF_YEARS
    ]


def _sweep_digest(executor) -> list:
    """Run the sweep on ``executor``; return the normalized series."""
    return [
        run_scenario(
            config, FAULT_SERIES, seed=BENCH_SEED, executor=executor
        ).normalized_row()
        for config in sweep_configs()
    ]


def run_soak(plan: FaultPlan = SOAK_PLAN) -> Dict[str, object]:
    """One chaotic sweep plus its serial and fault-free references.

    The process-wide workload cache is cleared between runs for the same
    reason as ``bench_engine.run_sweep``: no run may inherit another's
    constructions, or the counter comparison blurs.
    """
    from repro.engine.cache import shared_cache

    shared_cache.clear()
    with create_executor("serial") as executor:
        reference = _sweep_digest(executor)

    def queue_sweep(chaos_plan: Optional[FaultPlan]) -> Dict[str, object]:
        shared_cache.clear()
        start = time.perf_counter()
        with QueueExecutor(
            workers=WORKERS,
            poll_interval=0.01,
            heartbeat_timeout=0.4,
            inline_fallback=True,
            chaos_plan=chaos_plan,
        ) as executor:
            digest = _sweep_digest(executor)
            injected = (
                dict(executor._chaos.injected)
                if executor._chaos is not None
                else {}
            )
            stats = executor.stats().cache_info()
        return {
            "seconds": time.perf_counter() - start,
            "digest": digest,
            "stats": stats,
            "injected": injected,
        }

    quiet = queue_sweep(None)
    chaotic = queue_sweep(plan)
    assert quiet["digest"] == reference, (
        "fault-free queue series diverged from the serial reference"
    )
    assert chaotic["digest"] == reference, (
        f"chaotic queue series (plan seed {plan.seed}) diverged from the "
        "serial reference"
    )
    return {
        "plan": plan.describe(),
        "points": len(sweep_configs()),
        "quiet": quiet,
        "chaotic": chaotic,
    }


def run_http_soak(plan: FaultPlan = WIRE_PLAN) -> Dict[str, object]:
    """One sweep over the HTTP broker transport under seeded wire chaos.

    The submitter's :class:`~repro.engine.HTTPBroker` rides a
    :class:`~repro.engine.ChaosHTTPTransport` (seeded resets, 5xx,
    timeouts, truncated bodies) against an in-process broker server; a
    clean worker thread serves the same server.  The gate is the same
    as the spool soak's: the series must equal the fault-free serial
    reference byte-for-byte, and the plan must actually have fired.
    """
    import threading

    from repro.engine.broker import FileBroker
    from repro.engine.broker_server import BrokerServer
    from repro.engine.cache import shared_cache
    from repro.engine.worker import serve

    shared_cache.clear()
    with create_executor("serial") as executor:
        reference = _sweep_digest(executor)

    shared_cache.clear()
    import tempfile

    spool = tempfile.mkdtemp(prefix="bench-http-chaos-")
    server = BrokerServer(FileBroker(spool), token="bench-chaos")
    url = server.start()
    broker = connect_broker(url, token="bench-chaos", chaos_plan=plan)
    worker = threading.Thread(
        target=serve,
        args=(connect_broker(url, token="bench-chaos"),),
        kwargs={"poll_interval": 0.01, "max_idle": 60.0},
        daemon=True,
    )
    worker.start()
    start = time.perf_counter()
    try:
        with QueueExecutor(
            workers=WORKERS,
            poll_interval=0.01,
            heartbeat_timeout=10.0,
            broker=broker,
        ) as executor:
            digest = _sweep_digest(executor)
            stats = executor.stats().cache_info()
    finally:
        broker.request_stop()
        worker.join(timeout=30.0)
        server.shutdown()
        import shutil

        shutil.rmtree(spool, ignore_errors=True)
    injected = dict(broker.transport.injected)
    assert digest == reference, (
        f"HTTP-transport series (wire plan seed {plan.seed}) diverged "
        "from the serial reference"
    )
    return {
        "seconds": time.perf_counter() - start,
        "digest": digest,
        "stats": stats,
        "injected": injected,
    }


def _shard_plan(shard_count: int = 3, rate: float = 0.4):
    """The first plan at/after CHAOS_SEED downing exactly one shard."""
    seed = CHAOS_SEED
    while True:
        plan = FaultPlan(seed=seed, shard_down=rate, shard_down_delay=0.3)
        downed = [
            index
            for index in range(shard_count)
            if plan.decide(plan.shard_down, "shard-down", index)
        ]
        if len(downed) == 1:
            return plan, downed[0]
        seed += 1


def run_shard_soak() -> Dict[str, object]:
    """One sweep over a three-shard router with one shard blackholed.

    A ``shard_down`` plan (seed searched from ``CHAOS_SEED`` until it
    downs exactly one of the three shards) blackholes that shard's
    transport shortly after the campaign starts.  The submitter router
    and both worker routers must open the victim's breaker, migrate the
    stranded chunks to the survivors and keep the series byte-identical
    to the serial reference.
    """
    import shutil
    import tempfile
    import threading

    from repro.engine.cache import shared_cache
    from repro.engine.worker import serve

    plan, victim = _shard_plan()
    shared_cache.clear()
    with create_executor("serial") as executor:
        reference = _sweep_digest(executor)

    shared_cache.clear()
    root = tempfile.mkdtemp(prefix="bench-shard-chaos-")
    spec = ",".join(os.path.join(root, f"shard-{i}") for i in range(3))
    router = connect_broker(spec, chaos_plan=plan)
    workers = [
        threading.Thread(
            target=serve,
            args=(connect_broker(spec, chaos_plan=plan),),
            kwargs={"poll_interval": 0.01, "max_idle": 60.0},
            daemon=True,
        )
        for _ in range(WORKERS)
    ]
    for worker in workers:
        worker.start()
    start = time.perf_counter()
    try:
        with QueueExecutor(
            workers=WORKERS,
            poll_interval=0.01,
            heartbeat_timeout=2.0,
            broker=router,
        ) as executor:
            digest = _sweep_digest(executor)
            stats = executor.stats().cache_info()
    finally:
        try:
            router.request_stop()
        except Exception:
            pass
        for worker in workers:
            worker.join(timeout=30.0)
        shutil.rmtree(root, ignore_errors=True)
    injected = dict(router._shards[victim].broker.injected)
    assert digest == reference, (
        f"sharded series (shard plan seed {plan.seed}, shard {victim} "
        "down) diverged from the serial reference"
    )
    return {
        "seconds": time.perf_counter() - start,
        "digest": digest,
        "stats": stats,
        "injected": injected,
        "victim_shard": victim,
        "plan_seed": plan.seed,
    }


def chaos_overhead(results: Dict[str, object]) -> float:
    """Chaotic sweep seconds over fault-free queue sweep seconds."""
    return results["chaotic"]["seconds"] / results["quiet"]["seconds"]


def faults_fired(results: Dict[str, object]) -> bool:
    """Whether the soak actually injected or recovered from anything."""
    chaotic = results["chaotic"]
    stats = chaotic["stats"]
    resilience = (
        stats["retries"]
        + stats["requeues"]
        + stats["dead_lettered"]
        + stats["duplicate_results"]
    )
    return bool(chaotic["injected"]) or resilience > 0


def payload_from(
    results: Dict[str, object],
    http: Optional[Dict[str, object]] = None,
    shard: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    payload = {
        "schema": 3,
        "scale": BENCH_SCALE,
        "workers": WORKERS,
        "chaos_seed": CHAOS_SEED,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "plan": results["plan"],
        "wire_plan": WIRE_PLAN.describe(),
        "points": results["points"],
        "benchmarks": {
            run: {
                "seconds": results[run]["seconds"],
                "stats": results[run]["stats"],
                "injected": results[run]["injected"],
            }
            for run in ("quiet", "chaotic")
        },
        "derived": {"chaos_overhead": chaos_overhead(results)},
    }
    if http is not None:
        payload["benchmarks"]["http_chaotic"] = {
            "seconds": http["seconds"],
            "stats": http["stats"],
            "injected": http["injected"],
        }
    if shard is not None:
        payload["benchmarks"]["shard_chaotic"] = {
            "seconds": shard["seconds"],
            "stats": shard["stats"],
            "injected": shard["injected"],
            "victim_shard": shard["victim_shard"],
            "plan_seed": shard["plan_seed"],
        }
    return payload


def write_baseline(path: Path = DEFAULT_BASELINE) -> Dict[str, object]:
    """Measure everything and record the committed baseline JSON."""
    payload = payload_from(
        run_soak(), http=run_http_soak(), shard=run_shard_soak()
    )
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


# -- pytest entry points -----------------------------------------------------

def test_chaotic_sweep_is_byte_identical_and_non_vacuous():
    """Acceptance gate: chaos changed the counters, not the series."""
    results = run_soak()
    assert results["points"] >= 3
    assert faults_fired(results), (
        "the soak plan injected nothing — raise its rates or check the "
        "chaos wiring"
    )


def test_http_transport_chaos_is_byte_identical_and_non_vacuous():
    """Acceptance gate for the wire: partitions stall, never corrupt."""
    results = run_http_soak()
    assert results["injected"], (
        "the wire plan injected nothing — raise its rates or check the "
        "ChaosHTTPTransport wiring"
    )
    assert results["stats"]["wire_retries"] > 0


def test_shard_loss_soak_is_byte_identical_and_non_vacuous():
    """Acceptance gate for the fabric: losing a shard changes nothing."""
    results = run_shard_soak()
    assert results["injected"].get("shard-down", 0) >= 1, (
        "the shard plan blackholed nothing — check the ChaosShardBroker "
        "wiring under connect_broker"
    )
    assert results["stats"]["breaker_opens"] >= 1
    assert results["stats"]["shard_failovers"] >= 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description=(
            "Soak the queue executor under deterministic fault injection."
        )
    )
    parser.add_argument(
        "--write",
        action="store_true",
        help=f"record the baseline to {DEFAULT_BASELINE.name}",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=DEFAULT_BASELINE,
        help="baseline path (with --write)",
    )
    args = parser.parse_args(argv)
    if args.write:
        payload = write_baseline(args.output)
    else:
        payload = payload_from(
            run_soak(), http=run_http_soak(), shard=run_shard_soak()
        )
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":  # pragma: no cover - manual invocation
    raise SystemExit(main())
