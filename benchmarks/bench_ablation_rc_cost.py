"""Ablation: redistribution-cost weight (DESIGN.md design choice S7).

The paper charges every processor move ``RC_i^{j->k}`` (Eq. 9) and only
redistributes when the move pays for itself.  This ablation scales the
cost the heuristics see: ``rc_factor = 0`` makes moves free (an upper
bound on what redistribution could achieve), 1 is the paper's model, and
a large factor effectively disables redistribution.

Expected shape: makespan is non-decreasing in the cost factor, the
number of performed redistributions non-increasing, and the heavily
penalised variant converges to the no-redistribution baseline.
"""

from __future__ import annotations

import numpy as np

from repro import Cluster, Simulator, uniform_pack
from repro.resilience import ExpectedTimeModel

from _common import RESULTS_DIR, BENCH_SEED

REPLICATES = 5
FACTORS = (0.0, 1.0, 100.0)


def run_ablation() -> dict:
    pack = uniform_pack(8, m_inf=10_000, m_sup=40_000, seed=BENCH_SEED)
    cluster = Cluster.with_mtbf_years(24, mtbf_years=0.08)
    outcome: dict = {"makespan": {}, "redistributions": {}}
    for factor in FACTORS:
        makespans, moves = [], []
        for seed in range(REPLICATES):
            model = ExpectedTimeModel(pack, cluster, rc_factor=factor)
            result = Simulator(
                pack, cluster, "ig-el", seed=BENCH_SEED + seed, model=model
            ).run()
            makespans.append(result.makespan)
            moves.append(result.redistributions)
        outcome["makespan"][factor] = float(np.mean(makespans))
        outcome["redistributions"][factor] = float(np.mean(moves))
    baseline = []
    for seed in range(REPLICATES):
        result = Simulator(
            pack, cluster, "no-redistribution", seed=BENCH_SEED + seed
        ).run()
        baseline.append(result.makespan)
    outcome["baseline"] = float(np.mean(baseline))
    return outcome


def test_rc_cost_ablation(benchmark):
    outcome = benchmark.pedantic(run_ablation, iterations=1, rounds=1)
    makespan = outcome["makespan"]
    moves = outcome["redistributions"]

    RESULTS_DIR.mkdir(exist_ok=True)
    lines = [
        f"rc_factor={factor:g}: makespan={makespan[factor]:.6g}s "
        f"redistributions={moves[factor]:.1f}"
        for factor in FACTORS
    ] + [f"no-redistribution baseline: {outcome['baseline']:.6g}s"]
    (RESULTS_DIR / "ablation_rc_cost.txt").write_text("\n".join(lines) + "\n")

    # costlier moves => fewer of them
    assert moves[0.0] >= moves[1.0] >= moves[100.0]
    # free redistribution cannot lose to the paper's model (same moves
    # considered, zero price) within noise
    assert makespan[0.0] <= makespan[1.0] * 1.02
    # the penalised variant approaches (and never beats by much) the
    # no-redistribution baseline
    assert makespan[100.0] <= outcome["baseline"] * 1.02
    # paper's model still clearly beats no redistribution
    assert makespan[1.0] < outcome["baseline"]
