"""Hot-path performance regression gate.

Re-runs the :mod:`benchmarks.bench_hotpath` measurements and compares
them against the committed baseline ``BENCH_hotpath.json``.  A benchmark
slower than ``threshold`` (default 1.3x) times its recorded baseline
fails the gate; the derived batched-vs-scalar speedup must also stay
above ``--min-batch-speedup`` (default 3x).

Usage (from the repo root)::

    PYTHONPATH=src python -m benchmarks.check_regression
    PYTHONPATH=src python -m benchmarks.check_regression --threshold 1.5

Exit code 0 when every benchmark is within budget, 1 otherwise.
Refresh the baseline after an intentional perf change with::

    PYTHONPATH=src python -m benchmarks.bench_hotpath --write
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path
from typing import Optional, Sequence

try:
    from .bench_hotpath import DEFAULT_BASELINE, batch_speedup, run_all
except ImportError:  # pytest / sys.path import (benchmarks/ on the path)
    from bench_hotpath import DEFAULT_BASELINE, batch_speedup, run_all

#: Per-benchmark slowdown tolerated before the gate fails.
DEFAULT_THRESHOLD = 1.3
#: Floor on the batched expected_times speedup over the scalar loop.
DEFAULT_MIN_BATCH_SPEEDUP = 3.0


def check(
    baseline_path: Path = DEFAULT_BASELINE,
    threshold: float = DEFAULT_THRESHOLD,
    min_batch_speedup: float = DEFAULT_MIN_BATCH_SPEEDUP,
) -> tuple[bool, str]:
    """Compare a fresh run against the baseline; (ok, report text).

    The absolute-seconds comparison is only meaningful on a host
    comparable to the one that recorded the baseline — a mismatch is
    reported so a cross-machine verdict is not over-trusted.  The
    derived batch-vs-scalar speedup is host-relative and always valid.
    """
    payload = json.loads(baseline_path.read_text())
    baseline = payload["benchmarks"]
    fresh = run_all(sorted(set(baseline)))
    lines = []
    host = (platform.machine(), platform.python_version())
    recorded = (payload.get("machine"), payload.get("python"))
    if recorded != host:
        lines.append(
            f"warning: baseline recorded on machine={recorded[0]} "
            f"python={recorded[1]}, running on machine={host[0]} "
            f"python={host[1]}; absolute timings may not be comparable "
            "— re-record with python -m benchmarks.bench_hotpath --write"
        )
    ok = True
    width = max(len(name) for name in baseline)
    for name in sorted(baseline):
        ref = baseline[name]["seconds"]
        now = fresh[name]["seconds"]
        ratio = now / ref
        flag = "ok" if ratio <= threshold else "REGRESSION"
        ok &= ratio <= threshold
        lines.append(
            f"{name:{width}s} baseline={ref * 1e6:10.1f}us "
            f"now={now * 1e6:10.1f}us ratio={ratio:5.2f}x {flag}"
        )
    speedup = batch_speedup(fresh)
    flag = "ok" if speedup >= min_batch_speedup else "REGRESSION"
    ok &= speedup >= min_batch_speedup
    lines.append(
        f"{'batch_vs_scalar_speedup':{width}s} "
        f"{speedup:5.1f}x (floor {min_batch_speedup:g}x) {flag}"
    )
    return ok, "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail on hot-path perf regressions vs BENCH_hotpath.json."
    )
    parser.add_argument(
        "--baseline", type=Path, default=DEFAULT_BASELINE,
        help="recorded baseline JSON",
    )
    parser.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        help="max tolerated slowdown per benchmark (default 1.3)",
    )
    parser.add_argument(
        "--min-batch-speedup", type=float, default=DEFAULT_MIN_BATCH_SPEEDUP,
        help="required batched-vs-scalar speedup (default 3.0)",
    )
    args = parser.parse_args(argv)
    if not args.baseline.exists():
        print(
            f"no baseline at {args.baseline}; record one with "
            "python -m benchmarks.bench_hotpath --write",
            file=sys.stderr,
        )
        return 1
    ok, report = check(args.baseline, args.threshold, args.min_batch_speedup)
    print(report)
    print("PASS" if ok else "FAIL")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
