"""Hot-path performance regression gate.

Re-runs the :mod:`benchmarks.bench_hotpath` and
:mod:`benchmarks.bench_decisions` measurements and compares them
against the committed baselines ``BENCH_hotpath.json`` /
``BENCH_decisions.json``.  A benchmark slower than ``threshold``
(default 1.3x) times its recorded baseline fails the gate; the derived
host-relative speedups must also stay above their floors: the batched
expected-times accessor over the scalar loop
(``--min-batch-speedup``, default 3x), the array decision kernel
over the scalar kernel on the failure-heavy simulation
(``--min-kernel-speedup``, default 1.5x), the incremental decision
state over the per-decision fresh build on the same run
(``--min-state-speedup``, default 1.3x), and the full native-speed hot
core over the ``profile_backend="reference"`` substrate
(``--min-failure-heavy-speedup``, default 2x at small/paper scale and
1.25x on the tiny CI leg — the ISSUE 7 target is an at-scale claim).
The scheduling service rides the same gate
(:mod:`benchmarks.bench_service` vs ``BENCH_service.json``): the
arrival replay must stay byte-identical and its p99 re-pack latency
under ``--max-decision-latency`` (default 0.25 s).

Usage (from the repo root)::

    PYTHONPATH=src python -m benchmarks.check_regression
    PYTHONPATH=src python -m benchmarks.check_regression --threshold 1.5

Exit code 0 when every benchmark is within budget, 1 otherwise.
Refresh the baselines after an intentional perf change with::

    PYTHONPATH=src python -m benchmarks.bench_hotpath --write
    REPRO_BENCH_SCALE=small PYTHONPATH=src \\
        python -m benchmarks.bench_decisions --write
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path
from typing import Optional, Sequence

try:
    from .bench_hotpath import DEFAULT_BASELINE, batch_speedup, run_all
    from .bench_decisions import (
        BENCH_SCALE as DECISIONS_SCALE,
        DEFAULT_BASELINE as DECISIONS_BASELINE,
        FAILURE_HEAVY_FLOOR,
        run_all as run_decisions,
        sim_failure_heavy_speedup,
        sim_kernel_speedup,
        sim_state_speedup,
    )
    from .bench_service import (
        BENCH_SCALE as SERVICE_SCALE,
        DEFAULT_BASELINE as SERVICE_BASELINE,
        MAX_DECISION_LATENCY,
        decision_latency_p99,
        run_bench as run_service,
    )
except ImportError:  # pytest / sys.path import (benchmarks/ on the path)
    from bench_hotpath import DEFAULT_BASELINE, batch_speedup, run_all
    from bench_decisions import (
        BENCH_SCALE as DECISIONS_SCALE,
        DEFAULT_BASELINE as DECISIONS_BASELINE,
        FAILURE_HEAVY_FLOOR,
        run_all as run_decisions,
        sim_failure_heavy_speedup,
        sim_kernel_speedup,
        sim_state_speedup,
    )
    from bench_service import (
        BENCH_SCALE as SERVICE_SCALE,
        DEFAULT_BASELINE as SERVICE_BASELINE,
        MAX_DECISION_LATENCY,
        decision_latency_p99,
        run_bench as run_service,
    )

#: Per-benchmark slowdown tolerated before the gate fails.
DEFAULT_THRESHOLD = 1.3
#: Floor on the batched expected_times speedup over the scalar loop.
DEFAULT_MIN_BATCH_SPEEDUP = 3.0
#: Floor on the array-vs-scalar decision-kernel speedup (failure-heavy).
DEFAULT_MIN_KERNEL_SPEEDUP = 1.5
#: Floor on the incremental-vs-rebuild decision-state speedup.
DEFAULT_MIN_STATE_SPEEDUP = 1.3
#: Floor on the hot-core-vs-reference-substrate speedup (ISSUE 7).
#: Scale-aware: 2x at small/paper, relaxed on the tiny CI leg (see
#: ``bench_decisions.FAILURE_HEAVY_FLOORS``).
DEFAULT_MIN_FAILURE_HEAVY_SPEEDUP = FAILURE_HEAVY_FLOOR


def _check_against_baseline(
    payload: dict,
    fresh: dict,
    threshold: float,
    *,
    comparable: bool,
    mismatch_note: str,
    derived: Sequence[tuple[str, float, float]],
) -> tuple[bool, str]:
    """Shared gate body: per-benchmark ratios + derived-speedup floors.

    Absolute-seconds ratios only count when ``comparable`` (the fresh
    run matches the baseline's host/scale); the ``(name, value, floor)``
    derived speedups are host-relative and are always enforced.
    """
    baseline = payload["benchmarks"]
    lines = [] if comparable else [mismatch_note]
    ok = True
    width = max(len(name) for name in baseline)
    for name in sorted(baseline):
        ref = baseline[name]["seconds"]
        now = fresh[name]["seconds"]
        ratio = now / ref
        if comparable:
            flag = "ok" if ratio <= threshold else "REGRESSION"
            ok &= ratio <= threshold
        else:
            flag = "(not compared)"
        lines.append(
            f"{name:{width}s} baseline={ref * 1e6:10.1f}us "
            f"now={now * 1e6:10.1f}us ratio={ratio:5.2f}x {flag}"
        )
    for derived_name, derived_value, derived_floor in derived:
        flag = "ok" if derived_value >= derived_floor else "REGRESSION"
        ok &= derived_value >= derived_floor
        lines.append(
            f"{derived_name:{width}s} "
            f"{derived_value:5.2f}x (floor {derived_floor:g}x) {flag}"
        )
    return ok, "\n".join(lines)


def _host() -> tuple[Optional[str], Optional[str]]:
    return platform.machine(), platform.python_version()


def check(
    baseline_path: Path = DEFAULT_BASELINE,
    threshold: float = DEFAULT_THRESHOLD,
    min_batch_speedup: float = DEFAULT_MIN_BATCH_SPEEDUP,
) -> tuple[bool, str]:
    """Hot-path gate: fresh run vs ``BENCH_hotpath.json``; (ok, report)."""
    payload = json.loads(baseline_path.read_text())
    fresh = run_all(sorted(set(payload["benchmarks"])))
    recorded = (payload.get("machine"), payload.get("python"))
    return _check_against_baseline(
        payload,
        fresh,
        threshold,
        comparable=recorded == _host(),
        mismatch_note=(
            f"warning: baseline recorded on machine={recorded[0]} "
            f"python={recorded[1]}, running on machine={_host()[0]} "
            f"python={_host()[1]}; skipping absolute-seconds comparison "
            "— re-record with python -m benchmarks.bench_hotpath --write"
        ),
        derived=[
            ("batch_vs_scalar_speedup", batch_speedup(fresh), min_batch_speedup),
        ],
    )


def check_decisions(
    baseline_path: Path = DECISIONS_BASELINE,
    threshold: float = DEFAULT_THRESHOLD,
    min_kernel_speedup: float = DEFAULT_MIN_KERNEL_SPEEDUP,
    min_state_speedup: float = DEFAULT_MIN_STATE_SPEEDUP,
    min_failure_heavy_speedup: float = DEFAULT_MIN_FAILURE_HEAVY_SPEEDUP,
) -> tuple[bool, str]:
    """Decision gate: fresh run vs ``BENCH_decisions.json``.

    Enforces all three host-relative floors — the array-vs-scalar
    kernel speedup, the incremental-vs-rebuild decision-state speedup,
    and the hot-core-vs-reference-substrate failure-heavy speedup.
    The committed baseline is recorded at ``small`` scale while CI runs
    ``tiny``, so the scale is part of the comparability test.
    """
    payload = json.loads(baseline_path.read_text())
    fresh = run_decisions(sorted(set(payload["benchmarks"])))
    recorded_scale = payload.get("scale")
    recorded = (payload.get("machine"), payload.get("python"))
    return _check_against_baseline(
        payload,
        fresh,
        threshold,
        comparable=recorded_scale == DECISIONS_SCALE and recorded == _host(),
        mismatch_note=(
            f"warning: decisions baseline recorded at scale={recorded_scale} "
            f"machine={recorded[0]} python={recorded[1]}, running at "
            f"scale={DECISIONS_SCALE} machine={_host()[0]} "
            f"python={_host()[1]}; skipping absolute-seconds comparison"
        ),
        derived=[
            ("sim_kernel_speedup", sim_kernel_speedup(fresh), min_kernel_speedup),
            ("sim_state_speedup", sim_state_speedup(fresh), min_state_speedup),
            (
                "sim_failure_heavy_speedup",
                sim_failure_heavy_speedup(fresh),
                min_failure_heavy_speedup,
            ),
        ],
    )


def check_service(
    baseline_path: Path = SERVICE_BASELINE,
    max_decision_latency: float = MAX_DECISION_LATENCY,
) -> tuple[bool, str]:
    """Service gate: fresh replay vs ``BENCH_service.json``.

    The replay itself asserts the byte-identity and lost-job invariants
    (it raises on violation — a hard failure, not a report line); this
    gate adds the ``service_decision_latency`` sanity ceiling: the p99
    re-pack latency through the live service stack must stay under
    ``max_decision_latency`` seconds on any host.  Absolute seconds are
    only compared on the recording host, like the other gates.
    """
    payload = json.loads(baseline_path.read_text())
    fresh = run_service()
    p99 = decision_latency_p99(fresh)
    recorded_scale = payload.get("scale")
    recorded = (payload.get("machine"), payload.get("python"))
    comparable = recorded_scale == SERVICE_SCALE and recorded == _host()
    lines = []
    ok = True
    if comparable:
        ref = payload["benchmarks"]["service_replay"]["seconds"]
        now = fresh["service"]["seconds"]
        ratio = now / ref
        flag = "ok" if ratio <= 2.0 else "REGRESSION"
        ok &= ratio <= 2.0
        lines.append(
            f"service_replay baseline={ref * 1e6:10.1f}us "
            f"now={now * 1e6:10.1f}us ratio={ratio:5.2f}x {flag}"
        )
    else:
        lines.append(
            f"warning: service baseline recorded at scale={recorded_scale} "
            f"machine={recorded[0]} python={recorded[1]}; skipping "
            "absolute-seconds comparison"
        )
    flag = "ok" if p99 <= max_decision_latency else "REGRESSION"
    ok &= p99 <= max_decision_latency
    lines.append(
        f"service_decision_latency p99={p99 * 1e3:.3f}ms "
        f"(ceiling {max_decision_latency * 1e3:g}ms) {flag}"
    )
    return ok, "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description=(
            "Fail on perf regressions vs BENCH_hotpath.json and "
            "BENCH_decisions.json."
        )
    )
    parser.add_argument(
        "--baseline", type=Path, default=DEFAULT_BASELINE,
        help="recorded hot-path baseline JSON",
    )
    parser.add_argument(
        "--decisions-baseline", type=Path, default=DECISIONS_BASELINE,
        help="recorded decision-kernel baseline JSON",
    )
    parser.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        help="max tolerated slowdown per benchmark (default 1.3)",
    )
    parser.add_argument(
        "--min-batch-speedup", type=float, default=DEFAULT_MIN_BATCH_SPEEDUP,
        help="required batched-vs-scalar speedup (default 3.0)",
    )
    parser.add_argument(
        "--min-kernel-speedup", type=float, default=DEFAULT_MIN_KERNEL_SPEEDUP,
        help="required array-vs-scalar decision-kernel speedup (default 1.5)",
    )
    parser.add_argument(
        "--min-state-speedup", type=float, default=DEFAULT_MIN_STATE_SPEEDUP,
        help=(
            "required incremental-vs-rebuild decision-state speedup "
            "(default 1.3)"
        ),
    )
    parser.add_argument(
        "--min-failure-heavy-speedup", type=float,
        default=DEFAULT_MIN_FAILURE_HEAVY_SPEEDUP,
        help=(
            "required hot-core-vs-reference failure-heavy speedup "
            f"(default {DEFAULT_MIN_FAILURE_HEAVY_SPEEDUP:g} at "
            f"REPRO_BENCH_SCALE={DECISIONS_SCALE})"
        ),
    )
    parser.add_argument(
        "--service-baseline", type=Path, default=SERVICE_BASELINE,
        help="recorded service replay baseline JSON",
    )
    parser.add_argument(
        "--max-decision-latency", type=float, default=MAX_DECISION_LATENCY,
        help=(
            "max tolerated p99 service re-pack latency in seconds "
            f"(default {MAX_DECISION_LATENCY:g})"
        ),
    )
    args = parser.parse_args(argv)
    for path, module in (
        (args.baseline, "bench_hotpath"),
        (args.decisions_baseline, "bench_decisions"),
        (args.service_baseline, "bench_service"),
    ):
        if not path.exists():
            print(
                f"no baseline at {path}; record one with "
                f"python -m benchmarks.{module} --write",
                file=sys.stderr,
            )
            return 1
    ok, report = check(args.baseline, args.threshold, args.min_batch_speedup)
    print(report)
    dec_ok, dec_report = check_decisions(
        args.decisions_baseline, args.threshold, args.min_kernel_speedup,
        args.min_state_speedup, args.min_failure_heavy_speedup,
    )
    print(dec_report)
    ok &= dec_ok
    svc_ok, svc_report = check_service(
        args.service_baseline, args.max_decision_latency
    )
    print(svc_report)
    ok &= svc_ok
    print("PASS" if ok else "FAIL")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
