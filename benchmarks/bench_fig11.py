"""Figure 11: impact of the MTBF (n=100, p=5000).

Same sweep as Figure 10 on a 5x larger platform: more processors mean
more failures, so the degradation at low MTBF is more pronounced.

Scale note: the paper reads the degradation off the *normalised*
heuristic curves rising toward 1 as the MTBF falls.  At bench scale the
per-point normalisation can flip that trend (the no-RC baseline
denominator degrades even faster than the heuristics), so the asserted
scale-invariant form is the one the figure also shows: the gap between
the heuristics and the fault-free reference *widens* as the MTBF falls.
"""

from _common import bench_figure


def test_fig11_mtbf_sweep_large_platform(benchmark):
    result = bench_figure(benchmark, "fig11")
    ig = result.normalized["ig-el"]
    ff = result.normalized["ff-rc"]
    # x sweeps MTBF ascending: index 0 is the most hostile platform.
    gap_hostile = ig[0] - ff[0]
    gap_reliable = ig[-1] - ff[-1]
    assert gap_hostile >= gap_reliable - 0.02
    # The fault-free envelope stays the best series at every point.
    for idx in range(len(result.x_values)):
        row = result.row(idx)
        assert row["ff-rc"] == min(row.values())
    # Redistribution still beats the baseline everywhere on this sweep.
    for idx in range(len(result.x_values)):
        assert result.normalized["ig-el"][idx] <= 1.0 + 1e-9
