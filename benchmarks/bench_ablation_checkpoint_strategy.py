"""Ablation: checkpoint-period strategy (DESIGN.md design choice S5).

The paper fixes Young's first-order period (Eq. 1).  This ablation swaps
it for Daly's higher-order refinement and for deliberately mis-tuned
fixed periods, holding everything else constant.

Expected shape: Young ~ Daly (C << mu in the paper's regime — the
higher-order terms are negligible) and both clearly beat a period that is
far too short (checkpoint thrash) or far too long (too much lost work).
"""

from __future__ import annotations

import numpy as np

from repro import Cluster, Simulator, uniform_pack
from repro.resilience import (
    DalyStrategy,
    ExpectedTimeModel,
    FixedPeriodStrategy,
    ResilienceModel,
    YoungStrategy,
)

from _common import RESULTS_DIR, BENCH_SEED

REPLICATES = 5


def _mean_makespan(pack, cluster, resilience) -> float:
    makespans = []
    for seed in range(REPLICATES):
        model = ExpectedTimeModel(pack, cluster, resilience=resilience)
        result = Simulator(
            pack,
            cluster,
            "ig-el",
            seed=BENCH_SEED + seed,
            resilience=resilience,
            model=model,
        ).run()
        makespans.append(result.makespan)
    return float(np.mean(makespans))


def run_ablation() -> dict[str, float]:
    pack = uniform_pack(8, m_inf=10_000, m_sup=40_000, seed=BENCH_SEED)
    cluster = Cluster.with_mtbf_years(32, mtbf_years=0.05)
    strategies = {
        "young": YoungStrategy(),
        "daly": DalyStrategy(),
        "fixed-short": FixedPeriodStrategy(600.0),
        "fixed-long": FixedPeriodStrategy(400_000.0),
    }
    return {
        name: _mean_makespan(pack, cluster, ResilienceModel(cluster, strategy))
        for name, strategy in strategies.items()
    }


def test_checkpoint_strategy_ablation(benchmark):
    means = benchmark.pedantic(run_ablation, iterations=1, rounds=1)

    RESULTS_DIR.mkdir(exist_ok=True)
    lines = [f"{name}: {value:.6g}s" for name, value in means.items()]
    (RESULTS_DIR / "ablation_checkpoint_strategy.txt").write_text(
        "\n".join(lines) + "\n"
    )

    # Young and Daly agree within a few percent in the C << mu regime.
    assert abs(means["young"] - means["daly"]) / means["young"] < 0.05
    # Mis-tuned periods lose: thrash on the short side...
    assert means["fixed-short"] > 1.2 * means["young"]
    # ...and excessive rollback on the long side.
    assert means["fixed-long"] > means["young"]
