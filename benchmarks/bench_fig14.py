"""Figure 14: impact of the sequential fraction f (n=100, p=1000).

Paper claims: the more parallel the tasks (small f), the more effective
redistribution is; at f=0.5 extra processors barely help, so the curves
collapse toward the no-RC baseline.
"""

from _common import bench_figure


def test_fig14_sequential_fraction_sweep(benchmark):
    result = bench_figure(benchmark, "fig14")
    ig = result.normalized["ig-el"]
    # Fully parallel tasks benefit at least as much as mostly-sequential
    # ones (first sweep point is f=0).
    assert ig[0] <= ig[-1] + 0.05
    # The fault-free envelope keeps the same ordering.
    ff = result.normalized["ff-rc"]
    assert ff[0] <= ff[-1] + 0.05
