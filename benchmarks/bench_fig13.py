"""Figure 13: MTBF sweep at three checkpoint costs (c = 1, 0.1, 0.01).

Paper claims: cheaper checkpoints lift every curve (less lost work per
failure), shrinking the gap to the fault-free context across the whole
MTBF range.
"""

from _common import bench_figure, series_mean


def test_fig13a_cost_1(benchmark):
    result = bench_figure(benchmark, "fig13a")
    assert series_mean(result, "ff-rc") <= 1.0


def test_fig13b_cost_01(benchmark):
    result = bench_figure(benchmark, "fig13b")
    assert series_mean(result, "ff-rc") <= 1.0


def test_fig13c_cost_001(benchmark):
    result = bench_figure(benchmark, "fig13c")
    # At c=0.01 checkpoints are nearly free: the heuristics sit very close
    # to (or below) the fault-free line of the c=1 panel.
    assert series_mean(result, "ig-el") <= 1.05
