"""Micro-benchmarks of the PR-1 hot paths, with a recordable baseline.

Covers the three layers of the performance overhaul:

* **profile evaluation** — batched :meth:`ExpectedTimeModel.expected_times`
  vs the equivalent loop of scalar ``expected_time`` calls, plus cold
  (cache-missing) ``profile`` and ``profile_batch`` evaluation;
* **greedy rebuild** — one IteratedGreedy-style full rebuild at
  ``n in {4, 16, 64}``;
* **simulator loop** — a full fault-injected run tuned to ~10k events
  (the heap event queue's O(log n) selection vs the seed's O(n) rescan).

Runs two ways:

* under pytest-benchmark: ``PYTHONPATH=src python -m pytest benchmarks/bench_hotpath.py``
* standalone, recording the committed baseline ``BENCH_hotpath.json``::

      PYTHONPATH=src python -m benchmarks.bench_hotpath --write

``python -m benchmarks.check_regression`` re-runs the same measurements
and fails on a >1.3x per-benchmark regression against that baseline.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path
from typing import Callable, Dict, Optional, Sequence

import numpy as np

from repro.cluster import Cluster
from repro.core import optimal_schedule
from repro.core.heuristics import greedy_rebuild
from repro.core.state import TaskRuntime
from repro.resilience import ExpectedTimeModel
from repro.simulation import simulate
from repro.tasks import uniform_pack

#: Committed baseline location (repo root).
DEFAULT_BASELINE = Path(__file__).resolve().parent.parent / "BENCH_hotpath.json"

#: ~10k-event fault-injected run (see SIM_* below): 40 tasks, 160 procs.
SIM_N, SIM_P, SIM_M_SUP, SIM_MTBF_YEARS, SIM_SEED = 40, 160, 24_000.0, 0.001, 3

PACK = uniform_pack(50, m_inf=6000, m_sup=10000, seed=0)
CLUSTER = Cluster.with_mtbf_years(400, 0.02)
TARGETS = np.arange(2, 401, 2)


def fresh_model() -> ExpectedTimeModel:
    return ExpectedTimeModel(PACK, CLUSTER)


def _warm_model() -> ExpectedTimeModel:
    model = fresh_model()
    model.profile(0, 1.0)
    return model


def measure(
    fn: Callable[[], object], *, number: int = 100, repeats: int = 5
) -> float:
    """Best-of-``repeats`` mean seconds per call over ``number`` calls."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(number):
            fn()
        best = min(best, (time.perf_counter() - start) / number)
    return best


# -- measurement scenarios ---------------------------------------------------

def _scalar_loop(model: ExpectedTimeModel) -> list:
    return [model.expected_time(0, int(j), 1.0) for j in TARGETS]


def measure_expected_times_scalar_loop() -> Dict[str, float]:
    """Seed-style scoring: one scalar accessor per candidate j (200 calls)."""
    model = _warm_model()
    return {"seconds": measure(lambda: _scalar_loop(model), number=50)}


def measure_expected_times_batch() -> Dict[str, float]:
    """One batched call scoring the same 200 candidates at once."""
    model = _warm_model()
    return {
        "seconds": measure(
            lambda: model.expected_times(0, TARGETS, 1.0), number=500
        )
    }


def measure_profile_cold() -> Dict[str, float]:
    """One envelope evaluation with a forced cache miss per call."""
    model = _warm_model()
    counter = iter(range(10**9))
    return {
        "seconds": measure(
            lambda: model.profile(0, 0.5 + next(counter) * 1e-9), number=200
        )
    }


def measure_profile_batch_cold() -> Dict[str, float]:
    """All 50 task envelopes at a fresh alpha in one vectorised pass."""
    model = _warm_model()
    indices = list(range(len(PACK)))
    for i in indices:
        model.grid(i)
    counter = iter(range(10**9))
    return {
        "seconds": measure(
            lambda: model.profile_batch(indices, 0.5 + next(counter) * 1e-9),
            number=50,
        )
    }


def _rebuild_once(n: int) -> Callable[[], list]:
    pack = uniform_pack(n, m_inf=6000, m_sup=10000, seed=0)
    cluster = Cluster.with_mtbf_years(8 * n, 0.02)
    model = ExpectedTimeModel(pack, cluster)
    sigma = optimal_schedule(model, 8 * n)

    def rebuild() -> list:
        runtimes = []
        for i, spec in enumerate(pack):
            rt = TaskRuntime(spec)
            rt.assign(sigma[i])
            rt.t_expected = model.expected_time(i, sigma[i], 1.0)
            runtimes.append(rt)
        t = min(rt.t_expected for rt in runtimes) * 0.5
        return greedy_rebuild(model, t, runtimes, 8 * n)

    return rebuild


def measure_greedy_rebuild(n: int) -> Dict[str, float]:
    """One full Algorithm-5 rebuild of an ``n``-task pack on ``8n`` procs."""
    return {"seconds": measure(_rebuild_once(n), number=max(2, 64 // n))}


def _sim_workload():
    pack = uniform_pack(
        SIM_N, m_inf=SIM_M_SUP * 0.8, m_sup=SIM_M_SUP, seed=1
    )
    cluster = Cluster.with_mtbf_years(SIM_P, SIM_MTBF_YEARS)
    return pack, cluster


def measure_simulator_10k_events() -> Dict[str, float]:
    """Full fault-injected IG-EL run driving ~10k simulator events."""
    pack, cluster = _sim_workload()
    model = ExpectedTimeModel(pack, cluster)
    result = simulate(pack, cluster, "ig-el", seed=SIM_SEED, model=model)
    seconds = measure(
        lambda: simulate(pack, cluster, "ig-el", seed=SIM_SEED, model=model),
        number=1,
        repeats=3,
    )
    return {"seconds": seconds, "events": float(result.events)}


#: name -> zero-argument measurement returning at least {"seconds": s}.
MEASUREMENTS: Dict[str, Callable[[], Dict[str, float]]] = {
    "expected_times_scalar_loop": measure_expected_times_scalar_loop,
    "expected_times_batch": measure_expected_times_batch,
    "profile_cold": measure_profile_cold,
    "profile_batch_cold": measure_profile_batch_cold,
    "greedy_rebuild_n4": lambda: measure_greedy_rebuild(4),
    "greedy_rebuild_n16": lambda: measure_greedy_rebuild(16),
    "greedy_rebuild_n64": lambda: measure_greedy_rebuild(64),
    "simulator_10k_events": measure_simulator_10k_events,
}


def run_all(names: Optional[Sequence[str]] = None) -> Dict[str, Dict[str, float]]:
    """Run the selected measurements (all by default)."""
    selected = list(MEASUREMENTS) if names is None else list(names)
    return {name: MEASUREMENTS[name]() for name in selected}


def batch_speedup(results: Dict[str, Dict[str, float]]) -> float:
    """Scalar-loop seconds over batched seconds for the same candidates."""
    return (
        results["expected_times_scalar_loop"]["seconds"]
        / results["expected_times_batch"]["seconds"]
    )


def write_baseline(path: Path = DEFAULT_BASELINE) -> Dict[str, object]:
    """Measure everything and record the committed baseline JSON."""
    results = run_all()
    payload = {
        "schema": 1,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "benchmarks": results,
        "derived": {"batch_speedup": batch_speedup(results)},
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


# -- pytest-benchmark entry points ------------------------------------------

def test_expected_times_scalar_loop(benchmark):
    model = _warm_model()
    benchmark(lambda: _scalar_loop(model))


def test_expected_times_batch(benchmark):
    model = _warm_model()
    benchmark(lambda: model.expected_times(0, TARGETS, 1.0))


def test_profile_batch_cold(benchmark):
    model = _warm_model()
    indices = list(range(len(PACK)))
    counter = iter(range(10**9))
    benchmark(
        lambda: model.profile_batch(indices, 0.5 + next(counter) * 1e-9)
    )


def test_greedy_rebuild_scaling(benchmark):
    benchmark.pedantic(_rebuild_once(16), iterations=1, rounds=5)


def test_simulator_10k_events(benchmark):
    pack, cluster = _sim_workload()
    model = ExpectedTimeModel(pack, cluster)
    result = benchmark.pedantic(
        lambda: simulate(pack, cluster, "ig-el", seed=SIM_SEED, model=model),
        iterations=1,
        rounds=3,
    )
    assert result.events >= 10_000


def test_batch_beats_scalar_loop():
    """Acceptance gate: the batched path is >= 3x the scalar loop."""
    scalar = measure_expected_times_scalar_loop()["seconds"]
    batch = measure_expected_times_batch()["seconds"]
    assert scalar / batch >= 3.0, f"batch speedup only {scalar / batch:.2f}x"


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Measure the hot-path micro-benchmarks."
    )
    parser.add_argument(
        "--write",
        action="store_true",
        help=f"record the baseline to {DEFAULT_BASELINE.name}",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=DEFAULT_BASELINE,
        help="baseline path (with --write)",
    )
    args = parser.parse_args(argv)
    if args.write:
        payload = write_baseline(args.output)
    else:
        results = run_all()
        payload = {
            "benchmarks": results,
            "derived": {"batch_speedup": batch_speedup(results)},
        }
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
