"""Micro-benchmarks of the library's hot paths.

Not tied to a paper figure; these track the cost of the building blocks
the experiment pipeline leans on (profile evaluation dominates — see the
performance-stack notes in docs/ARCHITECTURE.md).
"""

import numpy as np

from repro.cluster import Cluster
from repro.core import optimal_schedule, redistribution_cost_vector
from repro.core.heuristics import greedy_rebuild
from repro.core.state import TaskRuntime
from repro.resilience import ExpectedTimeModel
from repro.simulation import simulate
from repro.tasks import uniform_pack

PACK = uniform_pack(50, m_inf=6000, m_sup=10000, seed=0)
CLUSTER = Cluster.with_mtbf_years(400, 0.02)


def fresh_model() -> ExpectedTimeModel:
    return ExpectedTimeModel(PACK, CLUSTER)


def test_profile_evaluation(benchmark):
    """One vectorised t^R profile over the full even-j grid (cache miss)."""
    model = fresh_model()
    model.profile(0, 1.0)  # warm the per-task grid
    counter = iter(range(10**9))

    def evaluate():
        # distinct alpha every call -> forced cache miss
        return model.profile(0, 0.5 + next(counter) * 1e-9)

    benchmark(evaluate)


def test_profile_cache_hit(benchmark):
    model = fresh_model()
    model.profile(0, 1.0)
    benchmark(lambda: model.profile(0, 1.0))


def test_optimal_schedule(benchmark):
    """Algorithm 1 on 50 tasks / 400 processors."""
    model = fresh_model()
    model.profile(0, 1.0)
    benchmark(lambda: optimal_schedule(model, 400))


def test_redistribution_cost_vector(benchmark):
    targets = np.arange(2, 401, 2)
    benchmark(lambda: redistribution_cost_vector(1e6, 10, targets))


def test_greedy_rebuild(benchmark):
    """One IteratedGreedy-style rebuild of the whole pack."""
    model = fresh_model()
    sigma = optimal_schedule(model, 400)

    def rebuild():
        runtimes = []
        for i, spec in enumerate(PACK):
            rt = TaskRuntime(spec)
            rt.assign(sigma[i])
            rt.t_expected = model.expected_time(i, sigma[i], 1.0)
            runtimes.append(rt)
        t = min(rt.t_expected for rt in runtimes) * 0.5
        return greedy_rebuild(model, t, runtimes, 400)

    benchmark(rebuild)


def test_full_simulation(benchmark):
    """End-to-end run: 50 tasks, 400 processors, failures + IG-EL."""
    model = fresh_model()
    benchmark.pedantic(
        lambda: simulate(PACK, CLUSTER, "ig-el", seed=3, model=model),
        iterations=1,
        rounds=3,
    )
