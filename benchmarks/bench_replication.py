"""Extension bench: checkpointing vs process replication (Section 2.2).

Prices one task's expected completion under the paper's buddy
checkpointing and under full process replication across per-processor
MTBFs, locating the crossover.

Expected shape: checkpointing wins on reliable platforms (replication
wastes half the processors), replication wins on hostile ones (its
interruption process is ~MNFTI times rarer), and the crossover MTBF
moves *up* with the allocation size — the classic exascale argument.
"""

from __future__ import annotations

from repro import Cluster, uniform_pack
from repro.resilience import (
    ExpectedTimeModel,
    ReplicatedExpectedTimeModel,
    crossover_mtbf,
    mnfti,
)
from repro.units import SECONDS_PER_YEAR

from _common import RESULTS_DIR, BENCH_SEED

MTBF_YEARS_GRID = (0.003, 0.01, 0.03, 0.1, 0.3, 1.0)


def run_comparison() -> dict:
    pack = uniform_pack(1, m_inf=100_000, m_sup=100_000, seed=BENCH_SEED)
    j = 64
    outcome: dict = {"plain": {}, "replicated": {}, "crossover": {}}
    for mtbf_years in MTBF_YEARS_GRID:
        cluster = Cluster.with_mtbf_years(j, mtbf_years=mtbf_years)
        outcome["plain"][mtbf_years] = ExpectedTimeModel(
            pack, cluster
        ).expected_time(0, j, 1.0)
        outcome["replicated"][mtbf_years] = ReplicatedExpectedTimeModel(
            pack, cluster
        ).expected_time(0, j, 1.0)
    for j_cross in (16, 32, 64):
        outcome["crossover"][j_cross] = crossover_mtbf(pack, 0, j_cross)
    return outcome


def test_replication_crossover(benchmark):
    outcome = benchmark.pedantic(run_comparison, iterations=1, rounds=1)
    plain, replicated = outcome["plain"], outcome["replicated"]

    RESULTS_DIR.mkdir(exist_ok=True)
    lines = [
        f"mtbf={m:g}y: checkpointing={plain[m]:.6g}s "
        f"replication={replicated[m]:.6g}s "
        f"winner={'replication' if replicated[m] < plain[m] else 'checkpointing'}"
        for m in MTBF_YEARS_GRID
    ]
    for j_cross, crossover in outcome["crossover"].items():
        value = (
            f"{crossover / SECONDS_PER_YEAR:.4g}y"
            if crossover is not None
            else "none"
        )
        lines.append(f"crossover j={j_cross}: {value}")
    (RESULTS_DIR / "replication_crossover.txt").write_text(
        "\n".join(lines) + "\n"
    )

    # hostile end: replication wins
    assert replicated[MTBF_YEARS_GRID[0]] < plain[MTBF_YEARS_GRID[0]]
    # reliable end: checkpointing wins
    assert plain[MTBF_YEARS_GRID[-1]] < replicated[MTBF_YEARS_GRID[-1]]
    # crossover exists in range and moves up with the allocation
    crossovers = outcome["crossover"]
    assert all(value is not None for value in crossovers.values())
    assert crossovers[16] < crossovers[32] < crossovers[64]
    # sanity: MNFTI grows with the pair count (drives the whole effect)
    assert mnfti(32) > mnfti(8) > mnfti(1)
