"""Decision benchmark: incremental vs rebuild vs scalar hot paths.

Two layers of the decision stack are measured on the same
*failure-heavy* scenario (low MTBF, large pack, ~10k+ events) whose
runtime is dominated by rebuild decisions:

* the ``decision_kernel="array"`` matrix build (:mod:`repro.core.
  kernels`) against the per-probe ``"scalar"`` reference (PR 3), and
* the ``decision_state="incremental"`` delta-patched
  :class:`~repro.core.kernels.DecisionCache` against the per-decision
  fresh build ``"rebuild"`` (this layer's claim: one event dirties at
  most a few rows, so patching beats rebuilding), and
* the PR-7 native-speed hot core (fused profile backend, vectorised
  failure path, incremental profile deltas) against the all-reference
  substrate (``profile_backend="reference"`` on the fresh-build array
  kernel).

Measurements:

* ``sim_failure_heavy_incremental`` — the default engine: array kernel
  + persistent decision cache + incremental rebuild heap + fused
  profile backend;
* ``sim_failure_heavy_array`` — the PR-3 fresh-build array kernel
  (``decision_state="rebuild"``);
* ``sim_failure_heavy_reference`` — the fresh-build array kernel on
  ``profile_backend="reference"`` (the PR-6-era substrate);
* ``sim_failure_heavy_scalar`` — the seed-style scalar kernel;
* ``rebuild_{array,scalar}`` — one isolated Algorithm-5 rebuild of an
  ``n``-task pack per kernel.

All three simulations run on the same workload and fault draw and the
benchmark asserts they are byte-identical before timing is trusted.

Runs two ways:

* under pytest: ``PYTHONPATH=src python -m pytest benchmarks/bench_decisions.py``
* standalone, recording the committed baseline ``BENCH_decisions.json``::

      REPRO_BENCH_SCALE=small PYTHONPATH=src \\
          python -m benchmarks.bench_decisions --write

``python -m benchmarks.check_regression`` re-runs the measurements and
enforces the derived host-relative floors: ``sim_kernel_speedup``
(scalar seconds over fresh-build array seconds, floor 1.5x),
``sim_state_speedup`` (fresh-build seconds over incremental seconds,
floor 1.3x) and ``sim_failure_heavy_speedup`` (reference-substrate
seconds over incremental seconds, floor 2x at small/paper and 1.25x on
the tiny CI leg — the ISSUE 7 hot-core target).  ``REPRO_BENCH_SCALE``
(``tiny``/``small``/``paper``) sizes the scenario.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path
from typing import Callable, Dict, Optional, Sequence

from repro.cluster import Cluster
from repro.core import optimal_schedule
from repro.core.heuristics import greedy_rebuild
from repro.core.state import TaskRuntime
from repro.resilience import ExpectedTimeModel
from repro.simulation import simulate
from repro.tasks import uniform_pack

try:  # pytest / sys.path import (benchmarks/ on the path)
    from ._common import BENCH_SCALE
except ImportError:  # pragma: no cover - direct execution fallback
    from _common import BENCH_SCALE

#: Committed baseline location (repo root).
DEFAULT_BASELINE = Path(__file__).resolve().parent.parent / "BENCH_decisions.json"

#: Failure-heavy scenario per scale: pack size, platform size, task size
#: and a deliberately hopeless MTBF so failures (and their rebuild
#: decisions) dominate the event stream.
SCALE_PARAMS: Dict[str, Dict[str, float]] = {
    "tiny": dict(n=32, p=192, m_sup=14_000.0, mtbf_years=0.001, seed=3),
    "small": dict(n=64, p=512, m_sup=24_000.0, mtbf_years=0.002, seed=3),
    "paper": dict(n=100, p=1000, m_sup=25_000.0, mtbf_years=0.004, seed=3),
}

PARAMS = SCALE_PARAMS.get(BENCH_SCALE, SCALE_PARAMS["small"])

#: Scale-aware floor for the hot-core failure-heavy gate.  The 2x
#: tentpole target is a small/paper-scale claim — the substrate work
#: the hot core removes grows with the pack while the per-event Python
#: skeleton does not, so at ``tiny`` (n=32) the ratio compresses and
#: the CI leg enforces a correspondingly reduced floor.
FAILURE_HEAVY_FLOORS = {"tiny": 1.25, "small": 2.0, "paper": 2.0}
FAILURE_HEAVY_FLOOR = FAILURE_HEAVY_FLOORS.get(BENCH_SCALE, 2.0)

#: Rebuild microbenchmark pack size per scale.
REBUILD_N = {"tiny": 24, "small": 64, "paper": 128}.get(BENCH_SCALE, 64)


def _sim_workload():
    params = PARAMS
    pack = uniform_pack(
        int(params["n"]),
        m_inf=params["m_sup"] * 0.8,
        m_sup=params["m_sup"],
        seed=1,
    )
    cluster = Cluster.with_mtbf_years(int(params["p"]), params["mtbf_years"])
    return pack, cluster, int(params["seed"])


def measure(
    fn: Callable[[], object], *, number: int = 1, repeats: int = 3
) -> float:
    """Best-of-``repeats`` mean seconds per call over ``number`` calls."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(number):
            fn()
        best = min(best, (time.perf_counter() - start) / number)
    return best


def _sim_runner(
    kernel: str, state: str, profile_backend: str
) -> Callable[[], object]:
    """A zero-argument failure-heavy ``ig-el`` run in the given modes."""
    pack, cluster, seed = _sim_workload()
    model = ExpectedTimeModel(pack, cluster, profile_backend=profile_backend)
    return lambda: simulate(
        pack, cluster, "ig-el", seed=seed, model=model,
        decision_kernel=kernel, decision_state=state,
    )


def _sim_fields(result) -> Dict[str, float]:
    return {
        "events": float(result.events),
        "failures": float(result.failures_effective),
        "makespan": result.makespan,
    }


def measure_sim(
    kernel: str, state: str = "rebuild", profile_backend: str = "fused"
) -> Dict[str, float]:
    """One full failure-heavy ``ig-el`` run on the given decision modes.

    Best-of-5 consecutive reps; when two sim modes feed a derived
    ratio, prefer :func:`run_all`, which interleaves the reps across
    modes so host drift cannot land on one side of the ratio.
    """
    run = _sim_runner(kernel, state, profile_backend)
    fields = _sim_fields(run())
    return {"seconds": measure(run, repeats=5), **fields}


def _rebuild_once(n: int, kernel: str) -> Callable[[], list]:
    pack = uniform_pack(n, m_inf=6000, m_sup=10000, seed=0)
    cluster = Cluster.with_mtbf_years(8 * n, 0.02)
    model = ExpectedTimeModel(pack, cluster)
    sigma = optimal_schedule(model, 8 * n)

    def rebuild() -> list:
        runtimes = []
        for i, spec in enumerate(pack):
            rt = TaskRuntime(spec)
            rt.assign(sigma[i])
            rt.t_expected = model.expected_time(i, sigma[i], 1.0)
            runtimes.append(rt)
        t = min(rt.t_expected for rt in runtimes) * 0.5
        greedy_rebuild(model, t, runtimes, 8 * n, kernel=kernel)
        # Full mutated state, so identity checks compare the actual
        # allocations and bookkeeping, not just which tasks moved.
        return [
            (rt.sigma, rt.alpha, rt.t_last, rt.t_expected)
            for rt in runtimes
        ]

    return rebuild


def measure_rebuild(kernel: str) -> Dict[str, float]:
    """One Algorithm-5 rebuild on the given kernel."""
    return {
        "seconds": measure(
            _rebuild_once(REBUILD_N, kernel),
            number=max(2, 64 // REBUILD_N),
            repeats=5,
        )
    }


#: Simulation measurements: name -> (kernel, state, profile_backend).
SIM_MODES: Dict[str, tuple] = {
    "sim_failure_heavy_array": ("array", "rebuild", "fused"),
    "sim_failure_heavy_reference": ("array", "rebuild", "reference"),
    "sim_failure_heavy_incremental": ("array", "incremental", "fused"),
    "sim_failure_heavy_scalar": ("scalar", "rebuild", "fused"),
}

#: name -> zero-argument measurement returning at least {"seconds": s}.
#: Insertion order is the default execution order: the fresh-build run
#: goes first so process warm-up (allocator, CPU ramp) never lands on
#: one side of a derived speedup ratio.
MEASUREMENTS: Dict[str, Callable[[], Dict[str, float]]] = {
    **{
        name: (lambda modes=modes: measure_sim(*modes))
        for name, modes in SIM_MODES.items()
    },
    "rebuild_array": lambda: measure_rebuild("array"),
    "rebuild_scalar": lambda: measure_rebuild("scalar"),
}


def _measure_sims_interleaved(
    names: Sequence[str], repeats: int = 5
) -> Dict[str, Dict[str, float]]:
    """Best-of-``repeats`` for several sim modes, reps round-robin.

    The derived speedups divide two of these measurements, so the reps
    are interleaved (one run of *every* mode per round) — a load spike
    on a noisy shared host then inflates all modes in the same rounds
    instead of landing its whole duration on one side of a ratio.
    """
    runners = {name: _sim_runner(*SIM_MODES[name]) for name in names}
    results = {}
    for name, run in runners.items():  # warm-up + identity fields
        results[name] = {"seconds": float("inf"), **_sim_fields(run())}
    for _ in range(repeats):
        for name, run in runners.items():
            start = time.perf_counter()
            run()
            elapsed = time.perf_counter() - start
            if elapsed < results[name]["seconds"]:
                results[name]["seconds"] = elapsed
    return results


def run_all(names: Optional[Sequence[str]] = None) -> Dict[str, Dict[str, float]]:
    """Run the selected measurements (all by default) and check identity."""
    selected = list(MEASUREMENTS) if names is None else list(names)
    sim_names = [name for name in selected if name in SIM_MODES]
    results = (
        _measure_sims_interleaved(sim_names) if len(sim_names) > 1 else {}
    )
    for name in selected:
        if name not in results:
            results[name] = MEASUREMENTS[name]()
    sims = [
        results[name]
        for name in (
            "sim_failure_heavy_incremental",
            "sim_failure_heavy_array",
            "sim_failure_heavy_reference",
            "sim_failure_heavy_scalar",
        )
        if name in results
    ]
    # The timing is only meaningful if every mode executed the exact
    # same simulation.
    for other in sims[1:]:
        for field in ("events", "failures", "makespan"):
            assert sims[0][field] == other[field], (
                f"decision-mode divergence on {field}: "
                f"{sims[0][field]} vs {other[field]}"
            )
    return results


def sim_kernel_speedup(results: Dict[str, Dict[str, float]]) -> float:
    """Scalar seconds over fresh-build array seconds (failure-heavy)."""
    return (
        results["sim_failure_heavy_scalar"]["seconds"]
        / results["sim_failure_heavy_array"]["seconds"]
    )


def sim_state_speedup(results: Dict[str, Dict[str, float]]) -> float:
    """Fresh-build seconds over incremental seconds (failure-heavy).

    The decision-state acceptance number: how much the delta-patched
    ``DecisionCache`` buys over the PR-3 per-decision rebuild.
    """
    return (
        results["sim_failure_heavy_array"]["seconds"]
        / results["sim_failure_heavy_incremental"]["seconds"]
    )


def sim_failure_heavy_speedup(results: Dict[str, Dict[str, float]]) -> float:
    """Reference-substrate seconds over incremental seconds.

    The ISSUE 7 hot-core acceptance number: the full native-speed stack
    (fused profile backend + vectorised failure path + incremental
    profile deltas + decision cache) against the same simulation on the
    ``profile_backend="reference"`` fresh-build array kernel.
    """
    return (
        results["sim_failure_heavy_reference"]["seconds"]
        / results["sim_failure_heavy_incremental"]["seconds"]
    )


def rebuild_kernel_speedup(results: Dict[str, Dict[str, float]]) -> float:
    """Scalar seconds over array seconds on the isolated rebuild."""
    return (
        results["rebuild_scalar"]["seconds"]
        / results["rebuild_array"]["seconds"]
    )


def payload_from(results: Dict[str, Dict[str, float]]) -> Dict[str, object]:
    return {
        "schema": 1,
        "scale": BENCH_SCALE,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "benchmarks": results,
        "derived": {
            "sim_kernel_speedup": sim_kernel_speedup(results),
            "sim_state_speedup": sim_state_speedup(results),
            "sim_failure_heavy_speedup": sim_failure_heavy_speedup(results),
            "rebuild_kernel_speedup": rebuild_kernel_speedup(results),
        },
    }


def write_baseline(path: Path = DEFAULT_BASELINE) -> Dict[str, object]:
    """Measure everything and record the committed baseline JSON."""
    payload = payload_from(run_all())
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


# -- pytest entry points -----------------------------------------------------

def test_array_kernel_beats_scalar_on_failures():
    """Acceptance gate: the array kernel is >= 1.5x on the decision path.

    One retry before failing — the margin is real, but shared CI
    runners can invert a single noisy sample.
    """
    results = run_all(["sim_failure_heavy_array", "sim_failure_heavy_scalar"])
    assert results["sim_failure_heavy_array"]["events"] >= 1000
    if sim_kernel_speedup(results) < 1.5:  # pragma: no cover - noisy host
        results = run_all(
            ["sim_failure_heavy_array", "sim_failure_heavy_scalar"]
        )
    speedup = sim_kernel_speedup(results)
    assert speedup >= 1.5, (
        f"array kernel only {speedup:.2f}x over scalar on the "
        "failure-heavy decision benchmark"
    )


def test_incremental_state_beats_rebuild():
    """Acceptance gate: delta-patching is >= 1.3x over the fresh build.

    The PR's decision-state claim on the failure-heavy run, with one
    retry for noisy shared runners.
    """
    results = run_all(
        ["sim_failure_heavy_array", "sim_failure_heavy_incremental"]
    )
    assert results["sim_failure_heavy_incremental"]["events"] >= 1000
    if sim_state_speedup(results) < 1.3:  # pragma: no cover - noisy host
        results = run_all(
            ["sim_failure_heavy_array", "sim_failure_heavy_incremental"]
        )
    speedup = sim_state_speedup(results)
    assert speedup >= 1.3, (
        f"incremental decision state only {speedup:.2f}x over the "
        "fresh-build array kernel on the failure-heavy benchmark"
    )


def test_hot_core_beats_reference_on_failures():
    """Acceptance gate: the native-speed hot core wins end to end.

    ISSUE 7's tentpole claim — fused profile backend + vectorised
    failure path + incremental profile deltas together at least double
    the failure-heavy run over the reference substrate at small/paper
    scale (``FAILURE_HEAVY_FLOORS`` relaxes the tiny CI leg).  One
    retry for noisy shared runners.
    """
    floor = FAILURE_HEAVY_FLOOR
    results = run_all(
        ["sim_failure_heavy_reference", "sim_failure_heavy_incremental"]
    )
    assert results["sim_failure_heavy_incremental"]["events"] >= 1000
    if sim_failure_heavy_speedup(results) < floor:  # pragma: no cover - noisy host
        results = run_all(
            ["sim_failure_heavy_reference", "sim_failure_heavy_incremental"]
        )
    speedup = sim_failure_heavy_speedup(results)
    assert speedup >= floor, (
        f"hot core only {speedup:.2f}x over the reference substrate on "
        f"the failure-heavy benchmark (floor {floor:g}x at {BENCH_SCALE})"
    )


def test_rebuild_kernels_agree():
    """The two kernels rebuild identical state on the micro case."""
    array_state = _rebuild_once(REBUILD_N, "array")()
    scalar_state = _rebuild_once(REBUILD_N, "scalar")()
    assert array_state == scalar_state


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Measure the decision-kernel benchmarks."
    )
    parser.add_argument(
        "--write",
        action="store_true",
        help=f"record the baseline to {DEFAULT_BASELINE.name}",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=DEFAULT_BASELINE,
        help="baseline path (with --write)",
    )
    args = parser.parse_args(argv)
    if args.write:
        payload = write_baseline(args.output)
    else:
        payload = payload_from(run_all())
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
