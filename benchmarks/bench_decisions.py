"""Decision-kernel benchmark: array vs scalar scheduling hot path.

The ``decision_kernel="array"`` path (:mod:`repro.core.kernels`) exists
to keep reconfiguration decisions off the critical path: at every
simulated failure/completion the Algorithm 1/3-5 loops read one
precomputed candidate finish matrix instead of issuing scalar model
calls per probe.  This benchmark measures that claim where it matters —
a *failure-heavy* scenario (low MTBF, large pack, ~10k+ events) whose
runtime is dominated by rebuild decisions — plus an isolated
``greedy_rebuild`` microbenchmark:

* ``sim_failure_heavy_{array,scalar}`` — one full fault-injected
  ``ig-el`` run per kernel on the same workload and fault draw; the
  benchmark asserts the two executions are byte-identical before
  timing is trusted;
* ``rebuild_{array,scalar}`` — one Algorithm-5 rebuild of an ``n``-task
  pack per kernel.

Runs two ways:

* under pytest: ``PYTHONPATH=src python -m pytest benchmarks/bench_decisions.py``
* standalone, recording the committed baseline ``BENCH_decisions.json``::

      REPRO_BENCH_SCALE=small PYTHONPATH=src \\
          python -m benchmarks.bench_decisions --write

``python -m benchmarks.check_regression`` re-runs the measurements and
enforces the derived ``sim_kernel_speedup`` (scalar seconds over array
seconds on the failure-heavy run) against its 1.5x floor — the
host-relative acceptance number.  ``REPRO_BENCH_SCALE``
(``tiny``/``small``/``paper``) sizes the scenario.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path
from typing import Callable, Dict, Optional, Sequence

from repro.cluster import Cluster
from repro.core import optimal_schedule
from repro.core.heuristics import greedy_rebuild
from repro.core.state import TaskRuntime
from repro.resilience import ExpectedTimeModel
from repro.simulation import simulate
from repro.tasks import uniform_pack

try:  # pytest / sys.path import (benchmarks/ on the path)
    from ._common import BENCH_SCALE
except ImportError:  # pragma: no cover - direct execution fallback
    from _common import BENCH_SCALE

#: Committed baseline location (repo root).
DEFAULT_BASELINE = Path(__file__).resolve().parent.parent / "BENCH_decisions.json"

#: Failure-heavy scenario per scale: pack size, platform size, task size
#: and a deliberately hopeless MTBF so failures (and their rebuild
#: decisions) dominate the event stream.
SCALE_PARAMS: Dict[str, Dict[str, float]] = {
    "tiny": dict(n=24, p=144, m_sup=12_000.0, mtbf_years=0.001, seed=3),
    "small": dict(n=64, p=512, m_sup=24_000.0, mtbf_years=0.002, seed=3),
    "paper": dict(n=100, p=1000, m_sup=25_000.0, mtbf_years=0.004, seed=3),
}

PARAMS = SCALE_PARAMS.get(BENCH_SCALE, SCALE_PARAMS["small"])

#: Rebuild microbenchmark pack size per scale.
REBUILD_N = {"tiny": 24, "small": 64, "paper": 128}.get(BENCH_SCALE, 64)


def _sim_workload():
    params = PARAMS
    pack = uniform_pack(
        int(params["n"]),
        m_inf=params["m_sup"] * 0.8,
        m_sup=params["m_sup"],
        seed=1,
    )
    cluster = Cluster.with_mtbf_years(int(params["p"]), params["mtbf_years"])
    return pack, cluster, int(params["seed"])


def measure(
    fn: Callable[[], object], *, number: int = 1, repeats: int = 3
) -> float:
    """Best-of-``repeats`` mean seconds per call over ``number`` calls."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(number):
            fn()
        best = min(best, (time.perf_counter() - start) / number)
    return best


def measure_sim(kernel: str) -> Dict[str, float]:
    """One full failure-heavy ``ig-el`` run on the given kernel."""
    pack, cluster, seed = _sim_workload()
    model = ExpectedTimeModel(pack, cluster)
    result = simulate(
        pack, cluster, "ig-el", seed=seed, model=model, decision_kernel=kernel
    )
    seconds = measure(
        lambda: simulate(
            pack, cluster, "ig-el", seed=seed, model=model,
            decision_kernel=kernel,
        )
    )
    return {
        "seconds": seconds,
        "events": float(result.events),
        "failures": float(result.failures_effective),
        "makespan": result.makespan,
    }


def _rebuild_once(n: int, kernel: str) -> Callable[[], list]:
    pack = uniform_pack(n, m_inf=6000, m_sup=10000, seed=0)
    cluster = Cluster.with_mtbf_years(8 * n, 0.02)
    model = ExpectedTimeModel(pack, cluster)
    sigma = optimal_schedule(model, 8 * n)

    def rebuild() -> list:
        runtimes = []
        for i, spec in enumerate(pack):
            rt = TaskRuntime(spec)
            rt.assign(sigma[i])
            rt.t_expected = model.expected_time(i, sigma[i], 1.0)
            runtimes.append(rt)
        t = min(rt.t_expected for rt in runtimes) * 0.5
        greedy_rebuild(model, t, runtimes, 8 * n, kernel=kernel)
        # Full mutated state, so identity checks compare the actual
        # allocations and bookkeeping, not just which tasks moved.
        return [
            (rt.sigma, rt.alpha, rt.t_last, rt.t_expected)
            for rt in runtimes
        ]

    return rebuild


def measure_rebuild(kernel: str) -> Dict[str, float]:
    """One Algorithm-5 rebuild on the given kernel."""
    return {
        "seconds": measure(
            _rebuild_once(REBUILD_N, kernel),
            number=max(2, 64 // REBUILD_N),
            repeats=5,
        )
    }


#: name -> zero-argument measurement returning at least {"seconds": s}.
MEASUREMENTS: Dict[str, Callable[[], Dict[str, float]]] = {
    "sim_failure_heavy_array": lambda: measure_sim("array"),
    "sim_failure_heavy_scalar": lambda: measure_sim("scalar"),
    "rebuild_array": lambda: measure_rebuild("array"),
    "rebuild_scalar": lambda: measure_rebuild("scalar"),
}


def run_all(names: Optional[Sequence[str]] = None) -> Dict[str, Dict[str, float]]:
    """Run the selected measurements (all by default) and check identity."""
    selected = list(MEASUREMENTS) if names is None else list(names)
    results = {name: MEASUREMENTS[name]() for name in selected}
    array = results.get("sim_failure_heavy_array")
    scalar = results.get("sim_failure_heavy_scalar")
    if array is not None and scalar is not None:
        # The timing is only meaningful if both kernels executed the
        # exact same simulation.
        for field in ("events", "failures", "makespan"):
            assert array[field] == scalar[field], (
                f"kernel divergence on {field}: "
                f"array={array[field]} scalar={scalar[field]}"
            )
    return results


def sim_kernel_speedup(results: Dict[str, Dict[str, float]]) -> float:
    """Scalar seconds over array seconds on the failure-heavy run."""
    return (
        results["sim_failure_heavy_scalar"]["seconds"]
        / results["sim_failure_heavy_array"]["seconds"]
    )


def rebuild_kernel_speedup(results: Dict[str, Dict[str, float]]) -> float:
    """Scalar seconds over array seconds on the isolated rebuild."""
    return (
        results["rebuild_scalar"]["seconds"]
        / results["rebuild_array"]["seconds"]
    )


def payload_from(results: Dict[str, Dict[str, float]]) -> Dict[str, object]:
    return {
        "schema": 1,
        "scale": BENCH_SCALE,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "benchmarks": results,
        "derived": {
            "sim_kernel_speedup": sim_kernel_speedup(results),
            "rebuild_kernel_speedup": rebuild_kernel_speedup(results),
        },
    }


def write_baseline(path: Path = DEFAULT_BASELINE) -> Dict[str, object]:
    """Measure everything and record the committed baseline JSON."""
    payload = payload_from(run_all())
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


# -- pytest entry points -----------------------------------------------------

def test_array_kernel_beats_scalar_on_failures():
    """Acceptance gate: the array kernel is >= 1.5x on the decision path.

    One retry at a higher repeat count before failing — the margin is
    real, but shared CI runners can invert a single noisy sample.
    """
    results = run_all(["sim_failure_heavy_array", "sim_failure_heavy_scalar"])
    assert results["sim_failure_heavy_array"]["events"] >= 1000
    if sim_kernel_speedup(results) < 1.5:  # pragma: no cover - noisy host
        results = {
            "sim_failure_heavy_array": measure_sim("array"),
            "sim_failure_heavy_scalar": measure_sim("scalar"),
        }
    speedup = sim_kernel_speedup(results)
    assert speedup >= 1.5, (
        f"array kernel only {speedup:.2f}x over scalar on the "
        "failure-heavy decision benchmark"
    )


def test_rebuild_kernels_agree():
    """The two kernels rebuild identical state on the micro case."""
    array_state = _rebuild_once(REBUILD_N, "array")()
    scalar_state = _rebuild_once(REBUILD_N, "scalar")()
    assert array_state == scalar_state


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Measure the decision-kernel benchmarks."
    )
    parser.add_argument(
        "--write",
        action="store_true",
        help=f"record the baseline to {DEFAULT_BASELINE.name}",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=DEFAULT_BASELINE,
        help="baseline path (with --write)",
    )
    args = parser.parse_args(argv)
    if args.write:
        payload = write_baseline(args.output)
    else:
        payload = payload_from(run_all())
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
