"""Figure 10: impact of the MTBF (n=100, p=1000).

Paper claims: performance of all heuristics degrades as the MTBF drops;
at comfortable MTBFs the heuristics keep a clear gain over no-RC.
"""

from _common import bench_figure


def test_fig10_mtbf_sweep(benchmark):
    result = bench_figure(benchmark, "fig10")
    ig = result.normalized["ig-el"]
    # Highest MTBF (last sweep point) performs at least as well as the
    # most failure-ridden point.
    assert ig[-1] <= ig[0] + 0.05
    # With a healthy MTBF the heuristics beat the baseline.
    assert ig[-1] < 1.0
    assert result.normalized["stf-el"][-1] < 1.0
