"""Figure 6: fault-free redistribution gain, n=1000, p=2000..5000.

Same claims as Figure 5 at a 10x task count: both heuristics behave
similarly, heterogeneity increases the gain.
"""

from _common import bench_figure, series_mean


def test_fig6a_homogeneous(benchmark):
    result = bench_figure(benchmark, "fig6a")
    assert series_mean(result, "rc-greedy") <= 1.0 + 1e-9
    assert series_mean(result, "rc-local") <= 1.0 + 1e-9
    # The two heuristics track each other closely (paper: "very similar").
    gap = abs(
        series_mean(result, "rc-greedy") - series_mean(result, "rc-local")
    )
    assert gap < 0.15


def test_fig6b_heterogeneous(benchmark):
    result = bench_figure(benchmark, "fig6b")
    assert series_mean(result, "rc-local") <= 1.0 + 1e-9
