"""Sensitivity bench: fault-distribution family (DESIGN.md S4).

The paper's generator is exponential; real failure logs are better fit
by Weibull with shape < 1 (infant mortality / bursts) or log-normal.
This bench reruns one scenario under the three families at the *same
mean* and reports the heuristic gain under each.

Expected shape: redistribution keeps beating the no-RC baseline under
every family (the mechanism does not depend on memorylessness); bursty
arrivals (Weibull k<1) change the failure clustering, not the ordering
of policies.
"""

from __future__ import annotations

import numpy as np

from repro import Cluster, Simulator, uniform_pack
from repro.resilience import (
    ExpectedTimeModel,
    ExponentialFaults,
    LogNormalFaults,
    WeibullFaults,
)

from _common import RESULTS_DIR, BENCH_SEED

REPLICATES = 5


def run_study() -> dict:
    pack = uniform_pack(8, m_inf=10_000, m_sup=40_000, seed=BENCH_SEED)
    cluster = Cluster.with_mtbf_years(24, mtbf_years=0.05)
    families = {
        "exponential": ExponentialFaults(cluster.mtbf),
        "weibull-0.7": WeibullFaults(cluster.mtbf, shape=0.7),
        "lognormal-1.0": LogNormalFaults(cluster.mtbf, sigma=1.0),
    }
    outcome: dict = {}
    for name, distribution in families.items():
        gains, failures = [], []
        for seed in range(REPLICATES):
            model = ExpectedTimeModel(pack, cluster)
            common = dict(
                seed=BENCH_SEED + seed,
                fault_distribution=distribution,
                model=model,
            )
            with_rc = Simulator(pack, cluster, "ig-el", **common).run()
            without = Simulator(
                pack, cluster, "no-redistribution", **common
            ).run()
            gains.append(1.0 - with_rc.makespan / without.makespan)
            failures.append(with_rc.failures_effective)
        outcome[name] = {
            "gain": float(np.mean(gains)),
            "failures": float(np.mean(failures)),
        }
    return outcome


def test_fault_distribution_sensitivity(benchmark):
    outcome = benchmark.pedantic(run_study, iterations=1, rounds=1)

    RESULTS_DIR.mkdir(exist_ok=True)
    lines = [
        f"{name}: redistribution gain {data['gain']:.3%} "
        f"({data['failures']:.1f} effective failures/run)"
        for name, data in outcome.items()
    ]
    (RESULTS_DIR / "fault_distribution.txt").write_text("\n".join(lines) + "\n")

    # the redistribution mechanism survives every arrival family
    for name, data in outcome.items():
        assert data["gain"] > 0.0, f"no gain under {name}"
        assert data["failures"] > 0.0, f"no failures drawn under {name}"
