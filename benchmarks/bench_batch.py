"""Extension bench: online batching vs clairvoyant packing (Section 2.3).

Runs one Poisson campaign through the online batch scheduler (drain-and-
refill and bounded-batch variants) and through the clairvoyant offline
partitioner that ignores release times.

Expected shape: with spread-out releases the clairvoyant partition's
*processing span* (total busy time) stays at or below the online
makespan plus the submission spread.  In a drain-and-refill model,
capping the batch size *excludes* already-released jobs from the current
batch, so bounded batches fragment the schedule (more batches) and
increase mean waiting relative to batch-per-drain — the cap only pays
off for schedulers that can launch batches before the platform drains,
which this model (like the paper's packs) deliberately does not do.
"""

from __future__ import annotations

from dataclasses import replace as dc_replace

from repro import Cluster
from repro.batch import OnlineBatchScheduler, poisson_stream
from repro.packing import MultiPackScheduler, PackCostOracle, dp_contiguous
from repro.tasks import Pack

from _common import RESULTS_DIR, BENCH_SEED


def run_study() -> dict:
    cluster = Cluster.with_mtbf_years(12, mtbf_years=0.5)
    jobs = poisson_stream(
        12,
        mean_interarrival=30_000.0,
        m_inf=5_000,
        m_sup=40_000,
        seed=BENCH_SEED,
    )
    outcome: dict = {}

    drain = OnlineBatchScheduler(
        jobs, cluster, "ig-el", seed=BENCH_SEED
    ).run()
    bounded = OnlineBatchScheduler(
        jobs,
        cluster,
        "ig-el",
        batch_policy="fixed",
        batch_size=3,
        seed=BENCH_SEED,
    ).run()
    outcome["drain"] = {
        "makespan": drain.makespan,
        "batches": drain.batch_count,
        "mean_wait": drain.metrics.mean_waiting,
        "mean_response": drain.metrics.mean_response,
    }
    outcome["bounded"] = {
        "makespan": bounded.makespan,
        "batches": bounded.batch_count,
        "mean_wait": bounded.metrics.mean_waiting,
        "mean_response": bounded.metrics.mean_response,
    }

    pack = Pack([dc_replace(job.task, index=i) for i, job in enumerate(jobs)])
    oracle = PackCostOracle(pack, cluster)
    partition = dp_contiguous(oracle, 3)
    clairvoyant = MultiPackScheduler(
        pack, cluster, "ig-el", partition, seed=BENCH_SEED
    ).run()
    outcome["clairvoyant_span"] = clairvoyant.total_makespan
    outcome["last_release"] = jobs[-1].release
    return outcome


def test_batch_vs_packing(benchmark):
    outcome = benchmark.pedantic(run_study, iterations=1, rounds=1)

    RESULTS_DIR.mkdir(exist_ok=True)
    lines = [
        f"{name}: makespan={data['makespan']:.6g}s batches={data['batches']} "
        f"wait={data['mean_wait']:.6g}s response={data['mean_response']:.6g}s"
        for name, data in outcome.items()
        if isinstance(data, dict)
    ]
    lines.append(
        f"clairvoyant processing span: {outcome['clairvoyant_span']:.6g}s "
        f"(releases span {outcome['last_release']:.6g}s)"
    )
    (RESULTS_DIR / "batch_vs_packing.txt").write_text("\n".join(lines) + "\n")

    drain, bounded = outcome["drain"], outcome["bounded"]
    # capping the batch size excludes released jobs from the current
    # batch: the schedule fragments and queue times grow
    assert bounded["batches"] >= drain["batches"]
    assert bounded["mean_wait"] >= drain["mean_wait"] - 1e-6
    # the online schedulers cannot beat the clairvoyant *processing*
    # span by more than the submission spread (they must wait for jobs)
    slack = outcome["last_release"]
    for data in (drain, bounded):
        assert data["makespan"] + 1e-6 >= outcome["clairvoyant_span"] - slack
