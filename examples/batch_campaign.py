#!/usr/bin/env python3
"""Batch campaign: online batching vs clairvoyant packing.

Section 2.3 of the paper frames pack co-scheduling as the *static*
counterpart of batch scheduling.  Here a campaign of 12 jobs arrives as
a Poisson stream at a 6-buddy-pair cluster and is executed three ways:

1. **online, batch-per-drain** — the related-work regime: whenever the
   platform drains, every released job forms the next batch;
2. **online, bounded batches** — classic batch schedulers' cap;
3. **clairvoyant packing** — all jobs known at time 0 (ignore releases),
   partitioned offline with the DP of `repro.packing` (the lower-bound
   regime the paper's one-pack scheduling represents).

The run reports makespan and the *user-facing* metrics that distinguish
the regimes: waiting and response times.

Run:  python examples/batch_campaign.py
"""

from __future__ import annotations

from repro import Cluster
from repro.batch import OnlineBatchScheduler, poisson_stream
from repro.experiments import render_table
from repro.packing import MultiPackScheduler, PackCostOracle, dp_contiguous
from repro.tasks import Pack
from dataclasses import replace as dc_replace

cluster = Cluster.with_mtbf_years(12, mtbf_years=0.5)
jobs = poisson_stream(
    12, mean_interarrival=30_000.0, m_inf=5_000, m_sup=40_000, seed=99
)
print(
    f"campaign: {len(jobs)} jobs over "
    f"{jobs[-1].release:.4g}s of submissions on {cluster}\n"
)

rows = []

# -- 1 & 2: online batching ------------------------------------------------
for label, kwargs in (
    ("batch per drain", dict(batch_policy="all")),
    ("batches of 3", dict(batch_policy="fixed", batch_size=3)),
):
    outcome = OnlineBatchScheduler(
        jobs, cluster, "ig-el", seed=5, **kwargs
    ).run()
    metrics = outcome.metrics
    assert metrics is not None
    rows.append(
        [
            label,
            str(outcome.batch_count),
            f"{outcome.makespan:.5g}s",
            f"{metrics.mean_waiting:.4g}s",
            f"{metrics.mean_response:.4g}s",
        ]
    )

# -- 3: clairvoyant packing (release times ignored) --------------------------
pack = Pack(
    [dc_replace(job.task, index=i) for i, job in enumerate(jobs)]
)
oracle = PackCostOracle(pack, cluster)
partition = dp_contiguous(oracle, 3)
clairvoyant = MultiPackScheduler(
    pack, cluster, "ig-el", partition, seed=5
).run()
rows.append(
    [
        "clairvoyant DP k=3",
        str(partition.k),
        f"{clairvoyant.total_makespan:.5g}s",
        "n/a (ignores releases)",
        "n/a",
    ]
)

print(
    render_table(
        ["scheduler", "#batches", "makespan", "mean wait", "mean response"],
        rows,
    )
)

print(
    "\nreading: the online scheduler pays for not knowing the future —"
    "\nit may idle before late arrivals and cannot co-locate jobs across"
    "\nrelease gaps.  In this drain-and-refill model, capping the batch"
    "\nsize *excludes* released jobs from the running batch, so bounded"
    "\nbatches fragment the schedule and inflate queue times; the cap"
    "\nonly pays off for schedulers that can launch work before the"
    "\nplatform drains, which packs (by design) do not."
)
