#!/usr/bin/env python3
"""Capacity planning: how many processors does this workload deserve?

A cluster operator holds a fixed pack of applications and can lease
between 24 and 120 processors.  This script sweeps the platform size,
measures (a) the expected makespan under the best redistribution policy
and (b) the gain redistribution brings over a static schedule — the
Fig. 8 question turned into a planning tool.  It then reports the
smallest platform achieving most of the attainable speedup.

Run:  python examples/capacity_planning.py
"""

from __future__ import annotations

import numpy as np

from repro import Cluster, simulate, uniform_pack
from repro.experiments import render_table
from repro.viz import line_chart

REPLICATES = 5
PLATFORMS = [24, 32, 48, 64, 88, 120]

pack = uniform_pack(10, m_inf=10_000, m_sup=40_000, seed=2024)
print(
    f"workload: {pack.n} tasks, sequential work "
    f"{pack.total_sequential_work():.4g}s\n"
)

rows = []
mean_makespans: list[float] = []
gains: list[float] = []
for p in PLATFORMS:
    cluster = Cluster.with_mtbf_years(p, mtbf_years=0.3)
    with_rc, without_rc = [], []
    for replicate in range(REPLICATES):
        with_rc.append(
            simulate(pack, cluster, "ig-el", seed=replicate).makespan
        )
        without_rc.append(
            simulate(
                pack, cluster, "no-redistribution", seed=replicate
            ).makespan
        )
    mean_rc = float(np.mean(with_rc))
    mean_static = float(np.mean(without_rc))
    mean_makespans.append(mean_rc)
    gains.append(1.0 - mean_rc / mean_static)
    rows.append(
        [
            str(p),
            f"{mean_static:.4g}s",
            f"{mean_rc:.4g}s",
            f"{gains[-1]:.1%}",
        ]
    )

print(
    render_table(
        ["#procs", "static schedule", "with redistribution", "RC gain"],
        rows,
    )
)

# -- the knee: smallest platform within 10% of the best achieved ----------
best = min(mean_makespans)
for p, makespan in zip(PLATFORMS, mean_makespans):
    if makespan <= 1.1 * best:
        print(
            f"\nrecommendation: {p} processors reaches within 10% of the "
            f"best observed makespan ({makespan:.4g}s vs {best:.4g}s)"
        )
        break

print(
    "\n"
    + line_chart(
        {
            "makespan (ig-el)": (PLATFORMS, mean_makespans),
            "RC gain": (
                PLATFORMS,
                [g * max(mean_makespans) for g in gains],  # scaled overlay
            ),
        },
        width=64,
        height=12,
        title="makespan vs platform size (gain overlaid, scaled)",
        x_label="#processors",
    )
)
print(
    "note: the redistribution gain shrinks as processors get plentiful —\n"
    "ending tasks no longer release capacity anyone is starving for\n"
    "(the paper's Fig. 8 observation)."
)
