#!/usr/bin/env python3
"""Quickstart: co-schedule a pack on a failure-prone platform.

Draws a small pack of malleable tasks, runs it on a cluster with and
without processor redistribution under identical failures (common random
numbers), and prints the makespans, the gain, and a Gantt view of who
held how many processors when.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import Cluster, Simulator, simulate, uniform_pack
from repro.viz import gantt_chart

# -- 1. a workload: 8 malleable tasks with the paper's speedup profile ----
# sizes are drawn uniformly; checkpoint cost is proportional to size
pack = uniform_pack(8, m_inf=20_000, m_sup=60_000, seed=42)

# -- 2. a platform: 32 processors, aggressive MTBF so failures matter ----
# (per-processor MTBF of 0.2 years; the pack-level failure rate scales
# with the allocation, so several failures strike during the run)
cluster = Cluster.with_mtbf_years(processors=32, mtbf_years=0.2)

print(f"pack: {pack.n} tasks, total sequential work "
      f"{pack.total_sequential_work():.3g}s")
print(f"platform: {cluster}\n")

# -- 3. simulate: same seed => same failure times for both policies ------
baseline = simulate(pack, cluster, "no-redistribution", seed=7)
redistributed = simulate(pack, cluster, "ig-el", seed=7)

print("without redistribution :", baseline.summary())
print("with    redistribution :", redistributed.summary())
gain = 1.0 - redistributed.makespan / baseline.makespan
print(f"\nredistribution gain: {gain:.1%} "
      f"({baseline.makespan:.4g}s -> {redistributed.makespan:.4g}s)")

# -- 4. inspect the execution: allocation timelines as a Gantt chart -----
traced = Simulator(pack, cluster, "ig-el", seed=7, record_trace=True).run()
print("\n" + gantt_chart(traced, width=70))
