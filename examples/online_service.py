#!/usr/bin/env python3
"""Online scheduling service: rolling-horizon co-scheduling, in process.

The paper schedules a *pack* known at time zero; the service layer
(`repro.service`) lifts the same machinery online.  Jobs arrive over
time at a rolling-horizon engine; every arrival, cancellation or
completion triggers an epoch where the *residual* workload (remaining
fractions read off the live simulator) is re-co-scheduled with
Algorithm 1 and processors are redistributed under the Eq. (4) cost
model — paying the paper's redistribution cost RC for every moved job.

This demo drives the full service stack deterministically — a
:class:`~repro.service.VirtualClock` instead of wall time, the
in-process transport seam instead of sockets — so its output is
reproducible byte for byte.  The same stack serves real HTTP when run
as a daemon::

    repro-cosched serve --port 8643 --token secret
    # or: python -m repro.service --port 8643 --token secret

It ends with the online theory hook: the certified arrival-aware lower
bound (release-path + suffix-area) and the run's competitive ratio.

Run:  python examples/online_service.py
"""

from __future__ import annotations

import json

from repro.service import (
    OnlineEngine,
    ReplayConfig,
    ServiceAPI,
    ServiceSession,
    VirtualClock,
    generate_trace,
    replay_reference,
    replay_service,
    canonical_bytes,
)
from repro.theory.online import replay_competitive_ratio

# -- 1. a live session: submit, watch, cancel, drain -------------------------

clock = VirtualClock()
config = ReplayConfig(processors=16, mtbf_years=0.05, seed=11)
session = ServiceSession(config.engine(), clock)
api = ServiceAPI(session)  # the same dispatch the HTTP handler uses

print("== live session (p=16, policy=ig-el, MTBF=0.05y) ==")
for job_id, size in (("genomics", 8_000.0), ("climate", 6_500.0)):
    response = api.handle("submit", {"job_id": job_id, "size": size})
    print(f"t={clock.now():>9.1f}  submit {job_id:9s} -> "
          f"sigma={response['job']['sigma']} ({response['job']['status']})")

clock.advance(2_000.0)
response = api.handle("submit", {"job_id": "cfd", "size": 9_000.0})
print(f"t={clock.now():>9.1f}  submit {'cfd':9s} -> "
      f"sigma={response['job']['sigma']} ({response['job']['status']})")

clock.advance(1_500.0)
print(f"t={clock.now():>9.1f}  cancel climate -> "
      f"{api.handle('cancel', {'job_id': 'climate'})['status']}")

metrics = api.handle("metrics", {})
print(f"t={clock.now():>9.1f}  /metrics: "
      f"epochs={metrics['service']['epochs']} "
      f"repack_moves={metrics['service']['repack_moves']} "
      f"decision p50={metrics['decision_latency']['p50'] * 1e3:.2f}ms")

summary = api.handle("drain", {})
print(f"drained at t={summary['drained_at']:.6g}: "
      f"{summary['completed']} completed, {summary['cancelled']} cancelled, "
      f"{len(summary['lost'])} lost\n")

# -- 2. the pin: service stack vs offline re-simulation ----------------------

trace = generate_trace(5, n_jobs=8, mean_gap=3_000.0, cancel_every=4)
reference = replay_reference(trace, config)
served, _responses = replay_service(trace, config)
identical = canonical_bytes(reference) == canonical_bytes(served)
print("== arrival replay: service vs offline reference ==")
print(f"jobs={len([e for e in trace if e.kind == 'submit'])} "
      f"epochs={len(reference.epochs)} "
      f"makespan={reference.makespan:.6g}s "
      f"byte-identical={identical}")
assert identical, "the service stack drifted from the reference"

# -- 3. competitive ratio against the arrival-aware lower bound --------------

report = replay_competitive_ratio(trace, reference, config)
print("\n== online competitive ratio ==")
print(json.dumps({k: round(v, 4) for k, v in report.items()}, indent=2))
print(
    f"\nthe policy finished within {100 * (report['ratio'] - 1):.1f}% of the "
    "certified online lower bound (release-path vs suffix-area: "
    f"{report['critical_path_bound']:.6g}s vs {report['area_bound']:.6g}s)"
)
