#!/usr/bin/env python3
"""Checkpointing vs process replication: where is the crossover?

The related-work section of the paper contrasts its buddy checkpointing
with process replication (RedMPI).  Replication halves the useful
platform (every process runs twice) but makes interruptions rare — only
a second hit on an already-degraded replica pair stops the application.

This script quantifies the trade-off for one task:

1. MNFTI / MTTI: how many failures (and how much time) until a
   replicated run is interrupted;
2. expected completion times of both mechanisms across per-processor
   MTBFs, locating the crossover;
3. the bisection-found crossover MTBF as the allocation grows.

Run:  python examples/replication_tradeoff.py
"""

from __future__ import annotations

from repro import Cluster, ExpectedTimeModel, uniform_pack
from repro.experiments import render_table
from repro.resilience import (
    ReplicatedExpectedTimeModel,
    crossover_mtbf,
    mnfti,
    mnfti_asymptotic,
    mtti,
)
from repro.units import SECONDS_PER_YEAR
from repro.viz import line_chart

pack = uniform_pack(1, m_inf=100_000, m_sup=100_000, seed=1)

# -- 1. interruption statistics -------------------------------------------
print("== 1. failures-to-interruption for replica pairs ==\n")
rows = []
for pairs in (1, 4, 16, 64, 256):
    rows.append(
        [
            str(pairs),
            f"{mnfti(pairs):.2f}",
            f"{mnfti_asymptotic(pairs):.2f}",
        ]
    )
print(render_table(["replica pairs", "MNFTI exact", "sqrt(pi n)"], rows))

cluster_demo = Cluster.with_mtbf_years(64, mtbf_years=1.0)
print(
    f"\nwith 64 procs at 1-year MTBF: plain task MTBF "
    f"{cluster_demo.task_mtbf(64) / 3600:.1f}h, replicated MTTI "
    f"{mtti(cluster_demo, 64) / 3600:.1f}h\n"
)

# -- 2. expected time across platform reliability --------------------------
print("== 2. expected completion time vs per-processor MTBF (j=64) ==\n")
mtbf_years_grid = [0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1.0]
plain_curve, replicated_curve = [], []
rows = []
for mtbf_years in mtbf_years_grid:
    cluster = Cluster.with_mtbf_years(64, mtbf_years=mtbf_years)
    plain = ExpectedTimeModel(pack, cluster).expected_time(0, 64, 1.0)
    replicated = ReplicatedExpectedTimeModel(pack, cluster).expected_time(
        0, 64, 1.0
    )
    plain_curve.append(plain)
    replicated_curve.append(replicated)
    winner = "replication" if replicated < plain else "checkpointing"
    rows.append(
        [
            f"{mtbf_years:g}y",
            f"{plain:.4g}s",
            f"{replicated:.4g}s",
            winner,
        ]
    )
print(
    render_table(
        ["MTBF/proc", "checkpointing", "replication", "winner"], rows
    )
)

print(
    "\n"
    + line_chart(
        {
            "checkpointing": (mtbf_years_grid, plain_curve),
            "replication": (mtbf_years_grid, replicated_curve),
        },
        width=60,
        height=12,
        title="expected time vs MTBF (j=64; log-x would linearise)",
        x_label="per-processor MTBF (years)",
    )
)

# -- 3. crossover MTBF as the allocation grows ------------------------------
print("\n== 3. crossover per allocation ==\n")
rows = []
for j in (8, 16, 32, 64):
    crossover = crossover_mtbf(pack, 0, j)
    label = (
        f"{crossover / SECONDS_PER_YEAR:.3g} years"
        if crossover is not None
        else "none in range"
    )
    rows.append([str(j), label])
print(render_table(["processors j", "crossover MTBF"], rows))
print(
    "\nlarger allocations fail more often, so replication pays off at"
    "\nhigher (better) per-processor MTBFs — exactly the exascale argument"
    "\nof the replication literature."
)
