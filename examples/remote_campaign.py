#!/usr/bin/env python3
"""Remote campaign: the queue-backed execution fabric, end to end.

Runs a replicated policy-comparison sweep through the
:class:`~repro.engine.QueueExecutor` in its *shared broker* shape — the
one that scales past a single host:

1. create a broker spool (a plain directory; on a cluster this would
   live on a shared filesystem),
2. start **two worker processes** against it with the stock
   ``python -m repro.engine.worker`` entrypoint — exactly what you
   would run on other machines,
3. submit the campaign through the queue executor and reassemble the
   results,
4. verify the series is byte-identical to an in-process serial run,
   and show the engine statistics that travelled back across the
   queue boundary (workload/profile caches, decision-state reuse).

Run:  PYTHONPATH=src python examples/remote_campaign.py
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile

from repro.engine import FileBroker, QueueExecutor
from repro.experiments import FAULT_SERIES, ScenarioConfig, run_scenario

# -- 1. the campaign: one failure-rich scenario, paired replicates -------
CONFIG = ScenarioConfig(
    n=6, p=16, m_inf=150.0, m_sup=260.0, mtbf_years=0.002, replicates=8
)
SEED = 11

# -- 2. a broker spool + two stock workers (start these anywhere) --------
spool = tempfile.mkdtemp(prefix="repro-campaign-")
env = dict(os.environ)
env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
worker_cmd = [sys.executable, "-m", "repro.engine.worker", "--broker", spool]
workers = [subprocess.Popen(worker_cmd, env=env) for _ in range(2)]
print(f"spool: {spool}")
print(f"workers: 2 x `{' '.join(worker_cmd[1:])}` (pids "
      f"{', '.join(str(w.pid) for w in workers)})\n")

broker = FileBroker(spool)
try:
    # -- 3. submit through the queue executor ----------------------------
    with QueueExecutor(workers=2, broker=broker, poll_interval=0.01) as ex:
        outcome = run_scenario(CONFIG, FAULT_SERIES, seed=SEED, executor=ex)
        stats = ex.stats()

    # -- 4. the same campaign in-process: must match byte for byte -------
    reference = run_scenario(CONFIG, FAULT_SERIES, seed=SEED)
    for key in reference.makespans:
        assert (outcome.makespans[key] == reference.makespans[key]).all()

    print(f"campaign complete: {CONFIG.replicates} paired replicates x "
          f"{len(FAULT_SERIES)} series, byte-identical to the serial run\n")
    print("normalised makespans (baseline = fault context without RC):")
    for key, value in outcome.normalized_row().items():
        print(f"  {key:8s} {value:.4f}")
    print(f"\nengine statistics (carried back across the queue boundary):")
    print(f"  {stats.describe()}")
    print(f"  profiles:  {stats.describe_profiles()}")
    print(f"  decisions: {stats.describe_decisions()}")
finally:
    broker.request_stop()          # workers drain the queue, then exit
    for worker in workers:
        worker.wait(timeout=60)
    import shutil

    shutil.rmtree(spool, ignore_errors=True)
