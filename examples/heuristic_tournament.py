#!/usr/bin/env python3
"""Tournament of the paper's four heuristic combinations.

Replays one scenario under every policy of Section 6.2 — the four
redistribution combinations, the no-redistribution baseline and the
fault-free reference — over paired replicates (identical workloads and
failure times per replicate), then reports normalised makespans, paired
confidence intervals and per-run competitive ratios against a certified
lower bound.

Run:  python examples/heuristic_tournament.py
"""

from __future__ import annotations

import numpy as np

from repro import Cluster, simulate, uniform_pack
from repro.analysis import describe
from repro.experiments import render_table
from repro.theory.online import competitive_report

POLICIES = ["no-redistribution", "ig-eg", "ig-el", "stf-eg", "stf-el"]
REPLICATES = 10

cluster = Cluster.with_mtbf_years(processors=48, mtbf_years=0.15)
print(f"platform: {cluster}; {REPLICATES} paired replicates\n")

# -- paired replicates: same pack + same failures for every policy -------
makespans: dict[str, list[float]] = {name: [] for name in POLICIES}
for replicate in range(REPLICATES):
    pack = uniform_pack(10, m_inf=10_000, m_sup=50_000, seed=100 + replicate)
    for name in POLICIES:
        result = simulate(pack, cluster, name, seed=replicate)
        makespans[name].append(result.makespan)

baseline = np.array(makespans["no-redistribution"])
rows = []
for name in POLICIES:
    values = np.array(makespans[name])
    stats = describe(values / baseline)  # paired normalisation per replicate
    lo, hi = stats.ci()
    rows.append(
        [
            name,
            f"{stats.mean:.3f}",
            f"[{lo:.3f}, {hi:.3f}]",
            f"{np.mean(values):.4g}s",
        ]
    )
print(
    render_table(
        ["policy", "normalized", "95% CI", "mean makespan"], rows
    )
)

# -- competitive ratios on one representative run -------------------------
pack = uniform_pack(10, m_inf=10_000, m_sup=50_000, seed=100)
results = [simulate(pack, cluster, name, seed=0) for name in POLICIES]
report = competitive_report(pack, cluster, results)
print("\ncompetitive ratios against the certified lower bound")
print(report.render())
print(f"\nbest policy this run: {report.best_policy()}")
